#!/usr/bin/env python3
"""Render a RunDir manifest into one self-contained HTML run report.

Usage::

    python tools/run_report.py <rundir-or-manifest.json> [--out report.html]

Every section renders only when its artifact exists, so the same tool
covers a minimal trace-only run and a full multi-rank bundle:

* run summary (status, config, git rev, host, backend, ranks, wall time)
* step-time sparkline from the flight-recorder journal (``step_end``
  events; falls back to Chrome-trace ``step`` spans)
* physics diagnostics series (``diagnostics.csv``) as inline SVG charts
* model-accuracy closure (predicted vs measured MLUP/s gauges from
  ``metrics.prom``)
* communication matrix (``comm_matrix.json``)
* health events (``health.jsonl``)
* crash post-mortems (``postmortem.json``) — rank, step, last kernel,
  field stats, traceback

The output is a single HTML file with inline CSS and SVG — no external
assets, so it can be attached to a CI run or mailed around as-is.
"""

from __future__ import annotations

import argparse
import csv
import html
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.observability.metrics import find_sample, parse_prometheus  # noqa: E402
from repro.observability.rundir import load_manifest  # noqa: E402

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 70rem; color: #1a1a2e; }
h1 { border-bottom: 2px solid #16324f; padding-bottom: .3rem; }
h2 { color: #16324f; margin-top: 2rem; }
table { border-collapse: collapse; margin: .5rem 0; }
th, td { border: 1px solid #c8d1dc; padding: .25rem .6rem; text-align: right; }
th { background: #eef2f7; }
td.l, th.l { text-align: left; }
.ok { color: #15803d; font-weight: 600; }
.bad { color: #b91c1c; font-weight: 600; }
.crashed { color: #b91c1c; font-weight: 600; }
.running { color: #b45309; font-weight: 600; }
.muted { color: #6b7280; font-size: .9rem; }
pre { background: #f6f8fa; padding: .75rem; overflow-x: auto;
      border: 1px solid #c8d1dc; font-size: .85rem; }
svg { background: #fbfcfe; border: 1px solid #c8d1dc; }
.section-missing { color: #9ca3af; font-style: italic; }
"""


def esc(value) -> str:
    return html.escape(str(value))


def fmt(value, digits: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}g}" if abs(value) < 1e-3 or abs(value) >= 1e4 \
            else f"{value:.{digits}f}"
    return str(value)


def table(headers, rows, left: set | None = None) -> str:
    left = left or {0}
    out = ["<table><tr>"]
    for i, h in enumerate(headers):
        cls = ' class="l"' if i in left else ""
        out.append(f"<th{cls}>{esc(h)}</th>")
    out.append("</tr>")
    for row in rows:
        out.append("<tr>")
        for i, cell in enumerate(row):
            cls = ' class="l"' if i in left else ""
            out.append(f"<td{cls}>{esc(cell)}</td>")
        out.append("</tr>")
    out.append("</table>")
    return "".join(out)


def svg_line_chart(series, width=640, height=120, label="") -> str:
    """Inline SVG polyline of one numeric series (a sparkline with axes)."""
    points = [float(v) for v in series if v is not None]
    if len(points) < 2:
        return '<p class="section-missing">(not enough points to chart)</p>'
    lo, hi = min(points), max(points)
    span = (hi - lo) or 1.0
    pad = 6
    n = len(points)
    coords = []
    for i, v in enumerate(points):
        x = pad + i * (width - 2 * pad) / (n - 1)
        y = height - pad - (v - lo) * (height - 2 * pad) / span
        coords.append(f"{x:.1f},{y:.1f}")
    return (
        f'<svg width="{width}" height="{height}" role="img" aria-label="{esc(label)}">'
        f'<polyline fill="none" stroke="#16324f" stroke-width="1.5" '
        f'points="{" ".join(coords)}"/>'
        f'<text x="{pad}" y="12" font-size="10" fill="#6b7280">'
        f"{esc(label)} — min {fmt(lo)}, max {fmt(hi)}, last {fmt(points[-1])}</text>"
        "</svg>"
    )


# -- artifact loaders (every one returns None when the artifact is absent) -------


def load_step_seconds(rundir: Path, manifest: dict) -> list[float] | None:
    """Per-step wall times: journal ``step_end`` events, else trace spans."""
    journals = [rundir / "journal.jsonl"]
    journals += sorted(rundir.glob("journal.rank*.jsonl"))
    for journal in journals:
        if not journal.exists():
            continue
        seconds = []
        with open(journal) as fh:
            for line in fh:
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue  # a crash can truncate the final line
                if event.get("kind") == "step_end" and "seconds" in event.get("data", {}):
                    seconds.append(float(event["data"]["seconds"]))
        if seconds:
            return seconds
    trace = rundir / "trace.json"
    if trace.exists():
        try:
            doc = json.loads(trace.read_text())
        except json.JSONDecodeError:
            return None
        seconds = [
            e["dur"] / 1e6
            for e in doc.get("traceEvents", [])
            if e.get("ph") == "X" and e.get("name") == "step"
        ]
        if seconds:
            return seconds
    return None


def load_diagnostics(rundir: Path) -> tuple[list[str], dict] | None:
    path = rundir / "diagnostics.csv"
    if not path.exists():
        return None
    with open(path) as fh:
        reader = csv.DictReader(fh)
        names = [n for n in (reader.fieldnames or []) if n not in ("time_step", "time")]
        columns: dict[str, list] = {n: [] for n in names}
        steps = []
        for row in reader:
            steps.append(row.get("time_step"))
            for n in names:
                try:
                    columns[n].append(float(row[n]))
                except (KeyError, TypeError, ValueError):
                    columns[n].append(None)
    if not steps:
        return None
    return names, columns


def load_metrics(rundir: Path) -> dict | None:
    path = rundir / "metrics.prom"
    if not path.exists():
        return None
    try:
        return parse_prometheus(path.read_text())
    except ValueError:
        return None


def load_json(path: Path):
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError:
        return None


def load_health(rundir: Path) -> list[dict] | None:
    path = rundir / "health.jsonl"
    if not path.exists():
        return None
    events = []
    with open(path) as fh:
        for line in fh:
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return events


# -- sections --------------------------------------------------------------------


def section_summary(manifest: dict) -> str:
    status = manifest.get("status", "unknown")
    host = manifest.get("host", {})
    rows = [
        ("status", f'<span class="{esc(status)}">{esc(status)}</span>'),
        ("wall time", f"{manifest.get('wall_seconds', 0):.2f} s"),
        ("git sha", (manifest.get("git_sha") or "-")[:12]),
        ("host", host.get("hostname", "-")),
        ("platform", host.get("platform", "-")),
        ("python", host.get("python", "-")),
        ("started",
         time.strftime("%Y-%m-%d %H:%M:%S UTC",
                       time.gmtime(manifest.get("started_at", 0)))),
    ]
    for key in ("solver", "backend", "ranks", "overlap", "example", "forest", "shape"):
        if key in manifest:
            rows.append((key, esc(manifest[key])))
    if manifest.get("error"):
        rows.append(("error", esc(manifest["error"])))
    body = "".join(
        f'<tr><th class="l">{k}</th><td class="l">{v}</td></tr>' for k, v in rows
    )
    config = manifest.get("config") or {}
    config_html = (
        f"<pre>{esc(json.dumps(config, indent=2))}</pre>" if config else ""
    )
    return f"<h2>Run summary</h2><table>{body}</table>{config_html}"


def section_steps(step_seconds) -> str:
    out = ["<h2>Step time</h2>"]
    if not step_seconds:
        out.append('<p class="section-missing">(no step timings recorded)</p>')
        return "".join(out)
    total = sum(step_seconds)
    mean = total / len(step_seconds)
    out.append(
        f'<p class="muted">{len(step_seconds)} steps, mean '
        f"{mean * 1e3:.3f} ms, total {total:.3f} s</p>"
    )
    out.append(svg_line_chart(
        [s * 1e3 for s in step_seconds], label="step wall time (ms)"
    ))
    return "".join(out)


def section_diagnostics(diag) -> str:
    out = ["<h2>Physics diagnostics</h2>"]
    if diag is None:
        out.append('<p class="section-missing">(no diagnostics.csv)</p>')
        return "".join(out)
    names, columns = diag
    for name in names:
        out.append(svg_line_chart(columns[name], label=name))
        out.append("<br>")
    return "".join(out)


def section_accuracy(metrics) -> str:
    out = ["<h2>Model accuracy (predicted vs measured)</h2>"]
    if metrics is None or "repro_kernel_measured_mlups" not in metrics:
        out.append('<p class="section-missing">(no model-accuracy gauges '
                   "in metrics.prom)</p>")
        return "".join(out)
    kernels = sorted({
        labels.get("kernel")
        for _, labels, _ in metrics["repro_kernel_measured_mlups"]["samples"]
        if labels.get("kernel")
    })
    rows = []
    for kernel in kernels:
        predicted = find_sample(metrics, "repro_kernel_predicted_mlups", kernel=kernel)
        measured = find_sample(metrics, "repro_kernel_measured_mlups", kernel=kernel)
        ratio = find_sample(metrics, "repro_model_accuracy_ratio", kernel=kernel)
        rows.append((kernel, fmt(predicted), fmt(measured), fmt(ratio)))
    out.append(table(
        ["kernel", "predicted MLUP/s", "measured MLUP/s", "measured/predicted"], rows
    ))
    return "".join(out)


def section_overhead(metrics) -> str:
    if metrics is None:
        return ""
    overhead = find_sample(metrics, "repro_observability_overhead_seconds")
    if overhead is None:
        return ""
    return (
        f'<p class="muted">flight-recorder overhead (self-measured): '
        f"{overhead * 1e3:.3f} ms total</p>"
    )


def load_perf_records(rundir: Path) -> list[dict] | None:
    path = rundir / "perf" / "perf.jsonl"
    if not path.exists():
        return None
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail write
            if rec.get("schema") == "repro-perf/1":
                records.append(rec)
    return records


def section_perf(records) -> str:
    out = ["<h2>Kernel performance counters</h2>"]
    if not records:
        out.append('<p class="section-missing">(no perf/perf.jsonl — '
                   "run with a RunDir and call export_perf)</p>")
        return "".join(out)
    sources = sorted({
        str(r.get("measured", {}).get("counter_source", "?")) for r in records
    })
    out.append(f'<p class="muted">counter source(s): {esc(", ".join(sources))}, '
               f"{len(records)} record(s)</p>")
    rows = []
    for r in records:
        m = r.get("measured", {})
        p = r.get("predicted") or {}
        rows.append((
            r.get("name", "-"),
            fmt(m.get("mlups")), fmt(p.get("mlups")),
            fmt(m.get("cycles_per_lup")), fmt(p.get("cycles_per_lup")),
            fmt(m.get("bytes_per_lup")), fmt(p.get("bytes_per_lup")),
            fmt(m.get("ipc")),
        ))
    out.append(table(
        ["series", "MLUP/s", "pred MLUP/s", "cy/LUP", "pred cy/LUP",
         "B/LUP", "pred B/LUP", "IPC"], rows
    ))
    return "".join(out)


def section_comm(comm) -> str:
    out = ["<h2>Communication matrix</h2>"]
    if comm is None:
        out.append('<p class="section-missing">(no comm_matrix.json)</p>')
        return "".join(out)
    n = comm.get("n_ranks", 0)
    rows = []
    for src in range(n):
        row = [f"rank {src}"]
        for dst in range(n):
            b = comm["bytes"][src][dst]
            row.append(f"{b / 1024:.1f}" if b else "·")
        row.append(f"{sum(comm['bytes'][src]) / 1024:.1f}")
        row.append(str(sum(comm["messages"][src])))
        rows.append(row)
    out.append(table(
        ["src \\ dst (KiB)"] + [str(d) for d in range(n)] + ["Σ sent", "msgs"], rows
    ))
    imbalance = comm.get("imbalance")
    out.append(
        f'<p class="muted">total {comm.get("total_bytes", 0) / 1024:.1f} KiB in '
        f'{comm.get("total_messages", 0)} messages'
        + (f", byte imbalance max/mean = {imbalance:.3f}" if imbalance else "")
        + "</p>"
    )
    return "".join(out)


def load_fingerprints(rundir: Path) -> list[dict] | None:
    path = rundir / "fingerprints.jsonl"
    if not path.exists():
        return None
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records


def svg_heatmap(grid, width=320, label="") -> str:
    """Inline SVG of a coarse 2D max-ulp grid (darker = larger ulp)."""
    rows = len(grid)
    cols = len(grid[0]) if rows else 0
    if not rows or not cols:
        return '<p class="section-missing">(empty heatmap)</p>'
    peak = max(max(r) for r in grid) or 1
    cell = max(6, min(24, width // cols))
    w, h = cols * cell, rows * cell
    out = [
        f'<svg width="{w}" height="{h + 16}" role="img" '
        f'aria-label="{esc(label)}">'
    ]
    for i, row in enumerate(grid):
        for j, v in enumerate(row):
            # log-ish shading so a single-ulp cell is still visible
            alpha = 0.08 + 0.92 * ((v / peak) ** 0.4 if v else 0.0)
            fill = f"rgba(153, 27, 27, {alpha:.2f})" if v else "#eef2f7"
            out.append(
                f'<rect x="{j * cell}" y="{i * cell}" width="{cell - 1}" '
                f'height="{cell - 1}" fill="{fill}"><title>'
                f"({i},{j}): {v} ulp</title></rect>"
            )
    out.append(
        f'<text x="0" y="{h + 12}" font-size="10" fill="#6b7280">'
        f"{esc(label)} — peak {peak} ulp</text></svg>"
    )
    return "".join(out)


def section_determinism(records, divergence) -> str:
    out = ["<h2>Determinism</h2>"]
    if records is None and divergence is None:
        out.append('<p class="section-missing">(no fingerprints.jsonl — '
                   "fingerprinting disabled)</p>")
        return "".join(out)
    if records:
        steps = [r.get("step", 0) for r in records]
        fields = sorted((records[0].get("fields") or {}).keys())
        blocks = sum(len(b) for b in (records[0].get("fields") or {}).values())
        out.append(
            f"<p>{len(records)} <code>repro-fingerprint/1</code> records, "
            f"steps {min(steps)}..{max(steps)}, fields "
            f"{esc(', '.join(fields))} ({blocks} (field, block) digests per "
            f"record); last combined digest "
            f"<code>{esc(records[-1].get('digest', '?'))}</code></p>"
        )
    elif records is not None:
        out.append('<p class="section-missing">(fingerprints.jsonl is empty)</p>')
    if divergence is None:
        return "".join(out)
    div = divergence.get("first_divergence")
    if div is None:
        out.append(
            f'<p class="ok">divergence analysis vs '
            f"<code>{esc(divergence.get('b', '?'))}</code>: all "
            f"{divergence.get('common_steps', 0)} common-step records "
            "identical</p>"
        )
        return "".join(out)
    out.append(
        f'<p class="bad">FIRST DIVERGENCE vs '
        f"<code>{esc(divergence.get('b', '?'))}</code> at step "
        f"<b>{div.get('step')}</b>, field <b>{esc(str(div.get('field')))}</b>, "
        f"block <b>({esc(str(div.get('block')))})</b> — "
        f"{div.get('n_mismatches', '?')} (field, block) pair(s) differ</p>"
    )
    context = divergence.get("context") or []
    if context:
        out.append(table(
            ["step", "this run", "reference", "match"],
            [(c.get("step"), c.get("digest_a", "")[:16],
              c.get("digest_b", "")[:16], "ok" if c.get("match") else "DIVERGED")
             for c in context],
            left={1, 2, 3},
        ))
    cp = divergence.get("checkpoint")
    if cp:
        out.append(
            f"<h3>Ulp diff at nearest common checkpoint "
            f"(step {cp.get('step')})</h3>"
        )
        rows = [
            (name, st.get("max_ulp"), fmt(st.get("mean_ulp", 0.0)),
             f"{st.get('mismatch_count')}/{st.get('compared')}",
             st.get("nonfinite_mismatches", 0))
            for name, st in sorted((cp.get("fields") or {}).items())
        ]
        out.append(table(
            ["field", "max ulp", "mean ulp", "cells differing", "non-finite"],
            rows,
        ))
        for name, st in sorted((cp.get("fields") or {}).items()):
            grid = st.get("heatmap")
            if grid and st.get("max_ulp"):
                out.append(svg_heatmap(
                    grid, label=f"{name}: coarse spatial max-ulp map"
                ))
    return "".join(out)


def section_health(events) -> str:
    out = ["<h2>Health events</h2>"]
    if events is None:
        out.append('<p class="section-missing">(no health.jsonl — '
                   "watchdog disabled or no events)</p>")
        return "".join(out)
    if not events:
        out.append('<p class="ok">no failed health checks</p>')
        return "".join(out)
    rows = [
        (e.get("time_step"), e.get("check"), e.get("field"),
         e.get("message"), e.get("where") or "-")
        for e in events
    ]
    out.append(table(["step", "check", "field", "message", "where"],
                     rows, left={1, 2, 3, 4}))
    return "".join(out)


def _bundle_rows(bundle: dict) -> str:
    exc = bundle.get("exception") or {}
    last = bundle.get("last_kernel") or {}
    rows = [
        ("rank", bundle.get("rank", "-")),
        ("step", (bundle.get("position") or {}).get("time_step", "-")),
        ("exception", f"{exc.get('type', '-')}: {exc.get('message', '')}"),
        ("last kernel", last.get("name", "-")),
        ("events captured", len(bundle.get("last_events") or [])),
        ("pid / host", f"{bundle.get('pid', '-')} / {bundle.get('host', '-')}"),
    ]
    body = "".join(
        f'<tr><th class="l">{esc(k)}</th><td class="l">{esc(v)}</td></tr>'
        for k, v in rows
    )
    parts = [f"<table>{body}</table>"]
    fields = bundle.get("fields") or {}
    if fields and "error" not in fields:
        frows = []
        for name, st in sorted(fields.items()):
            if not isinstance(st, dict):
                continue
            frows.append((
                name, fmt(st.get("min")), fmt(st.get("max")), fmt(st.get("mean")),
                st.get("nan_count", "-"), st.get("inf_count", "-"),
            ))
        if frows:
            parts.append("<h4>Field state at death</h4>")
            parts.append(table(
                ["field", "min", "max", "mean", "NaN", "Inf"], frows
            ))
    tail = bundle.get("last_events") or []
    if tail:
        shown = tail[-15:]
        lines = [
            f"#{e.get('seq', '?'):>6}  {e.get('kind', ''):<12} "
            f"{e.get('name', '')}  {json.dumps(e.get('data', {}))}"
            for e in shown
        ]
        parts.append(f"<h4>Last {len(shown)} events</h4>"
                     f"<pre>{esc(chr(10).join(lines))}</pre>")
    if exc.get("traceback"):
        parts.append(f"<h4>Traceback</h4><pre>{esc(exc['traceback'])}</pre>")
    return "".join(parts)


def section_postmortem(postmortem) -> str:
    out = ["<h2>Crash post-mortem</h2>"]
    if postmortem is None:
        out.append('<p class="ok">no post-mortems — the run did not crash</p>')
        return "".join(out)
    if "ranks" in postmortem:
        for rank, bundle in sorted(postmortem["ranks"].items()):
            out.append(f"<h3>Rank {esc(rank)}</h3>")
            out.append(_bundle_rows(bundle))
    else:
        out.append(_bundle_rows(postmortem))
    return "".join(out)


def render_report(rundir: Path, manifest: dict) -> str:
    metrics = load_metrics(rundir)
    title = f"run report — {rundir.name}"
    sections = [
        section_summary(manifest),
        section_steps(load_step_seconds(rundir, manifest)),
        section_overhead(metrics),
        section_diagnostics(load_diagnostics(rundir)),
        section_accuracy(metrics),
        section_perf(load_perf_records(rundir)),
        section_comm(load_json(rundir / "comm_matrix.json")),
        section_determinism(
            load_fingerprints(rundir), load_json(rundir / "divergence.json")
        ),
        section_health(load_health(rundir)),
        section_postmortem(load_json(rundir / "postmortem.json")),
    ]
    artifacts = manifest.get("artifacts") or {}
    inventory = table(
        ["artifact", "file"],
        [(k, v if isinstance(v, str) else f"{len(v)} files")
         for k, v in sorted(artifacts.items())],
        left={0, 1},
    )
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{esc(title)}</title><style>{_CSS}</style></head><body>"
        f"<h1>{esc(title)}</h1>"
        + "".join(sections)
        + f"<h2>Artifact inventory</h2>{inventory}"
        + f'<p class="muted">generated by tools/run_report.py — '
        f"manifest schema {esc(manifest.get('schema', '?'))}</p>"
        "</body></html>"
    )


# -- sweep reports (repro-sweep/1 manifests from repro.service.sweep) ----------


def section_sweep_summary(manifest: dict) -> str:
    totals = manifest.get("totals", {})
    cls = "ok" if not totals.get("failed") else "bad"
    rows = [
        ("scenarios ok", totals.get("ok", 0)),
        ("scenarios failed", totals.get("failed", 0)),
        ("workers", manifest.get("workers")),
        ("backend", manifest.get("backend")),
        ("sweep wall (s)", fmt(totals.get("wall_seconds"))),
        ("codegen total (s)", fmt(totals.get("codegen_seconds"))),
        ("throughput (MLUP/s)", fmt(totals.get("throughput_mlups"))),
        ("disk-cache hits / builds",
         f"{totals.get('disk_hits', 0)} / {totals.get('disk_builds', 0)}"),
        ("memory-cache hits / misses",
         f"{totals.get('memory_hits', 0)} / {totals.get('memory_misses', 0)}"),
        ("health events", totals.get("health_events", 0)),
    ]
    status = "ok" if not totals.get("failed") else f"{totals.get('failed')} failed"
    return (
        f'<h2>Sweep summary — <span class="{cls}">{esc(status)}</span></h2>'
        + table(["item", "value"], rows, left={0})
    )


def section_sweep_queue(manifest: dict) -> str:
    samples = manifest.get("queue_depth_samples") or []
    chart = svg_line_chart(
        [s.get("depth") for s in samples], label="task-queue depth over the sweep"
    )
    return "<h2>Queue depth</h2>" + chart


def section_sweep_scenarios(sweep_dir: Path, manifest: dict) -> str:
    rows = []
    charts = []
    for entry in manifest.get("scenarios", []):
        spec = entry.get("spec", {})
        name = entry.get("name") or spec.get("name", "?")
        status = entry.get("status", "?")
        cache = entry.get("cache", {})
        rows.append((
            name,
            spec.get("model", "?"),
            "×".join(str(s) for s in spec.get("shape", [])),
            spec.get("steps", "?"),
            status,
            fmt(entry.get("wall_seconds")),
            fmt(entry.get("codegen_seconds")),
            fmt(entry.get("mlups")),
            f"{cache.get('disk_hits', 0)}/{cache.get('disk_builds', 0)}",
            entry.get("health_events", "-"),
        ))
        if status == "ok" and entry.get("rundir"):
            rundir = Path(entry["rundir"])
            if not rundir.is_absolute():
                rundir = sweep_dir / rundir
            diag = load_diagnostics(rundir)
            if diag:
                names, columns = diag
                interesting = [n for n in names if n not in ("time_step", "time")]
                if interesting:
                    charts.append(
                        f"<h3>{esc(name)}</h3>"
                        + svg_line_chart(
                            columns[interesting[0]],
                            width=420,
                            height=90,
                            label=f"{name}: {interesting[0]}",
                        )
                    )
        elif status != "ok":
            charts.append(
                f"<h3>{esc(name)}</h3><pre>{esc(entry.get('error', 'failed'))}</pre>"
            )
    return (
        "<h2>Scenarios</h2>"
        + table(
            ["scenario", "model", "shape", "steps", "status", "wall s",
             "codegen s", "MLUP/s", "disk hit/build", "health"],
            rows,
        )
        + "".join(charts)
    )


def render_sweep_report(sweep_dir: Path, manifest: dict) -> str:
    title = f"sweep report — {sweep_dir.name}"
    sections = [
        section_sweep_summary(manifest),
        section_sweep_queue(manifest),
        section_sweep_scenarios(sweep_dir, manifest),
    ]
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{esc(title)}</title><style>{_CSS}</style></head><body>"
        f"<h1>{esc(title)}</h1>"
        + "".join(sections)
        + '<p class="muted">generated by tools/run_report.py — '
        f"manifest schema {esc(manifest.get('schema', '?'))}</p>"
        "</body></html>"
    )


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    ap.add_argument("rundir", help="run directory, sweep directory, or manifest")
    ap.add_argument("--out", metavar="PATH",
                    help="output HTML path (default <rundir>/report.html)")
    args = ap.parse_args(argv)

    path = Path(args.rundir)
    if path.is_file():
        path = path.parent
    if (path / "sweep.json").exists():
        from repro.service.sweep import load_sweep_manifest

        try:
            manifest = load_sweep_manifest(path)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        out = Path(args.out) if args.out else path / "report.html"
        out.write_text(render_sweep_report(path, manifest))
        print(f"sweep report written to {out}")
        return 0
    try:
        manifest = load_manifest(path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out = Path(args.out) if args.out else path / "report.html"
    out.write_text(render_report(path, manifest))
    print(f"report written to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
