#!/usr/bin/env python3
"""Validate the observability artifacts emitted by an instrumented run.

Usage::

    python tools/check_observability.py trace.json metrics.prom [diagnostics.csv]

Checks that

* ``trace.json`` is valid Chrome-trace JSON with a non-empty
  ``traceEvents`` list, every event carries the required keys (duration
  ``"X"`` spans and counter ``"C"`` tracks are both accepted), and the
  span categories cover the paper's five pipeline layers (functional,
  pde, discretization, simplification, ir, backend is folded into the
  generation layer) plus the runtime loop;
* ``metrics.prom`` parses as Prometheus text format 0.0.4 and contains
  the core kernel/cache/throughput families;
* ``diagnostics.csv`` (optional) is a physics-diagnostics time series
  with a monotonically non-increasing ``free_energy`` column — the
  variational-structure invariant for isothermal noise-free runs.

Exits non-zero with a message on the first violation, so it can gate CI.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.observability import parse_prometheus  # noqa: E402

REQUIRED_CATEGORIES = {
    "functional",
    "pde",
    "discretization",
    "simplification",
    "ir",
    "backend",
    "runtime",
}
REQUIRED_EVENT_KEYS = {"name", "cat", "ph", "ts", "pid", "tid"}
REQUIRED_FAMILIES = {
    "repro_kernel_cache_misses_total",
    "repro_kernel_mlups",
    "repro_op_calls_total",
    "repro_op_seconds_total",
}


def fail(msg: str) -> None:
    print(f"check_observability: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: Path) -> None:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{path}: not readable as JSON ({exc})")
    all_events = doc.get("traceEvents")
    if not isinstance(all_events, list) or not all_events:
        fail(f"{path}: traceEvents missing or empty")
    meta = [ev for ev in all_events if ev.get("ph") == "M"]
    meta_names = {ev.get("name") for ev in meta}
    if "process_name" not in meta_names or "thread_name" not in meta_names:
        fail(
            f"{path}: process_name/thread_name metadata events missing "
            f"(Perfetto would show bare numeric tracks)"
        )
    for i, ev in enumerate(meta):
        if "pid" not in ev or "args" not in ev:
            fail(f"{path}: metadata event {i} missing pid/args")
    events = [ev for ev in all_events if ev.get("ph") != "M"]
    if not events:
        fail(f"{path}: no duration events (only metadata)")
    counters = 0
    for i, ev in enumerate(events):
        missing = REQUIRED_EVENT_KEYS - set(ev)
        if missing:
            fail(f"{path}: event {i} missing keys {sorted(missing)}")
        if ev["ph"] == "X":
            if "dur" not in ev:
                fail(f"{path}: duration event {i} missing 'dur'")
            if ev["dur"] < 0 or ev["ts"] < 0:
                fail(f"{path}: event {i} has negative ts/dur")
        elif ev["ph"] == "C":
            counters += 1
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                fail(f"{path}: counter event {i} has no args values")
            if ev["ts"] < 0:
                fail(f"{path}: counter event {i} has negative ts")
        else:
            fail(
                f"{path}: event {i} has phase {ev['ph']!r}, "
                f"expected 'X', 'C' or 'M'"
            )
    seen = {ev["cat"] for ev in events if ev["ph"] == "X"}
    missing = REQUIRED_CATEGORIES - seen
    if missing:
        fail(f"{path}: span categories missing: {sorted(missing)} (saw {sorted(seen)})")
    print(
        f"check_observability: {path}: {len(events)} events "
        f"({counters} counters, +{len(meta)} metadata), "
        f"categories {sorted(seen)}"
    )


def check_metrics(path: Path) -> None:
    try:
        parsed = parse_prometheus(path.read_text())
    except (OSError, ValueError) as exc:
        fail(f"{path}: does not parse as Prometheus text format ({exc})")
    if not parsed:
        fail(f"{path}: no metric families found")
    missing = REQUIRED_FAMILIES - set(parsed)
    if missing:
        fail(f"{path}: metric families missing: {sorted(missing)}")
    n_samples = sum(len(f["samples"]) for f in parsed.values())
    print(f"check_observability: {path}: {len(parsed)} families, {n_samples} samples")


def check_diagnostics(path: Path) -> None:
    import csv

    try:
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
    except OSError as exc:
        fail(f"{path}: not readable ({exc})")
    if not rows:
        fail(f"{path}: diagnostics CSV has no data rows")
    if "free_energy" not in rows[0]:
        fail(
            f"{path}: no free_energy column "
            f"(have {sorted(rows[0])})"
        )
    try:
        energy = [float(r["free_energy"]) for r in rows]
    except ValueError as exc:
        fail(f"{path}: non-numeric free_energy value ({exc})")
    for i in range(len(energy) - 1):
        if not energy[i + 1] <= energy[i]:
            fail(
                f"{path}: free energy INCREASED between rows {i} and {i + 1}: "
                f"{energy[i]:.17g} -> {energy[i + 1]:.17g} "
                f"(dPsi/dt <= 0 violated)"
            )
    print(
        f"check_observability: {path}: {len(rows)} rows, free energy "
        f"monotone non-increasing ({energy[0]:.6g} -> {energy[-1]:.6g})"
    )


def main(argv: list[str]) -> None:
    if len(argv) not in (2, 3):
        print(__doc__)
        sys.exit(2)
    check_trace(Path(argv[0]))
    check_metrics(Path(argv[1]))
    if len(argv) == 3:
        check_diagnostics(Path(argv[2]))
    print("check_observability: OK")


if __name__ == "__main__":
    main(sys.argv[1:])
