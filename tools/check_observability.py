#!/usr/bin/env python3
"""Validate the observability artifacts emitted by an instrumented run.

Usage::

    python tools/check_observability.py trace.json metrics.prom [diagnostics.csv]
        [--manifest RUNDIR] [--require-overhead-gauge]

Checks that

* ``trace.json`` is valid Chrome-trace JSON with a non-empty
  ``traceEvents`` list, every event carries the required keys (duration
  ``"X"`` spans and counter ``"C"`` tracks are both accepted), and the
  span categories cover the paper's five pipeline layers (functional,
  pde, discretization, simplification, ir, backend is folded into the
  generation layer) plus the runtime loop;
* ``metrics.prom`` parses as Prometheus text format 0.0.4 and contains
  the core kernel/cache/throughput families;
* ``diagnostics.csv`` (optional) is a physics-diagnostics time series
  with a monotonically non-increasing ``free_energy`` column — the
  variational-structure invariant for isothermal noise-free runs;
* with ``--manifest RUNDIR``: the run directory's ``manifest.json`` is a
  complete ``repro-run/1`` document (schema, status, git/host/config
  blocks) and every artifact it lists actually exists on disk;
* with ``--require-overhead-gauge``: ``metrics.prom`` carries the
  flight recorder's self-measured
  ``repro_observability_overhead_seconds`` gauge;
* with ``--require-perf``: the run directory (``--manifest RUNDIR``)
  carries a ``perf/perf.jsonl`` ledger with at least one valid
  ``repro-perf/1`` record, listed in the manifest inventory;
* with ``--require-fingerprints``: the run directory carries a
  ``fingerprints.jsonl`` determinism ledger whose records validate
  against the ``repro-fingerprint/1`` schema with strictly increasing
  step numbers, listed in the manifest inventory;
* with ``--require-sweep SWEEPDIR``: ``SWEEPDIR/sweep.json`` is a
  complete ``repro-sweep/1`` manifest whose totals account for every
  scenario, every successful scenario's run directory passes the
  manifest check, and the sweep-level ``metrics.prom`` carries the
  queue-depth/throughput/scenario-count families (may be used alone,
  without the positional trace/metrics arguments).

Exits non-zero with a message on the first violation, so it can gate CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.observability import parse_prometheus  # noqa: E402
from repro.observability.recorder import OVERHEAD_GAUGE  # noqa: E402
from repro.observability.rundir import load_manifest  # noqa: E402

REQUIRED_CATEGORIES = {
    "functional",
    "pde",
    "discretization",
    "simplification",
    "ir",
    "backend",
    "runtime",
}
REQUIRED_EVENT_KEYS = {"name", "cat", "ph", "ts", "pid", "tid"}
REQUIRED_FAMILIES = {
    "repro_kernel_cache_misses_total",
    "repro_kernel_mlups",
    "repro_op_calls_total",
    "repro_op_seconds_total",
}


def fail(msg: str) -> None:
    print(f"check_observability: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: Path) -> None:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{path}: not readable as JSON ({exc})")
    all_events = doc.get("traceEvents")
    if not isinstance(all_events, list) or not all_events:
        fail(f"{path}: traceEvents missing or empty")
    meta = [ev for ev in all_events if ev.get("ph") == "M"]
    meta_names = {ev.get("name") for ev in meta}
    if "process_name" not in meta_names or "thread_name" not in meta_names:
        fail(
            f"{path}: process_name/thread_name metadata events missing "
            f"(Perfetto would show bare numeric tracks)"
        )
    for i, ev in enumerate(meta):
        if "pid" not in ev or "args" not in ev:
            fail(f"{path}: metadata event {i} missing pid/args")
    events = [ev for ev in all_events if ev.get("ph") != "M"]
    if not events:
        fail(f"{path}: no duration events (only metadata)")
    counters = 0
    for i, ev in enumerate(events):
        missing = REQUIRED_EVENT_KEYS - set(ev)
        if missing:
            fail(f"{path}: event {i} missing keys {sorted(missing)}")
        if ev["ph"] == "X":
            if "dur" not in ev:
                fail(f"{path}: duration event {i} missing 'dur'")
            if ev["dur"] < 0 or ev["ts"] < 0:
                fail(f"{path}: event {i} has negative ts/dur")
        elif ev["ph"] == "C":
            counters += 1
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                fail(f"{path}: counter event {i} has no args values")
            if ev["ts"] < 0:
                fail(f"{path}: counter event {i} has negative ts")
        else:
            fail(
                f"{path}: event {i} has phase {ev['ph']!r}, "
                f"expected 'X', 'C' or 'M'"
            )
    seen = {ev["cat"] for ev in events if ev["ph"] == "X"}
    missing = REQUIRED_CATEGORIES - seen
    if missing:
        fail(f"{path}: span categories missing: {sorted(missing)} (saw {sorted(seen)})")
    print(
        f"check_observability: {path}: {len(events)} events "
        f"({counters} counters, +{len(meta)} metadata), "
        f"categories {sorted(seen)}"
    )


def check_metrics(path: Path, require_overhead: bool = False) -> None:
    try:
        parsed = parse_prometheus(path.read_text())
    except (OSError, ValueError) as exc:
        fail(f"{path}: does not parse as Prometheus text format ({exc})")
    if not parsed:
        fail(f"{path}: no metric families found")
    missing = REQUIRED_FAMILIES - set(parsed)
    if missing:
        fail(f"{path}: metric families missing: {sorted(missing)}")
    if require_overhead and OVERHEAD_GAUGE not in parsed:
        fail(
            f"{path}: {OVERHEAD_GAUGE} gauge missing — the flight recorder "
            f"did not publish its self-measured overhead"
        )
    n_samples = sum(len(f["samples"]) for f in parsed.values())
    print(f"check_observability: {path}: {len(parsed)} families, {n_samples} samples")


#: manifest keys a complete repro-run/1 document must carry
REQUIRED_MANIFEST_KEYS = {
    "schema", "status", "started_at", "wall_seconds",
    "host", "config", "artifacts",
}


def check_manifest(rundir: Path) -> None:
    try:
        manifest = load_manifest(rundir)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        fail(f"{rundir}: manifest not loadable ({exc})")
    missing = REQUIRED_MANIFEST_KEYS - set(manifest)
    if missing:
        fail(f"{rundir}: manifest keys missing: {sorted(missing)}")
    if manifest["status"] not in ("ok", "crashed", "running"):
        fail(f"{rundir}: unexpected manifest status {manifest['status']!r}")
    host = manifest["host"]
    if not isinstance(host, dict) or not {"hostname", "platform", "python"} <= set(host):
        fail(f"{rundir}: manifest host block incomplete ({host!r})")
    base = rundir if rundir.is_dir() else rundir.parent
    stale = []
    for key, value in manifest["artifacts"].items():
        names = value if isinstance(value, list) else [value]
        for name in names:
            if key in ("checkpoints", "perf"):
                target = base / key / name
            else:
                target = base / name
            if not target.exists():
                stale.append(f"{key} -> {name}")
    if stale:
        fail(f"{rundir}: manifest lists artifacts that do not exist: {stale}")
    print(
        f"check_observability: {rundir}: manifest ok "
        f"(status={manifest['status']}, "
        f"{len(manifest['artifacts'])} artifacts, "
        f"wall {manifest['wall_seconds']:.2f}s)"
    )


def check_perf(rundir: Path) -> None:
    """Require a non-empty, valid repro-perf/1 ledger in the run dir."""
    from repro.perfmodel.ledger import PerfLedger, PerfSchemaError

    base = rundir if rundir.is_dir() else rundir.parent
    path = base / "perf" / "perf.jsonl"
    if not path.exists():
        fail(f"{rundir}: perf/perf.jsonl missing (--require-perf)")
    try:
        records = PerfLedger(path).load(strict=True)
    except PerfSchemaError as exc:
        fail(f"{path}: invalid repro-perf/1 ledger ({exc})")
    if not records:
        fail(f"{path}: perf ledger holds no records")
    try:
        manifest = load_manifest(rundir)
    except (OSError, ValueError, json.JSONDecodeError):
        manifest = None
    if manifest is not None and "perf" not in manifest.get("artifacts", {}):
        fail(f"{rundir}: perf artifact not listed in the manifest inventory")
    sources = {r["measured"].get("counter_source") for r in records}
    print(
        f"check_observability: {path}: {len(records)} repro-perf/1 record(s), "
        f"counter source(s) {sorted(str(s) for s in sources)}"
    )


def check_fingerprints(rundir: Path) -> None:
    """Require a valid repro-fingerprint/1 ledger in the run dir."""
    from repro.observability.fingerprint import (
        FingerprintLedger,
        FingerprintSchemaError,
    )

    base = rundir if rundir.is_dir() else rundir.parent
    path = base / "fingerprints.jsonl"
    if not path.exists():
        fail(f"{rundir}: fingerprints.jsonl missing (--require-fingerprints)")
    try:
        records = FingerprintLedger(path).load(strict=True)
    except FingerprintSchemaError as exc:
        fail(f"{path}: invalid repro-fingerprint/1 ledger ({exc})")
    if not records:
        fail(f"{path}: fingerprint ledger holds no records")
    steps = [r["step"] for r in records]
    if any(b <= a for a, b in zip(steps, steps[1:])):
        fail(f"{path}: step numbers are not strictly increasing")
    try:
        manifest = load_manifest(rundir)
    except (OSError, ValueError, json.JSONDecodeError):
        manifest = None
    if manifest is not None and "fingerprints" not in manifest.get(
        "artifacts", {}
    ):
        fail(f"{rundir}: fingerprints artifact not in the manifest inventory")
    fields = sorted(records[0]["fields"])
    print(
        f"check_observability: {path}: {len(records)} repro-fingerprint/1 "
        f"record(s), steps {steps[0]}..{steps[-1]}, fields {fields}"
    )


#: summary keys every sweep scenario entry must carry when it succeeded
REQUIRED_SCENARIO_KEYS = {
    "spec", "status", "wall_seconds", "codegen_seconds", "cache", "rundir",
}


def check_sweep(sweep_dir: Path) -> None:
    """Validate a repro-sweep/1 manifest and its per-scenario run dirs."""
    from repro.service.sweep import load_sweep_manifest

    try:
        manifest = load_sweep_manifest(sweep_dir)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        fail(f"{sweep_dir}: sweep manifest not loadable ({exc})")
    scenarios = manifest.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        fail(f"{sweep_dir}: sweep manifest lists no scenarios")
    totals = manifest.get("totals")
    if not isinstance(totals, dict):
        fail(f"{sweep_dir}: sweep manifest has no totals block")
    for key in ("ok", "failed", "disk_hits", "disk_builds", "throughput_mlups"):
        if key not in totals:
            fail(f"{sweep_dir}: sweep totals missing {key!r}")
    if totals["ok"] + totals["failed"] != len(scenarios):
        fail(
            f"{sweep_dir}: totals ({totals['ok']} ok + {totals['failed']} "
            f"failed) do not account for {len(scenarios)} scenarios"
        )
    for entry in scenarios:
        name = entry.get("name") or entry.get("spec", {}).get("name", "?")
        if entry.get("status") == "ok":
            missing = REQUIRED_SCENARIO_KEYS - set(entry)
            if missing:
                fail(f"{sweep_dir}: scenario {name}: keys missing {sorted(missing)}")
            rundir = Path(entry["rundir"])
            if not rundir.is_absolute():
                rundir = sweep_dir / rundir
            check_manifest(rundir)
        elif "error" not in entry:
            fail(f"{sweep_dir}: failed scenario {name} carries no error")
    metrics_path = sweep_dir / "metrics.prom"
    if not metrics_path.exists():
        fail(f"{sweep_dir}: sweep metrics.prom missing")
    try:
        parsed = parse_prometheus(metrics_path.read_text())
    except (OSError, ValueError) as exc:
        fail(f"{metrics_path}: does not parse ({exc})")
    for family in ("repro_sweep_scenarios_total", "repro_sweep_queue_depth",
                   "repro_sweep_throughput_mlups"):
        if family not in parsed:
            fail(f"{metrics_path}: sweep metric family {family} missing")
    print(
        f"check_observability: {sweep_dir}: sweep manifest ok "
        f"({totals['ok']} ok / {totals['failed']} failed, "
        f"disk cache {totals['disk_hits']} hits / {totals['disk_builds']} builds)"
    )


def check_diagnostics(path: Path) -> None:
    import csv

    try:
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
    except OSError as exc:
        fail(f"{path}: not readable ({exc})")
    if not rows:
        fail(f"{path}: diagnostics CSV has no data rows")
    if "free_energy" not in rows[0]:
        fail(
            f"{path}: no free_energy column "
            f"(have {sorted(rows[0])})"
        )
    try:
        energy = [float(r["free_energy"]) for r in rows]
    except ValueError as exc:
        fail(f"{path}: non-numeric free_energy value ({exc})")
    for i in range(len(energy) - 1):
        if not energy[i + 1] <= energy[i]:
            fail(
                f"{path}: free energy INCREASED between rows {i} and {i + 1}: "
                f"{energy[i]:.17g} -> {energy[i + 1]:.17g} "
                f"(dPsi/dt <= 0 violated)"
            )
    print(
        f"check_observability: {path}: {len(rows)} rows, free energy "
        f"monotone non-increasing ({energy[0]:.6g} -> {energy[-1]:.6g})"
    )


def main(argv: list[str]) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("trace", nargs="?", help="Chrome-trace JSON to validate")
    parser.add_argument("metrics", nargs="?",
                        help="Prometheus text-format snapshot")
    parser.add_argument("diagnostics", nargs="?",
                        help="optional physics-diagnostics CSV")
    parser.add_argument("--manifest", metavar="RUNDIR",
                        help="also validate RUNDIR/manifest.json completeness")
    parser.add_argument("--require-sweep", metavar="SWEEPDIR",
                        help="validate SWEEPDIR/sweep.json (repro-sweep/1) and "
                             "every successful scenario's run directory")
    parser.add_argument("--require-overhead-gauge", action="store_true",
                        help=f"require the {OVERHEAD_GAUGE} gauge in the metrics")
    parser.add_argument("--require-perf", action="store_true",
                        help="require a valid perf/perf.jsonl in the rundir "
                             "(needs --manifest)")
    parser.add_argument("--require-fingerprints", action="store_true",
                        help="require a valid fingerprints.jsonl determinism "
                             "ledger in the rundir (needs --manifest)")
    args = parser.parse_args(argv)
    if args.require_perf and not args.manifest:
        parser.error("--require-perf needs --manifest RUNDIR")
    if args.require_fingerprints and not args.manifest:
        parser.error("--require-fingerprints needs --manifest RUNDIR")
    if not args.trace and not args.require_sweep:
        parser.error("positional trace/metrics required unless --require-sweep")
    if bool(args.trace) != bool(args.metrics):
        parser.error("trace and metrics must be given together")
    if args.trace:
        check_trace(Path(args.trace))
        check_metrics(
            Path(args.metrics), require_overhead=args.require_overhead_gauge
        )
    if args.diagnostics:
        check_diagnostics(Path(args.diagnostics))
    if args.manifest:
        check_manifest(Path(args.manifest))
    if args.require_perf:
        check_perf(Path(args.manifest))
    if args.require_fingerprints:
        check_fingerprints(Path(args.manifest))
    if args.require_sweep:
        check_sweep(Path(args.require_sweep))
    print("check_observability: OK")


if __name__ == "__main__":
    main(sys.argv[1:])
