#!/usr/bin/env python3
"""Small fig3-style scaling smoke benchmark for CI (writes BENCH_scaling.json).

Also runs a single-block per-kernel smoke (after every process-backend
measurement — libgomp's thread pool does not survive a fork) that writes
``BENCH_kernels.json`` at the repo root, appends one ``repro-perf/1``
record per kernel (plus the scaling series) to the append-only history
under ``benchmarks/history/``, and gates the hardware-counter sampling
overhead below ``OVERHEAD_BUDGET`` — the same self-measured < 5 % bar as
the flight recorder.

Runs the two-phase binary model on 1/2/4 ranks over a small 2D block forest
— a miniature of the paper's Fig. 3 scaling study — and records
per-rank-count MLUP/s plus the parallel efficiency relative to the 1-rank
run into a ``repro-bench/1`` document.  Two rank runtimes are measured:

* the **process backend** (``repro.parallel.proc_comm``): real OS
  processes with shared-memory ghost buffers — true multi-core wall clock,
  recorded as ``step_seconds_real`` / ``step_seconds_real_overlap`` with
  ``real_speedup`` and ``real_parallel_efficiency`` against the 1-rank
  process run, and
* the **thread simulator** (``repro.parallel.mpi_sim``): the protocol-
  validation runtime, recorded as ``step_seconds_sync`` /
  ``step_seconds_overlap`` and the simulator-side ``mlups``.

Each rank count is measured with both step schedules (``overlap=off``:
synchronous ghost exchange; ``overlap=on``: interior/frontier split with
asynchronous exchange, paper §4.3); multi-rank runs assert the overlapped
schedule is no slower than the synchronous one within a noise allowance.
On a machine with >= 4 cores the 4-rank process run must beat the 1-rank
process run by more than ``REAL_SPEEDUP_FLOOR``; with fewer cores the
speedup is recorded (and reported) but not enforced — a 1-core container
cannot physically exhibit multi-core speedup.

Ordering note: every process-backend measurement runs *before* any kernel
executes in this parent process.  The C backend's kernels use OpenMP, and
libgomp's thread pool does not survive a fork — forking ranks after a
parallel region ran in the parent can hang the children.  Compilation
itself (gcc + dlopen) is fork-safe and is done up front so the children
inherit a warm kernel cache.

Run:  python tools/bench_scaling_smoke.py [--out BENCH_scaling.json]
Paired with ``tools/bench_regress.py compare`` against the checked-in
baseline (``benchmarks/baselines/scaling_baseline.json``) this gates
throughput regressions in CI; shared runners are noisy, so CI compares
warn-only with a wide tolerance, while schema breakage always fails hard.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.backends.c_backend import c_compiler_available  # noqa: E402
from repro.observability.bench import BenchWriter  # noqa: E402
from repro.observability.hwcounters import get_counter_harness  # noqa: E402
from repro.observability.recorder import get_recorder  # noqa: E402
from repro.perfmodel.ledger import (  # noqa: E402
    PerfLedger,
    perf_record,
    records_from_profiler,
)
from repro.parallel import (  # noqa: E402
    BlockForest,
    DistributedSolver,
    process_backend_available,
    run_ranks,
    run_ranks_processes,
)
from repro.pfm import (  # noqa: E402
    GrandPotentialModel,
    SingleBlockSolver,
    make_two_phase_binary,
    planar_front,
)

# block sizes must be large enough that compute dominates the per-step
# Python dispatch, or the overlap comparison measures overhead, not hiding;
# the C backend steps ~20x faster, so it affords a larger domain
BACKEND = "c" if c_compiler_available() else "numpy"
if BACKEND == "c":
    GLOBAL_SHAPE = (1024, 1024)
    BLOCK_SHAPE = (512, 512)
else:
    GLOBAL_SHAPE = (512, 512)
    BLOCK_SHAPE = (256, 256)
STEPS = 10
WARMUP = 2
RANK_COUNTS = (1, 2, 4)
REPEATS = 3               # best-of, to tame shared-runner noise
OVERLAP_HEADROOM = 1.15   # allowed sync/overlap noise ratio before failing
REAL_SPEEDUP_FLOOR = 1.3  # required 4-rank process-backend speedup (>=4 cores)
OVERHEAD_BUDGET = 0.05    # flight-recorder cost must stay under 5% of step time
#: fingerprint-gate cadence: hashing every interior byte costs real memory
#: bandwidth (~40 ms on this domain), so production runs fingerprint every
#: N-th step; the gate measures the amortized cost at that documented
#: cadence over a longer window and holds it to the same <5% budget
FINGERPRINT_EVERY = 50
FINGERPRINT_STEPS = 100
#: each rank is pinned to one OpenMP thread so the real-parallel speedup
#: measures rank scaling, not a changing threads-per-rank mix
_RANK_ENV = {"OMP_NUM_THREADS": "1"}


def _planar_init(params):
    def init(offset, shape):
        full = planar_front(
            GLOBAL_SHAPE, params.n_phases, 0, 1,
            position=GLOBAL_SHAPE[0] / 2, epsilon=params.epsilon,
        )
        sl = tuple(slice(o, o + s) for o, s in zip(offset, shape))
        return full[sl], 0.0

    return init


def _make_rank_program(kernels, params, overlap: bool):
    forest = BlockForest(GLOBAL_SHAPE, BLOCK_SHAPE, periodic=True)
    init = _planar_init(params)

    def rank_program(comm):
        solver = DistributedSolver(
            kernels, forest, comm=comm, overlap=overlap, backend=BACKEND
        )
        solver.set_state_from(init)
        solver.step(WARMUP)         # compile + warm caches off the clock
        best = float("inf")
        for _ in range(REPEATS):
            comm.barrier()
            t0 = perf_counter()
            solver.step(STEPS)
            comm.barrier()
            best = min(best, perf_counter() - t0)
        return best

    return rank_program


def _measure_sim(kernels, params, n_ranks: int, overlap: bool) -> float:
    """Best-of-``REPEATS`` wall seconds on *n_ranks* simulator threads."""
    prog = _make_rank_program(kernels, params, overlap)
    return max(run_ranks(n_ranks, prog))


def _measure_real(kernels, params, n_ranks: int, overlap: bool) -> float:
    """Best-of-``REPEATS`` wall seconds on *n_ranks* real processes."""
    prog = _make_rank_program(kernels, params, overlap)
    return max(
        run_ranks_processes(
            n_ranks, prog,
            recv_timeout=600.0, join_timeout=1800.0, env=_RANK_ENV,
        )
    )


def _measure_fingerprint_overhead(kernels, params) -> tuple[float, int]:
    """Self-measured fingerprint cost as a fraction of the step wall.

    One in-parent 1-rank run with the determinism observatory enabled at
    the documented production cadence (``every=FINGERPRINT_EVERY``); the
    stream's own overhead accounting (digest + merge + serialize + fsync)
    is snapshotted around a ``FINGERPRINT_STEPS``-step window and
    published as the ``repro_fingerprint_overhead_seconds`` gauge.
    Returns ``(amortized fraction, records emitted in the window)``.
    """
    import tempfile

    forest = BlockForest(GLOBAL_SHAPE, BLOCK_SHAPE, periodic=True)
    solver = DistributedSolver(kernels, forest, backend=BACKEND)
    solver.set_state_from(_planar_init(params))
    solver.step(WARMUP)
    with tempfile.TemporaryDirectory() as td:
        stream = solver.enable_fingerprints(
            every=FINGERPRINT_EVERY, path=Path(td) / "fp.jsonl"
        )
        before_overhead = stream.overhead_seconds
        before_records = len(stream.records)
        t0 = perf_counter()
        solver.step(FINGERPRINT_STEPS)
        wall = perf_counter() - t0
        fraction = (stream.overhead_seconds - before_overhead) / wall
        records = len(stream.records) - before_records
        stream.publish_overhead()
    return fraction, records


def _precompile(kernels) -> None:
    """Compile every kernel variant in the parent before any fork.

    Building the solvers compiles the plain and interior/frontier kernel
    sets (gcc + dlopen — no OpenMP parallel region runs), so the forked
    rank processes inherit the warm cache instead of compiling 4x.
    """
    forest = BlockForest(GLOBAL_SHAPE, BLOCK_SHAPE, periodic=True)
    for overlap in (False, True):
        DistributedSolver(kernels, forest, overlap=overlap, backend=BACKEND)


def _kernels_smoke(kernels, params, history: PerfLedger, failures: list) -> BenchWriter:
    """Per-kernel MLUP/s on one block, with the counter-overhead gate.

    Must run after every process-backend measurement (libgomp fork
    hazard); writes a ``kernels`` BENCH suite, appends per-kernel
    ``repro-perf/1`` records and gates the hardware-counter sampling cost
    below ``OVERHEAD_BUDGET`` of the measured wall.
    """
    shape = tuple(n // 2 for n in BLOCK_SHAPE)
    solver = SingleBlockSolver(kernels, shape, backend=BACKEND)
    solver.set_state(
        planar_front(shape, params.n_phases, 0, 1,
                     position=shape[0] / 2, epsilon=params.epsilon),
        mu=0.0,
    )
    solver.step(WARMUP)
    solver.profiler.reset()
    harness = get_counter_harness()
    overhead_before = harness.overhead_seconds
    t0 = perf_counter()
    solver.step(STEPS)
    wall = perf_counter() - t0
    counter_fraction = (harness.overhead_seconds - overhead_before) / wall
    harness.publish_overhead()

    writer = BenchWriter("kernels")
    kernel_records = []
    for rec in sorted(solver.profiler.records.values(), key=lambda r: r.name):
        if rec.cells == 0 or rec.seconds == 0.0:
            continue
        metrics = {"mlups": rec.mlups, "mean_seconds": rec.mean_seconds}
        if rec.cycles_per_lup is not None:
            metrics["cycles_per_lup"] = rec.cycles_per_lup
        writer.add(
            f"kernel_{rec.name}",
            params={
                "shape": "x".join(map(str, shape)),
                "steps": STEPS,
                "backend": BACKEND,
            },
            **metrics,
        )
        print(f"kernel {rec.name}: {rec.mlups:.3f} MLUP/s "
              f"({rec.mean_seconds * 1e3:.3f} ms/call)")
    writer.add(
        "counter_overhead",
        params={"backend": BACKEND, "source": harness.source},
        counter_overhead_fraction=counter_fraction,
    )
    print(
        f"hardware-counter overhead: {counter_fraction * 100:.3f}% of wall "
        f"(source={harness.source}, budget {OVERHEAD_BUDGET * 100:.0f}%)"
    )
    if counter_fraction > OVERHEAD_BUDGET:
        failures.append(
            f"hardware-counter sampling overhead {counter_fraction * 100:.2f}% "
            f"of step wall time exceeds the {OVERHEAD_BUDGET * 100:.0f}% budget"
        )

    kernel_records = records_from_profiler(
        "kernels_smoke",
        kernels.all_kernels,
        solver.profiler,
        block_shape=shape,
        options={"backend": BACKEND, "shape": list(shape)},
    )
    appended = history.extend(kernel_records)
    print(f"appended {appended} kernel record(s) to {history.path}")
    return writer


#: warm compile_cached must cost at most this fraction of the cold one
WARMSTART_RATIO = 0.20

_WARMSTART_PROBE = """\
import json, time
from quickstart import build_kernel
from repro.profiling import compile_cached, disk_cache_stats
kernel = build_kernel()[0]
t0 = time.perf_counter()
compile_cached(kernel, "c")
dt = time.perf_counter() - t0
s = disk_cache_stats()
print(json.dumps({"seconds": dt, "builds": s.builds, "hits": s.hits}))
"""


def _measure_codegen_warmstart(writer: BenchWriter, failures: list, warnings: list):
    """Warm-start gate: a second process compiles **zero** kernels.

    Two fresh subprocesses run the quickstart kernel config against a
    private disk cache: the first (cold) generates C and invokes the
    toolchain, the second (warm) must serve every kernel from disk —
    ``builds == 0`` — and spend at most ``WARMSTART_RATIO`` of the cold
    ``compile_cached`` wall.  Subprocesses (fork+exec) reset libgomp, so
    this is safe to run after in-parent OpenMP regions.
    """
    if BACKEND != "c":
        warnings.append("no C compiler; codegen warm-start gate skipped")
        return
    import json
    import subprocess
    import tempfile

    runs = []
    with tempfile.TemporaryDirectory() as td:
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(Path(td) / "kernel-cache")
        env["PYTHONPATH"] = os.pathsep.join(
            [str(_REPO_ROOT / "src"), str(_REPO_ROOT / "examples")]
        )
        for tag in ("cold", "warm"):
            out = subprocess.run(
                [sys.executable, "-c", _WARMSTART_PROBE],
                capture_output=True, text=True, env=env, timeout=600,
            )
            if out.returncode != 0:
                failures.append(
                    f"codegen warm-start probe ({tag}) failed:\n"
                    f"{out.stderr.strip()[-2000:]}"
                )
                return
            runs.append(json.loads(out.stdout.strip().splitlines()[-1]))
    cold, warm = runs
    writer.add(
        "codegen_warmstart",
        params={"backend": BACKEND, "config": "quickstart"},
        codegen_seconds_cold=cold["seconds"],
        codegen_seconds_warm=warm["seconds"],
    )
    ratio = warm["seconds"] / cold["seconds"] if cold["seconds"] else 1.0
    print(
        f"codegen warm start: cold {cold['seconds'] * 1e3:.1f} ms "
        f"({cold['builds']} build(s)) -> warm {warm['seconds'] * 1e3:.1f} ms "
        f"({warm['builds']} build(s), {warm['hits']} disk hit(s), "
        f"ratio {ratio * 100:.1f}%, gate {WARMSTART_RATIO * 100:.0f}%)"
    )
    if cold["builds"] == 0:
        failures.append("codegen warm-start: cold process built nothing")
    if warm["builds"] != 0:
        failures.append(
            f"codegen warm-start: warm process compiled {warm['builds']} "
            f"kernel(s) — the persistent cache failed to serve them"
        )
    if warm["hits"] == 0:
        failures.append("codegen warm-start: warm process saw no disk hits")
    if ratio > WARMSTART_RATIO:
        failures.append(
            f"codegen warm-start: warm compile took {ratio * 100:.1f}% of the "
            f"cold one — above the {WARMSTART_RATIO * 100:.0f}% gate"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(_REPO_ROOT / "BENCH_scaling.json"))
    parser.add_argument(
        "--kernels-out", default=str(_REPO_ROOT / "BENCH_kernels.json"),
        help="where to write the per-kernel BENCH document",
    )
    parser.add_argument(
        "--history",
        default=str(_REPO_ROOT / "benchmarks" / "history" / "perf_history.jsonl"),
        help="append-only repro-perf/1 JSONL ledger",
    )
    parser.add_argument(
        "--skip-real", action="store_true",
        help="skip the process-backend measurements (simulator only)",
    )
    args = parser.parse_args(argv)

    params = make_two_phase_binary(dim=2)
    kernels = GrandPotentialModel(params).create_kernels()
    cells = int(np.prod(GLOBAL_SHAPE))
    cores = os.cpu_count() or 1

    measure_real = not args.skip_real and process_backend_available()
    real_sync: dict[int, float] = {}
    real_overlap: dict[int, float] = {}
    if measure_real:
        # ALL process-backend runs happen before any in-parent kernel run —
        # see the module docstring for the libgomp fork-safety rationale
        _precompile(kernels)
        for n_ranks in RANK_COUNTS:
            real_sync[n_ranks] = _measure_real(kernels, params, n_ranks, overlap=False)
            real_overlap[n_ranks] = _measure_real(kernels, params, n_ranks, overlap=True)

    writer = BenchWriter("scaling")
    base_mlups = None
    failures = []
    warnings = []
    for n_ranks in RANK_COUNTS:
        sync_s = _measure_sim(kernels, params, n_ranks, overlap=False)
        overlap_s = _measure_sim(kernels, params, n_ranks, overlap=True)
        mlups = cells * STEPS / sync_s / 1e6
        if base_mlups is None:
            base_mlups = mlups
        efficiency = mlups / base_mlups   # fixed global size: strong scaling
        metrics = {
            "mlups": mlups,
            "parallel_efficiency": efficiency,
            "step_seconds_sync": sync_s / STEPS,
            "step_seconds_overlap": overlap_s / STEPS,
        }
        if measure_real:
            speedup = real_sync[RANK_COUNTS[0]] / real_sync[n_ranks]
            metrics.update(
                step_seconds_real=real_sync[n_ranks] / STEPS,
                step_seconds_real_overlap=real_overlap[n_ranks] / STEPS,
                real_speedup=speedup,
                real_parallel_efficiency=speedup / n_ranks,
            )
        writer.add(
            f"fig3_smoke_ranks_{n_ranks}",
            params={
                "ranks": n_ranks,
                "domain": "x".join(map(str, GLOBAL_SHAPE)),
                "block": "x".join(map(str, BLOCK_SHAPE)),
                "steps": STEPS,
                "backend": BACKEND,
                "cores": cores,
            },
            **metrics,
        )
        gain = 1.0 - overlap_s / sync_s
        line = (f"ranks={n_ranks}: {mlups:.3f} MLUP/s, "
                f"efficiency {efficiency:.2f}, "
                f"step sync {sync_s / STEPS * 1e3:.2f} ms / "
                f"overlap {overlap_s / STEPS * 1e3:.2f} ms "
                f"(gain {gain * 100:+.1f}%)")
        if measure_real:
            line += (f", real {real_sync[n_ranks] / STEPS * 1e3:.2f} ms "
                     f"(speedup {metrics['real_speedup']:.2f}x)")
        print(line)
        if n_ranks > 1 and overlap_s > sync_s * OVERLAP_HEADROOM:
            failures.append(
                f"ranks={n_ranks}: overlapped step "
                f"{overlap_s / STEPS * 1e3:.2f} ms exceeds synchronous "
                f"{sync_s / STEPS * 1e3:.2f} ms by more than "
                f"{(OVERLAP_HEADROOM - 1) * 100:.0f}%"
            )

    # flight-recorder overhead gate: one more instrumented 1-rank run with
    # the overhead counter snapshotted around it — the always-on recorder
    # must cost < OVERHEAD_BUDGET of the wall time it instruments
    recorder = get_recorder()
    overhead_before = recorder.overhead_seconds
    t0 = perf_counter()
    _measure_sim(kernels, params, 1, overlap=False)
    overhead_wall = perf_counter() - t0
    overhead_fraction = (recorder.overhead_seconds - overhead_before) / overhead_wall
    recorder.publish_overhead()
    writer.add(
        "observability_overhead",
        params={
            "ranks": 1,
            "domain": "x".join(map(str, GLOBAL_SHAPE)),
            "steps": STEPS,
            "backend": BACKEND,
        },
        observability_overhead_fraction=overhead_fraction,
    )
    print(
        f"flight-recorder overhead: {overhead_fraction * 100:.3f}% of wall "
        f"(budget {OVERHEAD_BUDGET * 100:.0f}%)"
    )
    if overhead_fraction > OVERHEAD_BUDGET:
        failures.append(
            f"flight-recorder overhead {overhead_fraction * 100:.2f}% of step "
            f"wall time exceeds the {OVERHEAD_BUDGET * 100:.0f}% budget"
        )

    # determinism-observatory gate: the fingerprint stream (digest + merge
    # + fsync'd ledger append) gets the same self-measured <5% bar at its
    # documented production cadence
    fp_fraction, fp_records = _measure_fingerprint_overhead(kernels, params)
    writer.add(
        "fingerprint_overhead",
        params={
            "ranks": 1,
            "domain": "x".join(map(str, GLOBAL_SHAPE)),
            "steps": FINGERPRINT_STEPS,
            "every": FINGERPRINT_EVERY,
            "backend": BACKEND,
        },
        fingerprint_overhead_fraction=fp_fraction,
    )
    print(
        f"fingerprint overhead: {fp_fraction * 100:.3f}% of wall "
        f"({fp_records} record(s) at every={FINGERPRINT_EVERY} over "
        f"{FINGERPRINT_STEPS} steps, budget {OVERHEAD_BUDGET * 100:.0f}%)"
    )
    if fp_fraction > OVERHEAD_BUDGET:
        failures.append(
            f"fingerprint overhead {fp_fraction * 100:.2f}% of step "
            f"wall time exceeds the {OVERHEAD_BUDGET * 100:.0f}% budget"
        )

    if measure_real:
        top = RANK_COUNTS[-1]
        speedup = real_sync[RANK_COUNTS[0]] / real_sync[top]
        if cores >= top:
            if speedup <= REAL_SPEEDUP_FLOOR:
                failures.append(
                    f"real-parallel speedup at {top} ranks is {speedup:.2f}x "
                    f"on {cores} cores — below the {REAL_SPEEDUP_FLOOR}x floor"
                )
        elif speedup <= REAL_SPEEDUP_FLOOR:
            warnings.append(
                f"real-parallel speedup at {top} ranks is {speedup:.2f}x, but "
                f"only {cores} core(s) are available — floor of "
                f"{REAL_SPEEDUP_FLOOR}x not enforced"
            )
    elif not args.skip_real:
        warnings.append("process backend unavailable; real metrics skipped")

    # per-kernel smoke + counter-overhead gate + history append (must stay
    # after every process-backend run — libgomp fork hazard, see docstring)
    history = PerfLedger(args.history)
    kernels_writer = _kernels_smoke(kernels, params, history, failures)
    kernels_path = kernels_writer.write(args.kernels_out)
    print(f"wrote {kernels_path}")

    # ROADMAP item 3's acceptance probe: a second process running the
    # quickstart config compiles nothing (subprocesses are fork+exec —
    # no libgomp hazard)
    _measure_codegen_warmstart(writer, failures, warnings)

    # the scaling series also lands in the append-only history (bench-level
    # records: no kernel fingerprint, direction per metric name)
    scaling_records = [
        perf_record(
            "scaling_smoke",
            record["name"],
            record["metrics"],
            options=record["params"],
        )
        for record in writer.records
    ]
    print(f"appended {history.extend(scaling_records)} scaling record(s) "
          f"to {history.path}")

    path = writer.write(args.out)
    print(f"wrote {path}")
    for w in warnings:
        print(f"WARN: {w}", file=sys.stderr)
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
