#!/usr/bin/env python3
"""Small fig3-style scaling smoke benchmark for CI (writes BENCH_scaling.json).

Runs the two-phase binary model on 1/2/4 simulated MPI ranks over a small
2D block forest — a miniature of the paper's Fig. 3 scaling study — and
records per-rank-count MLUP/s plus the parallel efficiency relative to the
1-rank run into a ``repro-bench/1`` document.  Paired with
``tools/bench_regress.py compare`` against the checked-in baseline
(``benchmarks/baselines/scaling_baseline.json``) this gates throughput
regressions in CI; shared runners are noisy, so CI compares warn-only with
a wide tolerance, while schema breakage always fails hard.

Run:  python tools/bench_scaling_smoke.py [--out BENCH_scaling.json]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.observability.bench import BenchWriter  # noqa: E402
from repro.parallel import BlockForest, DistributedSolver, run_ranks  # noqa: E402
from repro.pfm import (  # noqa: E402
    GrandPotentialModel,
    make_two_phase_binary,
    planar_front,
)

GLOBAL_SHAPE = (32, 32)
BLOCK_SHAPE = (16, 16)
STEPS = 10
WARMUP = 2
RANK_COUNTS = (1, 2, 4)


def _measure(kernels, params, n_ranks: int) -> float:
    """Aggregate MLUP/s over *n_ranks* simulated ranks (wall-clock based)."""
    forest = BlockForest(GLOBAL_SHAPE, BLOCK_SHAPE, periodic=True)

    def init(offset, shape):
        full = planar_front(
            GLOBAL_SHAPE, params.n_phases, 0, 1,
            position=12.0, epsilon=params.epsilon,
        )
        sl = tuple(slice(o, o + s) for o, s in zip(offset, shape))
        return full[sl], 0.0

    def rank_program(comm):
        solver = DistributedSolver(kernels, forest, comm=comm)
        solver.set_state_from(init)
        solver.step(WARMUP)         # compile + warm caches off the clock
        comm.barrier()
        t0 = perf_counter()
        solver.step(STEPS)
        comm.barrier()
        return perf_counter() - t0

    times = run_ranks(n_ranks, rank_program)
    cells = int(np.prod(GLOBAL_SHAPE))
    return cells * STEPS / max(times) / 1e6


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(_REPO_ROOT / "BENCH_scaling.json"))
    args = parser.parse_args(argv)

    params = make_two_phase_binary(dim=2)
    kernels = GrandPotentialModel(params).create_kernels()

    writer = BenchWriter("scaling")
    base_mlups = None
    for n_ranks in RANK_COUNTS:
        mlups = _measure(kernels, params, n_ranks)
        if base_mlups is None:
            base_mlups = mlups
        efficiency = mlups / base_mlups   # fixed global size: strong scaling
        writer.add(
            f"fig3_smoke_ranks_{n_ranks}",
            params={
                "ranks": n_ranks,
                "domain": "x".join(map(str, GLOBAL_SHAPE)),
                "block": "x".join(map(str, BLOCK_SHAPE)),
                "steps": STEPS,
            },
            mlups=mlups,
            parallel_efficiency=efficiency,
        )
        print(f"ranks={n_ranks}: {mlups:.3f} MLUP/s, "
              f"efficiency {efficiency:.2f}")

    path = writer.write(args.out)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
