#!/usr/bin/env python3
"""Small fig3-style scaling smoke benchmark for CI (writes BENCH_scaling.json).

Runs the two-phase binary model on 1/2/4 simulated MPI ranks over a small
2D block forest — a miniature of the paper's Fig. 3 scaling study — and
records per-rank-count MLUP/s plus the parallel efficiency relative to the
1-rank run into a ``repro-bench/1`` document.  Each rank count is measured
with both step schedules (``overlap=off``: synchronous ghost exchange;
``overlap=on``: interior/frontier split with asynchronous exchange, paper
§4.3) and records their per-step wall times as ``step_seconds_sync`` /
``step_seconds_overlap``.  For multi-rank runs the tool asserts that the
overlapped schedule is no slower than the synchronous one (within a noise
allowance) — communication hiding must not regress into communication
adding.  Paired with ``tools/bench_regress.py compare`` against the
checked-in baseline (``benchmarks/baselines/scaling_baseline.json``) this
gates throughput regressions in CI; shared runners are noisy, so CI
compares warn-only with a wide tolerance, while schema breakage always
fails hard.

Run:  python tools/bench_scaling_smoke.py [--out BENCH_scaling.json]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.backends.c_backend import c_compiler_available  # noqa: E402
from repro.observability.bench import BenchWriter  # noqa: E402
from repro.parallel import BlockForest, DistributedSolver, run_ranks  # noqa: E402
from repro.pfm import (  # noqa: E402
    GrandPotentialModel,
    make_two_phase_binary,
    planar_front,
)

# block sizes must be large enough that compute dominates the per-step
# Python dispatch, or the overlap comparison measures overhead, not hiding;
# the C backend steps ~20x faster, so it affords a larger domain
BACKEND = "c" if c_compiler_available() else "numpy"
if BACKEND == "c":
    GLOBAL_SHAPE = (1024, 1024)
    BLOCK_SHAPE = (512, 512)
else:
    GLOBAL_SHAPE = (512, 512)
    BLOCK_SHAPE = (256, 256)
STEPS = 10
WARMUP = 2
RANK_COUNTS = (1, 2, 4)
REPEATS = 3               # best-of, to tame shared-runner noise
OVERLAP_HEADROOM = 1.15   # allowed sync/overlap noise ratio before failing


def _measure(kernels, params, n_ranks: int, overlap: bool) -> float:
    """Best-of-``REPEATS`` wall seconds for ``STEPS`` steps on *n_ranks*."""
    forest = BlockForest(GLOBAL_SHAPE, BLOCK_SHAPE, periodic=True)

    def init(offset, shape):
        full = planar_front(
            GLOBAL_SHAPE, params.n_phases, 0, 1,
            position=GLOBAL_SHAPE[0] / 2, epsilon=params.epsilon,
        )
        sl = tuple(slice(o, o + s) for o, s in zip(offset, shape))
        return full[sl], 0.0

    def rank_program(comm):
        solver = DistributedSolver(
            kernels, forest, comm=comm, overlap=overlap, backend=BACKEND
        )
        solver.set_state_from(init)
        solver.step(WARMUP)         # compile + warm caches off the clock
        best = float("inf")
        for _ in range(REPEATS):
            comm.barrier()
            t0 = perf_counter()
            solver.step(STEPS)
            comm.barrier()
            best = min(best, perf_counter() - t0)
        return best

    return max(run_ranks(n_ranks, rank_program))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(_REPO_ROOT / "BENCH_scaling.json"))
    args = parser.parse_args(argv)

    params = make_two_phase_binary(dim=2)
    kernels = GrandPotentialModel(params).create_kernels()
    cells = int(np.prod(GLOBAL_SHAPE))

    writer = BenchWriter("scaling")
    base_mlups = None
    failures = []
    for n_ranks in RANK_COUNTS:
        sync_s = _measure(kernels, params, n_ranks, overlap=False)
        overlap_s = _measure(kernels, params, n_ranks, overlap=True)
        mlups = cells * STEPS / sync_s / 1e6
        if base_mlups is None:
            base_mlups = mlups
        efficiency = mlups / base_mlups   # fixed global size: strong scaling
        writer.add(
            f"fig3_smoke_ranks_{n_ranks}",
            params={
                "ranks": n_ranks,
                "domain": "x".join(map(str, GLOBAL_SHAPE)),
                "block": "x".join(map(str, BLOCK_SHAPE)),
                "steps": STEPS,
                "backend": BACKEND,
            },
            mlups=mlups,
            parallel_efficiency=efficiency,
            step_seconds_sync=sync_s / STEPS,
            step_seconds_overlap=overlap_s / STEPS,
        )
        gain = 1.0 - overlap_s / sync_s
        print(f"ranks={n_ranks}: {mlups:.3f} MLUP/s, "
              f"efficiency {efficiency:.2f}, "
              f"step sync {sync_s / STEPS * 1e3:.2f} ms / "
              f"overlap {overlap_s / STEPS * 1e3:.2f} ms "
              f"(gain {gain * 100:+.1f}%)")
        if n_ranks > 1 and overlap_s > sync_s * OVERLAP_HEADROOM:
            failures.append(
                f"ranks={n_ranks}: overlapped step "
                f"{overlap_s / STEPS * 1e3:.2f} ms exceeds synchronous "
                f"{sync_s / STEPS * 1e3:.2f} ms by more than "
                f"{(OVERLAP_HEADROOM - 1) * 100:.0f}%"
            )

    path = writer.write(args.out)
    print(f"wrote {path}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
