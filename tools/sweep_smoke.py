#!/usr/bin/env python3
"""Cold→warm sweep smoke test: the persistent kernel cache earns its keep.

Runs the same small scenario sweep twice against a *fresh* disk cache
rooted inside the output directory:

* pass 1 (cold) must actually build kernels (``disk_builds > 0`` when a
  C compiler is present) and finish every scenario;
* pass 2 (warm) must compile **nothing** — ``disk_builds == 0`` and
  ``repro_kernel_cache_disk_hits_total`` > 0 in the exported sweep
  metrics, i.e. every kernel of every worker process came off disk.

Both sweep directories get merged HTML reports; CI uploads them and then
cross-checks the warm manifest with
``tools/check_observability.py --require-sweep``.

Usage::

    python tools/sweep_smoke.py --out SWEEPDIR [--scenarios 4] [--workers 2]
        [--steps 5] [--backend c|numpy]
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("--out", required=True, help="output directory")
    parser.add_argument("--scenarios", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--steps", type=int, default=5)
    parser.add_argument("--backend", default=None,
                        help="force backend (default auto: c if available)")
    args = parser.parse_args(argv)

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    # a fresh, private disk cache: the whole point is to watch it fill
    os.environ["REPRO_CACHE_DIR"] = str(out / "kernel-cache")

    from repro.backends.c_backend import c_compiler_available
    from repro.observability.metrics import parse_prometheus
    from repro.service.sweep import demo_specs, run_sweep

    backend = args.backend or ("c" if c_compiler_available() else "numpy")
    specs = demo_specs(args.scenarios, steps=args.steps)
    failures: list[str] = []

    cold = run_sweep(specs, out / "cold", workers=args.workers, backend=backend)
    ct = cold["totals"]
    print(
        f"sweep_smoke: cold pass: {ct['ok']} ok / {ct['failed']} failed, "
        f"{ct['disk_builds']} builds, {ct['disk_hits']} hits"
    )
    if ct["failed"]:
        failures.append(f"cold pass: {ct['failed']} scenario(s) failed")
    if backend == "c" and ct["disk_builds"] == 0:
        failures.append("cold pass compiled nothing — cache dir not fresh?")

    warm = run_sweep(specs, out / "warm", workers=args.workers, backend=backend)
    wt = warm["totals"]
    print(
        f"sweep_smoke: warm pass: {wt['ok']} ok / {wt['failed']} failed, "
        f"{wt['disk_builds']} builds, {wt['disk_hits']} hits"
    )
    if wt["failed"]:
        failures.append(f"warm pass: {wt['failed']} scenario(s) failed")
    if backend == "c":
        if wt["disk_builds"] != 0:
            failures.append(
                f"warm pass built {wt['disk_builds']} kernel(s) — the disk "
                f"cache failed to serve them"
            )
        if wt["disk_hits"] == 0:
            failures.append("warm pass recorded no disk-cache hits")
        # the exported metrics must carry the same evidence CI greps for
        parsed = parse_prometheus((out / "warm" / "metrics.prom").read_text())
        family = parsed.get("repro_kernel_cache_disk_hits_total")
        total = sum(v for _, _, v in family["samples"]) if family else 0
        if total <= 0:
            failures.append(
                "repro_kernel_cache_disk_hits_total missing/zero in the warm "
                "sweep metrics.prom"
            )

    # merged HTML reports for both passes (uploaded as CI artifacts)
    from run_report import main as report_main

    for tag in ("cold", "warm"):
        if report_main([str(out / tag)]) != 0:
            failures.append(f"report rendering failed for the {tag} pass")

    if failures:
        for f in failures:
            print(f"sweep_smoke: FAIL: {f}", file=sys.stderr)
        return 1
    print("sweep_smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
