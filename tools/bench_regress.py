#!/usr/bin/env python3
"""Benchmark-regression gate over BENCH JSON documents.

The benchmark suites write machine-readable ``BENCH_scaling.json`` /
``BENCH_kernels.json`` documents (schema ``repro-bench/1``, see
:mod:`repro.observability.bench`).  This tool turns them into a regression
gate:

    # record the current run as the baseline to compare future runs against
    python tools/bench_regress.py record BENCH_scaling.json \
        --baseline benchmarks/baselines/scaling_baseline.json

    # compare a fresh run against the baseline; exit 1 on regression
    python tools/bench_regress.py compare BENCH_scaling.json \
        --baseline benchmarks/baselines/scaling_baseline.json --tolerance 0.25

A metric regresses when it moves more than ``--tolerance`` (relative) in
the *bad* direction: down for throughput-style metrics (MLUP/s,
efficiency, speedup), up for time-style metrics (names containing
``seconds``/``time``/``latency``/``_ms``/``_ns``).  Improvements never
fail, whatever their size.

Exit codes: 0 OK (or regressions with ``--warn-only``), 1 regression,
2 schema/usage error — schema errors are always fatal, even with
``--warn-only``, so a broken writer cannot masquerade as a green run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.observability.bench import (  # noqa: E402
    BENCH_SCHEMA,
    BenchSchemaError,
    load_bench_document,
    lower_is_better,
)

BASELINE_SCHEMA = "repro-bench-baseline/1"


def _record_map(doc: dict) -> dict[str, dict]:
    return {rec["name"]: rec for rec in doc["records"]}


def cmd_record(args) -> int:
    doc = load_bench_document(args.bench)
    baseline = {
        "schema": BASELINE_SCHEMA,
        "suite": doc["suite"],
        "recorded_from": {
            "git_sha": doc.get("git_sha"),
            "timestamp": doc.get("timestamp"),
        },
        "records": doc["records"],
    }
    path = Path(args.baseline)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(baseline, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"recorded baseline for suite {doc['suite']!r} "
          f"({len(doc['records'])} records) -> {path}")
    return 0


def load_baseline(path) -> dict:
    if not Path(path).exists():
        raise BenchSchemaError(
            f"{path}: baseline does not exist; record one first with "
            f"`bench_regress record <bench.json> --baseline {path}` "
            f"(or pass --record-if-missing to do so now)"
        )
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchSchemaError(f"{path}: unreadable baseline ({exc})") from exc
    if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
        raise BenchSchemaError(
            f"{path}: schema is {doc.get('schema')!r}; "
            f"if it is a raw {BENCH_SCHEMA} document, run `record` first"
        )
    if not isinstance(doc.get("records"), list):
        raise BenchSchemaError(f"{path}: baseline has no records list")
    return doc


def cmd_compare(args) -> int:
    doc = load_bench_document(args.bench)
    if getattr(args, "record_if_missing", False) and not Path(args.baseline).exists():
        print(f"baseline {args.baseline} missing; recording current run")
        return cmd_record(args)
    baseline = load_baseline(args.baseline)
    if baseline.get("suite") not in (None, doc["suite"]):
        raise BenchSchemaError(
            f"suite mismatch: bench is {doc['suite']!r}, "
            f"baseline is {baseline.get('suite')!r}"
        )
    tol = args.tolerance
    base_map = _record_map(baseline)
    cur_map = _record_map(doc)

    regressions: list[str] = []
    compared = 0
    for name, base_rec in sorted(base_map.items()):
        cur_rec = cur_map.get(name)
        if cur_rec is None:
            regressions.append(f"{name}: record missing from current run")
            continue
        base_metrics = base_rec.get("metrics")
        if not isinstance(base_metrics, dict):
            raise BenchSchemaError(
                f"{args.baseline}: record {name!r} has no metrics mapping"
            )
        for metric, base_val in sorted(base_metrics.items()):
            cur_val = cur_rec.get("metrics", {}).get(metric)
            if cur_val is None:
                regressions.append(f"{name}: metric {metric!r} missing")
                continue
            compared += 1
            if base_val == 0:
                continue   # no relative change defined; informational only
            change = (cur_val - base_val) / abs(base_val)
            bad = change > tol if lower_is_better(metric) else change < -tol
            arrow = "worse" if bad else "ok"
            line = (f"{name}: {metric} {base_val:.4g} -> {cur_val:.4g} "
                    f"({change:+.1%}, tolerance ±{tol:.0%}) [{arrow}]")
            if bad:
                regressions.append(line)
            elif args.verbose:
                print(line)
    for name in sorted(set(cur_map) - set(base_map)):
        print(f"note: {name} not in baseline (new record, not compared)")

    print(f"compared {compared} metrics over {len(base_map)} baseline records "
          f"against {args.bench}")
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond ±{tol:.0%}:")
        for line in regressions:
            print(f"  REGRESSION {line}")
        if args.warn_only:
            print("warn-only mode: not failing the run")
            return 0
        return 1
    print("no regressions")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_regress",
        description="Record/compare BENCH JSON benchmark documents.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="save a bench document as the baseline")
    rec.add_argument("bench", help="BENCH_*.json produced by a benchmark run")
    rec.add_argument("--baseline", required=True, help="baseline file to write")
    rec.set_defaults(func=cmd_record)

    cmp_ = sub.add_parser("compare", help="compare a bench document to a baseline")
    cmp_.add_argument("bench", help="BENCH_*.json produced by a benchmark run")
    cmp_.add_argument("--baseline", required=True, help="baseline file to read")
    cmp_.add_argument(
        "--tolerance", type=float, default=0.10,
        help="allowed relative move in the bad direction (default 0.10)",
    )
    cmp_.add_argument(
        "--warn-only", action="store_true",
        help="print regressions but exit 0 (schema errors still exit 2)",
    )
    cmp_.add_argument(
        "--record-if-missing", action="store_true",
        help="when the baseline file does not exist, record the current "
             "run as the baseline and exit 0 instead of failing",
    )
    cmp_.add_argument("--verbose", action="store_true",
                      help="also print metrics within tolerance")
    cmp_.set_defaults(func=cmd_compare)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BenchSchemaError as exc:
        print(f"schema error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
