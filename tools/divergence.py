#!/usr/bin/env python3
"""Diff two ``repro-fingerprint/1`` ledgers and localize the divergence.

Usage::

    python tools/divergence.py A B [--json PATH] [--context N]
        [--checkpoints] [--heatmap N]

``A`` and ``B`` are fingerprint ledger files or run directories (the
canonical ``fingerprints.jsonl`` inside).  The tool

* aligns the two streams by step and reports the **first divergent
  record**, localized to the first mismatching ``(step, field, block)``
  in the fixed traversal order, with a few context records around it;
* when both sides are run directories (or ``--checkpoints`` is given),
  finds the **nearest common checkpoint at or before** the divergent
  step and produces an **ulp-level field diff** of the checkpointed
  states — max/mean ulp distance, mismatch count and a coarse spatial
  heatmap per field (both single-block ``stepNNNNNNNN.npz`` and
  distributed ``stepNNNNNNNN.block_i_j.npz`` checkpoints are handled);
* writes the whole analysis as a ``repro-divergence/1`` JSON document
  (``--json PATH``, defaulting to ``<A>/divergence.json`` when ``A`` is
  a run directory) which ``tools/run_report.py`` embeds into the HTML
  run report.

Exit codes: 0 = streams identical, 1 = divergence found, 2 = error.

The checkpoint comparison diffs the *stored* states.  For a live
bisection — replaying both configurations forward from the checkpoint —
use :func:`replay_compare` with two restored solvers; it steps them in
lockstep and ulp-diffs the resulting fields.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.observability.fingerprint import (  # noqa: E402
    FingerprintLedger,
    find_mismatches,
)

DIVERGENCE_SCHEMA = "repro-divergence/1"

_CHECKPOINT_RE = re.compile(r"^step(\d{8})(?:\.block_[\d_]+)?\.npz$")


# -- ledger alignment ----------------------------------------------------------


def resolve_ledger(path) -> Path:
    """A ledger argument: the file itself, or a run directory holding one."""
    path = Path(path)
    if path.is_dir():
        path = path / "fingerprints.jsonl"
    return path


def load_ledger(path) -> list[dict]:
    records = FingerprintLedger(resolve_ledger(path)).load()
    if not records:
        raise FileNotFoundError(
            f"fingerprint ledger {resolve_ledger(path)} is missing or empty"
        )
    return records


def first_divergence(records_a, records_b) -> dict | None:
    """The first common step whose records differ, localized; else ``None``.

    Steps present on only one side are inventoried but do not count as
    divergence — a shorter run is a prefix, not a contradiction.
    """
    by_a = {r["step"]: r for r in records_a}
    by_b = {r["step"]: r for r in records_b}
    common = sorted(set(by_a) & set(by_b))
    for step in common:
        ra, rb = by_a[step], by_b[step]
        if ra["digest"] == rb["digest"]:
            continue
        mismatches = find_mismatches(ra, rb)
        first = mismatches[0]
        return {
            "step": step,
            "time": ra["time"],
            "field": first["field"],
            "block": first["block"],
            "actual": first["actual"],
            "expected": first["expected"],
            "n_mismatches": len(mismatches),
            "mismatches": mismatches,
        }
    return None


def context_rows(records_a, records_b, step: int, context: int = 3) -> list[dict]:
    """Common-step digest pairs around *step*, for the human report."""
    by_a = {r["step"]: r for r in records_a}
    by_b = {r["step"]: r for r in records_b}
    common = sorted(set(by_a) & set(by_b))
    if step in common:
        i = common.index(step)
    else:
        i = len(common)
    rows = []
    for s in common[max(0, i - context): i + context + 1]:
        rows.append(
            {
                "step": s,
                "digest_a": by_a[s]["digest"],
                "digest_b": by_b[s]["digest"],
                "match": by_a[s]["digest"] == by_b[s]["digest"],
            }
        )
    return rows


# -- ulp-level field comparison ------------------------------------------------


def _ordered_bits(a: np.ndarray) -> np.ndarray:
    """Map float64 bit patterns to a monotone int64 ordering.

    Negative floats have descending int64 patterns; reflecting them
    (``-2**63 - i``) makes the integer order match the float order, so
    the difference of two mapped values counts representable doubles
    between them — the ulp distance.
    """
    i = np.ascontiguousarray(a, dtype=np.float64).view(np.int64)
    return np.where(i < 0, np.int64(-(2**63)) - i, i)


def _coarse_max(u: np.ndarray, shape: tuple[int, int]) -> list[list[int]]:
    """Max-pool a 2D ulp field down to at most *shape* cells."""
    n0, n1 = u.shape
    r = min(n0, shape[0])
    c = min(n1, shape[1])
    t0, t1 = -(-n0 // r), -(-n1 // c)
    out = []
    for i in range(r):
        row = []
        for j in range(c):
            tile = u[i * t0:(i + 1) * t0, j * t1:(j + 1) * t1]
            row.append(int(tile.max()) if tile.size else 0)
        out.append(row)
    return out


def ulp_diff(a, b, heatmap_shape: tuple[int, int] = (16, 16)) -> dict:
    """Ulp-level comparison of two same-shape float64 arrays.

    The ulp distance is computed on the int64-mapped bit patterns — never
    after a float conversion, which would round away single-ulp
    differences.  Positions where either side is non-finite are excluded
    from the ulp statistics and counted separately.  The heatmap
    max-pools the ulp field over the first two (spatial) axes down to at
    most *heatmap_shape* cells.
    """
    a = np.ascontiguousarray(a, dtype=np.float64)
    b = np.ascontiguousarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    finite = np.isfinite(a) & np.isfinite(b)
    nonfinite_mismatch = int(
        np.count_nonzero(~finite & (a.view(np.int64) != b.view(np.int64)))
    )
    with np.errstate(over="ignore"):
        ulp = np.abs(_ordered_bits(a) - _ordered_bits(b))
    ulp[~finite] = 0
    compared = int(np.count_nonzero(finite))
    mismatch = int(np.count_nonzero(ulp))
    u2 = ulp
    if u2.ndim == 1:
        u2 = u2[:, None]
    while u2.ndim > 2:
        u2 = u2.max(axis=-1)
    return {
        "max_ulp": int(ulp.max()) if ulp.size else 0,
        "mean_ulp": float(ulp.sum() / compared) if compared else 0.0,
        "mismatch_count": mismatch,
        "compared": compared,
        "nonfinite_mismatches": nonfinite_mismatch,
        "heatmap": _coarse_max(u2, heatmap_shape),
    }


# -- checkpoint bisection ------------------------------------------------------


def list_checkpoints(rundir) -> dict[int, list[Path]]:
    """Checkpoint files under ``<rundir>/checkpoints``, grouped by step."""
    out: dict[int, list[Path]] = {}
    cpdir = Path(rundir) / "checkpoints"
    if not cpdir.is_dir():
        return out
    for p in sorted(cpdir.iterdir()):
        m = _CHECKPOINT_RE.match(p.name)
        if m:
            out.setdefault(int(m.group(1)), []).append(p)
    return out


def nearest_checkpoint(rundir, step: int) -> int | None:
    """The newest checkpointed step at or before *step*, or ``None``."""
    steps = [s for s in list_checkpoints(rundir) if s <= step]
    return max(steps) if steps else None


def compare_checkpoints(
    rundir_a, rundir_b, step: int, heatmap_shape=(16, 16)
) -> dict:
    """Ulp-diff the two runs' checkpointed states at *step*, per field.

    Matching checkpoint files (same name: the single ``.npz`` or the
    per-block shards) are compared pairwise; per-field statistics are
    aggregated across shards and the heatmap kept from the worst shard.
    """
    files_a = {p.name: p for p in list_checkpoints(rundir_a).get(step, [])}
    files_b = {p.name: p for p in list_checkpoints(rundir_b).get(step, [])}
    common = sorted(set(files_a) & set(files_b))
    if not common:
        raise FileNotFoundError(
            f"no matching step-{step} checkpoint files under both run dirs"
        )
    fields: dict[str, dict] = {}
    for name in common:
        with np.load(files_a[name]) as da, np.load(files_b[name]) as db:
            for key in sorted(set(da.files) & set(db.files)):
                arr_a, arr_b = da[key], db[key]
                if arr_a.dtype.kind != "f" or arr_a.shape != arr_b.shape:
                    continue
                d = ulp_diff(arr_a, arr_b, heatmap_shape)
                agg = fields.get(key)
                if agg is None:
                    fields[key] = {**d, "worst_file": name, "files": 1}
                else:
                    agg["files"] += 1
                    total = agg["compared"] + d["compared"]
                    if total:
                        agg["mean_ulp"] = (
                            agg["mean_ulp"] * agg["compared"]
                            + d["mean_ulp"] * d["compared"]
                        ) / total
                    agg["compared"] = total
                    agg["mismatch_count"] += d["mismatch_count"]
                    agg["nonfinite_mismatches"] += d["nonfinite_mismatches"]
                    if d["max_ulp"] > agg["max_ulp"]:
                        agg["max_ulp"] = d["max_ulp"]
                        agg["heatmap"] = d["heatmap"]
                        agg["worst_file"] = name
    return {"step": step, "files": common, "fields": fields}


def replay_compare(solver_a, solver_b, n_steps: int, fields=("phi", "mu")) -> dict:
    """Step two checkpoint-restored solvers in lockstep and ulp-diff them.

    This is the live half of the bisection flow: restore both
    configurations from the nearest common checkpoint before the first
    divergent step, replay up to (or past) it, and see exactly which
    cells disagree and by how many ulp.  Works across solver kinds —
    a :class:`DistributedSolver` contributes its gathered global field,
    a :class:`SingleBlockSolver` its interior, so a 1-rank run can be
    replayed against an N-rank one.
    """
    if n_steps:
        solver_a.step(n_steps)
        solver_b.step(n_steps)
    return {
        name: ulp_diff(_field_state(solver_a, name), _field_state(solver_b, name))
        for name in fields
    }


def _field_state(solver, name: str) -> np.ndarray:
    if hasattr(solver, "gather"):
        return solver.gather(name)
    return solver._interior(name)


# -- the report document -------------------------------------------------------


def divergence_document(
    path_a, path_b, context: int = 3, checkpoints: bool = False,
    heatmap_shape=(16, 16),
) -> dict:
    """The full ``repro-divergence/1`` analysis of two ledgers."""
    records_a = load_ledger(path_a)
    records_b = load_ledger(path_b)
    steps_a = {r["step"] for r in records_a}
    steps_b = {r["step"] for r in records_b}
    div = first_divergence(records_a, records_b)
    doc = {
        "schema": DIVERGENCE_SCHEMA,
        "a": str(resolve_ledger(path_a)),
        "b": str(resolve_ledger(path_b)),
        "records": {"a": len(records_a), "b": len(records_b)},
        "common_steps": len(steps_a & steps_b),
        "only_a": sorted(steps_a - steps_b),
        "only_b": sorted(steps_b - steps_a),
        "first_divergence": div,
        "context": (
            context_rows(records_a, records_b, div["step"], context)
            if div
            else []
        ),
        "checkpoint": None,
    }
    if div and checkpoints:
        rundir_a, rundir_b = Path(path_a), Path(path_b)
        if rundir_a.is_dir() and rundir_b.is_dir():
            steps = set(list_checkpoints(rundir_a)) & set(
                list_checkpoints(rundir_b)
            )
            eligible = [s for s in steps if s <= div["step"]]
            if eligible:
                doc["checkpoint"] = compare_checkpoints(
                    rundir_a, rundir_b, max(eligible), heatmap_shape
                )
    return doc


def print_report(doc: dict) -> None:
    div = doc["first_divergence"]
    print(f"ledger A: {doc['a']} ({doc['records']['a']} records)")
    print(f"ledger B: {doc['b']} ({doc['records']['b']} records)")
    print(
        f"common steps: {doc['common_steps']}"
        + (f", only in A: {len(doc['only_a'])}" if doc["only_a"] else "")
        + (f", only in B: {len(doc['only_b'])}" if doc["only_b"] else "")
    )
    if div is None:
        print("no divergence: all common-step records are identical")
        return
    print(
        f"\nFIRST DIVERGENCE at step {div['step']} (t={div['time']:g}): "
        f"field {div['field']} block ({div['block']})"
    )
    print(f"  A: {div['actual']}\n  B: {div['expected']}")
    print(f"  {div['n_mismatches']} (field, block) pair(s) differ at this step")
    if doc["context"]:
        print("\n  step   A digest          B digest")
        for row in doc["context"]:
            mark = " " if row["match"] else "<-- diverged"
            print(
                f"  {row['step']:5d}  {row['digest_a'][:16]}  "
                f"{row['digest_b'][:16]}  {mark}"
            )
    cp = doc.get("checkpoint")
    if cp:
        print(f"\nulp diff at nearest common checkpoint (step {cp['step']}):")
        for name, st in cp["fields"].items():
            print(
                f"  {name}: max {st['max_ulp']} ulp, mean {st['mean_ulp']:.3g} "
                f"ulp, {st['mismatch_count']}/{st['compared']} cells differ"
                + (
                    f", {st['nonfinite_mismatches']} non-finite mismatches"
                    if st["nonfinite_mismatches"]
                    else ""
                )
            )


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("a", help="fingerprint ledger file or run directory")
    ap.add_argument("b", help="reference ledger file or run directory")
    ap.add_argument("--json", metavar="PATH", default=None,
                    help="write the repro-divergence/1 document here "
                         "(default: <A>/divergence.json when A is a rundir)")
    ap.add_argument("--context", type=int, default=3, metavar="N",
                    help="context records around the divergence (default 3)")
    ap.add_argument("--checkpoints", action="store_true",
                    help="also ulp-diff the nearest common checkpoint "
                         "(implied when both sides are run directories)")
    ap.add_argument("--heatmap", type=int, default=16, metavar="N",
                    help="max heatmap cells per spatial axis (default 16)")
    args = ap.parse_args(argv)

    try:
        doc = divergence_document(
            args.a,
            args.b,
            context=args.context,
            checkpoints=args.checkpoints
            or (Path(args.a).is_dir() and Path(args.b).is_dir()),
            heatmap_shape=(args.heatmap, args.heatmap),
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print_report(doc)
    json_path = args.json
    if json_path is None and Path(args.a).is_dir():
        json_path = Path(args.a) / "divergence.json"
    if json_path is not None:
        with open(json_path, "w") as fh:
            json.dump(doc, fh, indent=1)
        print(f"\ndivergence document written to {json_path}")
    return 1 if doc["first_divergence"] else 0


if __name__ == "__main__":
    sys.exit(main())
