#!/usr/bin/env python3
"""Render perf-history trends and gate regressions vs a rolling baseline.

Reads an append-only ``repro-perf/1`` JSONL ledger (default
``benchmarks/history/perf_history.jsonl``), groups records into series by
{bench x name x kernel fingerprint x codegen options x host key} — records
from different machines or variants are never compared — and

* renders per-series sparkline trends plus the measured-vs-ECM closure
  drift into one self-contained HTML page (same inline-CSS/SVG idioms as
  ``run_report.py``),
* compares the latest record of every series against a *rolling baseline*
  (the median of the preceding ``--window`` records) and exits 1 when any
  watched metric regressed by more than ``--threshold``.

Exit codes: 0 ok / nothing comparable, 1 regression (suppressed by
``--warn-only``), 2 unreadable or invalid history.

Usage::

    python tools/perf_trend.py [--history PATH] [--out trend.html]
        [--threshold 0.15] [--window 5] [--min-history 3] [--warn-only]
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from run_report import _CSS, esc, fmt, svg_line_chart, table  # noqa: E402

from repro.observability.bench import lower_is_better  # noqa: E402
from repro.perfmodel.ledger import (  # noqa: E402
    DEFAULT_HISTORY,
    PerfLedger,
    PerfSchemaError,
)

#: measured metrics watched for regressions (when present and non-null)
WATCHED_METRICS = ("mlups", "mean_seconds", "cycles_per_lup")


def series_label(key: tuple) -> str:
    bench, name, fingerprint, options, host = key
    parts = [f"{bench}/{name}"]
    if fingerprint:
        parts.append(f"fp={fingerprint[:10]}")
    parts.append(f"host={host[:8]}")
    return " ".join(parts)


def metric_series(records: list[dict], metric: str) -> list[float | None]:
    return [r["measured"].get(metric) for r in records]


def closure_series(records: list[dict], metric: str) -> list[float | None]:
    """measured/predicted ratio per record, where both sides exist."""
    out = []
    for r in records:
        measured = r["measured"].get(metric)
        predicted = (r.get("predicted") or {}).get(metric)
        if measured is None or not predicted:
            out.append(None)
        else:
            out.append(measured / predicted)
    return out


def find_regressions(
    series: dict[tuple, list[dict]],
    threshold: float,
    window: int,
    min_history: int,
) -> list[dict]:
    """Latest-vs-rolling-baseline comparison over every watched metric.

    The baseline is the median of the up-to-*window* records preceding the
    latest; series shorter than *min_history* are skipped (a fresh variant
    has no trend to regress against).
    """
    regressions = []
    for key, records in series.items():
        if len(records) < min_history:
            continue
        latest = records[-1]
        baseline_window = records[-(window + 1):-1]
        for metric in WATCHED_METRICS:
            current = latest["measured"].get(metric)
            history = [
                r["measured"].get(metric)
                for r in baseline_window
                if r["measured"].get(metric) is not None
            ]
            if current is None or len(history) < min_history - 1:
                continue
            baseline = statistics.median(history)
            if baseline == 0:
                continue
            if lower_is_better(metric):
                change = current / baseline - 1.0       # + = slower = worse
            else:
                change = 1.0 - current / baseline       # + = fewer = worse
            if change > threshold:
                regressions.append(
                    {
                        "series": series_label(key),
                        "metric": metric,
                        "baseline": baseline,
                        "current": current,
                        "change": change,
                    }
                )
    return regressions


def build_html(series: dict[tuple, list[dict]], regressions: list[dict]) -> str:
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>perf trend</title>",
        f"<style>{_CSS}</style></head><body>",
        "<h1>Kernel performance trends</h1>",
        f'<p class="muted">generated {time.strftime("%Y-%m-%d %H:%M:%S")} — '
        f"{len(series)} series, "
        f"{sum(len(r) for r in series.values())} records</p>",
    ]
    if regressions:
        parts.append('<h2 class="crashed">Regressions</h2>')
        parts.append(
            table(
                ["series", "metric", "baseline", "current", "change"],
                [
                    (
                        r["series"],
                        r["metric"],
                        fmt(r["baseline"]),
                        fmt(r["current"]),
                        f"{r['change'] * 100:+.1f}%",
                    )
                    for r in regressions
                ],
                left={0, 1},
            )
        )
    else:
        parts.append('<p class="ok">no regressions vs rolling baseline</p>')

    for key in sorted(series, key=series_label):
        records = series[key]
        latest = records[-1]
        parts.append(f"<h2>{esc(series_label(key))}</h2>")
        host = latest["host"]
        source = latest["measured"].get("counter_source", "?")
        parts.append(
            f'<p class="muted">{esc(host.get("cpu_model", "unknown cpu"))} — '
            f"{host.get('physical_cores', '?')} core(s), "
            f"counters: {esc(source)}, {len(records)} record(s)</p>"
        )
        summary_rows = []
        for metric in WATCHED_METRICS:
            values = [v for v in metric_series(records, metric) if v is not None]
            if not values:
                continue
            summary_rows.append(
                (metric, len(values), fmt(min(values)), fmt(max(values)),
                 fmt(values[-1]))
            )
        if summary_rows:
            parts.append(
                table(["metric", "points", "min", "max", "latest"], summary_rows)
            )
        for metric in WATCHED_METRICS:
            values = metric_series(records, metric)
            if sum(v is not None for v in values) >= 2:
                parts.append(svg_line_chart(values, label=metric))
        ratios = closure_series(records, "mlups")
        if sum(v is not None for v in ratios) >= 2:
            parts.append(
                svg_line_chart(ratios, label="closure: measured/predicted MLUP/s")
            )
    parts.append("</body></html>")
    return "".join(parts)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--history", type=Path, default=DEFAULT_HISTORY,
                        help="repro-perf/1 JSONL ledger to analyse")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the trend HTML here")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative regression gate (0.15 = 15%%)")
    parser.add_argument("--window", type=int, default=5,
                        help="rolling-baseline window (records per series)")
    parser.add_argument("--min-history", type=int, default=3,
                        help="records a series needs before it is gated")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0")
    args = parser.parse_args(argv)

    ledger = PerfLedger(args.history)
    if not ledger.path.exists():
        print(f"perf_trend: no history at {ledger.path} (nothing to compare)")
        return 0
    try:
        series = ledger.series()
    except PerfSchemaError as exc:
        print(f"perf_trend: invalid history: {exc}", file=sys.stderr)
        return 2
    if not series:
        print(f"perf_trend: {ledger.path} holds no valid records")
        return 2

    regressions = find_regressions(
        series, args.threshold, args.window, args.min_history
    )

    if args.out:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(build_html(series, regressions))
        print(f"perf_trend: wrote {args.out}")

    print(
        f"perf_trend: {len(series)} series, "
        f"{sum(len(r) for r in series.values())} records, "
        f"{len(regressions)} regression(s)"
    )
    for r in regressions:
        print(
            f"  REGRESSION {r['series']} {r['metric']}: "
            f"{fmt(r['baseline'])} -> {fmt(r['current'])} "
            f"({r['change'] * 100:+.1f}% worse)"
        )
    if regressions and not args.warn_only:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
