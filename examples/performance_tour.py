#!/usr/bin/env python3
"""A tour of the automatic performance engineering pipeline (paper §3.5–3.6).

For the paper's P1 configuration this script reproduces, end to end:

* the Table-1 style operation counts of all four kernel variants,
* the layer-condition blocking factor (§6.1: "N < 67 → 60³ blocks"),
* ECM predictions and the µ-split vs µ-full crossover (Fig. 2 left),
* the GPU register-pressure transformations (Fig. 2 right) including the
  evolutionary tuner,
* a generated CUDA kernel head.

Run:  python examples/performance_tour.py
"""

from repro.backends.cuda_backend import generate_cuda_source
from repro.gpu import TransformationSequence, apply_sequence, evolutionary_tune
from repro.perfmodel import ECMModel, SKYLAKE_8174, blocking_factor
from repro.pfm import GrandPotentialModel, make_p1


def main():
    model = GrandPotentialModel(make_p1())
    print("=== operation counts (Table 1 analogue, setup P1) ===")
    full = model.create_kernels(variant_phi="full", variant_mu="full")
    split = model.create_kernels(variant_phi="split", variant_mu="split")
    for ks, label in ((full, "full"), (split, "split")):
        for k in ks.phi_kernels + ks.mu_kernels:
            oc = k.operation_count()
            print(
                f"  {k.name:10s} [{label:5s}]  norm FLOPs {oc.normalized_flops():7.0f}"
                f"   loads {oc.loads:3d}  stores {oc.stores:2d}"
                f"   divs {oc.divs:2d}  rsqrts {oc.rsqrts:2d}"
            )

    mu_full = full.mu_kernels[0]
    print("\n=== spatial blocking from layer conditions (§6.1) ===")
    l2 = SKYLAKE_8174.level("L2").size_bytes
    n_block = blocking_factor(mu_full, l2)
    print(f"  µ-full 3D layer condition in 1 MiB L2: N < {n_block}  (paper: N < 67 → 60³)")

    print("\n=== ECM model: µ-split vs µ-full per-core scaling (Fig. 2 left) ===")
    ecm = ECMModel(SKYLAKE_8174)
    p_full = ecm.predict(mu_full, (60, 60, 60))
    p_split = [ecm.predict(k, (60, 60, 60)) for k in split.mu_kernels]
    print(f"  {p_full}")
    for p in p_split:
        print(f"  {p}")
    print("\n  cores | µ-full MLUP/s/core | µ-split MLUP/s/core")
    crossover = None
    for n in range(1, 25):
        f = p_full.mlups_per_core(n)
        s = 1.0 / sum(1.0 / p.mlups(n) for p in p_split) / n
        if n in (1, 4, 8, 12, 16, 20, 24):
            print(f"  {n:5d} | {f:18.2f} | {s:19.2f}")
        if crossover is None and f > s:
            crossover = n
    print(f"  ECM crossover (full overtakes split): {crossover} cores  (paper: 16)")

    print("\n=== GPU register transformations on µ-full (Fig. 2 right) ===")
    sequences = {
        "none": TransformationSequence(),
        "sched": TransformationSequence(use_scheduling=True, beam_width=8),
        "dupl": TransformationSequence(use_remat=True),
        "fence": TransformationSequence(fence_interval=32),
        "dupl+sched+fence": TransformationSequence(
            use_remat=True, remat_max_cost=3, remat_max_uses=6,
            use_scheduling=True, beam_width=8, fence_interval=32,
        ),
    }
    base_t = None
    for name, seq in sequences.items():
        r = apply_sequence(mu_full, seq)
        if base_t is None:
            base_t = r.time_per_lup_ns
        print(
            f"  {name:18s} analysis regs {r.registers.analysis_registers:4d}"
            f"  allocated {r.registers.allocated_registers:4d}"
            f"  spilled {r.registers.spilled_registers:4d}"
            f"  occupancy {r.model.occupancy:5.2f}"
            f"  speedup {base_t / r.time_per_lup_ns:4.2f}x"
        )

    print("\n=== evolutionary tuner (§3.5) ===")
    best = evolutionary_tune(mu_full, population=10, generations=6, seed=42)
    print(f"  best sequence found: {best.sequence.describe()}")
    print(f"  modeled speedup over untransformed: {base_t / best.time_per_lup_ns:.2f}x")

    print("\n=== generated CUDA kernel (head) ===")
    cuda = generate_cuda_source(full.phi_kernels[0], mapping="linear3d")
    head = cuda.source[cuda.source.index('extern "C"'):]
    print("  " + "\n  ".join(head.splitlines()[:12]))


if __name__ == "__main__":
    main()
