#!/usr/bin/env python3
"""Setup P1: ternary eutectic directional solidification (paper §5.1, Fig. 4).

The full grand-potential model with 4 phases and 3 components — the
configuration that was manually optimized in [Bauer et al. 2015] and that
the code generator now specializes automatically:

* isotropic gradient energy (A_{αβ} = 1),
* parabolic grand-potential fits, affine-linear in T,
* analytic temperature gradient T(x₀, t) moving with the pulling velocity,
* anti-trapping current, obstacle potential with triple-phase suppression.

Three solid lamellae grow into the melt; the run reports the front
position/velocity and the lamellar spacing spectrum — the quantities
compared against Al-Ag-Cu experiments in the paper.

Run:  python examples/ternary_eutectic_p1.py [steps]
      (3D is the paper's setting; this example uses a thin 3D slab)
"""

import sys
import time

import numpy as np

from repro.analysis import (
    TimeSeriesWriter,
    front_position,
    interface_fraction,
    lamellar_spacing,
    phase_fractions,
)
from repro.pfm import GrandPotentialModel, SingleBlockSolver, lamellar_front, make_p1


def main():
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    report_every = max(steps // 6, 1)

    # undercool the front (isotherm T = T_m at x = 30, front at x = 10) and
    # thin the interfaces so the lamellae are resolved at this demo scale
    params = make_p1(dim=3, G=2e-2, v=5e-2, T0=1.0 - 2e-2 * 30.0)
    params.epsilon = 2.0
    params.gamma_triple = 5.0
    model = GrandPotentialModel(params)

    print("building + optimizing kernels (µ-split / φ-full, the P1 winners)...")
    t0 = time.time()
    kernels = model.create_kernels(variant_phi="full", variant_mu="split")
    print(f"  done in {time.time() - t0:.1f} s")
    for k in kernels.all_kernels:
        oc = k.operation_count()
        print(
            f"  {k.name:12s}: {oc.normalized_flops():6.0f} normalized FLOPs/cell, "
            f"{oc.loads} loads, {oc.stores} stores"
        )
    n_cfg = params.configuration_parameter_count()
    print(f"  {n_cfg} material parameters folded in at compile time")

    shape = (48, 36, 8)  # growth axis x0, lamellae along x1, thin slab in x2
    solver = SingleBlockSolver(kernels, shape, boundary=("neumann", "periodic", "periodic"))

    phi0 = lamellar_front(
        shape,
        params.n_phases,
        solid_phases=[0, 1, 2],
        liquid_phase=params.liquid_phase,
        position=10.0,
        lamella_width=12.0,
        epsilon=params.epsilon,
        growth_axis=0,
        lamella_axis=1,
    )
    solver.set_state(phi0, mu=0.0)

    writer = TimeSeriesWriter(
        "ternary_eutectic_p1_timeseries.csv",
        ["step", "time", "front", "interface_fraction", "f0", "f1", "f2", "f_liquid"],
    )

    print(f"\nrunning {steps} steps on {shape} cells...")
    print("   step   front pos   iface%    phase fractions (s0, s1, s2, liq)")
    t0 = time.time()
    for done in range(0, steps, report_every):
        n = min(report_every, steps - done)
        solver.step(n)
        solver.check_invariants()
        fr = phase_fractions(solver.phi)
        front = front_position(solver.phi, [0, 1, 2], axis=0)
        writer.append(
            step=solver.time_step,
            time=solver.time,
            front=front,
            interface_fraction=interface_fraction(solver.phi),
            f0=fr[0], f1=fr[1], f2=fr[2], f_liquid=fr[3],
        )
        print(
            f"  {solver.time_step:5d}   {front:8.2f}   {100 * interface_fraction(solver.phi):5.1f}"
            f"    {fr[0]:.3f}, {fr[1]:.3f}, {fr[2]:.3f}, {fr[3]:.3f}"
        )
    elapsed = time.time() - t0
    cells = np.prod(shape)
    print(f"\n{steps} steps in {elapsed:.1f} s "
          f"({steps * cells / elapsed / 1e6:.2f} MLUP/s with the NumPy backend)")

    lam = lamellar_spacing(solver.phi, phase=0, growth_axis=0, lamella_axis=0, position=6)
    print(f"dominant lamellar spacing of solid 0: {lam:.1f} cells "
          f"(initialized at 36 = 3 phases x 12 cells)")
    print("time series written to ternary_eutectic_p1_timeseries.csv")


if __name__ == "__main__":
    main()
