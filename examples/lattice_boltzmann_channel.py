#!/usr/bin/env python3
"""Lattice Boltzmann through the same code-generation pipeline (paper §8).

The paper's conclusion announces the generalization of the pipeline to
"other stencil-based methods, e.g. lattice Boltzmann schemes" — this
example delivers it: a D2Q9 BGK channel flow whose fused stream-collide
kernel is built from the identical Field/Assignment machinery, optimized by
the same CSE/constant-folding passes, counted by the same Table-1 FLOP
counter, rated by the same ECM model and executed by the same backends as
the phase-field kernels.

Validation: body-force-driven Poiseuille flow against the analytic
parabolic profile.

Run:  python examples/lattice_boltzmann_channel.py
"""

import numpy as np

from repro.backends.c_backend import c_compiler_available
from repro.ir import create_kernel
from repro.lbm import D2Q9, LBMethod, LBMSimulation, create_lbm_update
from repro.perfmodel import ECMModel, SKYLAKE_8174


def main():
    g = 1e-6
    method = LBMethod(lattice=D2Q9, relaxation_rate=1.0, force=(0.0, g))
    nu = float(method.viscosity)
    print(f"D2Q9 BGK, ω = {float(method.omega)}, ν = {nu:.4f} (lattice units)")

    # the LBM kernel is a first-class citizen of the pipeline
    ac, _, _ = create_lbm_update(method)
    kernel = create_kernel(ac)
    oc = kernel.operation_count()
    print(f"fused stream-collide kernel: {oc}")
    pred = ECMModel(SKYLAKE_8174).predict(kernel, (1, 4096))
    print(f"ECM on a SKL socket: {pred}")

    H, W = 33, 16
    backend = "c" if c_compiler_available() else "numpy"
    sim = LBMSimulation(method, (H, W), walls=[(0, -1), (0, +1)], backend=backend)
    print(f"\nchannel {H}x{W}, bounce-back walls, force {g:g}, backend={backend!r}")

    y = np.arange(H) + 0.5
    analytic = g / (2 * nu) * y * (H - y)
    print("\n   steps   max u_sim    max u_analytic   rel. L∞ error")
    for _ in range(6):
        sim.step(1000)
        u = sim.velocity()[..., 1].mean(axis=1)
        err = np.abs(u - analytic).max() / analytic.max()
        print(f"  {sim.time_step:6d}   {u.max():.6e}   {analytic.max():.6e}   {err:8.2%}")

    u = sim.velocity()[..., 1].mean(axis=1)
    print("\nfinal profile (u_y across the channel):")
    scale = 40 / u.max()
    for j in range(H):
        bar = "#" * int(round(u[j] * scale))
        print(f"  y={j:2d} |{bar}")
    print(f"\nmass conservation: total = {sim.total_mass():.12f} "
          f"(initial {float(H * W):.1f})")


if __name__ == "__main__":
    main()
