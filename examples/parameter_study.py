#!/usr/bin/env python3
"""Parameter study with per-configuration recompilation (paper §5.1).

"Since we fix the parametrization at compile time, each change of options
requires recompilation ... This is no problem for production runs" — this
example quantifies that workflow: the binary solidification model is
regenerated and re-optimized for a sweep of undercoolings, each a fully
specialized kernel set, and the resulting front velocities are compared
(they must grow with the undercooling).

Also demonstrates the alternative §5.1 escape hatch: keeping dt/dx symbolic
(``fold_constants=False``) so one kernel serves several runs.

Run:  python examples/parameter_study.py
"""

import time

import numpy as np

from repro.analysis import front_position
from repro.backends.c_backend import c_compiler_available
from repro.pfm import (
    GrandPotentialModel,
    SingleBlockSolver,
    make_two_phase_binary,
    planar_front,
)
from repro.pfm.temperature import constant_temperature


def front_velocity_for(undercooling: float, backend: str, steps: int = 250):
    params = make_two_phase_binary(dim=2)
    params.temperature = constant_temperature(1.0 - undercooling)
    t0 = time.time()
    kernels = GrandPotentialModel(params).create_kernels()  # full regeneration
    build_s = time.time() - t0

    shape = (48, 12)
    solver = SingleBlockSolver(kernels, shape, boundary=("neumann", "periodic"),
                               backend=backend)
    solver.set_state(
        planar_front(shape, 2, 0, 1, position=10.0, epsilon=params.epsilon), mu=0.0
    )
    p0 = front_position(solver.phi, [0])
    solver.step(steps)
    p1 = front_position(solver.phi, [0])
    velocity = (p1 - p0) / (steps * params.dt)
    return velocity, build_s, solver


def main():
    backend = "c" if c_compiler_available() else "numpy"
    print(f"sweeping undercooling, regenerating specialized kernels each time "
          f"(backend={backend!r})\n")
    print("  ΔT (undercooling) | front velocity | regeneration time")
    rows = []
    solver = None
    for dT in (0.05, 0.15, 0.25, 0.35):
        v, build_s, solver = front_velocity_for(dT, backend)
        rows.append((dT, v))
        print(f"  {dT:17.2f} | {v:14.5f} | {build_s:6.1f} s")

    velocities = [v for _, v in rows]
    monotone = all(b > a for a, b in zip(velocities, velocities[1:]))
    print(f"\nvelocity grows with undercooling: {monotone}")
    if not monotone:
        raise SystemExit("unexpected kinetics!")
    print("(the paper quotes 30–60 s per full recompilation of the production")
    print(" C++ kernels; our symbolic regeneration of the small binary model is")
    print(" seconds — for P1/P2 in 3D it is tens of seconds, the same regime)")

    # --- shared kernel cache: solvers are cheap, specializations are not -----
    from repro.profiling import kernel_cache_stats

    print(f"\n{kernel_cache_stats()}")
    before = kernel_cache_stats()
    params = make_two_phase_binary(dim=2)
    params.temperature = constant_temperature(1.0 - 0.05)
    kernels = GrandPotentialModel(params).create_kernels()
    SingleBlockSolver(kernels, (48, 12), boundary=("neumann", "periodic"),
                      backend=backend)
    SingleBlockSolver(kernels, (96, 24), boundary=("neumann", "periodic"),
                      backend=backend)
    after = kernel_cache_stats()
    print(f"two more solvers from a repeated specialization: "
          f"+{after.misses - before.misses} compiles, "
          f"+{after.hits - before.hits} cache hits")

    # --- persistent disk tier: a rerun of this script compiles nothing -------
    from repro.profiling import cache_root, disk_cache_stats

    print(f"{disk_cache_stats()} (persistent root: {cache_root()})")
    print("rerun this script: every kernel above becomes a disk hit — the "
          "sympy→C→cc latency is paid once per machine, not once per process")

    print(f"\n{solver.profile_report()}")


if __name__ == "__main__":
    main()
