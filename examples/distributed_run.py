#!/usr/bin/env python3
"""Distributed-memory execution on simulated MPI ranks (paper §4).

Runs the binary solidification model — with Philox fluctuations enabled —
on a block-structured domain distributed over four simulated MPI ranks, and
verifies that the result is *bit-identical* to a single-block run: the
ghost-layer protocol and the counter-based RNG make the decomposition
invisible to the physics.

Also demonstrates the scaling-observability layer: every rank runs under a
rank-tagged tracer, the per-rank timelines merge into ONE Chrome/Perfetto
trace (``runs/distributed_demo/trace.json`` — one named track per rank,
written into a :class:`RunDir` so no artifact lands at the repo root), and
rank 0 prints the communication matrix, the λ load-imbalance factor and
the predicted-vs-measured comm-time closure.

Run:  python examples/distributed_run.py
"""

import numpy as np

from repro.observability import RunDir, export_merged_trace, rank_tracer
from repro.parallel import BlockForest, DistributedSolver, run_ranks
from repro.pfm import GrandPotentialModel, make_two_phase_binary, planar_front


def main():
    params = make_two_phase_binary(dim=2)
    params.fluctuation_amplitude = 0.02   # exercise the global RNG counters
    model = GrandPotentialModel(params)
    kernels = model.create_kernels()

    global_shape = (32, 32)
    steps = 25

    def init(offset, shape):
        full = planar_front(
            global_shape, params.n_phases, 0, 1, position=12.0, epsilon=params.epsilon
        )
        sl = tuple(slice(o, o + s) for o, s in zip(offset, shape))
        return full[sl], 0.0

    # --- reference: one block, no communication ------------------------------
    forest_single = BlockForest(global_shape, global_shape, periodic=True)
    ref = DistributedSolver(kernels, forest_single, comm=None)
    ref.set_state_from(init)
    ref.step(steps)
    phi_ref = ref.gather("phi")

    # --- 16 blocks over 4 simulated ranks --------------------------------------
    forest = BlockForest(global_shape, (8, 8), periodic=True)
    print(forest)
    assignment = forest.distribute(4)
    for rank, blocks in assignment.items():
        print(f"  rank {rank}: blocks {blocks} (Morton-contiguous)")

    def rank_program(comm):
        with rank_tracer(comm.rank) as tracer:
            solver = DistributedSolver(kernels, forest, comm=comm)
            solver.set_state_from(init)
            solver.step(steps)
            phi = solver.gather("phi")
            scaling = solver.scaling_report()   # collective: all ranks call it
        return phi, solver.bytes_sent, solver.profiler, tracer, scaling

    results = run_ranks(4, rank_program)
    phi_dist = results[0][0]
    total_bytes = sum(r[1] for r in results)

    print(f"\nafter {steps} steps with fluctuations on 4 ranks:")
    print(f"  total remote ghost traffic: {total_bytes / 1024:.1f} KiB "
          f"({total_bytes / steps / 1024:.1f} KiB per step)")
    identical = np.array_equal(phi_dist, phi_ref)
    print(f"  distributed result identical to single-block run: {identical}")
    if not identical:
        raise SystemExit("BUG: decomposition changed the physics!")
    solid = phi_ref[..., 0].mean()
    print(f"  solid fraction after run: {solid:.4f}")

    # --- per-kernel accounting, reduced over all ranks -----------------------
    from repro.profiling import SolverProfiler, kernel_cache_stats

    combined = SolverProfiler()
    for result in results:
        combined.merge(result[2])
    print()
    print(combined.report(f"combined profile over 4 ranks, {steps} steps"))
    print(f"\n{kernel_cache_stats()} "
          "(every rank reused the same three compiled kernels)")

    # --- scaling observability: merged trace + comm matrix + λ + closure -----
    rundir = RunDir("runs/distributed_demo",
                    config={"steps": steps, "ranks": 4})
    rundir.note(example="distributed_run", ranks=4)
    trace_path = export_merged_trace([r[3] for r in results], rundir.trace_path)
    rundir.write_manifest(status="ok")
    print(f"\nmerged 4-rank timeline written to {trace_path} "
          "(open in Perfetto / chrome://tracing)")
    print()
    print(results[0][4])   # comm matrix, λ, comm-model closure (same on all ranks)


if __name__ == "__main__":
    main()
