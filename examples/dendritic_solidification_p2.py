#!/usr/bin/env python3
"""Setup P2: competitive dendritic solidification (paper §5.1, §7, Fig. 4).

Three phases, two components, *anisotropic* gradient energy: two solid
grains with different cubic-anisotropy orientations grow from seeds into an
undercooled binary melt.  The paper's point: this "apparently small change"
(P1 → P2) reshapes the kernels completely — the φ kernel roughly quadruples
its FLOPs (Table 1) — yet needs zero manual code work.

The run demonstrates the qualitative dendritic features of Fig. 4:
anisotropic (four-fold) growth shapes, tip tracking, and the competition
between differently oriented grains.

Run:  python examples/dendritic_solidification_p2.py [steps]
"""

import sys
import time

import numpy as np

from repro.analysis import TimeSeriesWriter, phase_fractions, tip_position
from repro.backends.c_backend import c_compiler_available
from repro.pfm import GrandPotentialModel, SingleBlockSolver, add_seed, make_p2


def anisotropy_of_shape(phi: np.ndarray, phase: int) -> float:
    """Axis-to-diagonal extent ratio of a grain (1.0 = isotropic circle)."""
    solid = phi[..., phase] >= 0.5
    if solid.sum() < 4:
        return float("nan")
    coords = np.argwhere(solid).astype(float)
    center = coords.mean(axis=0)
    rel = coords - center
    along_axes = np.abs(rel).max(axis=0).mean()
    along_diag = (np.abs(rel[:, 0] + rel[:, 1]).max() / np.sqrt(2)
                  + np.abs(rel[:, 0] - rel[:, 1]).max() / np.sqrt(2)) / 2
    return float(along_axes / along_diag)


def main():
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    report_every = max(steps // 8, 1)

    params = make_p2(dim=2, delta=0.25, orientations_deg=(0.0, 45.0), undercooling=0.35)
    model = GrandPotentialModel(params)

    print("building P2 kernels (anisotropic gradient energy)...")
    t0 = time.time()
    kernels = model.create_kernels(variant_phi="split", variant_mu="full")
    print(f"  done in {time.time() - t0:.1f} s")
    phi_cost = sum(k.operation_count().normalized_flops() for k in kernels.phi_kernels)
    print(f"  φ update: {phi_cost:.0f} normalized FLOPs/cell in 2D "
          f"(in 3D the anisotropy roughly quadruples the φ kernel — Table 1)")

    shape = (72, 72)
    backend = "c" if c_compiler_available() else "numpy"
    solver = SingleBlockSolver(kernels, shape, boundary="periodic", backend=backend)
    print(f"  running with the {backend!r} backend")

    liquid = params.liquid_phase
    phi0 = np.zeros(shape + (params.n_phases,))
    phi0[..., liquid] = 1.0
    # grain 0: <10> oriented, grain 1: rotated by 45°
    phi0 = add_seed(phi0, (24.0, 24.0), 5.0, 0, liquid, params.epsilon)
    phi0 = add_seed(phi0, (48.0, 48.0), 5.0, 1, liquid, params.epsilon)
    solver.set_state(phi0, mu=0.0)

    writer = TimeSeriesWriter(
        "dendritic_p2_timeseries.csv",
        ["step", "solid0", "solid1", "tip0", "tip1", "aniso0", "aniso1"],
    )

    print(f"\nrunning {steps} steps on {shape} cells...")
    print("   step   solid fractions      tip extents     shape anisotropy")
    t0 = time.time()
    for done in range(0, steps, report_every):
        solver.step(min(report_every, steps - done))
        solver.check_invariants()
        fr = phase_fractions(solver.phi)
        t_0 = tip_position(solver.phi, 0, growth_axis=0)
        t_1 = tip_position(solver.phi, 1, growth_axis=0)
        a0 = anisotropy_of_shape(solver.phi, 0)
        a1 = anisotropy_of_shape(solver.phi, 1)
        writer.append(step=solver.time_step, solid0=fr[0], solid1=fr[1],
                      tip0=t_0, tip1=t_1, aniso0=a0, aniso1=a1)
        print(f"  {solver.time_step:5d}   {fr[0]:.3f}, {fr[1]:.3f}        "
              f"{t_0:5.1f}, {t_1:5.1f}      {a0:5.2f}, {a1:5.2f}")
    elapsed = time.time() - t0
    print(f"\n{steps} steps in {elapsed:.1f} s "
          f"({steps * np.prod(shape) / elapsed / 1e6:.2f} MLUP/s, backend={backend})")

    a0 = anisotropy_of_shape(solver.phi, 0)
    a1 = anisotropy_of_shape(solver.phi, 1)
    print(f"\ngrain shapes: <10>-oriented grain axis/diagonal ratio = {a0:.2f} (> 1 expected),")
    print(f"              45°-rotated grain ratio = {a1:.2f} (< grain 0 expected —")
    print("              its fast directions lie along the diagonals)")
    print("time series written to dendritic_p2_timeseries.csv")


if __name__ == "__main__":
    main()
