#!/usr/bin/env python3
"""Quickstart: from a free-energy functional to a running simulation.

Walks the paper's full abstraction stack on the simplest meaningful model —
two-phase mean curvature flow (Allen-Cahn):

1. write the energy functional  Ψ = ∫ ε a(φ,∇φ) + ω(φ)/ε  dV,
2. derive the evolution PDE by variational derivative,
3. discretize automatically (second-order staggered finite differences),
4. generate an optimized kernel and run it with the NumPy backend,
5. observe the physics: a circular inclusion shrinks under its curvature,
   dR²/dt = const — the "mean curvature flow" benchmark of §3.1.

Also prints the generated C code so you can see what the backend emits.

Run:  python examples/quickstart.py
"""

import numpy as np
import sympy as sp

from repro.backends import compile_numpy_kernel, create_arrays
from repro.backends.c_backend import c_compiler_available, compile_c_kernel, generate_c_source
from repro.discretization import FiniteDifferenceDiscretization, discretize_system
from repro.ir import KernelConfig, create_kernel
from repro.parallel import fill_ghosts
from repro.symbolic import (
    EnergyFunctional,
    EvolutionEquation,
    PDESystem,
    fields,
    gradient_norm,
)


def build_kernel(dx=1.0, dt=0.05, epsilon=4.0, gamma=1.0):
    # -- 1. energy functional layer -----------------------------------------
    phi, phi_dst = fields("phi, phi_dst: double[2D]")
    c = phi.center()
    a = gamma * gradient_norm(c, squared=True, dim=2)          # |∇φ|²
    omega = gamma * 16 / sp.pi**2 * c * (1 - c)                 # double obstacle
    functional = EnergyFunctional(
        gradient_energy=a, potential=omega, epsilon=sp.Float(epsilon)
    )

    # -- 2. PDE layer ---------------------------------------------------------
    tau = 1.0
    rhs = -functional.variational_derivative(c)
    eq = EvolutionEquation(c, rhs, relaxation=tau * epsilon)
    system = PDESystem([eq], name="allen_cahn")

    # -- 3./4. discretize + generate ------------------------------------------
    disc = FiniteDifferenceDiscretization(dim=2)
    ac = discretize_system(system, phi_dst, disc)
    config = KernelConfig(parameter_values={"dt": dt, "dx_0": dx, "dx_1": dx})
    kernel = create_kernel(ac, config)
    return kernel


def main():
    kernel = build_kernel()
    print("generated kernel:", kernel)
    oc = kernel.operation_count()
    print(f"per-cell cost: {oc}")

    step = compile_numpy_kernel(kernel)

    n = 96
    arrays = create_arrays(kernel.fields, (n, n), ghost_layers=1)
    # circular inclusion of phase φ=1 (radius 30) in a φ=0 matrix
    x, y = np.indices((n, n)) + 0.5
    r0 = 30.0
    d = np.sqrt((x - n / 2) ** 2 + (y - n / 2) ** 2) - r0
    arrays["phi"][1:-1, 1:-1] = np.clip(
        0.5 - 0.5 * np.sin(np.clip(d / 4.0, -np.pi / 2, np.pi / 2)), 0, 1
    )

    def area():
        return arrays["phi"][1:-1, 1:-1].sum()

    print("\n   step     area A      dA/dt (should be ~constant < 0)")
    a_prev, t_prev = area(), 0.0
    for outer in range(5):
        for _ in range(60):
            fill_ghosts(arrays["phi"], 1, 2, mode="neumann")
            step(arrays)
            # the *obstacle* part of the potential: clip back to [0, 1]
            np.clip(arrays["phi_dst"], 0.0, 1.0, out=arrays["phi_dst"])
            arrays["phi"], arrays["phi_dst"] = arrays["phi_dst"], arrays["phi"]
        a_now = area()
        rate = (a_now - a_prev) / (60 * 0.05)
        print(f"  {60 * (outer + 1):5d}  {a_now:9.1f}    {rate:8.2f}")
        a_prev = a_now

    if c_compiler_available():
        print("\n--- generated C code (first 25 lines of the kernel body) ---")
        src = generate_c_source(kernel)
        body = src[src.index("void kernel"):]
        print("\n".join(body.splitlines()[:25]))
        # run the compiled version on the final state for a consistency check
        ck = compile_c_kernel(kernel)
        a_np = {k: v.copy() for k, v in arrays.items()}
        fill_ghosts(arrays["phi"], 1, 2, mode="neumann")
        fill_ghosts(a_np["phi"], 1, 2, mode="neumann")
        step(a_np)
        ck(arrays)
        diff = np.abs(a_np["phi_dst"] - arrays["phi_dst"]).max()
        print(f"\nC backend vs NumPy backend: max |Δ| = {diff:.2e} (bitwise: {diff == 0.0})")


if __name__ == "__main__":
    main()
