#!/usr/bin/env python3
"""Quickstart: from a free-energy functional to a running simulation.

Walks the paper's full abstraction stack on the simplest meaningful model —
two-phase mean curvature flow (Allen-Cahn):

1. write the energy functional  Ψ = ∫ ε a(φ,∇φ) + ω(φ)/ε  dV,
2. derive the evolution PDE by variational derivative,
3. discretize automatically (second-order staggered finite differences),
4. generate an optimized kernel and run it with the NumPy backend,
5. observe the physics: a circular inclusion shrinks under its curvature,
   dR²/dt = const — the "mean curvature flow" benchmark of §3.1.

Also prints the generated C code so you can see what the backend emits.

Run:  python examples/quickstart.py

Observability (the paper's production-monitoring story, §4):

    python examples/quickstart.py --trace trace.json --metrics metrics.prom

emits a Chrome-trace of the whole pipeline (load ``trace.json`` in
``chrome://tracing`` or https://ui.perfetto.dev) and a Prometheus
text-format metrics snapshot; ``--health`` turns on the NaN/bounds
watchdog, ``--log-level INFO`` shows the structured pipeline log.

    python examples/quickstart.py --rundir runs/demo

bundles EVERY artifact — trace, metrics (.prom and .json), diagnostics
CSV, flight-recorder journal, health log — under one directory with a
``manifest.json``, ready for ``tools/run_report.py`` to render as a
self-contained HTML report.
"""

import argparse
import contextlib
import json
from time import perf_counter

import numpy as np
import sympy as sp

from repro.backends import create_arrays
from repro.backends.c_backend import c_compiler_available, compile_c_kernel, generate_c_source
from repro.discretization import FiniteDifferenceDiscretization, discretize_system
from repro.ir import KernelConfig, create_kernel
from repro.observability import (
    HealthMonitor,
    RunDir,
    configure_logging,
    enable_tracing,
    get_recorder,
    get_registry,
    get_tracer,
    model_accuracy_report,
)
from repro.parallel import fill_ghosts
from repro.profiling import SolverProfiler, compile_cached
from repro.symbolic import (
    EnergyFunctional,
    EvolutionEquation,
    PDESystem,
    fields,
    gradient_norm,
)


def build_kernel(dx=1.0, dt=0.05, epsilon=4.0, gamma=1.0):
    tracer = get_tracer()
    # -- 1. energy functional layer -----------------------------------------
    with tracer.span("assemble_energy_functional", category="functional"):
        phi, phi_dst = fields("phi, phi_dst: double[2D]")
        c = phi.center()
        a = gamma * gradient_norm(c, squared=True, dim=2)      # |∇φ|²
        omega = gamma * 16 / sp.pi**2 * c * (1 - c)             # double obstacle
        functional = EnergyFunctional(
            gradient_energy=a, potential=omega, epsilon=sp.Float(epsilon)
        )

    # -- 2. PDE layer ---------------------------------------------------------
    tau = 1.0
    rhs = -functional.variational_derivative(c)
    eq = EvolutionEquation(c, rhs, relaxation=tau * epsilon)
    system = PDESystem([eq], name="allen_cahn")

    # -- 3./4. discretize + generate ------------------------------------------
    disc = FiniteDifferenceDiscretization(dim=2)
    ac = discretize_system(system, phi_dst, disc)
    config = KernelConfig(parameter_values={"dt": dt, "dx_0": dx, "dx_1": dx})
    kernel = create_kernel(ac, config)
    return kernel, functional, phi


def parse_args(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--trace", metavar="PATH",
                    help="write a Chrome-trace JSON of the whole run")
    ap.add_argument("--metrics", metavar="PATH",
                    help="write a Prometheus text-format metrics snapshot")
    ap.add_argument("--health", action="store_true",
                    help="enable the NaN/bounds health watchdog")
    ap.add_argument("--diagnostics", metavar="PATH",
                    help="stream the codegen-derived physics diagnostics "
                         "(free energy, phase fraction, interface area) to a CSV")
    ap.add_argument("--log-level", metavar="LEVEL",
                    help="enable structured logging (DEBUG, INFO, ...)")
    ap.add_argument("--fingerprints", metavar="PATH", nargs="?",
                    const="fingerprints.jsonl", default=None,
                    help="stream per-step repro-fingerprint/1 state digests "
                         "to PATH (default fingerprints.jsonl); two runs of "
                         "this script produce byte-identical ledgers")
    ap.add_argument("--audit-against", metavar="PATH",
                    help="self-audit: compare each emitted fingerprint "
                         "against the reference ledger at PATH and abort at "
                         "the first divergent (step, field, block); implies "
                         "--fingerprints")
    ap.add_argument("--rundir", metavar="PATH",
                    help="bundle every artifact (trace, metrics, diagnostics, "
                         "journal, health log, fingerprints) under one run "
                         "directory with a manifest.json; implies --trace/"
                         "--metrics/--diagnostics/--health/--fingerprints at "
                         "their canonical paths")
    return ap.parse_args(argv)


def main(argv=None):
    args = parse_args(argv)
    rundir = None
    if args.rundir:
        rundir = RunDir(args.rundir, config={"example": "quickstart",
                                             "n": 96, "steps": 300})
        args.trace = args.trace or str(rundir.trace_path)
        args.metrics = args.metrics or str(rundir.metrics_path)
        args.diagnostics = args.diagnostics or str(rundir.diagnostics_path)
        args.fingerprints = args.fingerprints or str(rundir.fingerprint_path)
        args.health = True
    if args.audit_against and not args.fingerprints:
        args.fingerprints = "fingerprints.jsonl"
    if args.trace:
        enable_tracing()
    if args.log_level:
        configure_logging(args.log_level)
    health = HealthMonitor(
        policy="raise", interval=60, bounds={"phi": (-1e-9, 1 + 1e-9)}
    ) if args.health else None
    with rundir if rundir is not None else contextlib.nullcontext():
        _run(args, health, rundir)


def _run(args, health, rundir):
    recorder = get_recorder()
    if rundir is not None:
        rundir.note(example="quickstart", backend="numpy")
        recorder.open_journal(rundir.journal_path())
        if health is not None:
            rundir.attach_health(health)

    kernel, functional, phi_field = build_kernel()
    print("generated kernel:", kernel)
    oc = kernel.operation_count()
    print(f"per-cell cost: {oc}")

    step = compile_cached(kernel, "numpy")

    suite = series = None
    if args.diagnostics:
        from repro.diagnostics import (
            DiagnosticsSeries,
            DiagnosticsSuite,
            functional_diagnostics,
        )

        # the observables come from the SAME functional as the PDE —
        # derived symbolically and lowered to a reduction kernel
        suite = DiagnosticsSuite(
            functional_diagnostics(functional, phi_field, dim=2), dim=2, dx=1.0
        )
        series = DiagnosticsSeries(
            suite.names, csv_path=args.diagnostics,
            metrics=bool(args.metrics), trace=bool(args.trace),
        )

    n = 96
    arrays = create_arrays(kernel.fields, (n, n), ghost_layers=1)
    recorder.set_state_provider(lambda: {"phi": arrays["phi"]})
    # circular inclusion of phase φ=1 (radius 30) in a φ=0 matrix
    x, y = np.indices((n, n)) + 0.5
    r0 = 30.0
    d = np.sqrt((x - n / 2) ** 2 + (y - n / 2) ** 2) - r0
    arrays["phi"][1:-1, 1:-1] = np.clip(
        0.5 - 0.5 * np.sin(np.clip(d / 4.0, -np.pi / 2, np.pi / 2)), 0, 1
    )

    fingerprints = None
    if args.fingerprints:
        from repro.observability import FingerprintStream

        # the determinism observatory: per-step BLAKE2b digests of the
        # interior bytes; with --audit-against each record is compared
        # online and the first divergent (step, field, block) raises
        fingerprints = FingerprintStream(
            path=args.fingerprints,
            reference=args.audit_against,
            health=health,
            metrics=bool(args.metrics),
            trace=bool(args.trace),
        )

    def record_fingerprint(ts):
        fingerprints.record_state(
            ts, ts * 0.05, {"phi": arrays["phi"][1:-1, 1:-1]}, dim=2
        )

    def area():
        return arrays["phi"][1:-1, 1:-1].sum()

    def eval_diagnostics(ts):
        fill_ghosts(arrays["phi"], 1, 2, mode="neumann")
        series.record(ts, ts * 0.05, suite.evaluate(arrays, ghost_layers=1))

    if series is not None:
        eval_diagnostics(0)
    if fingerprints is not None:
        record_fingerprint(0)

    profiler = SolverProfiler()
    print("\n   step     area A      dA/dt (should be ~constant < 0)")
    a_prev = area()
    for outer in range(5):
        for inner in range(60):
            ts = outer * 60 + inner + 1
            t0 = perf_counter()
            recorder.step_begin(ts)
            with profiler.measure("fill:phi"):
                fill_ghosts(arrays["phi"], 1, 2, mode="neumann")
            recorder.record("kernel", kernel.name, time_step=ts)
            with profiler.measure(kernel.name, cells=n * n):
                step(arrays)
            # the *obstacle* part of the potential: clip back to [0, 1]
            np.clip(arrays["phi_dst"], 0.0, 1.0, out=arrays["phi_dst"])
            arrays["phi"], arrays["phi_dst"] = arrays["phi_dst"], arrays["phi"]
            recorder.step_end(ts, perf_counter() - t0)
            if fingerprints is not None:
                record_fingerprint(ts)
            if series is not None and ts % 10 == 0:
                eval_diagnostics(ts)
            if health is not None and health.due(ts):
                health.check({"phi": arrays["phi"][1:-1, 1:-1]}, ts)
        a_now = area()
        rate = (a_now - a_prev) / (60 * 0.05)
        print(f"  {60 * (outer + 1):5d}  {a_now:9.1f}    {rate:8.2f}")
        a_prev = a_now

    if series is not None:
        e = series.column("free_energy")
        drops = sum(e[i + 1] <= e[i] for i in range(len(e) - 1))
        print(
            f"\ndiagnostics: {len(series)} rows -> {series.csv_path} "
            f"(free energy {e[0]:.2f} -> {e[-1]:.2f}, "
            f"non-increasing on {drops}/{len(e) - 1} intervals)"
        )

    if fingerprints is not None:
        print("\n" + fingerprints.summary())

    print()
    print(model_accuracy_report([kernel], profiler, block_shape=(n, n)))
    if health is not None:
        print("\n" + health.summary())
    if rundir is not None:
        # the self-measured recorder cost becomes a gauge so the metrics
        # snapshot (and the CI checker) can see the observability overhead
        recorder.publish_overhead()
    if args.metrics:
        from repro.observability import export_accuracy_metrics, model_accuracy_rows

        profiler.export_metrics(solver="quickstart")
        export_accuracy_metrics(
            model_accuracy_rows([kernel], profiler, block_shape=(n, n))
        )
        path = get_registry().export_prometheus(args.metrics)
        print(f"\nmetrics written to {path}")
    if args.trace:
        path = get_tracer().export_chrome(args.trace)
        print(f"trace written to {path} (load in chrome://tracing)")
    if rundir is not None:
        with open(rundir.metrics_json_path, "w") as fh:
            json.dump(get_registry().to_json(), fh, indent=1)
        # append the measured-vs-predicted kernel record to the run's perf
        # ledger so check_observability.py --require-perf can validate it
        from repro.perfmodel.ledger import PerfLedger, records_from_profiler

        perf_records = records_from_profiler(
            "quickstart", [kernel], profiler,
            block_shape=(n, n), options={"backend": "numpy"},
        )
        if perf_records:
            PerfLedger(rundir.perf_path).extend(perf_records)
        recorder.close_journal()
        print(f"run directory: {rundir.path} (render with tools/run_report.py)")

    if c_compiler_available():
        print("\n--- generated C code (first 25 lines of the kernel body) ---")
        src = generate_c_source(kernel)
        body = src[src.index("void kernel"):]
        print("\n".join(body.splitlines()[:25]))
        # run the compiled version on the final state for a consistency check
        ck = compile_c_kernel(kernel)
        a_np = {k: v.copy() for k, v in arrays.items()}
        fill_ghosts(arrays["phi"], 1, 2, mode="neumann")
        fill_ghosts(a_np["phi"], 1, 2, mode="neumann")
        step(a_np)
        ck(arrays)
        diff = np.abs(a_np["phi_dst"] - arrays["phi_dst"]).max()
        print(f"\nC backend vs NumPy backend: max |Δ| = {diff:.2e} (bitwise: {diff == 0.0})")


if __name__ == "__main__":
    main()
