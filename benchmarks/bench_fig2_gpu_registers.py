"""Fig. 2 (right) — GPU register-usage transformations for the µ-full kernel.

Regenerates the right panel of Fig. 2: for the transformation sequences
{none, sched, dupl, fence, dupl+sched+fence} report

* "Registers, analysis" — 2 × peak live double-precision intermediates,
* "Registers, nvcc"     — the modeled allocation (load-hoisting inflation,
  capped at 255 with spilling above),
* the modeled runtime of one kernel sweep.

Paper shapes verified: rescheduling is the most effective single
transformation (removes nearly all spilling, ≈ +50 %); duplication and
fences alone give small improvements; the combination drops the allocation
far below the spill limit, raising occupancy for a ≈ 2× total improvement.
Also runs the evolutionary tuner (§3.5).
"""


from conftest import emit_table


def test_fig2_right_register_transformations(benchmark, p1_full):
    from repro.gpu import TransformationSequence, apply_sequence, evolutionary_tune

    mu = p1_full.mu_kernels[0]
    sequences = {
        "none": TransformationSequence(),
        "sched": TransformationSequence(use_scheduling=True, beam_width=8),
        "dupl": TransformationSequence(use_remat=True),
        "fence": TransformationSequence(fence_interval=32),
        "dupl+sched+fence": TransformationSequence(
            use_remat=True, remat_max_cost=3, remat_max_uses=6,
            use_scheduling=True, beam_width=8, fence_interval=32,
        ),
    }
    results = {name: apply_sequence(mu, seq) for name, seq in sequences.items()}
    base = results["none"].time_per_lup_ns
    cells = 400**3

    lines = [
        "Fig. 2 right — GPU register transformations (µ-full, P1, Tesla P100)",
        "",
        f"{'sequence':18s} {'analysis':>9} {'allocated':>10} {'spilled':>8} "
        f"{'occupancy':>10} {'runtime/400³':>13} {'speedup':>8}",
    ]
    for name, r in results.items():
        rt_ms = r.model.runtime_ms(cells)
        lines.append(
            f"{name:18s} {r.registers.analysis_registers:9d} "
            f"{r.registers.allocated_registers:10d} {r.registers.spilled_registers:8d} "
            f"{r.model.occupancy:10.2f} {rt_ms:10.1f} ms {base / r.time_per_lup_ns:7.2f}x"
        )

    best = evolutionary_tune(mu, population=10, generations=6, seed=42)
    lines.append("")
    lines.append(f"evolutionary tuner best: {best.sequence.describe()} "
                 f"({base / best.time_per_lup_ns:.2f}x)")
    lines.append("")
    lines.append("paper: sched alone removes spilling (+50 %); combination < 128 regs,")
    lines.append("       occupancy doubles, total improvement ≈ 2x")
    emit_table("fig2_right_gpu_registers", lines)

    # shape assertions (paper Fig. 2 right)
    r = results
    assert r["none"].registers.spills, "baseline must spill (>255 registers)"
    assert (
        r["sched"].registers.spilled_registers
        < 0.5 * r["none"].registers.spilled_registers
    ), "scheduling alone must remove most spilling"
    sched_speedup = base / r["sched"].time_per_lup_ns
    assert 1.15 < sched_speedup < 2.5, f"sched speedup {sched_speedup} out of range"
    combo = r["dupl+sched+fence"]
    assert not combo.registers.spills, "the combination must eliminate spilling"
    assert combo.registers.allocated_registers < 170
    assert combo.model.occupancy > 1.5 * r["none"].model.occupancy
    total_speedup = base / combo.time_per_lup_ns
    assert total_speedup > max(sched_speedup, 1.9), "combination ≈ 2x (paper)"
    # dupl / fence alone: small improvements, below the scheduler
    for small in ("dupl", "fence"):
        assert 1.0 <= base / r[small].time_per_lup_ns <= sched_speedup + 0.01

    benchmark(lambda: apply_sequence(mu, sequences["dupl"]))
