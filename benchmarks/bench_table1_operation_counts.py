"""Table 1 — operation counts of all compute kernels (paper §5.1).

Regenerates the paper's Table 1 for the P1 and P2 parameterizations: loads,
stores, adds, muls, divs, sqrts, rsqrts and the normalized FLOP count for
the µ-full / µ-split / φ-full / φ-split kernel variants.

Reproduction quality: the load/store counts (which are fixed by the model's
stencil structure) match the paper EXACTLY for all sixteen kernel columns;
the arithmetic counts match in shape (split ≈ half of full for µ, the P2
anisotropy blowing up φ, µ as the only kernel with irrational ops).
"""


from conftest import emit_table

# (loads, stores) per kernel column as printed in Table 1 of the paper
PAPER_LOADS_STORES = {
    ("P1", "mu", "full"): [(112, 2)],
    ("P1", "mu", "split"): [(84, 6), (22, 2)],
    ("P1", "phi", "full"): [(30, 4)],
    ("P1", "phi", "split"): [(16, 12), (54, 4)],
    ("P2", "mu", "full"): [(79, 1)],
    ("P2", "mu", "split"): [(60, 3), (13, 1)],
    ("P2", "phi", "full"): [(58, 3)],
    ("P2", "phi", "split"): [(48, 9), (40, 3)],
}

PAPER_NORM_FLOPS = {
    ("P1", "mu", "full"): 2126,
    ("P1", "mu", "split"): 1328,
    ("P1", "phi", "full"): 1004,
    ("P1", "phi", "split"): 818,
    ("P2", "mu", "full"): 1177,
    ("P2", "mu", "split"): 756,
    ("P2", "phi", "full"): 3968,
    ("P2", "phi", "split"): 2593,
}


def _columns(kernel_sets):
    for setup, ks_full, ks_split in kernel_sets:
        for variant, ks in (("full", ks_full), ("split", ks_split)):
            yield (setup, "mu", variant), ks.mu_kernels
            yield (setup, "phi", variant), ks.phi_kernels


def test_table1(benchmark, p1_full, p1_split, p2_full, p2_split):
    from repro.perfmodel import count_operations

    kernel_sets = [("P1", p1_full, p1_split), ("P2", p2_full, p2_split)]

    lines = [
        "Table 1 — per-cell operation counts (ours vs paper)",
        "",
        f"{'kernel':22s} {'loads':>12} {'stores':>10} {'adds':>6} {'muls':>6} "
        f"{'divs':>5} {'sqrt':>5} {'rsqrt':>6} {'norm':>7} {'paper':>7}",
    ]
    mismatches = []
    ratios = {}
    for key, kernels in _columns(kernel_sets):
        setup, field, variant = key
        ocs = [k.operation_count() for k in kernels]
        ls = [(oc.loads, oc.stores) for oc in ocs]
        total = ocs[0]
        for oc in ocs[1:]:
            total = total + oc
        norm = total.normalized_flops()
        ratios[key] = norm
        loads_str = " + ".join(str(ld) for ld, _ in ls)
        stores_str = " + ".join(str(s) for _, s in ls)
        lines.append(
            f"{setup + ' ' + field + '-' + variant:22s} {loads_str:>12} {stores_str:>10} "
            f"{total.adds:6d} {total.muls:6d} {total.divs:5d} {total.sqrts:5d} "
            f"{total.rsqrts:6d} {norm:7.0f} {PAPER_NORM_FLOPS[key]:7d}"
        )
        if ls != PAPER_LOADS_STORES[key]:
            mismatches.append((key, ls, PAPER_LOADS_STORES[key]))

    lines.append("")
    lines.append(
        "load/store counts vs paper: "
        + ("EXACT MATCH for all 8 kernel variants" if not mismatches else f"MISMATCH {mismatches}")
    )
    # headline shape claims of §5.1
    mu_ratio = ratios[("P1", "mu", "split")] / ratios[("P1", "mu", "full")]
    lines.append(f"µ-split / µ-full FLOP ratio (P1): {mu_ratio:.2f}   (paper: 0.62 — 'almost half')")
    p2_blowup = ratios[("P2", "phi", "full")] / ratios[("P1", "phi", "full")]
    lines.append(f"P2/P1 φ-full FLOP ratio: {p2_blowup:.2f}   (paper: 3.95 — anisotropy blow-up)")
    emit_table("table1_operation_counts", lines)

    # assertions: exact structural match + qualitative arithmetic shape
    assert not mismatches, f"load/store mismatch: {mismatches}"
    assert 0.4 < mu_ratio < 0.75
    assert p2_blowup > 1.8
    assert ratios[("P1", "phi", "split")] < ratios[("P1", "phi", "full")]
    assert ratios[("P2", "phi", "split")] < ratios[("P2", "phi", "full")]

    mu_kernel = p1_full.mu_kernels[0]
    benchmark(lambda: count_operations(mu_kernel.ac))
