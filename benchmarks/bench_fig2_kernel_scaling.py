"""Fig. 2 (left & middle) — ECM model vs measurement, kernel variant choice.

Left panel: µ-split vs µ-full per-core MLUP/s over a Skylake socket.  The
paper's shapes: µ-split starts faster but is memory bound and its per-core
rate decays within the socket; µ-full is compute bound and stays flat; the
ECM curves cross at ~16 cores.

Middle panel: φ-split vs φ-full for P1 *and* P2 — the model configuration
flips the winner (P1 → full, P2 → split), demonstrating why an automatic,
model-driven variant choice is needed.

The "measurement" side of the original figure ran on real Skylake hardware;
here the compiled C kernels are *measured* single-core on this machine and
reported next to the model (absolute numbers differ — scalar C vs AVX-512 —
but the variant ordering is what the experiment is about).
"""

import numpy as np
import pytest

from conftest import emit_table


def _combined_mlups(predictions, cores):
    return 1.0 / sum(1.0 / p.mlups(cores) for p in predictions)


@pytest.fixture(scope="module")
def ecm():
    from repro.perfmodel import ECMModel, SKYLAKE_8174

    return ECMModel(SKYLAKE_8174)


def test_fig2_left_mu_variants(benchmark, ecm, p1_full, p1_split, bench_json):
    p_full = [ecm.predict(k, (60, 60, 60)) for k in p1_full.mu_kernels]
    p_split = [ecm.predict(k, (60, 60, 60)) for k in p1_split.mu_kernels]

    lines = ["Fig. 2 left — ECM: µ kernel variants on one SKL socket (P1, 60³ blocks)", ""]
    for p in p_full + p_split:
        lines.append(f"  {p}")
    lines.append("")
    lines.append("  cores |  µ-full /core |  µ-split /core")
    crossover = None
    series = {}
    for n in range(1, 25):
        f = _combined_mlups(p_full, n) / n
        s = _combined_mlups(p_split, n) / n
        series[n] = (f, s)
        if n in (1, 4, 8, 12, 16, 20, 24):
            lines.append(f"  {n:5d} | {f:13.2f} | {s:14.2f}")
        if crossover is None and f > s:
            crossover = n
    lines.append("")
    lines.append(f"  ECM crossover (µ-full overtakes µ-split): {crossover} cores   (paper: 16)")
    emit_table("fig2_left_mu_scaling", lines)
    bench_json(
        "kernels", "fig2_left_mu_variants",
        params={"block": "60x60x60", "socket_cores": 24},
        mu_full_mlups_per_core_24=series[24][0],
        mu_split_mlups_per_core_24=series[24][1],
        crossover_cores=float(crossover),
    )

    # paper shapes: split faster at 1 core, declining; full flat; crossover in-socket
    assert series[1][1] > series[1][0]
    assert series[24][1] < series[1][1] * 0.75, "µ-split must decline within the socket"
    assert abs(series[24][0] - series[1][0]) / series[1][0] < 0.05, "µ-full must stay flat"
    assert crossover is not None and 8 <= crossover <= 24

    benchmark(lambda: [ecm.predict(k, (60, 60, 60)) for k in p1_full.mu_kernels])


def test_fig2_middle_phi_variants(benchmark, ecm, p1_full, p1_split, p2_full, p2_split):
    rows = {}
    for label, ks_full, ks_split in (
        ("P1", p1_full, p1_split),
        ("P2", p2_full, p2_split),
    ):
        pf = [ecm.predict(k, (60, 60, 60)) for k in ks_full.phi_kernels]
        ps = [ecm.predict(k, (60, 60, 60)) for k in ks_split.phi_kernels]
        rows[label] = (pf, ps)

    lines = ["Fig. 2 middle — ECM: φ kernel variants, P1 vs P2 (60³ blocks)", ""]
    lines.append("  cores | P1 φ-full | P1 φ-split | P2 φ-full | P2 φ-split   (MLUP/s per core)")
    for n in (1, 4, 8, 12, 16, 20, 24):
        p1f = _combined_mlups(rows["P1"][0], n) / n
        p1s = _combined_mlups(rows["P1"][1], n) / n
        p2f = _combined_mlups(rows["P2"][0], n) / n
        p2s = _combined_mlups(rows["P2"][1], n) / n
        lines.append(f"  {n:5d} | {p1f:9.2f} | {p1s:10.2f} | {p2f:9.2f} | {p2s:10.2f}")
    p1_full_wins = _combined_mlups(rows["P1"][0], 24) > _combined_mlups(rows["P1"][1], 24)
    p2_split_wins = _combined_mlups(rows["P2"][1], 24) > _combined_mlups(rows["P2"][0], 24)
    lines.append("")
    lines.append(f"  full-socket winner P1: {'φ-full' if p1_full_wins else 'φ-split'}   (paper: φ-full)")
    lines.append(f"  full-socket winner P2: {'φ-split' if p2_split_wins else 'φ-full'}   (paper: φ-split)")
    emit_table("fig2_middle_phi_scaling", lines)

    assert p1_full_wins, "for P1 the φ-full variant must win (paper Fig. 2 middle)"
    assert p2_split_wins, "for P2 the φ-split variant must win (paper Fig. 2 middle)"

    benchmark(lambda: [ecm.predict(k, (60, 60, 60)) for k in p2_full.phi_kernels])


def test_fig2_measured_single_core(benchmark, p1_full, p1_split, bench_json):
    """Measured C-kernel rates on this machine (the 'Bench' curves)."""
    from repro.backends.c_backend import c_compiler_available, compile_c_kernel
    from repro.backends.numpy_backend import create_arrays

    if not c_compiler_available():
        pytest.skip("no C compiler")

    n = 48
    results = {}
    for label, kernels in (
        ("mu-full", p1_full.mu_kernels),
        ("mu-split", p1_split.mu_kernels),
    ):
        fields = sorted(set().union(*(k.fields for k in kernels)), key=lambda f: f.name)
        arrays = create_arrays(fields, (n, n, n), 1)
        rng = np.random.default_rng(0)
        arrays["phi"][...] = rng.random(arrays["phi"].shape)
        arrays["phi"] /= arrays["phi"].sum(axis=-1, keepdims=True)
        arrays["phi_dst"][...] = arrays["phi"]
        compiled = [compile_c_kernel(k) for k in kernels]

        import time

        def sweep():
            for c in compiled:
                c(arrays, ghost_layers=1, t=0.0)

        sweep()  # warm up
        t0 = time.perf_counter()
        reps = 3
        for _ in range(reps):
            sweep()
        dt = (time.perf_counter() - t0) / reps
        results[label] = n**3 / dt / 1e6

    lines = [
        "Fig. 2 'Bench' stand-in — measured single-core C kernels on this host",
        "",
        *(f"  {k:9s}: {v:7.2f} MLUP/s" for k, v in results.items()),
        "",
        f"  µ-split / µ-full measured speedup at 1 core: "
        f"{results['mu-split'] / results['mu-full']:.2f}x  (ECM predicts ~1.2x; "
        "split must not be slower single-core)",
    ]
    emit_table("fig2_measured_single_core", lines)
    bench_json(
        "kernels", "fig2_measured_single_core",
        params={"block": f"{n}x{n}x{n}", "backend": "c"},
        mu_full_mlups=results["mu-full"],
        mu_split_mlups=results["mu-split"],
    )
    assert results["mu-split"] > 0.85 * results["mu-full"]

    mu_full_kernels = [compile_c_kernel(k) for k in p1_full.mu_kernels]
    fields = sorted(set().union(*(k.fields for k in p1_full.mu_kernels)), key=lambda f: f.name)
    arrays = create_arrays(fields, (24, 24, 24), 1)

    def one_sweep():
        for c in mu_full_kernels:
            c(arrays, ghost_layers=1, t=0.0)

    benchmark(one_sweep)
