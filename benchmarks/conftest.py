"""Shared fixtures for the benchmark harness.

Kernel construction for the P1/P2 configurations is expensive (the 3D
anisotropic variational derivatives take ~30 s), so all benches share
session-scoped kernel sets.  Every bench writes its regenerated table to
``benchmarks/results/<experiment>.txt`` and also emits it to stdout, so
``pytest benchmarks/ --benchmark-only`` leaves the full set of
paper-comparison tables on disk.

Benches additionally record their headline numbers through the
``bench_json`` fixture; at session end the collected records are written
as machine-readable ``BENCH_<suite>.json`` documents at the repo root
(schema ``repro-bench/1``), the input of ``tools/bench_regress.py`` — and
every record is *appended* to the ``repro-perf/1`` history ledger under
``benchmarks/history/``, the input of ``tools/perf_trend.py`` (the BENCH
files are snapshots; the ledger is the trajectory).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).resolve().parents[1]


def emit_table(experiment: str, lines: list[str]) -> str:
    """Write a result table to disk and stdout; return the text."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{experiment}.txt").write_text(text)
    sys.stdout.write(f"\n{'=' * 72}\n{text}{'=' * 72}\n")
    return text


@pytest.fixture(scope="session")
def bench_json():
    """Session-wide BENCH JSON collector: ``bench_json(suite, name, ...)``.

    ``suite`` is ``"scaling"`` or ``"kernels"``; extra keyword arguments are
    the metrics (finite numbers).  Documents are only written for suites
    that recorded at least one record, so partial runs (``-k``) still
    produce valid files.
    """
    from repro.observability.bench import BenchWriter

    writers: dict[str, BenchWriter] = {}

    def record(suite: str, name: str, params: dict | None = None, **metrics):
        writer = writers.get(suite)
        if writer is None:
            writer = writers[suite] = BenchWriter(suite)
        writer.add(name, params=params, **metrics)

    yield record
    from repro.perfmodel.ledger import PerfLedger, perf_record

    ledger = PerfLedger(REPO_ROOT / "benchmarks" / "history" / "perf_history.jsonl")
    for suite, writer in sorted(writers.items()):
        if writer.records:
            path = writer.write(REPO_ROOT / f"BENCH_{suite}.json")
            sys.stdout.write(f"\nbench records written to {path}\n")
            appended = ledger.extend(
                perf_record(suite, r["name"], r["metrics"], options=r["params"])
                for r in writer.records
            )
            sys.stdout.write(
                f"appended {appended} record(s) to {ledger.path}\n"
            )


@pytest.fixture(scope="session")
def p1_model():
    from repro.pfm import GrandPotentialModel, make_p1

    return GrandPotentialModel(make_p1(dim=3))


@pytest.fixture(scope="session")
def p2_model():
    from repro.pfm import GrandPotentialModel, make_p2

    return GrandPotentialModel(make_p2(dim=3))


@pytest.fixture(scope="session")
def p1_full(p1_model):
    return p1_model.create_kernels(variant_phi="full", variant_mu="full")


@pytest.fixture(scope="session")
def p1_split(p1_model):
    return p1_model.create_kernels(variant_phi="split", variant_mu="split")


@pytest.fixture(scope="session")
def p2_full(p2_model):
    return p2_model.create_kernels(variant_phi="full", variant_mu="full")


@pytest.fixture(scope="session")
def p2_split(p2_model):
    return p2_model.create_kernels(variant_phi="split", variant_mu="split")
