"""Shared fixtures for the benchmark harness.

Kernel construction for the P1/P2 configurations is expensive (the 3D
anisotropic variational derivatives take ~30 s), so all benches share
session-scoped kernel sets.  Every bench writes its regenerated table to
``benchmarks/results/<experiment>.txt`` and also emits it to stdout, so
``pytest benchmarks/ --benchmark-only`` leaves the full set of
paper-comparison tables on disk.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def emit_table(experiment: str, lines: list[str]) -> str:
    """Write a result table to disk and stdout; return the text."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{experiment}.txt").write_text(text)
    sys.stdout.write(f"\n{'=' * 72}\n{text}{'=' * 72}\n")
    return text


@pytest.fixture(scope="session")
def p1_model():
    from repro.pfm import GrandPotentialModel, make_p1

    return GrandPotentialModel(make_p1(dim=3))


@pytest.fixture(scope="session")
def p2_model():
    from repro.pfm import GrandPotentialModel, make_p2

    return GrandPotentialModel(make_p2(dim=3))


@pytest.fixture(scope="session")
def p1_full(p1_model):
    return p1_model.create_kernels(variant_phi="full", variant_mu="full")


@pytest.fixture(scope="session")
def p1_split(p1_model):
    return p1_model.create_kernels(variant_phi="split", variant_mu="split")


@pytest.fixture(scope="session")
def p2_full(p2_model):
    return p2_model.create_kernels(variant_phi="full", variant_mu="full")


@pytest.fixture(scope="session")
def p2_split(p2_model):
    return p2_model.create_kernels(variant_phi="split", variant_mu="split")
