"""Fig. 3 — weak and strong scaling on SuperMUC-NG and Piz Daint.

Left: weak scaling on the CPU machine, 60³ cells per core, "Manual" vs
"Generated" — the generated code outperforms the AVX2-tuned manual
implementation of [2] by ≈ 20 % because it targets AVX-512
(performance portability, §6.1) and both stay flat to 2¹⁹ cores.

Middle: weak scaling on the GPU machine, 400³ cells per GPU, flat
MLUP/s per GPU up to 2 400 GPUs.

Right: strong scaling of a fixed 512×256×256 domain from 48 to 152 064
cores: ~0.2 steps/s at 48 cores rising to hundreds of steps/s, with
efficiency decaying as blocks shrink to a handful of cells.
"""

import numpy as np
import pytest

from conftest import emit_table


def _cpu_core_rate(p1_full, p1_split):
    """Compute-only MLUP/s of one SKL core: φ-full + µ-split (the P1 choice)."""
    from repro.perfmodel import ECMModel, SKYLAKE_8174

    ecm = ECMModel(SKYLAKE_8174)
    kernels = p1_full.phi_kernels + p1_split.mu_kernels
    preds = [ecm.predict(k, (60, 60, 60)) for k in kernels]
    # per-core rate at full-socket operation
    n = SKYLAKE_8174.cores_per_socket
    return 1.0 / sum(1.0 / p.mlups(n) for p in preds) / n


def test_fig3_left_weak_scaling_cpu(benchmark, p1_full, p1_split, bench_json):
    from repro.parallel import ClusterModel, CommOptions, OMNIPATH_FAT_TREE

    generated_rate = _cpu_core_rate(p1_full, p1_split)
    # the manual implementation of [2] is AVX2-tuned: half the SIMD width
    # on the compute-bound parts, ~20 % slower overall (paper §6.1)
    manual_rate = generated_rate / 1.2

    def cluster(rate):
        return ClusterModel(
            name="SuperMUC-NG",
            network=OMNIPATH_FAT_TREE,
            ranks_per_node=48,
            rank_compute_mlups=rate,
            exchanged_doubles_per_cell=6.0,
            options=CommOptions(overlap=True, gpudirect=True,
                                pack_kernel_overhead_us=2.0,
                                per_step_overhead_us=2000.0),
        )

    cores = [2**k for k in range(5, 20, 2)] + [2**19]
    gen_pts = cluster(generated_rate).weak_scaling((60, 60, 60), cores)
    man_pts = cluster(manual_rate).weak_scaling((60, 60, 60), cores)

    lines = [
        "Fig. 3 left — weak scaling, SuperMUC-NG, 60³ cells per core (P1)",
        "",
        f"{'cores':>8} {'Generated MLUP/s/core':>22} {'Manual MLUP/s/core':>20} {'efficiency':>11}",
    ]
    for g, m in zip(gen_pts, man_pts):
        lines.append(
            f"{g.ranks:8d} {g.mlups_per_rank:22.2f} {m.mlups_per_rank:20.2f} "
            f"{g.efficiency:10.1%}"
        )
    ratio = gen_pts[-1].mlups_per_rank / man_pts[-1].mlups_per_rank
    lines.append("")
    lines.append(f"generated / manual at scale: {ratio:.2f}x   (paper: ≈ 1.2x)")
    lines.append(f"paper: ≈ 6 MLUP/s per core sustained, near-perfect weak scaling")
    emit_table("fig3_left_weak_scaling_cpu", lines)
    bench_json(
        "scaling", "fig3_left_weak_scaling_cpu",
        params={"cores": gen_pts[-1].ranks, "cells_per_core": "60x60x60"},
        mlups_per_core=gen_pts[-1].mlups_per_rank,
        parallel_efficiency=gen_pts[-1].efficiency,
        generated_over_manual=ratio,
    )

    # flatness: per-core rate at 2^19 cores within 5 % of 32 cores
    assert gen_pts[-1].mlups_per_rank > 0.95 * gen_pts[0].mlups_per_rank
    assert ratio == pytest.approx(1.2, rel=0.05)
    assert all(p.efficiency > 0.9 for p in gen_pts)

    model = cluster(generated_rate)
    benchmark(lambda: model.weak_scaling((60, 60, 60), cores))


def test_fig3_middle_weak_scaling_gpu(benchmark, p1_full, p1_split, bench_json):
    from repro.gpu import TransformationSequence, apply_sequence
    from repro.parallel import ARIES_DRAGONFLY, ClusterModel, CommOptions

    seq = TransformationSequence(
        use_remat=True, use_scheduling=True, beam_width=8, fence_interval=32
    )
    kernels = p1_full.phi_kernels + p1_split.mu_kernels
    total_ns = sum(apply_sequence(k, seq).time_per_lup_ns for k in kernels)
    gpu_rate = 1e3 / total_ns

    cluster = ClusterModel(
        name="Piz Daint",
        network=ARIES_DRAGONFLY,
        ranks_per_node=1,
        rank_compute_mlups=gpu_rate,
        exchanged_doubles_per_cell=6.0,
        options=CommOptions(overlap=True, gpudirect=True),
    )
    gpus = [1, 4, 16, 64, 128, 512, 1024, 2400]
    pts = cluster.weak_scaling((400, 400, 400), gpus)

    lines = [
        "Fig. 3 middle — weak scaling, Piz Daint, 400³ cells per GPU (P1)",
        "",
        f"GPU compute-only rate (tuned, P100 model): {gpu_rate:.0f} MLUP/s",
        "",
        f"{'GPUs':>6} {'MLUP/s per GPU':>15} {'efficiency':>11}",
    ]
    for p in pts:
        lines.append(f"{p.ranks:6d} {p.mlups_per_rank:15.1f} {p.efficiency:10.1%}")
    lines.append("")
    lines.append("paper: ≈ 440 MLUP/s per GPU, flat to 2 400 GPUs")
    emit_table("fig3_middle_weak_scaling_gpu", lines)
    bench_json(
        "scaling", "fig3_middle_weak_scaling_gpu",
        params={"gpus": pts[-1].ranks, "cells_per_gpu": "400x400x400"},
        mlups_per_gpu=pts[-1].mlups_per_rank,
        parallel_efficiency=pts[-1].efficiency,
    )

    assert pts[-1].mlups_per_rank > 0.93 * pts[0].mlups_per_rank
    assert 250 < gpu_rate < 700, "GPU rate should be in the paper's regime"

    benchmark(lambda: cluster.weak_scaling((400, 400, 400), gpus))


def test_fig3_overlap_measured_step_times(bench_json):
    """Executed (not modeled) sync vs overlapped step times on simulated ranks.

    Runs the 2D two-phase binary model over 2 simulated MPI ranks with both
    step schedules of :class:`~repro.parallel.timeloop.DistributedSolver`
    and records the measured per-step wall times next to the calibrated
    :class:`~repro.parallel.comm_model.StepTimeModel` overlap-closure
    prediction — the executed counterpart of the Fig. 3 communication-hiding
    claim (§4.3).
    """
    from time import perf_counter

    from repro.backends.c_backend import c_compiler_available
    from repro.parallel import BlockForest, DistributedSolver, run_ranks
    from repro.pfm import GrandPotentialModel, make_two_phase_binary, planar_front

    backend = "c" if c_compiler_available() else "numpy"
    global_shape, block_shape = (
        ((512, 512), (256, 256)) if backend == "c" else ((128, 128), (64, 64))
    )
    steps, warmup, repeats, n_ranks = 5, 1, 2, 2

    params = make_two_phase_binary(dim=2)
    kernels = GrandPotentialModel(params).create_kernels()
    forest = BlockForest(global_shape, block_shape, periodic=True)

    def init(offset, shape):
        full = planar_front(
            global_shape, params.n_phases, 0, 1,
            position=global_shape[0] / 2, epsilon=params.epsilon,
        )
        sl = tuple(slice(o, o + s) for o, s in zip(offset, shape))
        return full[sl], 0.0

    def measure(overlap):
        def prog(comm):
            solver = DistributedSolver(
                kernels, forest, comm=comm, overlap=overlap, backend=backend
            )
            solver.set_state_from(init)
            solver.step(warmup)
            best = float("inf")
            for _ in range(repeats):
                comm.barrier()
                t0 = perf_counter()
                solver.step(steps)
                comm.barrier()
                best = min(best, perf_counter() - t0)
            return best, solver.default_step_model()

        results = run_ranks(n_ranks, prog)
        return max(r[0] for r in results) / steps, results[0][1]

    sync_s, model = measure(overlap=False)
    overlap_s, _ = measure(overlap=True)
    closure = model.overlap_closure(
        measured_sync_s=sync_s, measured_overlap_s=overlap_s
    )

    lines = [
        "Fig. 3 (executed) — communication hiding, 2 simulated ranks",
        "",
        f"backend {backend}, domain {'x'.join(map(str, global_shape))}, "
        f"block {'x'.join(map(str, block_shape))}",
        "",
        f"measured step:  sync {sync_s * 1e3:8.3f} ms   "
        f"overlap {overlap_s * 1e3:8.3f} ms   "
        f"(gain {closure['measured_gain'] * 100:+.1f}%)",
        f"predicted step: sync {closure['predicted_sync_s'] * 1e3:8.3f} ms   "
        f"overlap {closure['predicted_overlap_s'] * 1e3:8.3f} ms   "
        f"(gain {closure['predicted_gain'] * 100:+.1f}%)",
        "",
        "paper: overlapped schedule hides the ghost exchange behind the",
        "interior sweep; on shared 1-core runners parity within noise is",
        "the expected outcome (tools/bench_scaling_smoke.py gates the ratio)",
    ]
    emit_table("fig3_overlap_measured", lines)
    bench_json(
        "scaling", "fig3_overlap_measured",
        params={
            "ranks": n_ranks, "backend": backend,
            "domain": "x".join(map(str, global_shape)),
            "block": "x".join(map(str, block_shape)), "steps": steps,
        },
        step_seconds_sync=sync_s,
        step_seconds_overlap=overlap_s,
        predicted_overlap_gain=closure["predicted_gain"],
    )

    assert sync_s > 0 and overlap_s > 0
    # perf gating lives in the scaling smoke; this only guards against the
    # overlapped schedule degenerating outright
    assert overlap_s < 2.0 * sync_s


def test_fig3_real_parallel_measured(bench_json):
    """Executed step times on *real OS processes* (the process backend).

    Runs the 2D two-phase binary model on 1 and 2 process-backed ranks
    (:mod:`repro.parallel.proc_comm`: fork + shared-memory ghost buffers)
    and records the measured per-step wall time and the 2-rank speedup.
    The numpy backend is used deliberately: pytest has already executed
    OpenMP parallel regions in this process by the time this test runs,
    and libgomp's thread pool does not survive a fork — numpy keeps the
    forked ranks safe regardless of test ordering.

    On shared 1-core runners a speedup near 1/n is the physical ceiling;
    the speedup floor is gated by ``tools/bench_scaling_smoke.py`` (which
    forks before any parallel region and can use the C backend), so this
    test only asserts liveness and records the measurement.
    """
    from time import perf_counter

    from repro.parallel import BlockForest, DistributedSolver
    from repro.parallel.proc_comm import (
        process_backend_available,
        run_ranks_processes,
    )
    from repro.pfm import GrandPotentialModel, make_two_phase_binary, planar_front

    if not process_backend_available():
        pytest.skip("needs fork + multiprocessing.shared_memory")

    global_shape, block_shape = (128, 128), (64, 128)
    steps, warmup, n_ranks = 5, 1, 2

    params = make_two_phase_binary(dim=2)
    kernels = GrandPotentialModel(params).create_kernels()
    forest = BlockForest(global_shape, block_shape, periodic=True)

    def init(offset, shape):
        full = planar_front(
            global_shape, params.n_phases, 0, 1,
            position=global_shape[0] / 2, epsilon=params.epsilon,
        )
        sl = tuple(slice(o, o + s) for o, s in zip(offset, shape))
        return full[sl], 0.0

    def measure(size):
        def prog(comm):
            solver = DistributedSolver(
                kernels, forest, comm=comm, overlap=False, backend="numpy"
            )
            solver.set_state_from(init)
            solver.step(warmup)
            comm.barrier()
            t0 = perf_counter()
            solver.step(steps)
            comm.barrier()
            return perf_counter() - t0

        results = run_ranks_processes(
            size, prog, recv_timeout=120.0, join_timeout=600.0,
            env={"OMP_NUM_THREADS": "1"},
        )
        return max(results) / steps

    serial_s = measure(1)
    parallel_s = measure(n_ranks)
    speedup = serial_s / parallel_s

    lines = [
        "Fig. 3 (executed) — real process ranks, shared-memory ghost buffers",
        "",
        f"backend numpy, domain {'x'.join(map(str, global_shape))}, "
        f"block {'x'.join(map(str, block_shape))}",
        "",
        f"step on 1 process: {serial_s * 1e3:8.3f} ms",
        f"step on {n_ranks} processes: {parallel_s * 1e3:8.3f} ms   "
        f"(speedup {speedup:.2f}x)",
        "",
        "paper: rank-parallel execution over distributed blocks; the",
        "speedup floor on multi-core hosts is gated by the scaling smoke",
    ]
    emit_table("fig3_real_parallel_measured", lines)
    bench_json(
        "scaling", "fig3_real_parallel_measured",
        params={
            "ranks": n_ranks, "backend": "numpy",
            "domain": "x".join(map(str, global_shape)),
            "block": "x".join(map(str, block_shape)), "steps": steps,
        },
        step_seconds_real=parallel_s,
        real_speedup=speedup,
    )

    assert serial_s > 0 and parallel_s > 0
    # liveness guard only: real perf gating lives in the scaling smoke
    assert speedup > 0.1


def test_fig3_right_strong_scaling(benchmark, p1_full, p1_split, bench_json):
    from repro.parallel import ClusterModel, CommOptions, OMNIPATH_FAT_TREE

    rate = _cpu_core_rate(p1_full, p1_split)
    cluster = ClusterModel(
        name="SuperMUC-NG",
        network=OMNIPATH_FAT_TREE,
        ranks_per_node=48,
        rank_compute_mlups=rate,
        exchanged_doubles_per_cell=6.0,
        options=CommOptions(overlap=True, gpudirect=True,
                            pack_kernel_overhead_us=2.0,
                            per_step_overhead_us=2000.0),
    )
    domain = (512, 256, 256)
    cores = [48, 192, 768, 3072, 12288, 49152, 152064]
    pts = cluster.strong_scaling(domain, cores)

    lines = [
        "Fig. 3 right — strong scaling, SuperMUC-NG, domain 512×256×256 (P1)",
        "",
        f"{'cores':>8} {'steps/s':>9} {'MLUP/s/core':>12} {'efficiency':>11}",
    ]
    for p in pts:
        lines.append(
            f"{p.ranks:8d} {p.steps_per_second:9.2f} {p.mlups_per_rank:12.2f} "
            f"{p.efficiency:10.1%}"
        )
    speedup = pts[-1].steps_per_second / pts[0].steps_per_second
    ideal = cores[-1] / cores[0]
    lines.append("")
    lines.append(
        f"48 cores: {pts[0].steps_per_second:.2f} steps/s  →  "
        f"{cores[-1]} cores: {pts[-1].steps_per_second:.0f} steps/s "
        f"(speedup {speedup:.0f}x of ideal {ideal:.0f}x)"
    )
    lines.append("paper: ≈0.2 s per step at 48 cores → 460 steps/s at 152 064 cores")
    emit_table("fig3_right_strong_scaling", lines)
    bench_json(
        "scaling", "fig3_right_strong_scaling",
        params={"domain": "512x256x256", "cores_max": cores[-1]},
        steps_per_second_48=pts[0].steps_per_second,
        steps_per_second_max=pts[-1].steps_per_second,
        speedup=speedup,
    )

    # paper anchors: ≈0.1–0.3 s/step at 48 cores, hundreds of steps/s at the
    # extreme end where the per-step overhead floor dominates
    assert 3.0 < pts[0].steps_per_second < 15.0
    assert 200 < pts[-1].steps_per_second < 1500
    assert speedup < ideal, "strong scaling cannot be ideal at 6³ blocks"
    assert speedup > 20, "scaling must remain useful to the full machine"

    benchmark(lambda: cluster.strong_scaling(domain, cores))
