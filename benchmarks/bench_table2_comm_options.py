"""Table 2 — communication options on Piz Daint with 128 GPUs.

Regenerates the four-row table: {overlap × GPUDirect} → MLUP/s per GPU for
the P1 setup on 400³ blocks.  The GPU compute rate comes from the tuned
GPU kernel models; the communication model accounts for message latencies,
Aries wire time (hidden by asynchronous MPI + CUDA streams when overlap is
on) and the non-hideable host-staging copies used without GPUDirect.
"""

import pytest

from conftest import emit_table

PAPER = {
    (False, False): 395,
    (False, True): 403,
    (True, False): 422,
    (True, True): 440,
}


def _gpu_compute_rate(kernel_set) -> float:
    """Aggregate MLUP/s of one tuned time step on the P100 model."""
    from repro.gpu import TransformationSequence, apply_sequence

    seq = TransformationSequence(
        use_remat=True, use_scheduling=True, beam_width=8, fence_interval=32
    )
    total_ns = 0.0
    for k in kernel_set.phi_kernels + kernel_set.mu_kernels:
        total_ns += apply_sequence(k, seq).time_per_lup_ns
    return 1e3 / total_ns


def test_table2_communication_options(benchmark, p1_full, p1_split, bench_json):
    from repro.parallel import ARIES_DRAGONFLY, CommOptions, StepTimeModel
    from repro.pfm import PhaseFieldKernelSet

    # the production variant choice on Piz Daint: φ-full + µ-split
    kernel_set = PhaseFieldKernelSet(
        model=p1_full.model,
        phi_kernels=p1_full.phi_kernels,
        projection_kernel=p1_full.projection_kernel,
        mu_kernels=p1_split.mu_kernels,
        variant_phi="full",
        variant_mu="split",
    )
    rate = _gpu_compute_rate(kernel_set)
    params = kernel_set.model.params
    exchanged = params.n_phases + params.n_mu  # φ_dst + µ_dst components

    lines = [
        "Table 2 — communication options on Piz Daint, 128 GPUs, 400³ per GPU",
        "",
        f"GPU compute-only rate (tuned kernels, P100 model): {rate:.0f} MLUP/s",
        "",
        f"{'overlap':>8} {'GPUDirect':>10} {'model MLUP/s':>13} {'paper':>7} {'dev':>7}",
    ]
    model_vals = {}
    for overlap in (False, True):
        for gd in (False, True):
            m = StepTimeModel(
                compute_mlups=rate,
                block_shape=(400, 400, 400),
                exchanged_doubles_per_cell=float(exchanged),
                network=ARIES_DRAGONFLY,
                options=CommOptions(overlap=overlap, gpudirect=gd),
            )
            v = m.mlups(nodes=128)
            model_vals[(overlap, gd)] = v
            dev = (v / rate) / (PAPER[(overlap, gd)] / 440) - 1
            lines.append(
                f"{str(overlap):>8} {str(gd):>10} {v:13.1f} {PAPER[(overlap, gd)]:7d} "
                f"{100 * dev:6.1f}%"
            )
    lines.append("")
    lines.append("(deviation compares the *relative* cost of each option against the")
    lines.append(" paper's 395/403/422/440, since absolute GPU rates are model-based)")
    emit_table("table2_comm_options", lines)
    for (overlap, gd), value in model_vals.items():
        bench_json(
            "scaling",
            f"table2_overlap={int(overlap)}_gpudirect={int(gd)}",
            params={"gpus": 128, "block": "400x400x400"},
            mlups_per_gpu=value,
        )

    # ordering must match the paper exactly
    v = model_vals
    assert v[(False, False)] < v[(False, True)] < v[(True, True)]
    assert v[(False, False)] < v[(True, False)] < v[(True, True)]
    # relative magnitudes within a few percent of the paper's ratios
    for key, paper in PAPER.items():
        assert v[key] / v[(True, True)] == pytest.approx(paper / 440, abs=0.03)

    benchmark(
        lambda: StepTimeModel(
            compute_mlups=rate,
            block_shape=(400, 400, 400),
            exchanged_doubles_per_cell=float(exchanged),
            network=ARIES_DRAGONFLY,
        ).mlups(nodes=128)
    )
