"""Ablation benches for the design choices called out in DESIGN.md.

* spatial blocking from layer conditions vs. naive sweeps,
* temperature-subexpression hoisting on/off (the §5.1 automatic
  specialization that previously required manual work),
* global CSE on/off,
* beam width of the register scheduler (greedy → wide, §3.5: "no consistent
  improvement for values above 20"),
* approximate div/sqrt on the GPU µ kernels (§6.2: 25–35 % speedup).
"""


from conftest import emit_table


def test_ablation_blocking(benchmark, p1_full):
    """Layer-condition blocking reduces modeled memory traffic and time."""
    from repro.perfmodel import ECMModel, SKYLAKE_8174, analyze_traffic, blocking_factor

    mu = p1_full.mu_kernels[0]
    l2 = SKYLAKE_8174.level("L2").size_bytes
    n_opt = blocking_factor(mu, l2)
    ecm = ECMModel(SKYLAKE_8174)

    lines = [
        "Ablation — spatial blocking (µ-full, P1, SKL socket)",
        "",
        f"layer-condition optimal block edge: N = {n_opt} (paper: N < 67 → 60³)",
        "",
        f"{'block':>10} {'mem bytes/LUP':>14} {'socket MLUP/s':>14}",
    ]
    rates = {}
    for shape in [(60, 60, 60), (100, 100, 100), (200, 200, 200), (400, 400, 400)]:
        traffic = analyze_traffic(mu, shape)
        pred = ecm.predict(mu, shape)
        rate = pred.mlups(24)
        rates[shape[0]] = rate
        lines.append(
            f"{shape[0]:7d}³   {traffic.total_bytes(l2):14.0f} {rate:14.1f}"
        )
    emit_table("ablation_blocking", lines)
    assert rates[60] >= rates[400], "blocked sweeps must not be slower"

    benchmark(lambda: analyze_traffic(mu, (60, 60, 60)))


def test_ablation_hoisting(benchmark, p1_full):
    """Temperature-dependent subexpression hoisting (automatic LICM)."""
    phi, mu = p1_full.phi_kernels[0], p1_full.mu_kernels[0]
    lines = [
        "Ablation — loop-invariant hoisting of temperature subexpressions (P1)",
        "",
        f"{'kernel':8s} {'hoisted temps':>14} {'FLOPs w/ hoist':>15} {'w/o hoist':>10} {'saved':>7}",
    ]
    savings = {}
    for k in (phi, mu):
        with_h = k.operation_count().normalized_flops()
        without = k.operation_count(include_hoisted=True).normalized_flops()
        savings[k.name] = without - with_h
        lines.append(
            f"{k.name:8s} {len(k.hoisted):14d} {with_h:15.0f} {without:10.0f} "
            f"{without - with_h:7.0f}"
        )
    lines.append("")
    lines.append("the temperature T(x₀, t) varies along one axis only; every")
    lines.append("T-dependent subexpression is computed once per plane, not per cell")
    emit_table("ablation_hoisting", lines)
    assert savings[mu.name] > 0, "µ kernel must hoist temperature work"

    benchmark(lambda: mu.operation_count())


def test_ablation_cse(benchmark, p1_model):
    """Global CSE on/off for the φ kernel."""
    from repro.perfmodel import count_operations

    with_cse = p1_model.create_kernels(variant_phi="full").phi_kernels[0]
    no_cse_ac = with_cse.ac.inline_subexpressions()
    flops_cse = count_operations(with_cse.ac).normalized_flops()
    flops_inline = count_operations(no_cse_ac).normalized_flops()

    lines = [
        "Ablation — global common subexpression elimination (φ-full, P1)",
        "",
        f"  with CSE   : {flops_cse:9.0f} normalized FLOPs/cell "
        f"({len(with_cse.ac.subexpressions)} temporaries)",
        f"  without CSE: {flops_inline:9.0f} normalized FLOPs/cell (fully inlined)",
        f"  reduction  : {flops_inline / flops_cse:9.2f}x",
    ]
    emit_table("ablation_cse", lines)
    assert flops_inline > 2 * flops_cse, "CSE must remove substantial recomputation"

    benchmark(lambda: count_operations(with_cse.ac))


def test_ablation_beam_width(benchmark, p1_full):
    """Scheduler beam width sweep (paper: greedy already helps, flat >20)."""
    from repro.gpu.scheduling import schedule_for_registers

    mu = p1_full.mu_kernels[0]
    order = list(mu.ac.all_assignments)
    lines = [
        "Ablation — register scheduler beam width (µ-full, P1)",
        "",
        f"{'beam width':>11} {'max live values':>16} {'states explored':>16}",
    ]
    results = {}
    for width in (1, 2, 4, 8, 20):
        r = schedule_for_registers(order, beam_width=width)
        results[width] = r.max_live
        lines.append(f"{width:11d} {r.max_live:16d} {r.states_explored:16d}")
    lines.append("")
    lines.append("paper: effects visible already for a greedy search (width 1);")
    lines.append("       no consistent improvement above width ≈ 20")
    emit_table("ablation_beam_width", lines)
    assert results[20] <= results[1]
    baseline = max(
        schedule_for_registers(order[:0], beam_width=1).max_live, 0
    )  # trivial call for coverage
    assert baseline == 0

    benchmark(lambda: schedule_for_registers(order, beam_width=1))


def test_gpu_fastmath(benchmark, p1_model):
    """§6.2: approximate div/sqrt speeds up the µ kernels by 25–35 %."""
    from repro.gpu import TransformationSequence, apply_sequence

    exact = p1_model.create_kernels(variant_mu="full").mu_kernels[0]
    approx = p1_model.create_kernels(
        variant_mu="full", approximations=("division", "sqrt", "rsqrt")
    ).mu_kernels[0]

    seq = TransformationSequence(use_remat=True, use_scheduling=True, fence_interval=32)
    t_exact = apply_sequence(exact, seq).time_per_lup_ns
    t_approx = apply_sequence(approx, seq).time_per_lup_ns
    # GPU time model is occupancy/memory dominated; compare the arithmetic
    flops_exact = exact.operation_count().normalized_flops()
    flops_approx = approx.operation_count().normalized_flops()
    speedup = flops_exact / flops_approx

    lines = [
        "Ablation — approximate division/square roots (µ-full, P1)",
        "",
        f"  exact  : {flops_exact:8.0f} normalized FLOPs/cell, {t_exact:.2f} ns/LUP (GPU model)",
        f"  approx : {flops_approx:8.0f} normalized FLOPs/cell, {t_approx:.2f} ns/LUP",
        f"  arithmetic speedup: {speedup:.2f}x   (paper: 1.25–1.35x for the µ kernels)",
    ]
    emit_table("ablation_gpu_fastmath", lines)
    assert 1.1 < speedup < 1.8
    assert t_approx <= t_exact

    benchmark(lambda: exact.operation_count())
