"""Real measured kernel throughput on this host (pytest-benchmark proper).

Times the generated kernels of the P1 model through both execution
backends — vectorized NumPy and compiled C — on a 3D block.  These are the
genuinely *measured* numbers of the reproduction (the machine here has one
scalar core; the paper's AVX-512 socket numbers are reproduced by the ECM
model in the Fig. 2/3 benches).
"""

import numpy as np
import pytest


def _setup_arrays(kernels, n):
    from repro.backends.numpy_backend import create_arrays

    fields = sorted(set().union(*(k.fields for k in kernels)), key=lambda f: f.name)
    arrays = create_arrays(fields, (n, n, n), 1)
    rng = np.random.default_rng(0)
    for name in ("phi", "phi_dst"):
        if name in arrays:
            arrays[name][...] = rng.random(arrays[name].shape)
            arrays[name] /= arrays[name].sum(axis=-1, keepdims=True)
    return arrays


@pytest.fixture(scope="module", params=["numpy", "c"])
def backend(request):
    if request.param == "c":
        from repro.backends.c_backend import c_compiler_available

        if not c_compiler_available():
            pytest.skip("no C compiler")
    return request.param


def _compile(kernels, backend):
    # shared process-wide cache: re-parametrized benches reuse earlier builds
    from repro.profiling import compile_cached

    return [compile_cached(k, backend) for k in kernels]


def _attach_model_accuracy(benchmark, kernels, n):
    """Join the ECM prediction with the measured sweep time (Fig. 2 closure)."""
    from repro.observability import model_accuracy_rows
    from repro.profiling import SolverProfiler

    profiler = SolverProfiler()
    for k in kernels:
        profiler.record(k.name, benchmark.stats["mean"] / len(kernels), cells=n**3)
    rows = model_accuracy_rows(kernels, profiler, block_shape=(n, n, n))
    predicted_seconds = sum(n**3 / (r["predicted_mlups"] * 1e6) for r in rows)
    benchmark.extra_info["predicted MLUP/s"] = round(n**3 / predicted_seconds / 1e6, 3)
    benchmark.extra_info["model ratio"] = round(
        predicted_seconds / benchmark.stats["mean"], 4
    )


def _record_bench_json(bench_json, benchmark, name, backend, n):
    bench_json(
        "kernels", f"{name}/{backend}",
        params={"block": f"{n}x{n}x{n}", "backend": backend},
        mlups=n**3 / benchmark.stats["mean"] / 1e6,
        mean_seconds=benchmark.stats["mean"],
    )


class TestPhiKernelThroughput:
    def test_phi_full(self, benchmark, p1_full, backend, bench_json):
        n = 32
        kernels = [p1_full.phi_kernels[0]]
        compiled = _compile(kernels, backend)
        arrays = _setup_arrays(kernels, n)

        def sweep():
            for c in compiled:
                c(arrays, ghost_layers=1, t=0.0)

        benchmark(sweep)
        benchmark.extra_info["MLUP/s"] = round(n**3 / benchmark.stats["mean"] / 1e6, 3)
        benchmark.extra_info["backend"] = backend
        _attach_model_accuracy(benchmark, kernels, n)
        _record_bench_json(bench_json, benchmark, "phi_full", backend, n)


class TestMuKernelThroughput:
    def test_mu_full(self, benchmark, p1_full, backend, bench_json):
        n = 32
        kernels = p1_full.mu_kernels
        compiled = _compile(kernels, backend)
        arrays = _setup_arrays(kernels, n)

        def sweep():
            for c in compiled:
                c(arrays, ghost_layers=1, t=0.0)

        benchmark(sweep)
        benchmark.extra_info["MLUP/s"] = round(n**3 / benchmark.stats["mean"] / 1e6, 3)
        benchmark.extra_info["backend"] = backend
        _attach_model_accuracy(benchmark, kernels, n)
        _record_bench_json(bench_json, benchmark, "mu_full", backend, n)

    def test_mu_split(self, benchmark, p1_split, backend, bench_json):
        n = 32
        kernels = p1_split.mu_kernels
        compiled = _compile(kernels, backend)
        arrays = _setup_arrays(kernels, n)

        def sweep():
            for c in compiled:
                c(arrays, ghost_layers=1, t=0.0)

        benchmark(sweep)
        benchmark.extra_info["MLUP/s"] = round(n**3 / benchmark.stats["mean"] / 1e6, 3)
        benchmark.extra_info["backend"] = backend
        _attach_model_accuracy(benchmark, kernels, n)
        _record_bench_json(bench_json, benchmark, "mu_split", backend, n)


class TestProjectionThroughput:
    def test_projection(self, benchmark, p1_full, backend, bench_json):
        n = 32
        kernels = [p1_full.projection_kernel]
        compiled = _compile(kernels, backend)
        arrays = _setup_arrays(kernels, n)

        def sweep():
            compiled[0](arrays, ghost_layers=1)

        benchmark(sweep)
        benchmark.extra_info["backend"] = backend
        _attach_model_accuracy(benchmark, kernels, n)
        _record_bench_json(bench_json, benchmark, "projection", backend, n)
