"""Lowering diagnostic densities into reduction kernels and evaluating them.

All specs of a suite are fused into a single multi-output reduction kernel
(shared field reads and CSE across diagnostics), compiled through the
normal kernel cache.  Evaluation returns *raw interior sums*;
:meth:`DiagnosticsSuite.finalize` applies the ``dV`` / mean scaling once
the global sum and cell count are known — which is what makes the same
code path work for a single block and for a distributed merge.

Reproducibility: raw sums are combined with plain left-to-right double
adds in sorted block-coordinate order (:func:`merge_partials`), and the
single-process path can reproduce that exact operation order via
``tile_shape`` (see :func:`repro.backends.runtime.tile_sum`).  The numpy
backend is the bit-exact reference; the C backend's OpenMP reduction is
deterministic only for a fixed thread count.
"""

from __future__ import annotations

import numpy as np
import sympy as sp

from ..discretization.finite_differences import FiniteDifferenceDiscretization
from ..ir.kernel import KernelConfig, create_kernel
from ..profiling.cache import compile_cached
from ..symbolic.assignment import Assignment, AssignmentCollection
from ..symbolic.coordinates import spacing
from .derive import DiagnosticSpec, model_diagnostics

__all__ = ["DiagnosticsSuite", "merge_partials"]


def merge_partials(
    per_block: dict, n_outputs_hint: tuple[str, ...] | None = None
) -> tuple[dict[str, float], int]:
    """Combine per-block ``(raw_sums, n_cells)`` in sorted-coordinate order.

    The accumulation is a fixed sequence of scalar double additions, so the
    result is independent of how blocks were distributed over ranks — every
    rank merging the same allgathered partials gets bit-identical totals.
    """
    totals: dict[str, float] = (
        {name: 0.0 for name in n_outputs_hint} if n_outputs_hint else {}
    )
    n_total = 0
    for coords in sorted(per_block):
        raw, n_cells = per_block[coords]
        for name, value in raw.items():
            totals[name] = totals.get(name, 0.0) + float(value)
        n_total += int(n_cells)
    return totals, n_total


class DiagnosticsSuite:
    """A set of :class:`DiagnosticSpec` compiled into one reduction kernel."""

    def __init__(
        self,
        specs: list[DiagnosticSpec],
        dim: int,
        dx: float,
        backend: str = "numpy",
        name: str = "diagnostics",
        parameter_values: dict | None = None,
    ):
        if not specs:
            raise ValueError("diagnostics suite needs at least one spec")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate diagnostic names: {names}")
        self.specs = list(specs)
        self.dim = int(dim)
        self.dx = float(dx)
        self.backend = backend

        disc = FiniteDifferenceDiscretization(dim=self.dim, dst_map={})
        mains = []
        for spec in self.specs:
            sym = sp.Symbol(f"red_{spec.name}", real=True)
            mains.append(Assignment(sym, disc(spec.expr)))
        ac = AssignmentCollection(
            mains, name=name, reduction_symbols=[a.lhs.name for a in mains]
        )
        values = dict(parameter_values or {})
        for d in range(self.dim):
            values.setdefault(spacing(d), self.dx)
        self.kernel = create_kernel(
            ac, KernelConfig(parameter_values=values), name=name
        )
        self.compiled = compile_cached(self.kernel, backend)

    @classmethod
    def for_model(
        cls,
        model,
        backend: str = "numpy",
        extra_specs: tuple = (),
        name: str = "diagnostics",
    ) -> "DiagnosticsSuite":
        """Standard suite (free energy, fractions, solute mass, interface)."""
        specs = model_diagnostics(model) + list(extra_specs)
        return cls(
            specs,
            dim=model.params.dim,
            dx=model.params.dx,
            backend=backend,
            name=name,
            parameter_values=model.compile_time_constants(),
        )

    @property
    def names(self) -> list[str]:
        return [s.name for s in self.specs]

    @property
    def ghost_layers(self) -> int:
        return self.kernel.ghost_layers

    def partial(
        self,
        arrays: dict[str, np.ndarray],
        ghost_layers: int | None = None,
        block_offset=(0, 0, 0),
        origin=(0.0, 0.0, 0.0),
        tile_shape: tuple[int, ...] | None = None,
        **params,
    ) -> tuple[dict[str, float], int]:
        """Raw interior sums and cell count of one (ghost-layered) block."""
        raw = self.compiled(
            arrays,
            block_offset=block_offset,
            origin=origin,
            ghost_layers=ghost_layers,
            tile_shape=tile_shape,
            **params,
        )
        gl = (
            self.kernel.ghost_layers if ghost_layers is None else int(ghost_layers)
        )
        ref = arrays[self.kernel.fields[0].name]
        n_cells = int(
            np.prod([ref.shape[d] - 2 * gl for d in range(self.dim)])
        )
        out = {
            spec.name: float(raw[f"red_{spec.name}"]) for spec in self.specs
        }
        return out, n_cells

    def finalize(
        self, totals: dict[str, float], n_cells: int
    ) -> dict[str, float]:
        """Apply the per-spec scaling to globally merged raw sums."""
        dv = self.dx**self.dim
        out = {}
        for spec in self.specs:
            value = totals[spec.name]
            out[spec.name] = value * dv if spec.scale == "integral" else value / n_cells
        return out

    def evaluate(
        self,
        arrays: dict[str, np.ndarray],
        ghost_layers: int | None = None,
        tile_shape: tuple[int, ...] | None = None,
        **params,
    ) -> dict[str, float]:
        """Single-block convenience: partial sums + finalize in one call."""
        raw, n_cells = self.partial(
            arrays, ghost_layers=ghost_layers, tile_shape=tile_shape, **params
        )
        return self.finalize(raw, n_cells)
