"""Codegen-derived in-situ physics diagnostics.

The same symbolic functional that generates the PDEs also defines the
scalar observables of a run: total free energy, phase volume fractions,
solute mass, interface area.  This package derives those integrands
symbolically (:mod:`~repro.diagnostics.derive`), lowers them through the
standard discretization/IR pipeline into *reduction kernels*
(:mod:`~repro.diagnostics.suite`) and streams the per-step values into
CSV, metrics gauges and trace counter tracks
(:mod:`~repro.diagnostics.series`).
"""

from .derive import (
    DiagnosticSpec,
    functional_diagnostics,
    invariant_names,
    model_diagnostics,
)
from .series import DiagnosticsSeries
from .suite import DiagnosticsSuite, merge_partials

__all__ = [
    "DiagnosticSpec",
    "DiagnosticsSeries",
    "DiagnosticsSuite",
    "functional_diagnostics",
    "invariant_names",
    "merge_partials",
    "model_diagnostics",
]
