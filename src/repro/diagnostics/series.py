"""Time-series sink for diagnostics: rows + CSV + gauges + trace counters.

A :class:`DiagnosticsSeries` keeps every recorded row in memory (tests and
notebooks), optionally appends to a CSV file
(:class:`~repro.analysis.io.TimeSeriesWriter` schema: ``time_step,time,
<diagnostic...>``), mirrors the latest value of each diagnostic into the
metrics registry as ``repro_diagnostic{name="..."}`` gauges and tags the
values into the Chrome trace as counter events (rendered as stacked
counter tracks in ``chrome://tracing`` / Perfetto).
"""

from __future__ import annotations

from ..analysis.io import TimeSeriesWriter
from ..observability.metrics import get_registry
from ..observability.tracing import get_tracer

__all__ = ["DiagnosticsSeries"]


class DiagnosticsSeries:
    """Ordered record of diagnostic values over a run."""

    def __init__(
        self,
        names: list[str],
        csv_path=None,
        metrics: bool = True,
        trace: bool = True,
    ):
        self.names = list(names)
        self.columns = ["time_step", "time"] + self.names
        self.rows: list[dict] = []
        self.csv_path = str(csv_path) if csv_path is not None else None
        self._writer = (
            TimeSeriesWriter(csv_path, self.columns) if csv_path is not None else None
        )
        self._metrics = metrics
        self._trace = trace

    def record(self, time_step: int, time: float, values: dict[str, float]) -> dict:
        """Append one row; mirrors into CSV, gauges and trace counters."""
        missing = set(self.names) - set(values)
        if missing:
            raise KeyError(f"missing diagnostics: {sorted(missing)}")
        row = {"time_step": int(time_step), "time": float(time)}
        row.update({n: float(values[n]) for n in self.names})
        self.rows.append(row)
        if self._writer is not None:
            self._writer.append(**row)
        if self._metrics:
            registry = get_registry()
            for n in self.names:
                registry.gauge(
                    "repro_diagnostic", "physics diagnostic value", name=n
                ).set(row[n])
        if self._trace:
            get_tracer().add_counter(
                "diagnostics",
                {n: row[n] for n in self.names},
                category="physics",
            )
        return row

    def column(self, name: str) -> list[float]:
        """All recorded values of one column, in record order."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}; have {self.columns}")
        return [row[name] for row in self.rows]

    def last(self) -> dict | None:
        return self.rows[-1] if self.rows else None

    def __len__(self):
        return len(self.rows)
