"""Symbolic derivation of scalar diagnostics from the energy functional.

Every diagnostic is a cell-local density expression whose integral (or
mean) over the domain is the observable.  Densities are written with the
same :class:`~repro.symbolic.field.FieldAccess` /
:class:`~repro.symbolic.operators.Diff` vocabulary as the energy
functional itself, so the existing finite-difference layer lowers them to
stencils without any special cases — the diagnostics are *generated* from
the model exactly like the PDEs are (MOOSE calls the same concept a
"postprocessor").
"""

from __future__ import annotations

from dataclasses import dataclass

import sympy as sp

from ..symbolic.field import Field, FieldAccess
from ..symbolic.functional import EnergyFunctional
from ..symbolic.operators import Diff

__all__ = [
    "DiagnosticSpec",
    "gradient_magnitude",
    "invariant_names",
    "model_diagnostics",
    "functional_diagnostics",
]


def invariant_names(names, params=None) -> tuple[tuple[str, ...], str | None]:
    """Which diagnostics feed the invariant watchdogs.

    Returns ``(mass_names, energy_name)``: every ``solute_mass_*``
    diagnostic is conservation-checked; ``free_energy`` is decay-checked
    only when the run is isothermal and noise-free (with fluctuations or a
    temperature ramp ``dΨ/dt ≤ 0`` is not guaranteed by the variational
    structure).  *params* is a :class:`~repro.pfm.parameters.ModelParameters`
    (or ``None`` to skip the gating).
    """
    names = list(names)
    mass = tuple(n for n in names if n.startswith("solute_mass"))
    energy = "free_energy" if "free_energy" in names else None
    if energy is not None and params is not None:
        temperature = getattr(params, "temperature", None)
        isothermal = getattr(temperature, "time_derivative", 0) == 0
        if not isothermal or getattr(params, "fluctuation_amplitude", 0.0):
            energy = None
    return mass, energy


@dataclass(frozen=True)
class DiagnosticSpec:
    """One scalar observable defined by a cell-local density.

    ``scale`` decides how the raw interior sum is reported: ``"integral"``
    multiplies by the cell volume ``dV`` (free energy, solute mass,
    interface area), ``"mean"`` divides by the global cell count (volume
    fractions).
    """

    name: str
    expr: sp.Expr
    scale: str = "integral"
    description: str = ""

    def __post_init__(self):
        if self.scale not in ("integral", "mean"):
            raise ValueError(f"unknown diagnostic scale {self.scale!r}")
        object.__setattr__(self, "expr", sp.sympify(self.expr))


def gradient_magnitude(access: FieldAccess, dim: int) -> sp.Expr:
    """``|∇φ|`` as a symbolic density (lowered to central differences)."""
    return sp.sqrt(sp.Add(*[Diff(access, d) ** 2 for d in range(dim)]))


def model_diagnostics(model) -> list[DiagnosticSpec]:
    """The standard suite for a :class:`~repro.pfm.model.GrandPotentialModel`.

    * ``free_energy`` — ``∫ ε a + ω/ε + ψ dV``, the full grand-potential
      density (monotonically non-increasing for isothermal no-noise runs),
    * ``phase_fraction_<α>`` — mean of ``φ_α`` (volume fraction),
    * ``solute_mass_<m>`` — ``∫ c_m(φ,µ) dV`` with
      ``c_m = Σ_α c_α,m(µ,T) h_α(φ)``; conserved by the µ-equation,
    * ``interface_area`` — ``∫ ½ Σ_α |∇φ_α| dV`` (for two sharp phases
      this converges to the interface area times the profile integral).
    """
    p = model.params
    dim = p.dim
    specs = [
        DiagnosticSpec(
            "free_energy",
            model.energy_density(),
            scale="integral",
            description="total grand-potential functional Ψ",
        )
    ]
    for a in range(p.n_phases):
        specs.append(
            DiagnosticSpec(
                f"phase_fraction_{a}",
                model.phi.center(a),
                scale="mean",
                description=f"volume fraction of phase {a}",
            )
        )
    conc = model.driving_force.concentration_total(model.phi, model.mu, model.T)
    for m in range(p.n_mu):
        specs.append(
            DiagnosticSpec(
                f"solute_mass_{m}",
                conc[m],
                scale="integral",
                description=f"total solute mass of component {m}",
            )
        )
    specs.append(
        DiagnosticSpec(
            "interface_area",
            sp.Rational(1, 2)
            * sp.Add(
                *[
                    gradient_magnitude(model.phi.center(a), dim)
                    for a in range(p.n_phases)
                ]
            ),
            scale="integral",
            description="∫ ½ Σ_α |∇φ_α| dV",
        )
    )
    return specs


def functional_diagnostics(
    functional: EnergyFunctional, phi: Field, dim: int
) -> list[DiagnosticSpec]:
    """Diagnostics for a hand-built single-order-parameter functional.

    Used by models that assemble an :class:`EnergyFunctional` directly
    (e.g. the quickstart Allen-Cahn example) rather than going through
    :class:`~repro.pfm.model.GrandPotentialModel`.
    """
    return [
        DiagnosticSpec(
            "free_energy",
            functional.density,
            scale="integral",
            description="total free energy Ψ",
        ),
        DiagnosticSpec(
            "phase_fraction",
            phi.center(),
            scale="mean",
            description="volume fraction of the φ=1 phase",
        ),
        DiagnosticSpec(
            "interface_area",
            gradient_magnitude(phi.center(), dim),
            scale="integral",
            description="∫ |∇φ| dV",
        ),
    ]
