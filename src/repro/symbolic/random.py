"""Symbolic fluctuation terms lowered to counter-based RNG calls.

The PDE layer may add a fluctuation ``amplitude * random(-1, 1,
kind='philox')`` to an evolution equation (Eq. 7 of the paper).  During
discretization this becomes a :class:`RandomValue` leaf which backends lower
to a Philox-4x32-10 call keyed on (cell index, time step, stream) — stateless
and free of inter-cell data dependencies, so kernels stay trivially parallel.
"""

from __future__ import annotations

import itertools

import sympy as sp

__all__ = ["RandomValue", "random_uniform", "TIME_STEP", "SEED"]

#: Integer kernel parameter: the current time step (used as Philox key word).
TIME_STEP = sp.Symbol("time_step", integer=True, nonnegative=True)

#: Integer kernel parameter: the global seed (second Philox key word).
SEED = sp.Symbol("seed", integer=True, nonnegative=True)

_stream_counter = itertools.count()


class RandomValue(sp.Expr):
    """A uniform random number in ``[low, high)``, unique per (cell, step).

    ``stream`` distinguishes independent random numbers used within the same
    kernel; it selects one of the four 32-bit lanes / successive counters of
    the Philox generator.
    """

    is_real = True
    is_commutative = True

    def __new__(cls, low=-1, high=1, stream: int | None = None, kind: str = "philox"):
        if kind != "philox":
            raise ValueError(f"unsupported RNG kind {kind!r}; only 'philox' is implemented")
        if stream is None:
            stream = next(_stream_counter)
        obj = sp.Expr.__new__(
            cls, sp.sympify(low), sp.sympify(high), sp.Integer(stream)
        )
        return obj

    @property
    def low(self) -> sp.Expr:
        return self.args[0]

    @property
    def high(self) -> sp.Expr:
        return self.args[1]

    @property
    def stream(self) -> int:
        return int(self.args[2])

    @property
    def free_symbols(self):
        return self.low.free_symbols | self.high.free_symbols | {TIME_STEP, SEED}

    def _sympystr(self, printer):
        return (
            f"philox_uniform({printer._print(self.low)}, "
            f"{printer._print(self.high)}, stream={self.stream})"
        )

    _sympyrepr = _sympystr


def random_uniform(low=-1, high=1, kind: str = "philox", stream: int | None = None) -> RandomValue:
    """DSL entry point mirroring the paper's ``random(-1, 1, kind='philox')``."""
    return RandomValue(low, high, stream=stream, kind=kind)
