"""Spatial/temporal coordinate symbols and grid-spacing symbols.

The continuous layers of the pipeline (energy functional, PDE) are written in
terms of abstract coordinates ``x_0, x_1, x_2`` and time ``t``.  After
discretization these become *analytic dependencies* of a stencil: an
expression containing :data:`t` or a :class:`CoordinateSymbol` is evaluated
per cell (or hoisted out of inner loops when it only depends on outer loop
coordinates — see :mod:`repro.ir.loops`).
"""

from __future__ import annotations

import sympy as sp

__all__ = [
    "CoordinateSymbol",
    "coord",
    "x_",
    "t",
    "dt",
    "dx",
    "spacing",
    "all_coordinates",
]


class CoordinateSymbol(sp.Symbol):
    """A symbol representing the physical coordinate along one spatial axis.

    In generated kernels a coordinate symbol is lowered to
    ``origin[d] + (cell_index[d] + 0.5) * dx[d]`` (cell centred), possibly
    shifted by ``dx/2`` for staggered evaluations.
    """

    def __new__(cls, axis: int):
        axis = int(axis)
        obj = super().__new__(cls, f"x_{axis}", real=True)
        obj._axis = axis
        return obj

    # sympy's Symbol caching can hand back an object created earlier; the
    # axis is recoverable from the name, so make the property robust.
    @property
    def axis(self) -> int:
        return getattr(self, "_axis", int(self.name.split("_")[1]))

    def __getnewargs_ex__(self):
        return (self.axis,), {}

    # sympy's ReprPrinter dispatches on the class NAME and would route this
    # class to the sympy.vector CoordinateSymbol printer, which reads a
    # ``.coord_sys`` attribute we don't have; srepr() is what kernel
    # fingerprinting hashes, so emit our own deterministic form instead.
    def _sympyrepr(self, printer):
        return f"CoordinateSymbol({self.axis})"


def coord(axis: int) -> CoordinateSymbol:
    """Return the coordinate symbol for ``axis`` (0, 1 or 2)."""
    return CoordinateSymbol(axis)


#: Convenience tuple of the three spatial coordinate symbols.
x_ = (CoordinateSymbol(0), CoordinateSymbol(1), CoordinateSymbol(2))

#: The (continuous) time variable.  Becomes a kernel parameter.
t = sp.Symbol("t", real=True)

#: The time-step width of the explicit Euler scheme.
dt = sp.Symbol("dt", positive=True)


class _SpacingSymbol(sp.Symbol):
    """Grid spacing along one axis (``dx_0`` …).  Positive by construction."""

    def __new__(cls, axis: int):
        axis = int(axis)
        obj = super().__new__(cls, f"dx_{axis}", positive=True)
        obj._axis = axis
        return obj

    @property
    def axis(self) -> int:
        return getattr(self, "_axis", int(self.name.split("_")[1]))

    def __getnewargs_ex__(self):
        return (self.axis,), {}


def spacing(axis: int) -> sp.Symbol:
    """Return the grid-spacing symbol ``dx_<axis>``."""
    return _SpacingSymbol(axis)


#: Convenience tuple of the three spacing symbols.
dx = (spacing(0), spacing(1), spacing(2))


def all_coordinates(expr: sp.Expr) -> set[int]:
    """Return the set of spatial axes whose coordinate symbol occurs in *expr*."""
    return {s.axis for s in expr.atoms(CoordinateSymbol)}
