"""Evolution equations — the PDE layer.

An :class:`EvolutionEquation` couples the time derivative of one field
component to a right-hand side expression:

.. math::  r(\\phi)\\,\\partial_t u_\\alpha = \\mathrm{rhs}_\\alpha

with an optional local relaxation prefactor ``r`` (e.g. the ``τ(φ) ε`` of the
Allen-Cahn equation).  A :class:`PDESystem` groups the equations that one
compute kernel should update (e.g. all N phase fields, or all K−1 chemical
potential components).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import sympy as sp

from .field import Field, FieldAccess
from .operators import Transient

__all__ = ["EvolutionEquation", "PDESystem"]


class EvolutionEquation:
    """``relaxation * ∂t(unknown) = rhs`` for a single field component."""

    def __init__(self, unknown: FieldAccess, rhs: sp.Expr, relaxation: sp.Expr = 1):
        if not isinstance(unknown, FieldAccess):
            raise TypeError("unknown must be a FieldAccess")
        if any(o != 0 for o in unknown.offsets):
            raise ValueError("evolution equations must be written for the center cell")
        self.unknown = unknown
        self.rhs = sp.sympify(rhs)
        self.relaxation = sp.sympify(relaxation)

    @property
    def field(self) -> Field:
        return self.unknown.field

    def as_residual(self) -> sp.Expr:
        """``relaxation * ∂t u − rhs`` — the paper's ``φ_pdes`` form."""
        return self.relaxation * Transient(self.unknown) - self.rhs

    def subs(self, mapping) -> "EvolutionEquation":
        return EvolutionEquation(
            self.unknown,
            self.rhs.xreplace(mapping),
            self.relaxation.xreplace(mapping),
        )

    def __repr__(self):
        r = "" if self.relaxation == 1 else f"{self.relaxation} * "
        return f"{r}dt({self.unknown}) = {sp.sstr(self.rhs)[:80]}..."


class PDESystem:
    """The set of evolution equations updated by one kernel."""

    def __init__(self, equations: Sequence[EvolutionEquation], name: str = "pde"):
        equations = list(equations)
        if not equations:
            raise ValueError("PDESystem needs at least one equation")
        fields = {eq.field for eq in equations}
        if len(fields) != 1:
            raise ValueError(
                "all equations of one system must evolve the same field; "
                f"got {sorted(f.name for f in fields)}"
            )
        unknowns = [eq.unknown for eq in equations]
        if len(set(unknowns)) != len(unknowns):
            raise ValueError("duplicate unknown in PDE system")
        self.equations = equations
        self.name = name

    @property
    def field(self) -> Field:
        return self.equations[0].field

    @property
    def unknowns(self) -> list[FieldAccess]:
        return [eq.unknown for eq in self.equations]

    def subs(self, mapping) -> "PDESystem":
        return PDESystem([eq.subs(mapping) for eq in self.equations], name=self.name)

    def __iter__(self) -> Iterable[EvolutionEquation]:
        return iter(self.equations)

    def __len__(self):
        return len(self.equations)

    def __repr__(self):
        return f"PDESystem({self.name!r}, {len(self.equations)} equations on {self.field.name})"
