"""Symbolic fields and relative-indexed field accesses.

A :class:`Field` represents a multidimensional array distributed over the
simulation domain.  Accessing a field produces a :class:`FieldAccess` — a
:class:`sympy.Symbol` subclass carrying the field, a tuple of *relative*
spatial offsets (integers, or half-integers for staggered positions) and an
optional index into the field's inner (non-spatial) dimensions.

Because accesses are plain sympy symbols, the whole sympy toolbox
(differentiation, substitution, CSE, printing) works on stencil expressions
unchanged.  Example::

    >>> phi = Field("phi", spatial_dimensions=2, index_shape=(3,))
    >>> acc = phi[1, 0](2)          # east neighbour, phase index 2
    >>> acc.offsets, acc.index
    ((1, 0), (2,))
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

import sympy as sp

__all__ = ["Field", "FieldAccess", "fields"]

_DIRECTION_NAMES_3D = {
    (0, 0, 0): "C",
    (1, 0, 0): "E",
    (-1, 0, 0): "W",
    (0, 1, 0): "N",
    (0, -1, 0): "S",
    (0, 0, 1): "T",
    (0, 0, -1): "B",
}


def _offset_repr(off) -> str:
    off = sp.nsimplify(off)
    if off == sp.Rational(1, 2):
        return "h"
    if off == sp.Rational(-1, 2):
        return "mh"
    i = int(off)
    return str(i) if i >= 0 else f"m{-i}"


class Field:
    """A named, typed array over the structured grid.

    Parameters
    ----------
    name:
        Unique field name.  Field identity in sympy expressions is determined
        by name, so two fields of the same name must describe the same array.
    spatial_dimensions:
        Number of spatial axes (2 or 3).
    index_shape:
        Shape of the inner dimensions, e.g. ``(4,)`` for a 4-phase vector
        field or ``(2, 3)`` for a matrix-valued field.  Empty for scalars.
    dtype:
        Element type name understood by the backends ("double" or "float").
    staggered:
        Marks flux fields that live on cell faces (used by split kernels).
        The *first* index dimension of a staggered field enumerates the face
        normal direction.
    """

    def __init__(
        self,
        name: str,
        spatial_dimensions: int = 3,
        index_shape: Sequence[int] = (),
        dtype: str = "double",
        staggered: bool = False,
        slot_axes: Sequence[int] | None = None,
    ):
        if spatial_dimensions not in (1, 2, 3):
            raise ValueError("spatial_dimensions must be 1, 2 or 3")
        self.name = name
        self.spatial_dimensions = int(spatial_dimensions)
        self.index_shape = tuple(int(s) for s in index_shape)
        self.dtype = dtype
        self.staggered = bool(staggered)
        #: for staggered (flux) fields: face-normal axis of each slot of the
        #: first index dimension — drives the extended write regions
        self.slot_axes = tuple(slot_axes) if slot_axes is not None else None
        if self.slot_axes is not None and len(self.slot_axes) != (
            self.index_shape[0] if self.index_shape else 0
        ):
            raise ValueError("slot_axes length must match first index extent")

    # -- accessing ---------------------------------------------------------

    @property
    def index_dimensions(self) -> int:
        return len(self.index_shape)

    def center(self, *index) -> "FieldAccess":
        """Access the field at the current cell."""
        return FieldAccess(self, (0,) * self.spatial_dimensions, index)

    def __call__(self, *index) -> "FieldAccess":
        return self.center(*index)

    def __getitem__(self, offsets) -> "_OffsetView":
        if not isinstance(offsets, tuple):
            offsets = (offsets,)
        if len(offsets) != self.spatial_dimensions:
            raise ValueError(
                f"field {self.name} has {self.spatial_dimensions} spatial "
                f"dimensions, got {len(offsets)} offsets"
            )
        return _OffsetView(self, offsets)

    def neighbor(self, axis: int, distance: int = 1, index=()) -> "FieldAccess":
        """Access the neighbour ``distance`` cells along ``axis``."""
        off = [0] * self.spatial_dimensions
        off[axis] = distance
        return FieldAccess(self, tuple(off), index)

    def accesses(self) -> Iterable["FieldAccess"]:
        """Iterate over all center accesses (every inner index)."""
        if not self.index_shape:
            yield self.center()
            return
        for idx in itertools.product(*(range(s) for s in self.index_shape)):
            yield self.center(*idx)

    # -- misc ---------------------------------------------------------------

    def signature(self) -> str:
        """Deterministic short tag of the field's identity-defining data."""
        import zlib

        payload = repr(
            (self.spatial_dimensions, self.index_shape, self.dtype, self.staggered)
        ).encode()
        return format(zlib.crc32(payload) & 0xFFFF, "04x")

    def __repr__(self):
        idx = f", index_shape={self.index_shape}" if self.index_shape else ""
        return f"Field({self.name!r}, {self.spatial_dimensions}D{idx})"

    def __eq__(self, other):
        return isinstance(other, Field) and (
            self.name,
            self.spatial_dimensions,
            self.index_shape,
            self.dtype,
            self.staggered,
        ) == (
            other.name,
            other.spatial_dimensions,
            other.index_shape,
            other.dtype,
            other.staggered,
        )

    def __hash__(self):
        return hash((self.name, self.spatial_dimensions, self.index_shape))


class _OffsetView:
    """Intermediate of ``field[dx, dy, dz]`` awaiting an inner index call."""

    __slots__ = ("field", "offsets")

    def __init__(self, field: Field, offsets):
        self.field = field
        self.offsets = offsets

    def __call__(self, *index) -> "FieldAccess":
        return FieldAccess(self.field, self.offsets, index)

    # allow fields without index dims to be used directly as expression
    def _as_access(self) -> "FieldAccess":
        return FieldAccess(self.field, self.offsets, ())

    def _sympy_(self):
        return self._as_access()

    def __add__(self, other):
        return self._as_access() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self._as_access() - other

    def __rsub__(self, other):
        return other - self._as_access()

    def __mul__(self, other):
        return self._as_access() * other

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._as_access() / other

    def __rtruediv__(self, other):
        return other / self._as_access()

    def __pow__(self, other):
        return self._as_access() ** other

    def __neg__(self):
        return -self._as_access()


class FieldAccess(sp.Symbol):
    """A relative access into a :class:`Field` — a sympy symbol with payload.

    The symbol name encodes field, offsets and index, so identical accesses
    unify under sympy's symbol cache and distinct accesses stay distinct.
    """

    def __new__(cls, field: Field, offsets, index=()):
        offsets = tuple(sp.nsimplify(o) for o in offsets)
        index = tuple(int(i) for i in index)
        if len(index) != field.index_dimensions:
            raise ValueError(
                f"field {field.name} expects {field.index_dimensions} inner "
                f"indices, got {len(index)}"
            )
        for i, s in zip(index, field.index_shape):
            if not 0 <= i < s:
                raise IndexError(f"index {index} out of bounds for {field}")
        int_offsets = tuple(int(o) for o in offsets) if all(
            o == int(o) for o in offsets
        ) else None
        if int_offsets is not None and len(offsets) == 3 and int_offsets in _DIRECTION_NAMES_3D:
            pos = _DIRECTION_NAMES_3D[int_offsets]
        else:
            pos = "_".join(_offset_repr(o) for o in offsets)
        # the field signature in the name keeps two *different* fields that
        # happen to share a name (e.g. the 4-phase P1 and 3-phase P2 "phi")
        # from unifying in sympy's symbol cache
        name = f"{field.name}_{field.signature()}__{pos}"
        if index:
            name += "__" + "_".join(str(i) for i in index)
        obj = super().__new__(cls, name, real=True)
        cached_field = getattr(obj, "_field", None)
        if cached_field is not None and cached_field != field:
            raise RuntimeError(
                f"field access symbol cache collision for {name!r}"
            )  # pragma: no cover - signature should prevent this
        obj._field = field
        obj._offsets = offsets
        obj._index = index
        return obj

    @property
    def field(self) -> Field:
        return self._field

    @property
    def offsets(self) -> tuple:
        return tuple(self._offsets)

    @property
    def index(self) -> tuple:
        return tuple(self._index)

    @property
    def is_staggered_position(self) -> bool:
        """True when any offset is a half-integer (face position)."""
        return any(o != int(o) for o in self._offsets)

    def shifted(self, axis: int, distance) -> "FieldAccess":
        """Return the access displaced by ``distance`` cells along ``axis``."""
        off = list(self._offsets)
        off[axis] = off[axis] + sp.nsimplify(distance)
        return FieldAccess(self._field, tuple(off), self._index)

    def at_offset(self, offsets) -> "FieldAccess":
        """Return the same (field, index) access at absolute relative *offsets*."""
        return FieldAccess(self._field, tuple(offsets), self._index)

    def with_index(self, *index) -> "FieldAccess":
        return FieldAccess(self._field, self._offsets, index)

    @property
    def max_abs_offset(self) -> int:
        return max((abs(int(sp.ceiling(abs(o)))) for o in self._offsets), default=0)

    def __getnewargs_ex__(self):
        return (self._field, self._offsets, self._index), {}


def fields(spec: str, **kwargs) -> tuple:
    """Create several fields from a compact description string.

    The grammar follows the paper's DSL examples::

        phi, mu = fields("phi(4), mu(2): double[3D]")
        f = fields("f: double[2D]")

    ``name(n)`` gives an inner index dimension of extent *n*; the part after
    ``:`` fixes dtype and spatial dimensionality for all fields in the spec.
    """
    dtype = "double"
    dims = 3
    if ":" in spec:
        spec, rhs = spec.split(":")
        rhs = rhs.strip()
        if "[" in rhs:
            dtype, dim_part = rhs.split("[")
            dtype = dtype.strip() or "double"
            dims = int(dim_part.rstrip("]").rstrip("Dd"))
        elif rhs:
            dtype = rhs
    result = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "(" in part:
            name, idx_part = part.split("(")
            shape = tuple(
                int(v) for v in idx_part.rstrip(")").split(";") if v
            ) or (int(idx_part.rstrip(")")),)
            result.append(
                Field(name.strip(), spatial_dimensions=dims, index_shape=shape,
                      dtype=dtype, **kwargs)
            )
        else:
            result.append(
                Field(part, spatial_dimensions=dims, dtype=dtype, **kwargs)
            )
    return tuple(result) if len(result) != 1 else result[0]
