"""Energy functionals and variational derivatives — the topmost DSL layer.

A phase-field model is defined by a free-energy functional

.. math::

    \\Psi(\\phi, \\mu, T) = \\int_V \\epsilon\\, a(\\phi, \\nabla\\phi)
        + \\tfrac{1}{\\epsilon}\\,\\omega(\\phi) + \\psi(\\phi, \\mu, T)\\, dV .

The density is written with field accesses and :class:`~repro.symbolic.operators.Diff`
nodes (via ``grad``).  :func:`functional_derivative` computes the variational
(Euler-Lagrange) derivative

.. math::

    \\frac{\\delta \\Psi}{\\delta \\phi_\\alpha} =
        \\frac{\\partial \\psi}{\\partial \\phi_\\alpha}
        - \\sum_i \\partial_i \\frac{\\partial \\psi}{\\partial(\\partial_i \\phi_\\alpha)} ,

yielding an expression with (possibly nested) ``Diff`` nodes that the
discretization layer lowers to stencils.
"""

from __future__ import annotations

from typing import Sequence

import sympy as sp

from .field import FieldAccess
from .operators import Diff

__all__ = ["functional_derivative", "EnergyFunctional"]


def _diff_atoms(expr: sp.Expr) -> set[Diff]:
    """All first-order Diff nodes whose argument is a plain field access."""
    atoms = set()
    for d in expr.atoms(Diff):
        if not isinstance(d.arg, FieldAccess):
            raise ValueError(
                "energy densities may only contain first derivatives of field "
                f"accesses; found {d}"
            )
        atoms.add(d)
    return atoms


def functional_derivative(energy_density: sp.Expr, access: FieldAccess) -> sp.Expr:
    """Variational derivative ``δ(∫ energy_density dV) / δ access``.

    ``Diff(access, i)`` nodes inside the density are treated as independent
    variables (standard calculus of variations); the divergence part is
    returned with an outer unevaluated ``Diff`` so that the discretizer can
    apply the staggered divergence-of-fluxes scheme.
    """
    from ..observability.tracing import get_tracer

    with get_tracer().span(
        f"variational_derivative:{access.name}", category="pde"
    ):
        return _functional_derivative(energy_density, access)


def _functional_derivative(energy_density: sp.Expr, access: FieldAccess) -> sp.Expr:
    energy_density = sp.sympify(energy_density)
    dim = access.field.spatial_dimensions

    dummies: dict[Diff, sp.Dummy] = {}
    for d in _diff_atoms(energy_density):
        dummies[d] = sp.Dummy(f"grad{d.axis}_{d.arg.name}", real=True)
    flat = energy_density.xreplace(dummies)
    back = {v: k for k, v in dummies.items()}

    bulk = sp.diff(flat, access).xreplace(back)

    divergence_terms = []
    for i in range(dim):
        key = Diff(access, i)
        if key in dummies:
            inner = sp.diff(flat, dummies[key]).xreplace(back)
            if inner != 0:
                divergence_terms.append(Diff(inner, i))
    return bulk - sp.Add(*divergence_terms)


class EnergyFunctional:
    """Convenience container for a functional of the paper's form (Eq. 3).

    Parameters
    ----------
    gradient_energy:
        ``a(φ, ∇φ)`` — scaled by ``ε`` in the density.
    potential:
        ``ω(φ)`` — scaled by ``1/ε``.
    driving_force:
        ``ψ(φ, µ, T)`` — entering unscaled.
    epsilon:
        Interface width parameter (symbol or number).
    extra_terms:
        Additional density contributions (e.g. elastic or magnetic energy)
        added verbatim — the "user can extend the description on each level"
        hook from the paper.
    """

    def __init__(
        self,
        gradient_energy: sp.Expr = 0,
        potential: sp.Expr = 0,
        driving_force: sp.Expr = 0,
        epsilon: sp.Expr = sp.Symbol("epsilon", positive=True),
        extra_terms: Sequence[sp.Expr] = (),
    ):
        self.gradient_energy = sp.sympify(gradient_energy)
        self.potential = sp.sympify(potential)
        self.driving_force = sp.sympify(driving_force)
        self.epsilon = sp.sympify(epsilon)
        self.extra_terms = [sp.sympify(e) for e in extra_terms]

    @property
    def density(self) -> sp.Expr:
        return (
            self.epsilon * self.gradient_energy
            + self.potential / self.epsilon
            + self.driving_force
            + sp.Add(*self.extra_terms)
        )

    def variational_derivative(self, access: FieldAccess) -> sp.Expr:
        """``δΨ/δ(access)`` of the full density."""
        return functional_derivative(self.density, access)

    def add_term(self, term: sp.Expr) -> "EnergyFunctional":
        self.extra_terms.append(sp.sympify(term))
        return self

    def __repr__(self):
        return (
            f"EnergyFunctional(eps*a + omega/eps + psi"
            f"{' + %d extra' % len(self.extra_terms) if self.extra_terms else ''})"
        )
