"""SSA assignments and assignment collections — the stencil representation.

After discretization, a kernel is a list of assignments in static single
assignment (SSA) form: subexpression assignments bind fresh temporary
symbols, main assignments write field accesses.  This is the representation
all optimization passes (:mod:`repro.simplification`), the IR builder and
the backends consume.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import sympy as sp

from .field import Field, FieldAccess

__all__ = ["Assignment", "AssignmentCollection"]


@dataclass(frozen=True)
class Assignment:
    """A single ``lhs <- rhs`` binding.

    ``lhs`` is either a plain :class:`sympy.Symbol` (a temporary, assigned
    exactly once) or a :class:`FieldAccess` (an array store).
    """

    lhs: sp.Symbol
    rhs: sp.Expr

    def __post_init__(self):
        object.__setattr__(self, "rhs", sp.sympify(self.rhs))
        if not isinstance(self.lhs, sp.Symbol):
            raise TypeError(f"assignment lhs must be a symbol, got {self.lhs!r}")

    @property
    def is_field_store(self) -> bool:
        return isinstance(self.lhs, FieldAccess)

    def subs(self, mapping) -> "Assignment":
        return Assignment(self.lhs, self.rhs.xreplace(mapping))

    def transform_rhs(self, f: Callable[[sp.Expr], sp.Expr]) -> "Assignment":
        return Assignment(self.lhs, f(self.rhs))

    def __iter__(self):
        return iter((self.lhs, self.rhs))

    def __str__(self):
        return f"{self.lhs} <- {self.rhs}"


class AssignmentCollection:
    """An ordered SSA program: subexpressions followed by main assignments.

    Invariants (checked by :meth:`validate`):

    * every temporary is assigned at most once,
    * temporaries are defined before use,
    * main assignments store to field accesses — unless their lhs name is
      listed in ``reduction_symbols``, which marks it as a *reduction
      output*: a scalar accumulated (summed) over the iteration space
      instead of stored per cell.
    """

    def __init__(
        self,
        main_assignments: Sequence[Assignment],
        subexpressions: Sequence[Assignment] = (),
        name: str = "kernel",
        reduction_symbols: Iterable[str] = (),
    ):
        self.main_assignments = list(main_assignments)
        self.subexpressions = list(subexpressions)
        self.name = name
        # reduction outputs are tracked by *name* so the marking survives
        # rhs transformations that rebuild symbols (lhs objects are kept
        # by transform_rhs, but names are the stable identity here)
        self.reduction_symbols = frozenset(
            s.name if isinstance(s, sp.Symbol) else str(s)
            for s in reduction_symbols
        )

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_dict(cls, mapping: dict, name: str = "kernel") -> "AssignmentCollection":
        return cls([Assignment(k, v) for k, v in mapping.items()], name=name)

    def copy(
        self,
        main_assignments: Sequence[Assignment] | None = None,
        subexpressions: Sequence[Assignment] | None = None,
    ) -> "AssignmentCollection":
        return AssignmentCollection(
            list(self.main_assignments if main_assignments is None else main_assignments),
            list(self.subexpressions if subexpressions is None else subexpressions),
            name=self.name,
            reduction_symbols=self.reduction_symbols,
        )

    # -- inspection ------------------------------------------------------------

    @property
    def all_assignments(self) -> list[Assignment]:
        return self.subexpressions + self.main_assignments

    @property
    def bound_symbols(self) -> set[sp.Symbol]:
        return {a.lhs for a in self.all_assignments}

    @property
    def defined_temporaries(self) -> set[sp.Symbol]:
        return {a.lhs for a in self.subexpressions if not a.is_field_store}

    @property
    def free_symbols(self) -> set[sp.Symbol]:
        """Symbols read but never bound (kernel parameters + field reads)."""
        free: set[sp.Symbol] = set()
        bound: set[sp.Symbol] = set()
        for a in self.all_assignments:
            free |= a.rhs.free_symbols - bound
            bound.add(a.lhs)
        return free

    @property
    def field_reads(self) -> set[FieldAccess]:
        reads: set[FieldAccess] = set()
        written: set[FieldAccess] = set()
        for a in self.all_assignments:
            reads |= {
                s for s in a.rhs.atoms(FieldAccess) if s not in written
            }
            if a.is_field_store:
                written.add(a.lhs)
        return reads

    @property
    def field_writes(self) -> set[FieldAccess]:
        return {a.lhs for a in self.all_assignments if a.is_field_store}

    @property
    def fields_read(self) -> set[Field]:
        return {acc.field for acc in self.field_reads}

    @property
    def fields_written(self) -> set[Field]:
        return {acc.field for acc in self.field_writes}

    @property
    def fields(self) -> set[Field]:
        return self.fields_read | self.fields_written

    @property
    def parameters(self) -> set[sp.Symbol]:
        """Free non-field symbols — these become arguments of the kernel."""
        return {s for s in self.free_symbols if not isinstance(s, FieldAccess)}

    def ghost_layers_required(self) -> int:
        """Widest absolute integer offset over all field reads."""
        return max((acc.max_abs_offset for acc in self.field_reads), default=0)

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        seen: set[sp.Symbol] = set()
        for a in self.subexpressions:
            if a.is_field_store:
                raise ValueError(f"field store {a.lhs} among subexpressions")
            if a.lhs in seen:
                raise ValueError(f"temporary {a.lhs} assigned twice (not SSA)")
            undefined = {
                s
                for s in a.rhs.free_symbols
                if not isinstance(s, FieldAccess)
                and s in self.defined_temporaries
                and s not in seen
            }
            if undefined:
                raise ValueError(f"{a.lhs} uses temporaries before definition: {undefined}")
            seen.add(a.lhs)
        for a in self.main_assignments:
            if not a.is_field_store and a.lhs.name not in self.reduction_symbols:
                raise ValueError(f"main assignment must store to a field: {a}")
            if a.is_field_store and a.lhs.name in self.reduction_symbols:
                raise ValueError(
                    f"reduction output {a.lhs} must not be a field store"
                )

    @property
    def reduction_outputs(self) -> list[Assignment]:
        """Main assignments accumulated as scalar sums (in program order)."""
        return [
            a
            for a in self.main_assignments
            if not a.is_field_store and a.lhs.name in self.reduction_symbols
        ]

    # -- transformations --------------------------------------------------------

    def transform_rhs(self, f: Callable[[sp.Expr], sp.Expr]) -> "AssignmentCollection":
        return self.copy(
            [a.transform_rhs(f) for a in self.main_assignments],
            [a.transform_rhs(f) for a in self.subexpressions],
        )

    def subs(self, mapping: dict) -> "AssignmentCollection":
        return self.transform_rhs(lambda e: e.xreplace(mapping))

    def inline_subexpressions(self) -> "AssignmentCollection":
        """Substitute all temporaries back into the main assignments."""
        table: dict[sp.Symbol, sp.Expr] = {}
        for a in self.subexpressions:
            table[a.lhs] = a.rhs.xreplace(table)
        return self.copy(
            [a.subs(table) for a in self.main_assignments], subexpressions=[]
        )

    def topological_sort(self) -> "AssignmentCollection":
        """Re-order subexpressions so definitions precede uses."""
        remaining = list(self.subexpressions)
        defined: set[sp.Symbol] = set()
        temps = {a.lhs for a in remaining}
        ordered: list[Assignment] = []
        while remaining:
            progressed = False
            still = []
            for a in remaining:
                deps = a.rhs.free_symbols & temps
                if deps <= defined:
                    ordered.append(a)
                    defined.add(a.lhs)
                    progressed = True
                else:
                    still.append(a)
            if not progressed:
                raise ValueError("cyclic dependency among subexpressions")
            remaining = still
        return self.copy(subexpressions=ordered)

    def prune_dead_subexpressions(self) -> "AssignmentCollection":
        """Drop temporaries that do not (transitively) feed a main assignment."""
        needed: set[sp.Symbol] = set()
        for a in self.main_assignments:
            needed |= a.rhs.free_symbols
        kept: list[Assignment] = []
        for a in reversed(self.subexpressions):
            if a.lhs in needed:
                kept.append(a)
                needed |= a.rhs.free_symbols
        return self.copy(subexpressions=list(reversed(kept)))

    def fresh_symbol_generator(self, prefix: str = "xi") -> Iterable[sp.Symbol]:
        taken = {s.name for s in self.bound_symbols | self.free_symbols}
        for i in itertools.count():
            name = f"{prefix}_{i}"
            if name not in taken:
                yield sp.Symbol(name, real=True)

    # -- dunder ------------------------------------------------------------------

    def __len__(self):
        return len(self.all_assignments)

    def __iter__(self):
        return iter(self.all_assignments)

    def __str__(self):
        lines = [f"AssignmentCollection '{self.name}':"]
        lines += [f"  [sub ] {a}" for a in self.subexpressions]
        lines += [f"  [main] {a}" for a in self.main_assignments]
        return "\n".join(lines)

    __repr__ = __str__
