"""Symbolic layers: fields, continuous operators, functionals, PDEs, SSA form."""

from .assignment import Assignment, AssignmentCollection
from .coordinates import CoordinateSymbol, coord, dt, dx, spacing, t, x_
from .field import Field, FieldAccess, fields
from .functional import EnergyFunctional, functional_derivative
from .operators import (
    Diff,
    Divergence,
    Transient,
    diff,
    div,
    expand_diff,
    grad,
    gradient_norm,
    transient,
)
from .pde import EvolutionEquation, PDESystem
from .random import SEED, TIME_STEP, RandomValue, random_uniform

__all__ = [
    "Assignment",
    "AssignmentCollection",
    "CoordinateSymbol",
    "coord",
    "dt",
    "dx",
    "spacing",
    "t",
    "x_",
    "Field",
    "FieldAccess",
    "fields",
    "EnergyFunctional",
    "functional_derivative",
    "Diff",
    "Divergence",
    "Transient",
    "diff",
    "div",
    "expand_diff",
    "grad",
    "gradient_norm",
    "transient",
    "EvolutionEquation",
    "PDESystem",
    "RandomValue",
    "random_uniform",
    "SEED",
    "TIME_STEP",
]
