"""Unevaluated continuous differential operators.

These nodes let the energy-functional and PDE layers be written in continuous
mathematical notation; they are later eliminated by the discretization layer
(:mod:`repro.discretization.finite_differences`):

* :class:`Diff` — spatial partial derivative ``∂/∂x_axis`` of an arbitrary
  expression.
* :class:`Transient` — time derivative ``∂/∂t`` of a field access.
* :class:`Divergence` — explicit divergence of a flux vector; the
  discretizer treats its components as staggered fluxes and can split them
  into a pre-computation kernel.

plus the vector-calculus helpers ``grad``, ``div``, ``gradient_norm``.
"""

from __future__ import annotations


import sympy as sp

from .field import FieldAccess

__all__ = [
    "Diff",
    "Transient",
    "Divergence",
    "diff",
    "grad",
    "div",
    "transient",
    "gradient_norm",
    "expand_diff",
    "diff_depth",
]


class Diff(sp.Expr):
    """Unevaluated partial derivative of *arg* along spatial *axis*.

    ``Diff`` does **not** auto-apply linearity or the product rule; use
    :func:`expand_diff` to push derivatives down to field accesses where this
    is wanted.  Keeping the operator unevaluated preserves the
    divergence-of-fluxes structure the staggered discretization needs.
    """

    _op_priority = 12.0

    def __new__(cls, arg, axis: int):
        arg = sp.sympify(arg)
        axis = int(axis)
        if arg.is_Number:
            return sp.S.Zero
        obj = sp.Expr.__new__(cls, arg, sp.Integer(axis))
        return obj

    @property
    def arg(self) -> sp.Expr:
        return self.args[0]

    @property
    def axis(self) -> int:
        return int(self.args[1])

    def _sympystr(self, printer):
        return f"D({printer._print(self.arg)}, {self.axis})"

    _sympyrepr = _sympystr

    @property
    def free_symbols(self):
        return self.arg.free_symbols


class Transient(sp.Expr):
    """Unevaluated time derivative ``∂(access)/∂t`` of a field access.

    The discretizer resolves it either via the explicit Euler update itself
    (when it is the left-hand side of an evolution equation) or — when it
    appears on a right-hand side, as in the anti-trapping current — by the
    finite difference ``(dst − src)/dt`` of the paired destination field.
    """

    _op_priority = 12.0

    def __new__(cls, arg):
        arg = sp.sympify(arg)
        if not isinstance(arg, FieldAccess):
            raise TypeError("Transient expects a FieldAccess")
        return sp.Expr.__new__(cls, arg)

    @property
    def arg(self) -> FieldAccess:
        return self.args[0]

    def _sympystr(self, printer):
        return f"dt({printer._print(self.arg)})"

    _sympyrepr = _sympystr


class Divergence(sp.Expr):
    """Explicit divergence ``Σ_i ∂(flux_i)/∂x_i`` of a flux vector.

    Marking divergences explicitly lets the discretizer evaluate each flux
    component at staggered (face) positions and lets the split-kernel
    transformation cache them in a staggered temporary field (the "µ-split"
    variant of the paper).
    """

    def __new__(cls, *flux):
        # accept both Divergence([fx, fy, fz]) and Divergence(fx, fy, fz);
        # the latter form is what sympy's tree-rebuilding (func(*args)) uses
        if len(flux) == 1 and isinstance(flux[0], (list, tuple, sp.MatrixBase)):
            flux = tuple(flux[0])
        flux = tuple(sp.sympify(f) for f in flux)
        if all(f == 0 for f in flux):
            return sp.S.Zero
        return sp.Expr.__new__(cls, *flux)

    @property
    def flux(self) -> tuple:
        return self.args

    @property
    def dim(self) -> int:
        return len(self.args)

    def as_diff_sum(self) -> sp.Expr:
        return sp.Add(*[Diff(f, i) for i, f in enumerate(self.args)])

    def _sympystr(self, printer):
        inner = ", ".join(printer._print(a) for a in self.args)
        return f"Div({inner})"

    _sympyrepr = _sympystr


# ---------------------------------------------------------------------------
# user-facing helpers


def diff(expr, *axes) -> sp.Expr:
    """Nested unevaluated derivative: ``diff(f, 0, 1) == ∂_y ∂_x f``."""
    result = sp.sympify(expr)
    for a in axes:
        result = Diff(result, a)
    return result


def grad(expr, dim: int = 3) -> sp.Matrix:
    """Gradient vector of *expr* (column matrix of :class:`Diff` nodes)."""
    expr = sp.sympify(expr)
    if isinstance(expr, FieldAccess):
        dim = expr.field.spatial_dimensions
    return sp.Matrix([Diff(expr, i) for i in range(dim)])


def div(flux) -> sp.Expr:
    """Divergence of a flux vector (sequence or sympy Matrix)."""
    if isinstance(flux, sp.MatrixBase):
        flux = list(flux)
    return Divergence(flux)


def transient(access) -> Transient:
    """Time derivative of a field access."""
    return Transient(access)


def gradient_norm(expr, dim: int = 3, squared: bool = False) -> sp.Expr:
    """``|∇expr|`` (or its square) built from unevaluated derivatives."""
    expr = sp.sympify(expr)
    if isinstance(expr, FieldAccess):
        dim = expr.field.spatial_dimensions
    sq = sp.Add(*[Diff(expr, i) ** 2 for i in range(dim)])
    return sq if squared else sp.sqrt(sq)


# ---------------------------------------------------------------------------
# structural transformations


def expand_diff(expr: sp.Expr) -> sp.Expr:
    """Apply linearity and product rule to push Diff nodes onto atoms.

    Constants (expressions without field accesses or coordinates) have zero
    spatial derivative.  ``Diff`` of a non-atomic function (e.g. sqrt of an
    access) falls back to the chain rule via sympy differentiation with a
    dummy.
    """
    from .coordinates import CoordinateSymbol

    def depends_on_space(e: sp.Expr) -> bool:
        return bool(e.atoms(FieldAccess, CoordinateSymbol, Transient))

    def rec(e: sp.Expr) -> sp.Expr:
        if isinstance(e, Diff):
            a, axis = rec(e.arg), e.axis
            if not depends_on_space(a):
                return sp.S.Zero
            if isinstance(a, (FieldAccess, CoordinateSymbol)):
                return Diff(a, axis)
            if isinstance(a, sp.Add):
                return sp.Add(*[rec(Diff(term, axis)) for term in a.args])
            if isinstance(a, sp.Mul):
                terms = []
                for i, factor in enumerate(a.args):
                    others = a.args[:i] + a.args[i + 1:]
                    d = rec(Diff(factor, axis))
                    if d != 0:
                        terms.append(sp.Mul(*others) * d)
                return sp.Add(*terms)
            if isinstance(a, sp.Pow):
                base, expo = a.args
                if not depends_on_space(expo):
                    return expo * base ** (expo - 1) * rec(Diff(base, axis))
            # generic chain rule through a unary function
            if isinstance(a, sp.Function) and len(a.args) == 1:
                u = sp.Dummy("u")
                outer = sp.diff(a.func(u), u).subs(u, a.args[0])
                return outer * rec(Diff(a.args[0], axis))
            return Diff(a, axis)
        if not e.args:
            return e
        return e.func(*[rec(arg) for arg in e.args])

    return rec(sp.sympify(expr))


def diff_depth(expr: sp.Expr) -> int:
    """Maximum nesting depth of Diff/Divergence operators in *expr*."""
    expr = sp.sympify(expr)
    if isinstance(expr, Diff):
        return 1 + diff_depth(expr.arg)
    if isinstance(expr, Divergence):
        return 1 + max((diff_depth(a) for a in expr.args), default=0)
    if not expr.args:
        return 0
    return max((diff_depth(a) for a in expr.args), default=0)
