"""Batch/sweep driver: N scenarios across workers sharing the warm cache.

A *sweep* is the ternary-eutectic-study workload (Hötzer et al. 2015):
many parameter/geometry/model combinations of one phase-field model, run
as a batch.  The driver forks a small worker pool; each worker pulls
scenario specs from a queue, builds the model, compiles its kernels
through :func:`repro.profiling.compile_cached` — where the persistent
disk tier (:mod:`repro.profiling.diskcache`) turns every kernel after the
first build into a ``dlopen``, regardless of which process compiled it —
runs the solver with diagnostics + health monitoring into a per-scenario
:class:`~repro.observability.rundir.RunDir`, and reports a summary.

The parent process never runs a kernel (libgomp does not survive a fork
from a process that already entered an OpenMP region), aggregates worker
cache/throughput statistics into the :class:`MetricsRegistry`, samples
the task-queue depth, and writes one merged ``sweep.json`` manifest
(schema ``repro-sweep/1``) that ``tools/run_report.py`` renders as a
sweep report and ``tools/check_observability.py --require-sweep``
validates in CI.

Scenario specs are plain dicts on the wire (JSON in, JSON out), so a
sweep can be driven from a file::

    python -m repro.service.sweep --specs sweep.json --out sweepdir
    python -m repro.service.sweep --demo 4 --out sweepdir --workers 2
"""

from __future__ import annotations

import json
import os
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..observability.log import get_logger, kv
from ..observability.metrics import get_registry

__all__ = [
    "SWEEP_SCHEMA",
    "ScenarioSpec",
    "demo_specs",
    "load_sweep_manifest",
    "run_scenario",
    "run_sweep",
]

SWEEP_SCHEMA = "repro-sweep/1"

_log = get_logger("service.sweep")

#: model factories a spec may name; each returns ModelParameters
_MODELS = ("binary2", "p1", "p2")


@dataclass
class ScenarioSpec:
    """One scenario of a sweep: model × geometry × parameter overrides."""

    name: str
    model: str = "binary2"
    dim: int = 2
    shape: tuple[int, ...] = (32, 32)
    steps: int = 20
    backend: str = "auto"
    boundary: str = "neumann"
    seed: int = 0
    #: ``{field: value}`` applied to the ModelParameters; the special key
    #: ``undercooling`` maps to ``temperature = constant(1 - value)``
    overrides: dict = field(default_factory=dict)
    diagnostics_every: int = 1

    def __post_init__(self):
        if self.model not in _MODELS:
            raise ValueError(f"unknown model {self.model!r}; choose from {_MODELS}")
        self.shape = tuple(int(s) for s in self.shape)
        if len(self.shape) != self.dim:
            raise ValueError(
                f"shape {self.shape} must have dim={self.dim} entries"
            )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "model": self.model,
            "dim": self.dim,
            "shape": list(self.shape),
            "steps": self.steps,
            "backend": self.backend,
            "boundary": self.boundary,
            "seed": self.seed,
            "overrides": dict(self.overrides),
            "diagnostics_every": self.diagnostics_every,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ScenarioSpec":
        known = {
            "name", "model", "dim", "shape", "steps", "backend",
            "boundary", "seed", "overrides", "diagnostics_every",
        }
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        spec = dict(d)
        if "shape" in spec:
            spec["shape"] = tuple(spec["shape"])
        return cls(**spec)

    # -- model construction ----------------------------------------------------

    def build_parameters(self):
        from ..pfm.parameters import make_p1, make_p2, make_two_phase_binary
        from ..pfm.temperature import constant_temperature

        if self.model == "binary2":
            params = make_two_phase_binary(dim=self.dim)
        elif self.model == "p1":
            params = make_p1(dim=self.dim)
        else:
            params = make_p2(dim=self.dim)
        for key, value in self.overrides.items():
            if key == "undercooling":
                params.temperature = constant_temperature(1.0 - float(value))
            elif hasattr(params, key):
                setattr(params, key, value)
            else:
                raise ValueError(
                    f"scenario {self.name!r}: ModelParameters has no field "
                    f"{key!r} (and it is not 'undercooling')"
                )
        return params


def _resolve_backend(requested: str) -> str:
    if requested != "auto":
        return requested
    from ..backends.c_backend import c_compiler_available

    return "c" if c_compiler_available() else "numpy"


def run_scenario(spec: ScenarioSpec, rundir_path, backend: str | None = None) -> dict:
    """Execute one scenario into *rundir_path*; returns a summary dict.

    The summary carries everything the sweep manifest needs: status, wall
    and codegen seconds, throughput, the memory/disk cache deltas this
    scenario caused in *this* process, and the health-event count.
    """
    from ..observability.health import HealthMonitor
    from ..observability.rundir import RunDir
    from ..pfm.initialize import planar_front
    from ..pfm.model import GrandPotentialModel
    from ..pfm.solver import SingleBlockSolver
    from ..profiling import disk_cache_stats, kernel_cache_stats

    backend = _resolve_backend(backend or spec.backend)
    params = spec.build_parameters()
    mem0, disk0 = kernel_cache_stats(), disk_cache_stats()
    t_start = time.perf_counter()
    with RunDir(rundir_path, config=spec.to_dict()) as rundir:
        health = HealthMonitor(policy="record")
        t0 = time.perf_counter()
        kernel_set = GrandPotentialModel(params).create_kernels()
        solver = SingleBlockSolver(
            kernel_set,
            spec.shape,
            boundary=spec.boundary,
            seed=spec.seed,
            backend=backend,
            health=health,
            rundir=rundir,
        )
        codegen_seconds = time.perf_counter() - t0
        phi = planar_front(
            spec.shape,
            params.n_phases,
            solid_phase=0,
            liquid_phase=params.liquid_phase,
            position=0.25 * spec.shape[0] * params.dx,
            epsilon=params.epsilon,
            dx=params.dx,
        )
        solver.set_state(phi, mu=0.0)
        series = solver.enable_diagnostics(every=spec.diagnostics_every)
        t1 = time.perf_counter()
        solver.step(spec.steps)
        step_seconds = time.perf_counter() - t1
        get_registry().export_prometheus(rundir.metrics_path)
        rundir.note(sweep_scenario=spec.name)
    mem1, disk1 = kernel_cache_stats(), disk_cache_stats()
    cells = int(np.prod(spec.shape))
    last = series.last() or {}
    return {
        "name": spec.name,
        "status": "ok",
        "backend": backend,
        "pid": os.getpid(),
        "wall_seconds": time.perf_counter() - t_start,
        "codegen_seconds": codegen_seconds,
        "step_seconds": step_seconds,
        "steps": spec.steps,
        "cells": cells,
        "cell_updates": cells * spec.steps,
        "mlups": cells * spec.steps / step_seconds / 1e6 if step_seconds else 0.0,
        "cache": {
            "memory_hits": mem1.hits - mem0.hits,
            "memory_misses": mem1.misses - mem0.misses,
            "disk_hits": disk1.hits - disk0.hits,
            "disk_misses": disk1.misses - disk0.misses,
            "disk_builds": disk1.builds - disk0.builds,
        },
        "health_events": len(health.events),
        "diagnostics_rows": len(series),
        "final": {k: v for k, v in last.items() if isinstance(v, (int, float))},
        "rundir": str(rundir_path),
    }


# -- worker pool ---------------------------------------------------------------


def _worker_main(worker_id, task_queue, result_queue, payloads, runs_dir, backend):
    """Worker loop: pull scenario indices until the ``None`` sentinel."""
    while True:
        idx = task_queue.get()
        if idx is None:
            return
        spec = ScenarioSpec.from_dict(payloads[idx])
        result_queue.put(("start", idx, os.getpid()))
        try:
            summary = run_scenario(spec, Path(runs_dir) / spec.name, backend)
            result_queue.put(("done", idx, summary))
        except Exception:
            result_queue.put(("error", idx, traceback.format_exc(limit=20)))


def run_sweep(
    specs,
    sweep_dir,
    workers: int = 2,
    backend: str | None = None,
    queue_sample_seconds: float = 0.1,
) -> dict:
    """Run *specs* across a forked worker pool; returns the sweep manifest.

    Scenario RunDirs land under ``<sweep_dir>/runs/<name>``; the merged
    manifest is written to ``<sweep_dir>/sweep.json`` and sweep-level
    metrics (queue depth, cache hits, throughput) to
    ``<sweep_dir>/metrics.prom``.  Workers fork *before* any kernel runs
    in the parent, so OpenMP state never crosses the fork.  A worker that
    dies mid-scenario (OOM, kill) is detected and its scenario recorded
    as failed; remaining scenarios keep flowing to the surviving workers.
    """
    import multiprocessing as mp

    specs = [s if isinstance(s, ScenarioSpec) else ScenarioSpec.from_dict(s) for s in specs]
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"scenario names must be unique, got {names}")
    workers = max(1, min(int(workers), len(specs))) if specs else 1

    sweep_dir = Path(sweep_dir)
    runs_dir = sweep_dir / "runs"
    runs_dir.mkdir(parents=True, exist_ok=True)
    payloads = [s.to_dict() for s in specs]

    ctx = mp.get_context("fork")
    task_queue: mp.Queue = ctx.Queue()
    result_queue: mp.Queue = ctx.Queue()
    for idx in range(len(specs)):
        task_queue.put(idx)
    for _ in range(workers):
        task_queue.put(None)

    t_sweep = time.perf_counter()
    procs = [
        ctx.Process(
            target=_worker_main,
            args=(w, task_queue, result_queue, payloads, str(runs_dir), backend),
            daemon=True,
        )
        for w in range(workers)
    ]
    for p in procs:
        p.start()
    _log.info(kv("sweep_started", scenarios=len(specs), workers=workers))

    results: dict[int, dict] = {}
    errors: dict[int, str] = {}
    started: dict[int, int] = {}  # idx -> worker pid
    queue_depth_samples: list[dict] = []
    last_sample = 0.0

    def accounted() -> int:
        return len(results) + len(errors)

    import queue as queue_mod

    while accounted() < len(specs):
        now = time.perf_counter()
        if now - last_sample >= queue_sample_seconds:
            try:
                depth = task_queue.qsize()
            except NotImplementedError:  # pragma: no cover - macOS
                depth = -1
            queue_depth_samples.append(
                {"t": round(now - t_sweep, 4), "depth": max(0, depth - workers)}
            )
            last_sample = now
        try:
            msg = result_queue.get(timeout=0.05)
        except queue_mod.Empty:
            if not any(p.is_alive() for p in procs):
                # drain anything posted between the last get and death
                try:
                    while True:
                        msg = result_queue.get_nowait()
                        _dispatch(msg, results, errors, started)
                except queue_mod.Empty:
                    pass
                break
            continue
        _dispatch(msg, results, errors, started)

    for p in procs:
        p.join(timeout=5.0)
        if p.is_alive():  # pragma: no cover - stuck worker
            p.terminate()

    # scenarios a dead worker started but never finished: explicit failures
    for idx, pid in started.items():
        if idx not in results and idx not in errors:
            errors[idx] = f"worker pid {pid} died mid-scenario"
    # scenarios never started because the whole pool died
    for idx in range(len(specs)):
        if idx not in results and idx not in errors:
            errors[idx] = "worker pool exited before this scenario started"

    # record scenario rundirs relative to the sweep dir: the manifest must
    # stay valid when the whole directory is moved or uploaded as an artifact
    # (check_observability and run_report join relative paths onto sweep_dir)
    for summary in results.values():
        try:
            rel = Path(summary["rundir"]).resolve().relative_to(sweep_dir.resolve())
            summary["rundir"] = str(rel)
        except (KeyError, ValueError):
            pass

    wall = time.perf_counter() - t_sweep
    manifest = _merge(specs, results, errors, queue_depth_samples, wall, workers, backend)
    manifest_path = sweep_dir / "sweep.json"
    with open(manifest_path, "w") as handle:
        json.dump(manifest, handle, indent=2, default=repr)
        handle.write("\n")
    _export_sweep_metrics(manifest, sweep_dir / "metrics.prom")
    _log.info(
        kv(
            "sweep_finished",
            ok=manifest["totals"]["ok"],
            failed=manifest["totals"]["failed"],
            wall=round(wall, 3),
            disk_hits=manifest["totals"]["disk_hits"],
        )
    )
    return manifest


def _dispatch(msg, results, errors, started) -> None:
    kind, idx = msg[0], msg[1]
    if kind == "start":
        started[idx] = msg[2]
    elif kind == "done":
        results[idx] = msg[2]
    elif kind == "error":
        errors[idx] = msg[2]


def _merge(specs, results, errors, queue_depth_samples, wall, workers, backend) -> dict:
    scenarios = []
    totals = {
        "ok": 0,
        "failed": 0,
        "wall_seconds": wall,
        "codegen_seconds": 0.0,
        "cell_updates": 0,
        "memory_hits": 0,
        "memory_misses": 0,
        "disk_hits": 0,
        "disk_misses": 0,
        "disk_builds": 0,
        "health_events": 0,
    }
    for idx, spec in enumerate(specs):
        entry = {"spec": spec.to_dict()}
        summary = results.get(idx)
        if summary is not None:
            entry.update(summary)
            totals["ok"] += 1
            totals["codegen_seconds"] += summary["codegen_seconds"]
            totals["cell_updates"] += summary["cell_updates"]
            totals["health_events"] += summary["health_events"]
            for k in ("memory_hits", "memory_misses", "disk_hits",
                      "disk_misses", "disk_builds"):
                totals[k] += summary["cache"][k]
        else:
            entry["name"] = spec.name
            entry["status"] = "failed"
            entry["error"] = errors.get(idx, "unknown")
            totals["failed"] += 1
        scenarios.append(entry)
    totals["throughput_mlups"] = (
        totals["cell_updates"] / wall / 1e6 if wall > 0 else 0.0
    )
    return {
        "schema": SWEEP_SCHEMA,
        "workers": workers,
        "backend": backend or "auto",
        "wall_seconds": wall,
        "scenarios": scenarios,
        "totals": totals,
        "queue_depth_samples": queue_depth_samples,
    }


def _export_sweep_metrics(manifest: dict, path) -> None:
    """Fold the workers' aggregated stats into this process's registry."""
    registry = get_registry()
    totals = manifest["totals"]
    for status in ("ok", "failed"):
        counter = registry.counter(
            "repro_sweep_scenarios_total", "sweep scenarios by outcome",
            status=status,
        )
        if totals[status]:
            counter.inc(totals[status])
    if totals["disk_hits"]:
        registry.counter(
            "repro_kernel_cache_disk_hits_total",
            "persistent kernel-cache hits (compile skipped)",
        ).inc(totals["disk_hits"])
    if totals["disk_misses"]:
        registry.counter(
            "repro_kernel_cache_disk_misses_total",
            "persistent kernel-cache misses (artifact built)",
        ).inc(totals["disk_misses"])
    registry.gauge(
        "repro_sweep_queue_depth", "scenario tasks waiting in the sweep queue"
    ).set(manifest["queue_depth_samples"][-1]["depth"] if manifest["queue_depth_samples"] else 0)
    registry.gauge(
        "repro_sweep_throughput_mlups",
        "aggregate sweep throughput (million cell updates / s)",
    ).set(totals["throughput_mlups"])
    registry.export_prometheus(path)


def load_sweep_manifest(path) -> dict:
    """Load and schema-check a ``sweep.json`` manifest."""
    path = Path(path)
    if path.is_dir():
        path = path / "sweep.json"
    with open(path) as handle:
        manifest = json.load(handle)
    if manifest.get("schema") != SWEEP_SCHEMA:
        raise ValueError(
            f"{path}: schema is {manifest.get('schema')!r}, expected {SWEEP_SCHEMA!r}"
        )
    return manifest


def demo_specs(n: int = 4, steps: int = 10, shape=(24, 24)) -> list[ScenarioSpec]:
    """A small undercooling sweep (the parameter-study workload in miniature)."""
    return [
        ScenarioSpec(
            name=f"dT{round(0.1 + 0.1 * i, 1)}",
            model="binary2",
            shape=tuple(shape),
            steps=steps,
            seed=i,
            overrides={"undercooling": round(0.1 + 0.1 * i, 1)},
        )
        for i in range(n)
    ]


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--specs", help="JSON file: list of scenario spec dicts")
    parser.add_argument("--demo", type=int, metavar="N",
                        help="run an N-scenario demo undercooling sweep")
    parser.add_argument("--out", required=True, help="sweep output directory")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--backend", default=None,
                        help="force a backend (default: per-spec / auto)")
    parser.add_argument("--steps", type=int, default=10, help="demo steps")
    args = parser.parse_args(argv)

    if bool(args.specs) == bool(args.demo):
        parser.error("exactly one of --specs / --demo is required")
    if args.specs:
        with open(args.specs) as handle:
            specs = [ScenarioSpec.from_dict(d) for d in json.load(handle)]
    else:
        specs = demo_specs(args.demo, steps=args.steps)

    manifest = run_sweep(specs, args.out, workers=args.workers, backend=args.backend)
    totals = manifest["totals"]
    print(
        f"sweep: {totals['ok']} ok, {totals['failed']} failed in "
        f"{totals['wall_seconds']:.2f}s — disk cache {totals['disk_hits']} hits / "
        f"{totals['disk_builds']} builds, {totals['throughput_mlups']:.2f} MLUP/s"
    )
    return 1 if totals["failed"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
