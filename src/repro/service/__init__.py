"""Simulation service: batch/sweep driver over the persistent kernel cache.

The paper's workflow (and the waLBerla Python frontend it builds on) runs
*parameter studies*: many scenario configurations through one generated
code base, with codegen cost paid once and amortized across the whole
study.  :mod:`repro.service.sweep` is that driver — submit N scenario
specs (params × geometry × model), execute them across worker processes
that share the warm on-disk kernel cache, and merge every run's
diagnostics, health events and RunDir artifacts into one sweep report.
"""

__all__ = [
    "SWEEP_SCHEMA",
    "ScenarioSpec",
    "load_sweep_manifest",
    "run_scenario",
    "run_sweep",
]


def __getattr__(name):
    # lazy re-export so `python -m repro.service.sweep` does not import
    # the submodule twice (runpy's double-import warning)
    if name in __all__:
        from . import sweep

        return getattr(sweep, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
