"""Expression optimization: constant folding, term simplification, CSE."""

from .passes import (
    count_nodes,
    global_cse,
    optimize,
    simplify_terms,
    substitute_parameters,
)

__all__ = [
    "count_nodes",
    "global_cse",
    "optimize",
    "simplify_terms",
    "substitute_parameters",
]
