"""Expression-level optimization passes (paper §3.3, last paragraphs).

The stencil representation is rewritten to reduce floating point work:

* :func:`substitute_parameters` — constant folding: model parameters that
  stay fixed during a run are replaced by numeric values at "compile time";
  this shrinks the expression trees considerably and enables the automatic
  exploitation of special configurations (symmetric diffusivities, isotropy,
  constant temperature, …) that a generic runtime-configured code would have
  to spend FLOPs on.
* :func:`simplify_terms` — per-term expansion/factoring heuristics.
* :func:`global_cse` — a global common-subexpression elimination across all
  terms, producing the final SSA form.
"""

from __future__ import annotations

from typing import Mapping

import sympy as sp

from ..symbolic.assignment import Assignment, AssignmentCollection
from ..symbolic.field import FieldAccess

__all__ = [
    "substitute_parameters",
    "simplify_terms",
    "global_cse",
    "optimize",
    "count_nodes",
    "total_nodes",
]


def substitute_parameters(
    ac: AssignmentCollection, values: Mapping[sp.Symbol | str, float]
) -> AssignmentCollection:
    """Fold numeric parameter values into the assignments.

    Keys may be symbols or symbol names.  Field accesses can never be
    substituted.  Exact zeros/ones trigger sympy's automatic simplification
    (e.g. an isotropy factor of 1 removes the whole anisotropy computation).
    """
    by_name: dict[str, sp.Expr] = {}
    for k, v in values.items():
        name = k.name if isinstance(k, sp.Symbol) else str(k)
        by_name[name] = sp.nsimplify(v) if v == int(v) else sp.Float(v)

    def fold(expr: sp.Expr) -> sp.Expr:
        mapping = {
            s: by_name[s.name]
            for s in expr.free_symbols
            if not isinstance(s, FieldAccess) and s.name in by_name
        }
        return expr.xreplace(mapping) if mapping else expr

    return ac.transform_rhs(fold)


def simplify_terms(ac: AssignmentCollection, aggressive: bool = False) -> AssignmentCollection:
    """Simplify every assignment individually by expansion or factoring.

    The cheap default applies :func:`sympy.factor_terms` (pulls common
    factors out of sums) and keeps whichever of {original, factored} has
    fewer nodes.  ``aggressive=True`` additionally tries ``expand`` followed
    by re-factoring, which can merge terms at higher symbolic cost.
    """

    def best(expr: sp.Expr) -> sp.Expr:
        candidates = [expr]
        try:
            candidates.append(sp.factor_terms(expr))
        except Exception:  # pragma: no cover - sympy edge cases
            pass
        if aggressive:
            try:
                expanded = sp.expand(expr)
                candidates.append(expanded)
                candidates.append(sp.factor_terms(expanded))
            except Exception:  # pragma: no cover
                pass
        return min(candidates, key=count_nodes)

    return ac.transform_rhs(best)


def count_nodes(expr: sp.Expr) -> int:
    """Total number of nodes in the expression tree (simplicity metric)."""
    return expr.count_ops(visual=False) + len(expr.atoms(sp.Symbol))


def global_cse(ac: AssignmentCollection, symbol_prefix: str = "xi") -> AssignmentCollection:
    """Global common-subexpression elimination across all assignments.

    Existing subexpressions are inlined first so that repeated runs converge
    to the same canonical SSA form.
    """
    inlined = ac.inline_subexpressions()
    rhs_list = [a.rhs for a in inlined.main_assignments]
    replacements, reduced = sp.cse(
        rhs_list, symbols=sp.numbered_symbols(symbol_prefix + "_", real=True), order="none"
    )
    subexpressions = [Assignment(lhs, rhs) for lhs, rhs in replacements]
    main = [
        Assignment(a.lhs, new_rhs)
        for a, new_rhs in zip(inlined.main_assignments, reduced)
    ]
    result = ac.copy(main, subexpressions)
    result.validate()
    return result


def total_nodes(ac: AssignmentCollection) -> int:
    """Node count over all assignments (the pass-level progress metric)."""
    return sum(count_nodes(a.rhs) for a in ac.all_assignments)


def _traced_pass(tracer, name: str, fn, ac: AssignmentCollection):
    """Run one pass inside a ``simplification`` span with op counts.

    Before/after node counts are only computed when tracing is enabled —
    counting a large SSA program is not free.
    """
    with tracer.span(f"pass:{name}", category="simplification") as span:
        if span is not None:
            span.args["ops_before"] = total_nodes(ac)
        out = fn(ac)
        if span is not None:
            span.args["ops_after"] = total_nodes(out)
            span.args["assignments"] = len(out.all_assignments)
    return out


def optimize(
    ac: AssignmentCollection,
    parameter_values: Mapping | None = None,
    cse: bool = True,
    aggressive: bool = False,
) -> AssignmentCollection:
    """The standard pipeline: fold constants → simplify terms → global CSE."""
    from ..observability.tracing import get_tracer

    tracer = get_tracer()
    with tracer.span(f"optimize:{ac.name}", category="simplification"):
        if parameter_values:
            ac = _traced_pass(
                tracer, "substitute_parameters",
                lambda a: substitute_parameters(a, parameter_values), ac,
            )
        ac = _traced_pass(
            tracer, "simplify_terms",
            lambda a: simplify_terms(a, aggressive=aggressive), ac,
        )
        if cse:
            ac = _traced_pass(tracer, "global_cse", global_cse, ac)
    return ac
