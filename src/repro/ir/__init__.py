"""Intermediate representation: typing, loops, hoisting, kernel objects."""

from .approximations import (
    APPROXIMABLE,
    fast_division,
    fast_rsqrt,
    fast_sqrt,
    insert_approximations,
)
from .kernel import Kernel, KernelConfig, create_kernel, split_interior_frontier
from .loops import (
    AxisInterval,
    IterationSpace,
    analytic_axes,
    choose_loop_order,
    classify_hoist_levels,
    frontier_spaces,
    hoisted_symbols,
    interior_space,
)
from .types import DOUBLE, FLOAT, INT64, BasicType, infer_types, kernel_parameters

__all__ = [
    "APPROXIMABLE",
    "fast_division",
    "fast_rsqrt",
    "fast_sqrt",
    "insert_approximations",
    "Kernel",
    "KernelConfig",
    "create_kernel",
    "split_interior_frontier",
    "AxisInterval",
    "IterationSpace",
    "interior_space",
    "frontier_spaces",
    "analytic_axes",
    "choose_loop_order",
    "classify_hoist_levels",
    "hoisted_symbols",
    "BasicType",
    "DOUBLE",
    "FLOAT",
    "INT64",
    "infer_types",
    "kernel_parameters",
]
