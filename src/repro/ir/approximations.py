"""Approximate math operations (paper §3.5).

The user can mark divisions and (inverse) square roots for approximate
evaluation.  Backends then emit faster, lower-precision instructions
(``_mm512_rsqrt14_pd`` on AVX-512, ``__fdividef`` / ``__frsqrt_rn`` on CUDA);
the NumPy backend emulates the reduced precision by a float32 round-trip so
that numerical effects are observable in tests.

The nodes are opaque :class:`sympy.Function` subclasses, inserted *after*
algebraic simplification by :func:`insert_approximations`.
"""

from __future__ import annotations

import sympy as sp

from ..symbolic.assignment import AssignmentCollection

__all__ = [
    "fast_division",
    "fast_sqrt",
    "fast_rsqrt",
    "insert_approximations",
    "APPROXIMABLE",
]


class fast_division(sp.Function):
    """Approximate ``a / b`` (single-precision reciprocal path)."""

    nargs = (2,)

    def _eval_evalf(self, prec):
        a, b = self.args
        return (a / b)._eval_evalf(prec)


class fast_sqrt(sp.Function):
    """Approximate ``sqrt(x)``."""

    nargs = (1,)

    def _eval_evalf(self, prec):
        return sp.sqrt(self.args[0])._eval_evalf(prec)


class fast_rsqrt(sp.Function):
    """Approximate ``1/sqrt(x)`` (maps to rsqrt14 / frsqrt intrinsics)."""

    nargs = (1,)

    def _eval_evalf(self, prec):
        return (1 / sp.sqrt(self.args[0]))._eval_evalf(prec)


APPROXIMABLE = ("division", "sqrt", "rsqrt")


def _rewrite(expr: sp.Expr, which: frozenset[str]) -> sp.Expr:
    def rec(e: sp.Expr) -> sp.Expr:
        if not e.args:
            return e
        if isinstance(e, sp.Pow):
            base, expo = rec(e.args[0]), e.args[1]
            if expo == sp.Rational(1, 2) and "sqrt" in which:
                return fast_sqrt(base)
            if expo == sp.Rational(-1, 2) and "rsqrt" in which:
                return fast_rsqrt(base)
            if expo == -1 and "division" in which:
                return fast_division(sp.Integer(1), base)
            if expo.is_Rational and expo.q == 2 and "sqrt" in which:
                # x**(p/2) -> sqrt(x)**p handled by integer-pow path
                return rec(fast_sqrt(base) ** sp.Integer(expo.p))
            return sp.Pow(base, rec(expo), evaluate=False)
        if isinstance(e, sp.Mul) and "division" in which:
            num, den = [], []
            for f in e.args:
                if (
                    isinstance(f, sp.Pow)
                    and f.args[1].is_number
                    and f.args[1].is_negative
                ):
                    den.append(rec(sp.Pow(f.args[0], -f.args[1])))
                elif f.is_Rational and not f.is_Integer:
                    num.append(sp.Integer(f.p))
                    if f.q != 1:
                        den.append(sp.Integer(f.q))
                else:
                    num.append(rec(f))
            if den:
                numerator = sp.Mul(*num) if num else sp.Integer(1)
                return fast_division(numerator, sp.Mul(*den))
            return e.func(*[rec(a) for a in e.args])
        return e.func(*[rec(a) for a in e.args])

    return rec(expr)


def insert_approximations(
    ac: AssignmentCollection, which=APPROXIMABLE
) -> AssignmentCollection:
    """Rewrite exact div/sqrt/rsqrt operations into their fast variants.

    ``which`` selects any subset of :data:`APPROXIMABLE`.  The rewrite is a
    pure relabeling — the expression value is unchanged symbolically; only
    backends interpret the nodes with reduced precision.
    """
    which_set = frozenset(which)
    unknown = which_set - frozenset(APPROXIMABLE)
    if unknown:
        raise ValueError(f"unknown approximation kinds: {sorted(unknown)}")
    return ac.transform_rhs(lambda e: _rewrite(e, which_set))
