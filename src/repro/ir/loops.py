"""Loop construction: ordering and loop-invariant code motion (paper §3.4).

Arrays are stored C-contiguously with the *last* spatial axis fastest, so
the innermost loop should iterate that axis for spatial locality.  Analytic
dependencies (e.g. a temperature ``T(x_0, t)`` that varies along a single
coordinate) are exploited by making their axes the *outermost* loops and
hoisting every subexpression that only depends on outer-loop state out of
the inner loops — "all temperature-dependent subexpressions are pulled out
of the inner loops".
"""

from __future__ import annotations

from dataclasses import dataclass

import sympy as sp

from ..symbolic.assignment import Assignment, AssignmentCollection
from ..symbolic.coordinates import CoordinateSymbol
from ..symbolic.field import FieldAccess
from ..symbolic.random import RandomValue

__all__ = [
    "AxisInterval",
    "IterationSpace",
    "interior_space",
    "frontier_spaces",
    "choose_loop_order",
    "classify_hoist_levels",
    "extract_invariant_subexpressions",
    "hoisted_symbols",
    "analytic_axes",
]


@dataclass(frozen=True)
class AxisInterval:
    """Half-open interval of interior cells along one axis.

    Endpoints are expressed relative to either end of the (runtime-sized)
    interior extent ``n``: an endpoint with ``*_from_end`` counts from the
    upper end (``value + n``), otherwise from the lower end.  The full axis
    is ``AxisInterval(0, 0, False, True)`` → ``[0, n)``; an interior band of
    margin ``m`` is ``AxisInterval(m, -m)`` → ``[m, n - m)``; the low face is
    ``AxisInterval(0, m, False, False)`` → ``[0, m)``; the high face is
    ``AxisInterval(-m, 0, True, True)`` → ``[n - m, n)``.
    """

    start: int
    stop: int
    start_from_end: bool = False
    stop_from_end: bool = True

    def concrete(self, n: int) -> tuple[int, int]:
        """Resolve to absolute ``(lo, hi)`` cell indices for interior size *n*."""
        lo = self.start + (n if self.start_from_end else 0)
        hi = self.stop + (n if self.stop_from_end else 0)
        if not (0 <= lo <= hi <= n):
            raise ValueError(
                f"interval {self} is empty or out of bounds for extent {n} "
                f"(resolved to [{lo}, {hi})) — block too small for this margin"
            )
        return lo, hi

    @property
    def is_full(self) -> bool:
        return (self.start, self.stop, self.start_from_end, self.stop_from_end) == (
            0, 0, False, True,
        )


FULL_AXIS = AxisInterval(0, 0, False, True)


@dataclass(frozen=True)
class IterationSpace:
    """A rectangular subspace of a kernel's interior iteration domain.

    The subspace is a product of per-axis :class:`AxisInterval`\\ s, resolved
    against the runtime interior shape by the backends (ranged loop bounds in
    C, adjusted slices in numpy).  Ghost layers are *not* part of the space:
    index 0 is the first interior cell, exactly as in the unrestricted kernel,
    so Philox counters, coordinates and analytic terms are unchanged — a
    restricted kernel computes bit-identical values on its subset of cells.
    """

    name: str
    intervals: tuple[AxisInterval, ...]

    @property
    def dim(self) -> int:
        return len(self.intervals)

    @property
    def is_full(self) -> bool:
        return all(iv.is_full for iv in self.intervals)

    def concrete(self, interior_shape: tuple[int, ...]) -> tuple[tuple[int, int], ...]:
        """Absolute per-axis ``(lo, hi)`` interior index ranges."""
        if len(interior_shape) != self.dim:
            raise ValueError(
                f"iteration space {self.name!r} is {self.dim}D but the block "
                f"interior is {len(interior_shape)}D"
            )
        return tuple(iv.concrete(n) for iv, n in zip(self.intervals, interior_shape))

    def offsets(self, interior_shape: tuple[int, ...]) -> tuple[tuple[int, int], ...]:
        """Per-axis ``(lo, hi - n)`` offsets from the full range ``[0, n)``.

        This is the form the backends consume: the low offset is added to the
        loop start / slice start, the (non-positive) high offset to the loop
        bound / slice stop.
        """
        conc = self.concrete(interior_shape)
        return tuple((lo, hi - n) for (lo, hi), n in zip(conc, interior_shape))

    @classmethod
    def full(cls, dim: int) -> IterationSpace:
        return cls("full", (FULL_AXIS,) * dim)


def interior_space(dim: int, margin: int) -> IterationSpace:
    """Cells at distance ≥ *margin* from every block face.

    A kernel with stencil reach *margin* restricted to this space never reads
    ghost cells, so it can run while a ghost exchange is still in flight.
    """
    if margin < 1:
        raise ValueError(f"interior margin must be >= 1, got {margin}")
    return IterationSpace("interior", (AxisInterval(margin, -margin),) * dim)


def frontier_spaces(dim: int, margin: int) -> tuple[IterationSpace, ...]:
    """Onion decomposition of the *margin*-wide shell around the interior.

    For axis ``a`` the low/high face slabs span the face band on axis ``a``,
    the already-covered interior band on every axis ``< a`` and the full
    extent on every axis ``> a``, so interior ∪ frontiers tiles the block
    exactly once (no cell computed twice, none missed).
    """
    if margin < 1:
        raise ValueError(f"frontier margin must be >= 1, got {margin}")
    spaces: list[IterationSpace] = []
    for axis in range(dim):
        for side, label, face in (
            (-1, "lo", AxisInterval(0, margin, False, False)),
            (+1, "hi", AxisInterval(-margin, 0, True, True)),
        ):
            intervals = tuple(
                AxisInterval(margin, -margin) if d < axis
                else face if d == axis
                else FULL_AXIS
                for d in range(dim)
            )
            spaces.append(IterationSpace(f"frontier_a{axis}{label}", intervals))
    return tuple(spaces)


def analytic_axes(ac: AssignmentCollection) -> set[int]:
    """Spatial axes on which analytic (coordinate) expressions depend."""
    axes: set[int] = set()
    for a in ac.all_assignments:
        axes |= {s.axis for s in a.rhs.atoms(CoordinateSymbol)}
    return axes


def choose_loop_order(ac: AssignmentCollection, dim: int) -> tuple[int, ...]:
    """Loop order (outermost → innermost) for a kernel.

    The fastest-varying axis (``dim-1``, contiguous in memory) is placed
    innermost whenever possible; axes carrying analytic coordinate
    dependencies are pushed outward so their subexpressions can be hoisted.
    """
    analytic = analytic_axes(ac)
    inner_candidates = [a for a in range(dim) if a not in analytic]
    if inner_candidates:
        # last (contiguous) non-analytic axis goes innermost
        rest = sorted(analytic) + [a for a in inner_candidates[:-1]]
        return tuple(rest + [inner_candidates[-1]])
    # every axis is analytic: keep natural order, contiguous axis innermost
    return tuple(range(dim))


def classify_hoist_levels(
    ac: AssignmentCollection, loop_order: tuple[int, ...]
) -> dict[sp.Symbol, int]:
    """Compute, for every temporary, the loop depth at which it can live.

    Returns a map ``symbol → level`` where level ``0`` means the assignment
    is computable before all loops, level ``k`` inside the loop over
    ``loop_order[k-1]``, and level ``len(loop_order)`` (the full depth) means
    it must stay in the loop body.  An assignment's level is the maximum
    over the levels demanded by its atoms:

    * a field access or RNG call demands full depth,
    * a coordinate symbol of axis ``a`` demands ``position(a) + 1``,
    * a temporary demands its own level,
    * plain parameters and numbers demand 0.
    """
    depth = len(loop_order)
    pos = {axis: i for i, axis in enumerate(loop_order)}
    levels: dict[sp.Symbol, int] = {}

    def expr_level(expr: sp.Expr) -> int:
        lvl = 0
        for atom in sp.preorder_traversal(expr):
            if isinstance(atom, (FieldAccess, RandomValue)):
                return depth
            if isinstance(atom, CoordinateSymbol):
                lvl = max(lvl, pos.get(atom.axis, depth - 1) + 1)
            elif isinstance(atom, sp.Symbol) and atom in levels:
                lvl = max(lvl, levels[atom])
        return lvl

    for a in ac.subexpressions:
        levels[a.lhs] = expr_level(a.rhs)
    return levels


def extract_invariant_subexpressions(ac: AssignmentCollection) -> AssignmentCollection:
    """Pull maximal loop-invariant subtrees into their own temporaries.

    Global CSE only extracts *repeated* subexpressions; a temperature factor
    used once would stay inline and could not be hoisted.  This pass finds
    maximal subtrees that contain coordinate symbols but no field accesses or
    RNG calls and binds them to fresh temporaries so that
    :func:`classify_hoist_levels` can move them out of the inner loops.
    """
    gen = ac.fresh_symbol_generator("inv")
    new_subs: list = []
    cache: dict[sp.Expr, sp.Symbol] = {}

    bound = ac.defined_temporaries

    def is_invariant(e: sp.Expr) -> bool:
        # conservative: referencing an existing temporary disqualifies the
        # subtree (the temporary may hide field accesses)
        return (
            not e.atoms(FieldAccess, RandomValue)
            and bool(e.atoms(CoordinateSymbol))
            and not (e.free_symbols & bound)
        )

    def rec(e: sp.Expr) -> sp.Expr:
        if not e.args or isinstance(e, (FieldAccess, CoordinateSymbol)):
            return e
        if is_invariant(e):
            if e in cache:
                return cache[e]
            sym = next(gen)
            cache[e] = sym
            new_subs.append(Assignment(sym, e))
            return sym
        return e.func(*[rec(a) for a in e.args])

    subexpressions = [Assignment(a.lhs, rec(a.rhs)) for a in ac.subexpressions]
    mains = [Assignment(a.lhs, rec(a.rhs)) for a in ac.main_assignments]
    if not new_subs:
        return ac
    # invariant temporaries come first: they depend on nothing bound later
    return ac.copy(mains, new_subs + subexpressions)


def hoisted_symbols(
    ac: AssignmentCollection, loop_order: tuple[int, ...] | None = None, dim: int | None = None
) -> set[sp.Symbol]:
    """Temporaries that move out of the innermost loop (amortized per line)."""
    if loop_order is None:
        if dim is None:
            dim = max(
                (acc.field.spatial_dimensions for acc in ac.field_writes), default=3
            )
        loop_order = choose_loop_order(ac, dim)
    depth = len(loop_order)
    levels = classify_hoist_levels(ac, loop_order)
    return {s for s, lvl in levels.items() if lvl < depth}
