"""Loop construction: ordering and loop-invariant code motion (paper §3.4).

Arrays are stored C-contiguously with the *last* spatial axis fastest, so
the innermost loop should iterate that axis for spatial locality.  Analytic
dependencies (e.g. a temperature ``T(x_0, t)`` that varies along a single
coordinate) are exploited by making their axes the *outermost* loops and
hoisting every subexpression that only depends on outer-loop state out of
the inner loops — "all temperature-dependent subexpressions are pulled out
of the inner loops".
"""

from __future__ import annotations

import sympy as sp

from ..symbolic.assignment import Assignment, AssignmentCollection
from ..symbolic.coordinates import CoordinateSymbol
from ..symbolic.field import FieldAccess
from ..symbolic.random import RandomValue

__all__ = [
    "choose_loop_order",
    "classify_hoist_levels",
    "extract_invariant_subexpressions",
    "hoisted_symbols",
    "analytic_axes",
]


def analytic_axes(ac: AssignmentCollection) -> set[int]:
    """Spatial axes on which analytic (coordinate) expressions depend."""
    axes: set[int] = set()
    for a in ac.all_assignments:
        axes |= {s.axis for s in a.rhs.atoms(CoordinateSymbol)}
    return axes


def choose_loop_order(ac: AssignmentCollection, dim: int) -> tuple[int, ...]:
    """Loop order (outermost → innermost) for a kernel.

    The fastest-varying axis (``dim-1``, contiguous in memory) is placed
    innermost whenever possible; axes carrying analytic coordinate
    dependencies are pushed outward so their subexpressions can be hoisted.
    """
    analytic = analytic_axes(ac)
    inner_candidates = [a for a in range(dim) if a not in analytic]
    if inner_candidates:
        # last (contiguous) non-analytic axis goes innermost
        rest = sorted(analytic) + [a for a in inner_candidates[:-1]]
        return tuple(rest + [inner_candidates[-1]])
    # every axis is analytic: keep natural order, contiguous axis innermost
    return tuple(range(dim))


def classify_hoist_levels(
    ac: AssignmentCollection, loop_order: tuple[int, ...]
) -> dict[sp.Symbol, int]:
    """Compute, for every temporary, the loop depth at which it can live.

    Returns a map ``symbol → level`` where level ``0`` means the assignment
    is computable before all loops, level ``k`` inside the loop over
    ``loop_order[k-1]``, and level ``len(loop_order)`` (the full depth) means
    it must stay in the loop body.  An assignment's level is the maximum
    over the levels demanded by its atoms:

    * a field access or RNG call demands full depth,
    * a coordinate symbol of axis ``a`` demands ``position(a) + 1``,
    * a temporary demands its own level,
    * plain parameters and numbers demand 0.
    """
    depth = len(loop_order)
    pos = {axis: i for i, axis in enumerate(loop_order)}
    levels: dict[sp.Symbol, int] = {}

    def expr_level(expr: sp.Expr) -> int:
        lvl = 0
        for atom in sp.preorder_traversal(expr):
            if isinstance(atom, (FieldAccess, RandomValue)):
                return depth
            if isinstance(atom, CoordinateSymbol):
                lvl = max(lvl, pos.get(atom.axis, depth - 1) + 1)
            elif isinstance(atom, sp.Symbol) and atom in levels:
                lvl = max(lvl, levels[atom])
        return lvl

    for a in ac.subexpressions:
        levels[a.lhs] = expr_level(a.rhs)
    return levels


def extract_invariant_subexpressions(ac: AssignmentCollection) -> AssignmentCollection:
    """Pull maximal loop-invariant subtrees into their own temporaries.

    Global CSE only extracts *repeated* subexpressions; a temperature factor
    used once would stay inline and could not be hoisted.  This pass finds
    maximal subtrees that contain coordinate symbols but no field accesses or
    RNG calls and binds them to fresh temporaries so that
    :func:`classify_hoist_levels` can move them out of the inner loops.
    """
    gen = ac.fresh_symbol_generator("inv")
    new_subs: list = []
    cache: dict[sp.Expr, sp.Symbol] = {}

    bound = ac.defined_temporaries

    def is_invariant(e: sp.Expr) -> bool:
        # conservative: referencing an existing temporary disqualifies the
        # subtree (the temporary may hide field accesses)
        return (
            not e.atoms(FieldAccess, RandomValue)
            and bool(e.atoms(CoordinateSymbol))
            and not (e.free_symbols & bound)
        )

    def rec(e: sp.Expr) -> sp.Expr:
        if not e.args or isinstance(e, (FieldAccess, CoordinateSymbol)):
            return e
        if is_invariant(e):
            if e in cache:
                return cache[e]
            sym = next(gen)
            cache[e] = sym
            new_subs.append(Assignment(sym, e))
            return sym
        return e.func(*[rec(a) for a in e.args])

    subexpressions = [Assignment(a.lhs, rec(a.rhs)) for a in ac.subexpressions]
    mains = [Assignment(a.lhs, rec(a.rhs)) for a in ac.main_assignments]
    if not new_subs:
        return ac
    # invariant temporaries come first: they depend on nothing bound later
    return ac.copy(mains, new_subs + subexpressions)


def hoisted_symbols(
    ac: AssignmentCollection, loop_order: tuple[int, ...] | None = None, dim: int | None = None
) -> set[sp.Symbol]:
    """Temporaries that move out of the innermost loop (amortized per line)."""
    if loop_order is None:
        if dim is None:
            dim = max(
                (acc.field.spatial_dimensions for acc in ac.field_writes), default=3
            )
        loop_order = choose_loop_order(ac, dim)
    depth = len(loop_order)
    levels = classify_hoist_levels(ac, loop_order)
    return {s for s, lvl in levels.items() if lvl < depth}
