"""Kernel objects — the bridge between SSA stencils and the backends.

A :class:`Kernel` bundles the optimized assignment collection with the
structural decisions of the IR layer: loop order, hoist levels, ghost-layer
width, typing and the target architecture.  :func:`create_kernel` is the
single entry point used by applications (paper Fig. 1, "intermediate
representation layer").
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field, replace
from typing import Mapping

import sympy as sp

from ..simplification.passes import optimize
from ..symbolic.assignment import AssignmentCollection
from ..symbolic.field import Field, FieldAccess
from .approximations import insert_approximations
from .loops import (
    IterationSpace,
    choose_loop_order,
    classify_hoist_levels,
    extract_invariant_subexpressions,
    frontier_spaces,
    interior_space,
)
from .types import BasicType, infer_types, kernel_parameters

__all__ = ["Kernel", "create_kernel", "KernelConfig", "split_interior_frontier"]


@dataclass
class KernelConfig:
    """Code-generation options (the per-model, per-machine tuning knobs)."""

    target: str = "cpu"                      # "cpu" | "gpu"
    approximations: tuple = ()               # subset of ("division","sqrt","rsqrt")
    cse: bool = True
    parameter_values: Mapping | None = None  # compile-time constants
    loop_order: tuple | None = None          # override automatic choice
    vector_width: int = 8                    # doubles per SIMD register (AVX-512)


@dataclass
class Kernel:
    """A fully lowered compute kernel ready for backend code generation."""

    name: str
    ac: AssignmentCollection
    dim: int
    ghost_layers: int
    loop_order: tuple[int, ...]
    hoist_levels: dict[sp.Symbol, int]
    types: dict[sp.Symbol, BasicType]
    config: KernelConfig = dc_field(default_factory=KernelConfig)
    #: names of scalar sum-reduction outputs (empty for stencil sweeps)
    reductions: tuple[str, ...] = ()
    #: optional iteration-space restriction (None = the full interior)
    subspace: IterationSpace | None = None

    @property
    def is_reduction(self) -> bool:
        return bool(self.reductions)

    @property
    def has_staggered_writes(self) -> bool:
        return any(
            isinstance(a.lhs, FieldAccess) and a.lhs.field.staggered
            for a in self.ac.main_assignments
        )

    def restricted(self, subspace: IterationSpace) -> Kernel:
        """The same kernel, lowered over *subspace* instead of the full interior.

        The restricted kernel shares assignments, loop order, hoisting and
        typing with the original — only the loop bounds / slice ranges the
        backends emit change, so each cell it does visit computes bit-identical
        values (Philox counters and coordinates stay global).
        """
        if subspace.dim != self.dim:
            raise ValueError(
                f"iteration space {subspace.name!r} is {subspace.dim}D, "
                f"kernel {self.name!r} is {self.dim}D"
            )
        if self.is_reduction:
            raise ValueError(
                f"reduction kernel {self.name!r} cannot be restricted: partial "
                "sums over subspaces would change the fixed summation order"
            )
        if self.has_staggered_writes:
            raise ValueError(
                f"kernel {self.name!r} has staggered (flux) writes whose "
                "per-assignment regions cannot be composed with an iteration "
                "subspace; use the 'full' kernel variants for overlap"
            )
        if self.subspace is not None:
            raise ValueError(f"kernel {self.name!r} is already restricted")
        return replace(self, name=f"{self.name}:{subspace.name}", subspace=subspace)

    @property
    def parameters(self) -> list[sp.Symbol]:
        # memoized: backends enumerate the parameters on every kernel call,
        # and the sympy free-symbol traversal would otherwise dominate the
        # per-call cost of small (e.g. frontier-restricted) kernels
        cached = self.__dict__.get("_parameters")
        if cached is None:
            cached = self.__dict__["_parameters"] = kernel_parameters(self.ac)
        return cached

    @property
    def coordinate_axes(self) -> set[int]:
        """Spatial axes whose coordinate symbol occurs in the kernel body."""
        from ..symbolic.coordinates import CoordinateSymbol

        axes: set[int] = set()
        for a in self.ac.all_assignments:
            axes |= {s.axis for s in a.rhs.atoms(CoordinateSymbol)}
        return axes

    def folded_value(self, name: str):
        """Compile-time constant for *name*, or None if it stayed symbolic."""
        values = self.config.parameter_values or {}
        for k, v in values.items():
            key = k.name if isinstance(k, sp.Symbol) else str(k)
            if key == name:
                return v
        return None

    @property
    def fields(self) -> list[Field]:
        cached = self.__dict__.get("_fields")
        if cached is None:
            cached = self.__dict__["_fields"] = sorted(
                self.ac.fields, key=lambda f: f.name
            )
        return cached

    @property
    def hoisted(self) -> set[sp.Symbol]:
        return {s for s, lvl in self.hoist_levels.items() if lvl < self.dim}

    def operation_count(self, include_hoisted: bool = False):
        """Per-cell operation count (hoisted assignments amortized away)."""
        from ..perfmodel.flops import count_operations

        skip = () if include_hoisted else self.hoisted
        return count_operations(self.ac, skip_symbols=skip)

    def __repr__(self):
        return (
            f"Kernel({self.name!r}, {self.dim}D, gl={self.ghost_layers}, "
            f"{len(self.ac)} assignments, target={self.config.target})"
        )


def create_kernel(
    ac: AssignmentCollection,
    config: KernelConfig | None = None,
    name: str | None = None,
) -> Kernel:
    """Lower an assignment collection into a :class:`Kernel`.

    Runs the standard optimization pipeline (constant folding of
    ``config.parameter_values``, per-term simplification, global CSE),
    optionally inserts approximate operations, chooses the loop order and
    classifies hoistable subexpressions.
    """
    from ..observability.tracing import get_tracer

    config = config or KernelConfig()
    dims = {f.spatial_dimensions for f in ac.fields}
    if len(dims) != 1:
        raise ValueError(f"kernel mixes fields of different dimensionality: {dims}")
    (dim,) = dims

    with get_tracer().span(
        f"create_kernel:{name or ac.name}", category="ir", target=config.target
    ) as span:
        ac = optimize(ac, parameter_values=config.parameter_values, cse=config.cse)
        ac = extract_invariant_subexpressions(ac)
        if config.approximations:
            ac = insert_approximations(ac, config.approximations)
        ac.validate()

        loop_order = config.loop_order or choose_loop_order(ac, dim)
        if sorted(loop_order) != list(range(dim)):
            raise ValueError(f"loop_order {loop_order} is not a permutation of axes")

        reductions = tuple(a.lhs.name for a in ac.reduction_outputs)
        if reductions and ac.field_writes:
            raise ValueError(
                "a kernel cannot mix field stores with reduction outputs: "
                f"{ac.name}"
            )
        kernel = Kernel(
            name=name or ac.name,
            ac=ac,
            dim=dim,
            ghost_layers=ac.ghost_layers_required(),
            loop_order=tuple(loop_order),
            hoist_levels=classify_hoist_levels(ac, tuple(loop_order)),
            types=infer_types(ac),
            config=config,
            reductions=reductions,
        )
        if span is not None:
            span.args.update(
                assignments=len(ac), ghost_layers=kernel.ghost_layers,
                loop_order=str(kernel.loop_order),
            )
        return kernel


def split_interior_frontier(
    kernel: Kernel, margin: int | None = None
) -> tuple[Kernel, tuple[Kernel, ...]]:
    """Split *kernel* into an interior variant and per-face frontier variants.

    *margin* defaults to the kernel's stencil reach (``kernel.ghost_layers``):
    a cell at distance ≥ reach from every block face reads no ghost data, so
    the interior variant can run while a ghost exchange is in flight; the
    frontier variants sweep the remaining shell once the exchange finished.
    Interior ∪ frontiers tiles the block exactly once.
    """
    m = kernel.ghost_layers if margin is None else int(margin)
    m = max(m, 1)
    interior = kernel.restricted(interior_space(kernel.dim, m))
    frontiers = tuple(
        kernel.restricted(space) for space in frontier_spaces(kernel.dim, m)
    )
    return interior, frontiers
