"""Minimal type system for kernel parameters and temporaries (paper §3.4).

The symbolic layers are untyped (sympy symbols carry no type); the first IR
transformation assigns a type to every symbol.  Doubles dominate; loop
counters, the time step and the RNG seed are integers.  Backends insert
casts where an integer feeds a floating point expression.
"""

from __future__ import annotations

from dataclasses import dataclass

import sympy as sp

from ..symbolic.assignment import AssignmentCollection
from ..symbolic.field import FieldAccess
from ..symbolic.random import SEED, TIME_STEP

__all__ = ["BasicType", "DOUBLE", "FLOAT", "INT64", "infer_types", "kernel_parameters"]


@dataclass(frozen=True)
class BasicType:
    """A scalar machine type."""

    name: str          # python-facing name
    c_name: str        # spelling in generated C/CUDA
    numpy_name: str
    size: int          # bytes
    is_int: bool = False

    def __str__(self):
        return self.name


DOUBLE = BasicType("double", "double", "float64", 8)
FLOAT = BasicType("float", "float", "float32", 4)
INT64 = BasicType("int64", "int64_t", "int64", 8, is_int=True)

_BY_NAME = {t.name: t for t in (DOUBLE, FLOAT, INT64)}


def type_by_name(name: str) -> BasicType:
    return _BY_NAME[name]


def infer_types(ac: AssignmentCollection, default: BasicType = DOUBLE) -> dict[sp.Symbol, BasicType]:
    """Assign a type to every free and bound symbol of a kernel.

    Field accesses take their field's dtype; explicitly integer sympy symbols
    (``time_step``, ``seed``, user-declared integer parameters) become
    int64; everything else defaults to the kernel's floating point type.
    """
    table: dict[sp.Symbol, BasicType] = {}
    for sym in ac.free_symbols | ac.bound_symbols:
        if isinstance(sym, FieldAccess):
            table[sym] = type_by_name(sym.field.dtype)
        elif sym in (TIME_STEP, SEED) or sym.is_integer:
            table[sym] = INT64
        else:
            table[sym] = default
    return table


def kernel_parameters(ac: AssignmentCollection) -> list[sp.Symbol]:
    """Deterministically ordered non-field kernel arguments.

    Any symbol not defined before its use becomes an argument of the
    generated kernel function (paper §3.4).  Coordinate symbols are *not*
    parameters — backends materialize them from the iteration indices.
    """
    from ..symbolic.coordinates import CoordinateSymbol

    return sorted(
        (s for s in ac.parameters if not isinstance(s, CoordinateSymbol)),
        key=lambda s: s.name,
    )
