"""In-situ analysis metrics for phase-field states (paper §4.1, §7).

All functions operate on interior arrays ``phi[..., α]`` (phase index last)
as produced by the solvers.  They quantify the microstructural features the
paper's Fig. 4 discusses: phase fractions, interfacial area, front position
and velocity.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "phase_fractions",
    "interface_fraction",
    "interfacial_area",
    "front_position",
    "front_velocity",
    "solid_fraction_profile",
    "total_grand_potential_proxy",
]


def phase_fractions(phi: np.ndarray) -> np.ndarray:
    """Volume fraction of every phase."""
    n = phi.shape[-1]
    return phi.reshape(-1, n).mean(axis=0)


def interface_fraction(phi: np.ndarray, threshold: float = 0.05) -> float:
    """Fraction of cells inside any diffuse interface."""
    in_iface = np.any((phi > threshold) & (phi < 1 - threshold), axis=-1)
    return float(in_iface.mean())


def interfacial_area(phi: np.ndarray, phase: int, dx: float = 1.0) -> float:
    """Interfacial area (length in 2D) of one phase: ∫ |∇φ_α| dV.

    For the equilibrium profile this integral equals the sharp-interface
    area up to a constant close to one.
    """
    p = phi[..., phase]
    grads = np.gradient(p, dx)
    if p.ndim == 1:
        grads = [grads]
    norm = np.sqrt(sum(g**2 for g in grads))
    return float(norm.sum() * dx**p.ndim)


def front_position(phi: np.ndarray, solid_phases, axis: int = 0, level: float = 0.5) -> float:
    """Mean position of the solid/liquid front along *axis* (cell units).

    Defined through the solid fraction profile: the integral of the profile
    equals the front position for a sharp front.
    """
    profile = solid_fraction_profile(phi, solid_phases, axis)
    return float(profile.sum())


def solid_fraction_profile(phi: np.ndarray, solid_phases, axis: int = 0) -> np.ndarray:
    """Average solid fraction as a function of the coordinate along *axis*."""
    solid = phi[..., list(solid_phases)].sum(axis=-1)
    other_axes = tuple(a for a in range(solid.ndim) if a != axis)
    return solid.mean(axis=other_axes)


def front_velocity(
    positions: list[float], dt_between_samples: float
) -> np.ndarray:
    """Finite-difference front velocities from a position time series."""
    p = np.asarray(positions, dtype=float)
    if len(p) < 2:
        return np.zeros(0)
    return np.diff(p) / dt_between_samples


def total_grand_potential_proxy(phi: np.ndarray, gamma: float = 1.0) -> float:
    """Monotonicity proxy for the free energy: obstacle + gradient terms.

    Useful for curvature-flow tests where the full functional is overkill:
    for pure interface motion this quantity must decrease.
    """
    n = phi.shape[-1]
    pair = 0.0
    for b in range(n):
        for a in range(b):
            pair += (phi[..., a] * phi[..., b]).sum()
    grad = 0.0
    for a in range(n):
        for g in np.gradient(phi[..., a]):
            grad += (g**2).sum()
    return float(gamma * (16 / np.pi**2 * pair + grad))
