"""Lightweight I/O for simulation results (paper §4.1 post-processing).

waLBerla writes distributed surface meshes and VTK files; here the
equivalents are compressed ``.npz`` snapshots, CSV time series, and an
interface-cell extraction that plays the role of the coarsened surface mesh
(it reduces a 3D field to the O(N²) set of interface cells before output).
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

__all__ = [
    "snapshot_path",
    "save_snapshot",
    "load_snapshot",
    "TimeSeriesWriter",
    "extract_interface_cells",
    "write_vtk",
]


def write_vtk(
    path,
    cell_data: dict[str, np.ndarray],
    spacing: float = 1.0,
    origin: tuple[float, ...] = (0.0, 0.0, 0.0),
    dim: int | None = None,
) -> Path:
    """Write scalar cell fields as a legacy-VTK structured-points file.

    ``cell_data`` maps names to arrays with *dim* (2 or 3) spatial axes,
    all of one spatial shape; arrays with one extra trailing axis are
    vector fields and are split into per-component scalars ``name_0``,
    ``name_1``, ….  When ``dim`` is omitted it is the smallest spatial rank
    that fits every field (so a lone ``(nx, ny, nz)`` array stays a 3D
    scalar volume; pass ``dim=2`` to write it as a stack of 2D components).
    The output opens directly in ParaView — the standard visualization path
    for waLBerla results (paper §4.1).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    arrays = {name: np.asarray(arr) for name, arr in cell_data.items()}
    if not arrays:
        raise ValueError("no fields given")
    if dim is None:
        dim = min(3, min(a.ndim for a in arrays.values()))
    if dim not in (2, 3):
        raise ValueError(f"dim must be 2 or 3, got {dim}")

    flat: dict[str, np.ndarray] = {}
    shape = None
    for name, arr in arrays.items():
        if arr.ndim == dim:
            comps = {name: arr}
        elif arr.ndim == dim + 1:
            comps = {
                f"{name}_{i}": arr[..., i] for i in range(arr.shape[-1])
            }
        else:
            raise ValueError(
                f"field {name} has {arr.ndim} axes; expected {dim} (scalar) "
                f"or {dim + 1} (vector) for {dim}D output"
            )
        for cname, carr in comps.items():
            if carr.ndim == 2:
                carr = carr[..., None]
            if shape is None:
                shape = carr.shape
            elif carr.shape != shape:
                raise ValueError(
                    f"field {cname} has shape {carr.shape}, expected {shape}"
                )
            flat[cname] = carr

    nx, ny, nz = shape
    with open(path, "w") as f:
        f.write("# vtk DataFile Version 3.0\n")
        f.write("repro phase-field output\n")
        f.write("ASCII\n")
        f.write("DATASET STRUCTURED_POINTS\n")
        # legacy VTK expects point counts = cell counts + 1 for CELL_DATA
        f.write(f"DIMENSIONS {nx + 1} {ny + 1} {nz + 1}\n")
        f.write(f"ORIGIN {origin[0]} {origin[1]} {origin[2] if len(origin) > 2 else 0.0}\n")
        f.write(f"SPACING {spacing} {spacing} {spacing}\n")
        f.write(f"CELL_DATA {nx * ny * nz}\n")
        for name, arr in flat.items():
            f.write(f"SCALARS {name} double 1\nLOOKUP_TABLE default\n")
            # VTK is Fortran-ordered: x fastest
            np.savetxt(f, arr.transpose(2, 1, 0).reshape(-1, 1), fmt="%.10g")
    return path


def snapshot_path(path) -> Path:
    """The on-disk path of a snapshot: ``.npz`` appended when missing.

    ``np.savez`` silently appends the suffix; applying the same rule on
    *both* the write and the read side makes
    ``load_snapshot(p)`` work for every ``p`` accepted by
    ``save_snapshot(p)``, with or without the extension.
    """
    path = Path(path)
    return path if path.name.endswith(".npz") else path.with_name(path.name + ".npz")


def save_snapshot(path, phi: np.ndarray, mu: np.ndarray, time: float, time_step: int) -> Path:
    """Write a compressed state snapshot; returns the actual file path."""
    path = snapshot_path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path, phi=phi, mu=mu, time=np.float64(time), time_step=np.int64(time_step)
    )
    return path


def load_snapshot(path) -> dict:
    with np.load(snapshot_path(path)) as data:
        return {
            "phi": data["phi"],
            "mu": data["mu"],
            "time": float(data["time"]),
            "time_step": int(data["time_step"]),
        }


class TimeSeriesWriter:
    """Appends analysis rows to a CSV file (in-situ evaluation output)."""

    def __init__(self, path, columns: list[str]):
        self.path = Path(path)
        self.columns = list(columns)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "w", newline="") as f:
            csv.writer(f).writerow(self.columns)

    def append(self, **values) -> None:
        missing = set(self.columns) - set(values)
        if missing:
            raise KeyError(f"missing columns: {sorted(missing)}")
        with open(self.path, "a", newline="") as f:
            csv.writer(f).writerow([values[c] for c in self.columns])

    def read(self) -> dict[str, np.ndarray]:
        """Parsed contents as per-column arrays (empty when no rows yet)."""
        import warnings

        with warnings.catch_warnings():
            # genfromtxt warns (and on older numpy returns a names-less NaN
            # scalar) for a header-only file; zero rows is a valid state
            warnings.simplefilter("ignore")
            rows = np.genfromtxt(self.path, delimiter=",", names=True)
        if rows.dtype.names is None or rows.size == 0:
            return {name: np.empty(0, dtype=np.float64) for name in self.columns}
        if rows.shape == ():  # single data row
            rows = rows.reshape(1)
        return {name: np.asarray(rows[name]) for name in rows.dtype.names}


def extract_interface_cells(
    phi: np.ndarray, phase_a: int, phase_b: int, threshold: float = 0.2
) -> np.ndarray:
    """Coordinates of cells on the a/b interface (surface-mesh stand-in).

    A cell belongs to the interface when both phases are present beyond the
    threshold.  Returns an (M, dim) integer coordinate array — typically
    O(N^(d-1)) cells instead of N^d, the same data reduction the distributed
    surface-mesh output achieves.
    """
    mask = (phi[..., phase_a] > threshold) & (phi[..., phase_b] > threshold)
    return np.argwhere(mask)
