"""Dendrite tip tracking for anisotropic solidification (Fig. 4 right).

Quantifies the competitive dendritic growth of setup P2: tip position and
velocity per grain, tip radius from a parabolic fit (dendrites grow "with a
parabolic tip followed by a wider trunk"), and the overgrowth detection used
to observe one orientation winning over another.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TipState", "tip_position", "tip_radius", "track_tips", "overgrown"]


@dataclass
class TipState:
    phase: int
    position: float          # extent along the growth axis (cell units)
    width: float             # lateral extent at the tip base
    area: float              # total grain area/volume


def tip_position(phi: np.ndarray, phase: int, growth_axis: int = 0, level: float = 0.5) -> float:
    """Furthest extent of the grain along the growth axis (sub-cell)."""
    solid = phi[..., phase] >= level
    if not solid.any():
        return float("nan")
    other = tuple(a for a in range(solid.ndim) if a != growth_axis)
    column_has = solid.any(axis=other)
    idx = np.nonzero(column_has)[0]
    tip_cell = int(idx.max())
    # sub-cell refinement: interpolate φ across the tip cell boundary
    sl = [slice(None)] * solid.ndim
    sl[growth_axis] = tip_cell
    p_here = phi[tuple(sl)][..., phase].max()
    frac = 0.5
    if tip_cell + 1 < phi.shape[growth_axis]:
        sl[growth_axis] = tip_cell + 1
        p_next = phi[tuple(sl)][..., phase].max()
        if p_here > p_next and not np.isclose(p_here, p_next):
            frac = float(np.clip((p_here - level) / (p_here - p_next), 0.0, 1.0))
    return tip_cell + frac


def tip_radius(
    phi: np.ndarray, phase: int, growth_axis: int = 0, level: float = 0.5, fit_cells: int = 6
) -> float:
    """Tip radius from a parabolic fit z(x) ≈ z_tip − x²/(2R) (2D sections).

    For 3D fields the central section through the tip is used.
    """
    field = phi[..., phase]
    if field.ndim == 3:
        # take the mid-plane of the last axis through the tip
        field = field[:, :, field.shape[2] // 2]
        if growth_axis == 2:
            raise ValueError("growth axis must be in the section plane")
    solid = field >= level
    if not solid.any():
        return float("nan")
    lateral_axis = 1 - growth_axis
    heights = []
    lateral = []
    for j in range(field.shape[lateral_axis]):
        col = solid.take(j, axis=lateral_axis)
        idx = np.nonzero(col)[0]
        if idx.size:
            heights.append(idx.max())
            lateral.append(j)
    if len(heights) < 3:
        return float("nan")
    heights = np.asarray(heights, dtype=float)
    lateral = np.asarray(lateral, dtype=float)
    j_tip = lateral[np.argmax(heights)]
    mask = np.abs(lateral - j_tip) <= fit_cells
    if mask.sum() < 3:
        return float("nan")
    x = lateral[mask] - j_tip
    z = heights[mask]
    coeffs = np.polyfit(x, z, 2)
    a = coeffs[0]
    if a >= 0:
        return float("inf")
    return float(-1.0 / (2.0 * a))


def track_tips(phi: np.ndarray, solid_phases, growth_axis: int = 0) -> list[TipState]:
    """Tip state of every solid grain."""
    states = []
    for p in solid_phases:
        solid = phi[..., p] >= 0.5
        pos = tip_position(phi, p, growth_axis)
        width = float(solid.any(axis=growth_axis).sum()) if solid.any() else 0.0
        states.append(
            TipState(phase=p, position=pos, width=width, area=float(solid.sum()))
        )
    return states


def overgrown(
    history: list[list[TipState]], margin: float = 2.0
) -> set[int]:
    """Phases whose tips have fallen behind the leading tip by *margin* cells
    and stopped advancing — the competitive overgrowth of Fig. 4."""
    if not history:
        return set()
    last = history[-1]
    lead = max(t.position for t in last if np.isfinite(t.position))
    losers = set()
    for t in last:
        if not np.isfinite(t.position) or lead - t.position >= margin:
            if len(history) >= 2:
                prev = next(
                    (s for s in history[-2] if s.phase == t.phase), None
                )
                if prev is not None and np.isfinite(prev.position) and t.position <= prev.position + 1e-9:
                    losers.add(t.phase)
            else:
                losers.add(t.phase)
    return losers
