"""Lamellar microstructure analysis for eutectic solidification (Fig. 4 left).

Directional ternary eutectics form alternating lamellae of the solid
phases; the dominant lamellar spacing λ is the key quantity compared with
experiments.  It is extracted from the power spectrum of a phase indicator
along a cross-section perpendicular to the growth direction.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lamellar_spacing", "phase_spectrum", "cross_section"]


def cross_section(
    phi: np.ndarray, growth_axis: int, position: int | None = None
) -> np.ndarray:
    """Slice of the phase fields perpendicular to the growth axis."""
    n = phi.shape[growth_axis]
    pos = n // 2 if position is None else int(position)
    idx = [slice(None)] * (phi.ndim - 1)
    idx[growth_axis] = pos
    return phi[tuple(idx)]


def phase_spectrum(indicator: np.ndarray, axis: int = 0, dx: float = 1.0):
    """Power spectrum of a 1D/2D phase indicator along *axis*.

    Returns (wavelengths, power) with the zero-frequency mode removed.
    """
    ind = indicator - indicator.mean()
    spec = np.abs(np.fft.rfft(ind, axis=axis)) ** 2
    if spec.ndim > 1:
        other = tuple(a for a in range(spec.ndim) if a != axis)
        spec = spec.mean(axis=other)
    n = indicator.shape[axis]
    freqs = np.fft.rfftfreq(n, d=dx)
    wavelengths = np.empty_like(freqs)
    wavelengths[0] = np.inf
    wavelengths[1:] = 1.0 / freqs[1:]
    return wavelengths[1:], spec[1:]


def lamellar_spacing(
    phi: np.ndarray,
    phase: int,
    growth_axis: int = 0,
    lamella_axis: int = 0,
    dx: float = 1.0,
    position: int | None = None,
) -> float:
    """Dominant lamellar spacing λ of one solid phase (cell units × dx).

    ``lamella_axis`` indexes axes of the cross-section (after removing the
    growth axis).
    """
    section = cross_section(phi, growth_axis, position)[..., phase]
    wavelengths, power = phase_spectrum(section, axis=lamella_axis, dx=dx)
    return float(wavelengths[np.argmax(power)])
