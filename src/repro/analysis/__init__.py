"""In-situ analysis: microstructure metrics, lamellar spectra, dendrite tips, I/O."""

from .dendrite import TipState, overgrown, tip_position, tip_radius, track_tips
from .io import (
    TimeSeriesWriter,
    extract_interface_cells,
    load_snapshot,
    save_snapshot,
    snapshot_path,
    write_vtk,
)
from .lamellar import cross_section, lamellar_spacing, phase_spectrum
from .metrics import (
    front_position,
    front_velocity,
    interface_fraction,
    interfacial_area,
    phase_fractions,
    solid_fraction_profile,
    total_grand_potential_proxy,
)

__all__ = [
    "TipState",
    "overgrown",
    "tip_position",
    "tip_radius",
    "track_tips",
    "TimeSeriesWriter",
    "extract_interface_cells",
    "load_snapshot",
    "save_snapshot",
    "snapshot_path",
    "write_vtk",
    "cross_section",
    "lamellar_spacing",
    "phase_spectrum",
    "front_position",
    "front_velocity",
    "interface_fraction",
    "interfacial_area",
    "phase_fractions",
    "solid_fraction_profile",
    "total_grand_potential_proxy",
]
