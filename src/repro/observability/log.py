"""Structured logging for the whole package (``repro.observability.log``).

Every module logs through a child of the ``repro`` logger so one call to
:func:`configure_logging` controls the verbosity of the entire pipeline —
from symbolic assembly down to kernel compilation and the runtime loop.
Messages follow a lightweight ``event key=value`` convention (built with
:func:`kv`) so they stay grep-able and machine-parseable without pulling in
a structured-logging dependency.

By default the ``repro`` logger has a :class:`logging.NullHandler` attached:
library use is silent unless the application opts in, the standard library
etiquette.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "configure_logging", "kv", "ROOT_LOGGER_NAME"]

ROOT_LOGGER_NAME = "repro"

logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())

#: marker attribute so reconfiguration replaces (not duplicates) our handler
_HANDLER_TAG = "_repro_observability_handler"


def get_logger(name: str = "") -> logging.Logger:
    """Logger under the ``repro`` namespace (``get_logger("pfm.solver")``).

    Fully qualified ``repro.*`` names (e.g. ``__name__`` of a package
    module) are used as-is, anything else is prefixed.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def kv(event: str, **fields) -> str:
    """Render ``event key=value ...`` (values with spaces get quoted)."""
    parts = [event]
    for key, value in fields.items():
        if isinstance(value, float):
            text = f"{value:.6g}"
        else:
            text = str(value)
        if " " in text or "=" in text:
            text = '"' + text.replace('"', "'") + '"'
        parts.append(f"{key}={text}")
    return " ".join(parts)


def configure_logging(
    level: int | str = logging.INFO,
    stream=None,
    fmt: str = "%(asctime)s %(levelname)-7s %(name)s: %(message)s",
) -> logging.Logger:
    """Attach a stream handler to the ``repro`` logger (idempotent).

    Returns the configured root ``repro`` logger.  Calling it again replaces
    the previous handler, so changing the level or stream is safe.
    """
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(fmt))
    setattr(handler, _HANDLER_TAG, True)
    root.addHandler(handler)
    root.setLevel(level)
    return root
