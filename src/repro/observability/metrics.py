"""Counters, gauges and histograms with JSON + Prometheus export.

A :class:`MetricsRegistry` holds families of instruments keyed by metric
name and label set, exported two ways:

* :meth:`MetricsRegistry.to_json` — a plain dict for programmatic joins
  (tests, dashboards, the benchmark harness),
* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` / samples), ready to be scraped or
  written as ``metrics.prom``.  :func:`parse_prometheus` parses the same
  format back, so exports round-trip in tests and in the CI checker.

The process-wide registry (:func:`get_registry`) is wired to the kernel
cache (hits/misses/size), the solvers (step-latency histograms, exchanged
bytes, per-kernel MLUP/s via :meth:`repro.profiling.SolverProfiler.export_metrics`)
and the health monitor (check/event counts).
"""

from __future__ import annotations

import math
import re
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "reset_metrics",
    "parse_prometheus",
    "DEFAULT_BUCKETS",
]

#: step-latency style default buckets (seconds), roughly logarithmic
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Instrument:
    """Base: a named metric with a frozen label set."""

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()

    @property
    def labels_dict(self) -> dict[str, str]:
        return dict(self.labels)


class Counter(_Instrument):
    """Monotonically increasing count (Prometheus ``counter``)."""

    def __init__(self, name, labels):
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self.value += amount


class Gauge(_Instrument):
    """Point-in-time value (Prometheus ``gauge``)."""

    def __init__(self, name, labels):
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram(_Instrument):
    """Cumulative-bucket histogram (Prometheus ``histogram``)."""

    def __init__(self, name, labels, buckets=DEFAULT_BUCKETS):
        super().__init__(name, labels)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1

    def cumulative(self) -> list[int]:
        total = 0
        out = []
        for c in self.bucket_counts:
            total += c
            out.append(total)
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class _Family:
    def __init__(self, name: str, kind: str, help_: str):
        self.name = name
        self.kind = kind
        self.help = help_
        self.instruments: dict[tuple, _Instrument] = {}


class MetricsRegistry:
    """Get-or-create registry of metric families."""

    def __init__(self):
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- creation --------------------------------------------------------------

    def _get(self, kind: str, name: str, help_: str, labels: dict, factory):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for k in labels:
            if not _LABEL_RE.match(k):
                raise ValueError(f"invalid label name {k!r}")
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = _Family(name, kind, help_)
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"requested {kind}"
                )
            if help_ and not family.help:
                family.help = help_
            inst = family.instruments.get(key)
            if inst is None:
                inst = family.instruments[key] = factory(name, key)
            return inst

    # metric name/help are positional-only so that "name" and "help" remain
    # usable as label keys (e.g. repro_diagnostic{name="free_energy"})
    def counter(self, name: str, help: str = "", /, **labels) -> Counter:
        return self._get("counter", name, help, labels, Counter)

    def gauge(self, name: str, help: str = "", /, **labels) -> Gauge:
        return self._get("gauge", name, help, labels, Gauge)

    def histogram(
        self, name: str, help: str = "", /, buckets=DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        return self._get(
            "histogram", name, help, labels,
            lambda n, key: Histogram(n, key, buckets=buckets),
        )

    # -- access ----------------------------------------------------------------

    def get(self, name: str, /, **labels):
        """Existing instrument or ``None`` (never creates)."""
        family = self._families.get(name)
        if family is None:
            return None
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        return family.instruments.get(key)

    def families(self) -> list[str]:
        return sorted(self._families)

    def reset(self) -> None:
        with self._lock:
            self._families.clear()

    # -- export ----------------------------------------------------------------

    def to_json(self) -> dict:
        """``{name: {"type", "help", "samples": [{labels, ...}]}}``."""
        out: dict = {}
        for name in sorted(self._families):
            family = self._families[name]
            samples = []
            for key in sorted(family.instruments):
                inst = family.instruments[key]
                entry: dict = {"labels": dict(key)}
                if isinstance(inst, Histogram):
                    # count alongside mean: a 0.0 mean from zero
                    # observations must be distinguishable from a true zero
                    entry.update(
                        sum=inst.sum,
                        count=inst.count,
                        mean=inst.mean,
                        buckets={
                            str(b): c
                            for b, c in zip(
                                list(inst.bounds) + ["+Inf"], inst.cumulative()
                            )
                        },
                    )
                else:
                    entry["value"] = inst.value
                samples.append(entry)
            out[name] = {"type": family.kind, "help": family.help, "samples": samples}
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.instruments):
                inst = family.instruments[key]
                if isinstance(inst, Histogram):
                    cumulative = inst.cumulative()
                    for bound, c in zip(inst.bounds, cumulative):
                        le = _label_str(key, f'le="{bound:g}"')
                        lines.append(f"{name}_bucket{le} {c}")
                    le = _label_str(key, 'le="+Inf"')
                    lines.append(f"{name}_bucket{le} {cumulative[-1]}")
                    lines.append(f"{name}_sum{_label_str(key)} {inst.sum:g}")
                    lines.append(f"{name}_count{_label_str(key)} {inst.count}")
                else:
                    lines.append(f"{name}{_label_str(key)} {inst.value:g}")
        return "\n".join(lines) + "\n"

    def export_prometheus(self, path) -> str:
        """Write ``metrics.prom`` and return the path written."""
        with open(path, "w") as fh:
            fh.write(self.to_prometheus())
        return str(path)


# the label block must be matched with a quote-aware pattern: a naive
# [^}]* stops at a '}' INSIDE a quoted label value (legal per the
# exposition format, e.g. kernel="mu{0}")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>(?:[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\",?)*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_UNESCAPE_RE = re.compile(r"\\(.)")
_UNESCAPE_MAP = {"n": "\n", '"': '"', "\\": "\\"}


def _unescape(value: str) -> str:
    """Single-pass inverse of :func:`_escape`.

    Sequential ``str.replace`` passes are wrong here: the escaped form of a
    literal backslash followed by 'n' (``\\\\n``) would be turned into a
    newline by a later pass.  Each escape sequence must be decoded exactly
    once, left to right; unknown escapes are kept verbatim.
    """
    return _UNESCAPE_RE.sub(
        lambda m: _UNESCAPE_MAP.get(m.group(1), "\\" + m.group(1)), value
    )


def parse_prometheus(text: str) -> dict:
    """Parse the text exposition format back into a nested dict.

    Returns ``{family: {"type", "help", "samples": [(sample_name, labels,
    value)]}}`` where histogram series (``_bucket``/``_sum``/``_count``)
    are grouped under their family name.  Inverse of
    :meth:`MetricsRegistry.to_prometheus` up to float formatting.
    """
    families: dict[str, dict] = {}

    def family_of(sample_name: str) -> str:
        for fam, info in families.items():
            if info["type"] == "histogram" and sample_name in (
                f"{fam}_bucket", f"{fam}_sum", f"{fam}_count"
            ):
                return fam
        return sample_name

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_ = rest.partition(" ")
            families.setdefault(name, {"type": "untyped", "help": "", "samples": []})
            families[name]["help"] = help_
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families.setdefault(name, {"type": "untyped", "help": "", "samples": []})
            families[name]["type"] = kind.strip()
        elif line.startswith("#"):
            continue
        else:
            m = _SAMPLE_RE.match(line)
            if not m:
                raise ValueError(f"unparseable metrics line: {raw!r}")
            labels = {
                k: _unescape(v)
                for k, v in _LABEL_PAIR_RE.findall(m.group("labels") or "")
            }
            value = float(m.group("value"))
            fam = family_of(m.group("name"))
            families.setdefault(fam, {"type": "untyped", "help": "", "samples": []})
            families[fam]["samples"].append((m.group("name"), labels, value))
    return families


def find_sample(parsed: dict, family: str, sample: str | None = None, **labels):
    """Value of one sample from :func:`parse_prometheus` output, or None."""
    info = parsed.get(family)
    if info is None:
        return None
    sample = sample or family
    for name, sample_labels, value in info["samples"]:
        if name == sample and all(
            sample_labels.get(k) == str(v) for k, v in labels.items()
        ):
            return value
    return None


_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _GLOBAL_REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install *registry* as the process-wide one; returns the previous."""
    global _GLOBAL_REGISTRY
    previous = _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = registry
    return previous


def reset_metrics() -> None:
    """Clear every family in the global registry (used by tests)."""
    _GLOBAL_REGISTRY.reset()


def quantile_estimate(hist: Histogram, q: float) -> float:
    """Crude bucket-interpolated quantile of a histogram (diagnostics)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    if hist.count == 0:
        return math.nan
    target = q * hist.count
    total = 0
    lo = 0.0
    for bound, c in zip(hist.bounds, hist.bucket_counts):
        if total + c >= target and c > 0:
            frac = (target - total) / c
            return lo + frac * (bound - lo)
        total += c
        lo = bound
    return hist.bounds[-1]
