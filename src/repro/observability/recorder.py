"""Flight recorder: an always-on, bounded ring buffer of structured events.

Long multi-rank runs fail in ways the trace/metrics layers cannot explain
after the fact: the tracer is opt-in (and unbounded), the metrics are
aggregates, and a worker that dies under :mod:`repro.parallel.proc_comm`
takes its in-memory state with it.  The :class:`FlightRecorder` is the
production-forensics counterpart — waLBerla-class codes keep exactly this
kind of rolling event log so a crash at step 48 123 of a day-long run is
diagnosable from the artifacts alone:

* **always on** — the process-wide recorder is enabled by default and
  bounded (a ``deque(maxlen=...)`` ring), so it costs a few microseconds
  per event and a fixed amount of memory no matter how long the run is;
* **structured events** — step begin/end, kernel dispatch, every profiled
  operation (ghost-exchange pack/wait/unpack, boundary fills), health
  events and checkpoint writes, each a ``(seq, ts, kind, name, data)``
  record;
* **self-measured overhead** — every :meth:`~FlightRecorder.record` call
  times itself; the accumulated cost is exported as the
  ``repro_observability_overhead_seconds`` gauge and gated against step
  time in ``tools/bench_scaling_smoke.py`` (< 5 %);
* **JSONL journal** — :meth:`~FlightRecorder.open_journal` streams every
  event to a line-buffered ``journal.jsonl`` (one JSON object per line),
  the durable variant of the ring for post-run analysis and the HTML run
  report;
* **crash forensics** — the ring, the open-span stack and the current
  step position are what :func:`repro.observability.postmortem.capture_postmortem`
  snapshots into ``postmortem.json`` when a rank dies.

Like the tracer, the process-wide instance (:func:`get_recorder`) can be
shadowed per thread with :func:`set_thread_recorder` /
:func:`rank_recorder`, so simulated (thread-backed) MPI ranks each keep
their own event ring; forked process ranks get a private copy of the
global recorder for free.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from contextlib import contextmanager
from time import perf_counter

__all__ = [
    "FlightRecorder",
    "RecorderEvent",
    "get_recorder",
    "set_recorder",
    "set_thread_recorder",
    "rank_recorder",
]

#: default ring capacity — enough for several steps of a busy distributed
#: solver (each step emits ~10–20 events), small enough to pickle cheaply
DEFAULT_CAPACITY = 1024

#: name of the self-measured overhead gauge
OVERHEAD_GAUGE = "repro_observability_overhead_seconds"


def _plain(value):
    """Coerce *value* into a JSON/pickle-safe primitive (recursively)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    # numpy scalars expose item(); anything else degrades to repr
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _plain(item())
        except Exception:
            pass
    return repr(value)


class RecorderEvent(tuple):
    """One recorded event: ``(seq, ts, kind, name, data)``.

    A thin tuple subclass so events stay cheap to create and pickle while
    offering named access and a dict form for JSON export.
    """

    __slots__ = ()

    def __new__(cls, seq: int, ts: float, kind: str, name: str, data: dict):
        return tuple.__new__(cls, (seq, ts, kind, name, data))

    def __getnewargs__(self):
        return tuple(self)

    @property
    def seq(self) -> int:
        return self[0]

    @property
    def ts(self) -> float:
        return self[1]

    @property
    def kind(self) -> str:
        return self[2]

    @property
    def name(self) -> str:
        return self[3]

    @property
    def data(self) -> dict:
        return self[4]

    def to_dict(self) -> dict:
        return {
            "seq": self[0],
            "ts": self[1],
            "kind": self[2],
            "name": self[3],
            "data": self[4],
        }

    def __repr__(self):
        return f"RecorderEvent(seq={self[0]}, kind={self[2]!r}, name={self[3]!r})"


class FlightRecorder:
    """Bounded ring of structured run events with an optional JSONL journal."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        enabled: bool = True,
        rank: int | None = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.enabled = enabled
        self.rank = rank
        self.capacity = int(capacity)
        self._ring: deque[RecorderEvent] = deque(maxlen=self.capacity)
        self._seq = 0
        self._overhead = 0.0
        self._open: list[RecorderEvent] = []
        self._position: dict = {}
        self._journal = None
        self._journal_path: str | None = None
        self._state_provider = None
        self._lock = threading.Lock()

    # -- recording -------------------------------------------------------------

    def record(self, kind: str, name: str = "", **data) -> RecorderEvent | None:
        """Append one event to the ring (and the journal, when open).

        Returns the event, or ``None`` when disabled.  The call times
        itself; the accumulated cost is :attr:`overhead_seconds`.
        """
        if not self.enabled:
            return None
        t0 = perf_counter()
        with self._lock:
            self._seq += 1
            event = RecorderEvent(self._seq, t0, kind, name, data)
            self._ring.append(event)
            if self._journal is not None:
                try:
                    self._journal.write(
                        json.dumps(event.to_dict(), default=_plain) + "\n"
                    )
                except (OSError, ValueError):
                    # a full disk or closed handle must never kill the run
                    self._journal = None
            self._overhead += perf_counter() - t0
        return event

    def begin(self, kind: str, name: str = "", **data) -> RecorderEvent | None:
        """Record a ``<kind>_begin`` event and push it on the open-span stack."""
        event = self.record(f"{kind}_begin", name, **data)
        if event is not None:
            with self._lock:
                self._open.append(event)
        return event

    def end(self, kind: str, name: str = "", **data) -> RecorderEvent | None:
        """Record a ``<kind>_end`` event and pop the matching open span."""
        event = self.record(f"{kind}_end", name, **data)
        if event is not None:
            with self._lock:
                if self._open:
                    self._open.pop()
        return event

    def step_begin(self, time_step: int, **data) -> RecorderEvent | None:
        """Open a time-step span; also updates :attr:`position`."""
        if self.enabled:
            self._position = {"time_step": int(time_step), **data}
        return self.begin("step", str(time_step), time_step=int(time_step), **data)

    def step_end(self, time_step: int, seconds: float | None = None) -> RecorderEvent | None:
        """Close the current time-step span, recording its wall time."""
        data = {"time_step": int(time_step)}
        if seconds is not None:
            data["seconds"] = float(seconds)
        return self.end("step", str(time_step), **data)

    # -- attached state --------------------------------------------------------

    def set_state_provider(self, provider) -> None:
        """Register ``provider() -> {name: ndarray}`` for crash field stats.

        The post-mortem path calls it (guarded) to compute per-field
        finite/min/max/NaN statistics at the moment of death.  Pass ``None``
        to detach.
        """
        self._state_provider = provider

    @property
    def state_provider(self):
        return self._state_provider

    @property
    def position(self) -> dict:
        """Last known run position (``time_step``, …) from :meth:`step_begin`."""
        return dict(self._position)

    # -- journal ---------------------------------------------------------------

    def open_journal(self, path) -> str:
        """Stream subsequent events to *path* as JSONL; returns the path.

        Line-buffered so a crashing process leaves a complete journal up to
        its last event.  Re-opening with a new path closes the old journal.
        """
        self.close_journal()
        with self._lock:
            self._journal = open(path, "w", buffering=1)
            self._journal_path = str(path)
        return str(path)

    def close_journal(self) -> None:
        with self._lock:
            if self._journal is not None:
                try:
                    self._journal.close()
                except OSError:
                    pass
            self._journal = None

    @property
    def journal_path(self) -> str | None:
        return self._journal_path

    # -- introspection ---------------------------------------------------------

    @property
    def events(self) -> list[RecorderEvent]:
        return list(self._ring)

    def last_events(self, n: int = 50) -> list[dict]:
        """The newest *n* events, oldest first, as JSON-safe dicts."""
        tail = list(self._ring)[-int(n):]
        return [_plain(e.to_dict()) for e in tail]

    def open_spans(self) -> list[dict]:
        """The currently open begin/end spans, outermost first."""
        return [_plain(e.to_dict()) for e in self._open]

    def last_of(self, *kinds: str) -> RecorderEvent | None:
        """Newest event whose kind is one of *kinds* (``None`` if absent)."""
        for event in reversed(self._ring):
            if event.kind in kinds:
                return event
        return None

    @property
    def overhead_seconds(self) -> float:
        """Accumulated self-measured cost of every :meth:`record` call."""
        return self._overhead

    def publish_overhead(self, registry=None) -> float:
        """Set the ``repro_observability_overhead_seconds`` gauge; returns it."""
        from .metrics import get_registry

        registry = registry or get_registry()
        labels = {} if self.rank is None else {"rank": self.rank}
        registry.gauge(
            OVERHEAD_GAUGE,
            "self-measured flight-recorder cost (ring + journal writes)",
            **labels,
        ).set(self._overhead)
        return self._overhead

    def reset(self) -> None:
        with self._lock:
            self._ring.clear()
            self._open.clear()
            self._position = {}
            self._seq = 0
            self._overhead = 0.0

    def __len__(self):
        return len(self._ring)

    # -- pickling ---------------------------------------------------------------

    def __getstate__(self) -> dict:
        # recorders cross the proc_comm worker -> parent hop inside crash
        # post-mortems; the journal handle, state provider and lock are
        # per-process and rebuilt (empty) on the other side
        with self._lock:
            return {
                "enabled": self.enabled,
                "rank": self.rank,
                "capacity": self.capacity,
                "ring": list(self._ring),
                "open": list(self._open),
                "position": dict(self._position),
                "seq": self._seq,
                "overhead": self._overhead,
            }

    def __setstate__(self, state: dict) -> None:
        self.enabled = state["enabled"]
        self.rank = state["rank"]
        self.capacity = state["capacity"]
        self._ring = deque(state["ring"], maxlen=self.capacity)
        self._open = list(state["open"])
        self._position = dict(state["position"])
        self._seq = state["seq"]
        self._overhead = state["overhead"]
        self._journal = None
        self._journal_path = None
        self._state_provider = None
        self._lock = threading.Lock()


_GLOBAL_RECORDER = FlightRecorder()
_THREAD_RECORDER = threading.local()


def get_recorder() -> FlightRecorder:
    """This thread's recorder: the thread-local override, else the global one."""
    override = getattr(_THREAD_RECORDER, "recorder", None)
    return override if override is not None else _GLOBAL_RECORDER


def set_recorder(recorder: FlightRecorder) -> FlightRecorder:
    """Install *recorder* as the process-wide one; returns the previous."""
    global _GLOBAL_RECORDER
    previous = _GLOBAL_RECORDER
    _GLOBAL_RECORDER = recorder
    return previous


def set_thread_recorder(recorder: FlightRecorder | None) -> FlightRecorder | None:
    """Install *recorder* for the current thread only; ``None`` removes it.

    Returns the previous thread-local recorder.  The thread-backed MPI
    simulator uses this (via :func:`rank_recorder`) so every rank keeps a
    private event ring while instrumented code calls plain
    :func:`get_recorder`.
    """
    previous = getattr(_THREAD_RECORDER, "recorder", None)
    _THREAD_RECORDER.recorder = recorder
    return previous


@contextmanager
def rank_recorder(rank: int, capacity: int = DEFAULT_CAPACITY, enabled: bool = True):
    """Install a rank-tagged recorder for the calling thread (one MPI rank).

    The flight-recorder counterpart of
    :func:`repro.observability.distributed.rank_tracer` — yields the new
    recorder; return it from the rank program to inspect per-rank rings
    after :func:`~repro.parallel.mpi_sim.run_ranks` returns.

    On an exception the recorder stays installed for the thread: the rank
    is unwinding toward the crash-capture handler in ``run_ranks``, which
    runs on this same thread *after* this context exits and must still see
    the rank's ring (not the process-global one).  Rank threads are
    one-shot, so nothing else ever reuses the thread-local slot.
    """
    recorder = FlightRecorder(capacity=capacity, enabled=enabled, rank=rank)
    previous = set_thread_recorder(recorder)
    try:
        yield recorder
    except BaseException:
        raise
    else:
        set_thread_recorder(previous)
