"""Hardware performance counters with an explicit degradation chain.

The paper validates generated kernels against an ECM model (§5); the model
side lives in :mod:`repro.perfmodel`.  This module is the *measurement*
side: per-kernel cycles, instructions and cache traffic, read around every
kernel dispatch, so the closure table can show measured-vs-predicted
cycles/LUP and bytes/LUP instead of wall clock alone.

Three rungs, probed in order, every one presenting the same
:class:`CounterSample` interface:

``perf``
    ``perf_event_open(2)`` via ctypes — one *group* of counters (cycles
    leader; instructions, cache references, cache misses, stalled cycles
    as siblings) read in a single ``read(2)``.  The group is opened with
    ``PERF_FORMAT_TOTAL_TIME_ENABLED/RUNNING`` so multiplexed counters are
    scaled by ``time_enabled / time_running`` the way ``perf stat`` does.
    Siblings that the PMU cannot host are dropped individually; the rung
    only needs the cycles leader.
``rusage``
    ``resource.getrusage(RUSAGE_THREAD)`` (``RUSAGE_SELF``, then
    ``/proc/thread-self/stat``, as inner fallbacks) — CPU seconds and page
    faults, no cycle-level detail.  This is what a locked-down container
    (``perf_event_paranoid``, seccomp, missing PMU) gets.
``time``
    ``perf_counter`` only — wall clock, nothing else.  The rung of last
    resort; every field except ``wall_seconds`` stays ``None``.

The chain is probed once (:func:`probe_capabilities`) and the selected
rung is visible as ``harness.source`` — reports print it as an explicit
provenance line so a closure table measured without counters can never be
mistaken for one with them.  ``REPRO_HWCOUNTERS=perf|rusage|time|off``
forces a rung (tests force each one; ``off`` disables sampling entirely).

Every :meth:`CounterHarness.sample` call times itself; the accumulated
cost (:attr:`CounterHarness.overhead_seconds`) is gated against step wall
time in ``tools/bench_scaling_smoke.py`` — the same < 5 % bar as the
flight recorder.

Tight dispatch attribution: backends bracket the *native* kernel call with
:func:`attribute_dispatch` inside the profiler's :func:`attribution_scope`,
so counter deltas exclude Python-side argument marshaling.  Backends that
do not attribute (NumPy) fall back to the profiler's outer delta.
"""

from __future__ import annotations

import ctypes
import errno
import os
import platform
import struct
import threading
from contextlib import contextmanager
from dataclasses import dataclass, fields as dataclass_fields
from time import perf_counter

__all__ = [
    "CounterSample",
    "CounterHarness",
    "PerfEventGroup",
    "attribute_dispatch",
    "attribution_scope",
    "counter_provenance_line",
    "get_counter_harness",
    "make_harness",
    "perf_events_available",
    "probe_capabilities",
    "set_counter_harness",
]

#: environment variable forcing a rung of the degradation chain
FORCE_ENV = "REPRO_HWCOUNTERS"

#: chain order, strongest first
CHAIN = ("perf", "rusage", "time")

# -- perf_event_open(2) plumbing ----------------------------------------------

#: __NR_perf_event_open per architecture (the syscall has no libc wrapper)
_SYSCALL_NR = {
    "x86_64": 298,
    "i686": 336,
    "i386": 336,
    "aarch64": 241,
    "arm64": 241,
    "armv7l": 364,
    "ppc64le": 319,
    "ppc64": 319,
    "s390x": 331,
    "riscv64": 241,
}

_PERF_TYPE_HARDWARE = 0

#: PERF_COUNT_HW_* config values, in group order (cycles must lead)
PERF_EVENTS = (
    ("cycles", 0),                # PERF_COUNT_HW_CPU_CYCLES
    ("instructions", 1),          # PERF_COUNT_HW_INSTRUCTIONS
    ("cache_references", 2),      # PERF_COUNT_HW_CACHE_REFERENCES
    ("cache_misses", 3),          # PERF_COUNT_HW_CACHE_MISSES
    ("stalled_cycles", 7),        # PERF_COUNT_HW_STALLED_CYCLES_FRONTEND
)

# read_format bits
_FORMAT_TOTAL_TIME_ENABLED = 1 << 0
_FORMAT_TOTAL_TIME_RUNNING = 1 << 1
_FORMAT_GROUP = 1 << 3

# attr.flags bits (first u64 bitfield word of perf_event_attr)
_FLAG_DISABLED = 1 << 0
_FLAG_EXCLUDE_KERNEL = 1 << 5
_FLAG_EXCLUDE_HV = 1 << 6

# ioctls (no arguments encoded beyond the flag)
_IOC_ENABLE = 0x2400
_IOC_RESET = 0x2403
_IOC_FLAG_GROUP = 1


class _PerfEventAttr(ctypes.Structure):
    """``struct perf_event_attr`` through PERF_ATTR_SIZE_VER1 (72 bytes).

    The kernel accepts any ``size`` it knows; fields beyond VER1 are not
    needed for plain counting events.
    """

    _fields_ = [
        ("type", ctypes.c_uint32),
        ("size", ctypes.c_uint32),
        ("config", ctypes.c_uint64),
        ("sample_period", ctypes.c_uint64),
        ("sample_type", ctypes.c_uint64),
        ("read_format", ctypes.c_uint64),
        ("flags", ctypes.c_uint64),
        ("wakeup_events", ctypes.c_uint32),
        ("bp_type", ctypes.c_uint32),
        ("config1", ctypes.c_uint64),
        ("config2", ctypes.c_uint64),
    ]


def _syscall_nr() -> int | None:
    return _SYSCALL_NR.get(platform.machine())


def _perf_event_open(config: int, group_fd: int) -> int:
    """Open one counting event on the calling thread; returns fd or -errno."""
    nr = _syscall_nr()
    if nr is None:
        return -errno.ENOSYS
    attr = _PerfEventAttr()
    attr.type = _PERF_TYPE_HARDWARE
    attr.size = ctypes.sizeof(_PerfEventAttr)
    attr.config = config
    attr.read_format = (
        _FORMAT_GROUP | _FORMAT_TOTAL_TIME_ENABLED | _FORMAT_TOTAL_TIME_RUNNING
    )
    flags = _FLAG_EXCLUDE_KERNEL | _FLAG_EXCLUDE_HV
    if group_fd == -1:
        flags |= _FLAG_DISABLED     # leader starts disabled, enabled as a group
    attr.flags = flags
    libc = _libc()
    if libc is None:
        return -errno.ENOSYS
    ctypes.set_errno(0)
    # pid=0 (this thread), cpu=-1 (any), flags=0
    fd = libc.syscall(nr, ctypes.byref(attr), 0, -1, group_fd, 0)
    if fd < 0:
        return -(ctypes.get_errno() or errno.EINVAL)
    return fd


_LIBC = None


def _libc():
    global _LIBC
    if _LIBC is None:
        try:
            _LIBC = ctypes.CDLL(None, use_errno=True)
        except OSError:
            _LIBC = False
    return _LIBC or None


class PerfEventGroup:
    """One perf_event group (cycles leader + siblings) on the calling thread.

    ``read()`` returns the scaled cumulative counts as a dict.  Counters
    run freely from :meth:`enable` on; deltas between successive reads
    attribute to whatever executed in between (the harness contract).
    """

    def __init__(self):
        self._fds: list[tuple[str, int]] = []
        leader = _perf_event_open(PERF_EVENTS[0][1], -1)
        if leader < 0:
            raise OSError(-leader, os.strerror(-leader), "perf_event_open")
        self._fds.append((PERF_EVENTS[0][0], leader))
        for name, config in PERF_EVENTS[1:]:
            fd = _perf_event_open(config, leader)
            if fd >= 0:
                # a PMU with few generic counters multiplexes; one that
                # rejects the event outright just loses this sibling
                self._fds.append((name, fd))
        self.names = tuple(name for name, _ in self._fds)
        self.enable()

    def enable(self) -> None:
        libc = _libc()
        leader = self._fds[0][1]
        libc.ioctl(leader, _IOC_RESET, _IOC_FLAG_GROUP)
        libc.ioctl(leader, _IOC_ENABLE, _IOC_FLAG_GROUP)

    def read(self) -> dict[str, float]:
        """Scaled cumulative counts since :meth:`enable`.

        Group read layout (``PERF_FORMAT_GROUP | TOTAL_TIME_*``)::

            u64 nr; u64 time_enabled; u64 time_running; u64 value[nr]

        When the PMU multiplexed the group, ``time_running < time_enabled``
        and every value is scaled by their ratio (the ``perf stat``
        convention), so deltas stay comparable across reads.
        """
        n = len(self._fds)
        buf = os.read(self._fds[0][1], 8 * (3 + n))
        words = struct.unpack(f"{3 + n}Q", buf)
        nr, enabled, running = words[0], words[1], words[2]
        scale = (enabled / running) if running else 0.0
        values = words[3:3 + min(nr, n)]
        return {
            name: value * scale
            for (name, _), value in zip(self._fds, values)
        }

    def close(self) -> None:
        for _, fd in self._fds:
            try:
                os.close(fd)
            except OSError:
                pass
        self._fds = []

    def __del__(self):
        self.close()


def perf_events_available() -> tuple[bool, str]:
    """Probe whether a perf_event counter group can be opened here.

    Returns ``(ok, reason)``; *reason* names the failing errno (ENOENT:
    no PMU exposed — typical VM/container; EACCES/EPERM:
    ``perf_event_paranoid``/seccomp; ENOSYS: unknown architecture).
    """
    fd = _perf_event_open(PERF_EVENTS[0][1], -1)
    if fd < 0:
        return False, errno.errorcode.get(-fd, str(-fd))
    os.close(fd)
    return True, "ok"


# -- samples -------------------------------------------------------------------


@dataclass(slots=True)
class CounterSample:
    """One cumulative counter reading; ``None`` marks an unavailable field.

    ``wall_seconds`` is always populated (``perf_counter``); ``cpu_seconds``
    and ``page_faults`` from the rusage rung up; the hardware fields only
    from the perf rung.  Subtraction yields a delta with the same ``None``
    semantics, field by field.
    """

    wall_seconds: float = 0.0
    cpu_seconds: float | None = None
    page_faults: float | None = None
    cycles: float | None = None
    instructions: float | None = None
    cache_references: float | None = None
    cache_misses: float | None = None
    stalled_cycles: float | None = None

    _FIELDS = (
        "wall_seconds", "cpu_seconds", "page_faults", "cycles",
        "instructions", "cache_references", "cache_misses", "stalled_cycles",
    )

    def delta(self, later: "CounterSample") -> "CounterSample":
        """Field-wise ``later - self``; ``None`` wherever either side is."""
        kw = {}
        for name in self._FIELDS:
            a, b = getattr(self, name), getattr(later, name)
            kw[name] = (b - a) if a is not None and b is not None else None
        kw["wall_seconds"] = later.wall_seconds - self.wall_seconds
        return CounterSample(**kw)

    def add(self, other: "CounterSample") -> "CounterSample":
        """Field-wise sum (accumulating several dispatches in one measure)."""
        kw = {}
        for name in self._FIELDS:
            a, b = getattr(self, name), getattr(other, name)
            if a is None and b is None:
                kw[name] = None
            else:
                kw[name] = (a or 0.0) + (b or 0.0)
        return CounterSample(**kw)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in dataclass_fields(self)}


# -- the degradation-chain harness ---------------------------------------------


def _select_cpu_reader():
    """Pick the cheapest working thread-CPU reader, once per process.

    Inner fallback chain of the rusage rung: ``getrusage(RUSAGE_THREAD)``
    → ``/proc/thread-self/stat`` (utime+stime ticks) →
    ``getrusage(RUSAGE_SELF)`` → ``(None, None)``.  Selection happens one
    time; the returned closure is then a single ``getrusage`` call, which
    keeps per-sample cost inside the < 5 % overhead budget.
    """
    try:
        import resource

        getrusage = resource.getrusage
        who = getattr(resource, "RUSAGE_THREAD", None)
        if who is not None:
            getrusage(who)

            def read_thread():
                ru = getrusage(who)
                return ru.ru_utime + ru.ru_stime, float(ru.ru_minflt + ru.ru_majflt)

            return read_thread
    except (ImportError, OSError, ValueError):
        pass

    def read_proc():
        try:
            with open("/proc/thread-self/stat", "rb") as fh:
                text = fh.read().decode("ascii", "replace")
            # field 2 (comm) may contain spaces; fields count from after ')'
            rest = text.rsplit(")", 1)[1].split()
            # utime/stime are fields 14/15 (1-based) -> rest[11]/rest[12]
            ticks = int(rest[11]) + int(rest[12])
            hz = os.sysconf("SC_CLK_TCK") or 100
            return ticks / hz, float(int(rest[7]) + int(rest[9]))
        except (OSError, IndexError, ValueError):
            return None, None

    if read_proc() != (None, None):
        return read_proc
    try:
        import resource

        getrusage = resource.getrusage
        self_who = resource.RUSAGE_SELF
        getrusage(self_who)

        def read_self():
            ru = getrusage(self_who)
            return ru.ru_utime + ru.ru_stime, float(ru.ru_minflt + ru.ru_majflt)

        return read_self
    except (ImportError, OSError, ValueError):
        return lambda: (None, None)


_CPU_READER = None


def _thread_cpu_and_faults() -> tuple[float | None, float | None]:
    """(CPU seconds, page faults) for the calling thread, best effort."""
    global _CPU_READER
    if _CPU_READER is None:
        _CPU_READER = _select_cpu_reader()
    return _CPU_READER()


class CounterHarness:
    """Per-kernel counter sampling behind one interface for every rung.

    ``sample()`` returns a cumulative :class:`CounterSample` (or ``None``
    when ``source == "off"``); ``delta(a, b)`` subtracts two samples.  The
    perf rung keeps its event group per *thread* (perf_event fds count the
    opening thread), created lazily on first sample from each thread.
    """

    def __init__(self, source: str):
        if source not in (*CHAIN, "off"):
            raise ValueError(f"unknown counter source {source!r}")
        self.source = source
        self._overhead = 0.0
        self._groups = threading.local()

    @property
    def active(self) -> bool:
        return self.source != "off"

    @property
    def counter_names(self) -> tuple[str, ...]:
        """The fields this rung populates beyond wall_seconds."""
        if self.source == "perf":
            group = self._group()
            if group is not None:
                return ("cpu_seconds", "page_faults", *group.names)
            return ("cpu_seconds", "page_faults")
        if self.source == "rusage":
            return ("cpu_seconds", "page_faults")
        return ()

    def _group(self) -> PerfEventGroup | None:
        group = getattr(self._groups, "group", None)
        if group is None and not getattr(self._groups, "failed", False):
            try:
                group = PerfEventGroup()
                self._groups.group = group
            except OSError:
                # a thread that cannot open the group (fd limits, races)
                # degrades to the rusage fields; the harness stays usable
                self._groups.failed = True
                return None
        return group

    def sample(self) -> CounterSample | None:
        """One cumulative reading; self-times into :attr:`overhead_seconds`."""
        source = self.source
        if source == "off":
            return None
        t0 = perf_counter()
        if source == "rusage":
            # the hot path on counter-less hosts: keep it one getrusage
            # call plus one positional dataclass construction
            cpu, faults = _thread_cpu_and_faults()
            sample = CounterSample(t0, cpu, faults)
            self._overhead += perf_counter() - t0
            return sample
        if source == "time":
            sample = CounterSample(t0)
            self._overhead += perf_counter() - t0
            return sample
        cpu, faults = _thread_cpu_and_faults()
        counts: dict[str, float] = {}
        group = self._group()
        if group is not None:
            try:
                counts = group.read()
            except OSError:
                counts = {}
        sample = CounterSample(
            wall_seconds=t0,
            cpu_seconds=cpu,
            page_faults=faults,
            cycles=counts.get("cycles"),
            instructions=counts.get("instructions"),
            cache_references=counts.get("cache_references"),
            cache_misses=counts.get("cache_misses"),
            stalled_cycles=counts.get("stalled_cycles"),
        )
        self._overhead += perf_counter() - t0
        return sample

    @staticmethod
    def delta(start: CounterSample | None, end: CounterSample | None):
        if start is None or end is None:
            return None
        return start.delta(end)

    @property
    def overhead_seconds(self) -> float:
        """Accumulated self-measured cost of every :meth:`sample` call."""
        return self._overhead

    def publish_overhead(self, registry=None) -> float:
        """Export the accumulated sampling cost as a gauge; returns it."""
        from .metrics import get_registry

        registry = registry or get_registry()
        registry.gauge(
            "repro_counter_overhead_seconds",
            "self-measured hardware-counter sampling cost",
            source=self.source,
        ).set(self._overhead)
        return self._overhead

    def close(self) -> None:
        group = getattr(self._groups, "group", None)
        if group is not None:
            group.close()
            self._groups.group = None

    def __repr__(self):
        return f"CounterHarness(source={self.source!r})"


def probe_capabilities() -> dict:
    """What each rung of the chain can do on this host.

    Returns ``{"perf": {"available": bool, "reason": str},
    "rusage": {"available": bool}, "time": {"available": True},
    "selected": <rung auto would pick>}``.
    """
    perf_ok, reason = perf_events_available()
    cpu, _ = _thread_cpu_and_faults()
    rusage_ok = cpu is not None
    selected = "perf" if perf_ok else ("rusage" if rusage_ok else "time")
    return {
        "perf": {"available": perf_ok, "reason": reason},
        "rusage": {"available": rusage_ok},
        "time": {"available": True},
        "selected": selected,
    }


def make_harness(force: str | None = None) -> CounterHarness:
    """Build a harness, probing the chain (or forcing one rung).

    *force* (or ``$REPRO_HWCOUNTERS``): ``perf`` | ``rusage`` | ``time`` |
    ``off`` | ``auto``/``None``.  Forcing ``perf`` on a host without
    perf_event access raises ``RuntimeError`` — a forced rung must never
    silently degrade, that is what ``auto`` is for.
    """
    if force is None:
        force = os.environ.get(FORCE_ENV) or None
    if force in (None, "", "auto"):
        return CounterHarness(probe_capabilities()["selected"])
    force = force.lower()
    if force == "perf":
        ok, reason = perf_events_available()
        if not ok:
            raise RuntimeError(
                f"REPRO_HWCOUNTERS=perf forced, but perf_event_open failed "
                f"({reason}); use 'auto' to allow the fallback chain"
            )
    if force not in (*CHAIN, "off"):
        raise ValueError(
            f"unknown counter source {force!r}; "
            f"choose one of {', '.join((*CHAIN, 'off', 'auto'))}"
        )
    return CounterHarness(force)


_GLOBAL_HARNESS: CounterHarness | None = None
_HARNESS_LOCK = threading.Lock()


def get_counter_harness() -> CounterHarness:
    """The process-wide harness, built lazily (honouring the env override)."""
    global _GLOBAL_HARNESS
    if _GLOBAL_HARNESS is None:
        with _HARNESS_LOCK:
            if _GLOBAL_HARNESS is None:
                _GLOBAL_HARNESS = make_harness()
    return _GLOBAL_HARNESS


def set_counter_harness(harness: CounterHarness | None) -> CounterHarness | None:
    """Install *harness* process-wide (``None`` re-probes on next use)."""
    global _GLOBAL_HARNESS
    with _HARNESS_LOCK:
        previous = _GLOBAL_HARNESS
        _GLOBAL_HARNESS = harness
    return previous


def counter_provenance_line(harness: CounterHarness | None = None) -> str:
    """The provenance line every counter-bearing report must print.

    Makes the measurement rung explicit so a closure table produced
    without hardware counters can never be mistaken for one with them.
    """
    harness = harness or get_counter_harness()
    if harness.source == "perf":
        events = [n for n in harness.counter_names
                  if n not in ("cpu_seconds", "page_faults")]
        return f"counters: perf_event ({', '.join(events) or 'cycles'})"
    if harness.source in ("rusage", "time"):
        return f"counters: unavailable (fallback={harness.source})"
    return "counters: disabled"


# -- tight dispatch attribution --------------------------------------------------

_ATTRIBUTION = threading.local()


class _AttributionSlot:
    __slots__ = ("sample",)

    def __init__(self):
        self.sample: CounterSample | None = None


@contextmanager
def attribution_scope():
    """Collect tight backend-side counter deltas for one measured block.

    The profiler opens a scope around each measured operation; a backend
    that brackets its native call with :func:`attribute_dispatch` narrows
    the attribution to the dispatch itself (excluding Python marshaling).
    Scopes nest; attribution lands in the innermost one.
    """
    slot = _AttributionSlot()
    previous = getattr(_ATTRIBUTION, "slot", None)
    _ATTRIBUTION.slot = slot
    try:
        yield slot
    finally:
        _ATTRIBUTION.slot = previous


def attribute_dispatch(delta: CounterSample | None) -> None:
    """Report a tight dispatch delta into the enclosing attribution scope.

    No-op outside a scope (a kernel called directly, not via a profiler),
    so backends can call it unconditionally.  Multiple dispatches within
    one scope accumulate (a multi-block sweep is one measured operation).
    """
    if delta is None:
        return
    slot = getattr(_ATTRIBUTION, "slot", None)
    if slot is not None:
        slot.sample = delta if slot.sample is None else slot.sample.add(delta)
