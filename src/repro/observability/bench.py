"""Structured benchmark trajectory: machine-readable BENCH JSON documents.

The scaling and kernel benchmarks used to emit only human-readable
``benchmarks/results/*.txt`` tables — no machine-readable trajectory to
track regressions against.  This module defines the shared schema and
writer behind ``BENCH_scaling.json`` / ``BENCH_kernels.json`` at the repo
root, consumed by ``tools/bench_regress.py``.

Document schema (``repro-bench/1``)::

    {
      "schema": "repro-bench/1",
      "suite": "scaling",                  # or "kernels"
      "git_sha": "abc123..." | null,
      "timestamp": "2026-08-05T12:00:00+00:00",
      "host": {"platform": ..., "python": ..., "machine": ...},
      "records": [
        {
          "name": "fig3_right_strong_scaling/cores=48",
          "params": {"cores": 48, "domain": "512x256x256"},
          "metrics": {"mlups": 123.4, "parallel_efficiency": 0.97}
        },
        ...
      ]
    }

``metrics`` values must be finite numbers; by convention names containing
``seconds``/``time``/``latency`` are lower-is-better, everything else
(MLUP/s, efficiencies, speedups) higher-is-better — the convention
``tools/bench_regress.py`` uses to decide the direction of a regression.
"""

from __future__ import annotations

import json
import math
import platform
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

__all__ = [
    "BENCH_SCHEMA",
    "BenchSchemaError",
    "BenchWriter",
    "git_sha",
    "load_bench_document",
    "validate_bench_document",
    "lower_is_better",
]

BENCH_SCHEMA = "repro-bench/1"

#: metric-name substrings that flip the regression direction
_LOWER_BETTER_MARKERS = ("seconds", "time", "latency", "_ms", "_ns")


class BenchSchemaError(ValueError):
    """A BENCH document does not conform to the ``repro-bench/1`` schema."""


def lower_is_better(metric_name: str) -> bool:
    """Whether smaller values of *metric_name* are improvements."""
    name = metric_name.lower()
    return any(marker in name for marker in _LOWER_BETTER_MARKERS)


def git_sha(repo_root=None) -> str | None:
    """The current git commit sha, or ``None`` outside a work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root or Path(__file__).resolve().parents[3],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


class BenchWriter:
    """Collects named benchmark records and writes one BENCH JSON document."""

    def __init__(self, suite: str, repo_root=None):
        if not suite or not isinstance(suite, str):
            raise ValueError("suite must be a non-empty string")
        self.suite = suite
        self.repo_root = repo_root
        self.records: list[dict] = []

    def add(self, name: str, params: dict | None = None, **metrics) -> dict:
        """Append one record; *metrics* must be finite numbers.

        Re-adding an existing *name* replaces the old record, so reruns
        within one session stay idempotent.
        """
        if not name:
            raise ValueError("record needs a name")
        if not metrics:
            raise ValueError(f"record {name!r} needs at least one metric")
        clean = {}
        for key, value in metrics.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"metric {key}={value!r} is not a number")
            if not math.isfinite(value):
                raise ValueError(f"metric {key}={value!r} is not finite")
            clean[key] = float(value)
        record = {"name": name, "params": dict(params or {}), "metrics": clean}
        self.records = [r for r in self.records if r["name"] != name]
        self.records.append(record)
        return record

    def document(self) -> dict:
        return {
            "schema": BENCH_SCHEMA,
            "suite": self.suite,
            "git_sha": git_sha(self.repo_root),
            "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "host": {
                "platform": platform.platform(),
                "python": sys.version.split()[0],
                "machine": platform.machine(),
            },
            "records": self.records,
        }

    def write(self, path) -> str:
        """Write the document (validated) to *path*; returns the path."""
        doc = self.document()
        validate_bench_document(doc)
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        return str(path)


def validate_bench_document(doc) -> dict:
    """Raise :class:`BenchSchemaError` unless *doc* is a valid document."""
    if not isinstance(doc, dict):
        raise BenchSchemaError(f"document is {type(doc).__name__}, expected object")
    if doc.get("schema") != BENCH_SCHEMA:
        raise BenchSchemaError(
            f"schema is {doc.get('schema')!r}, expected {BENCH_SCHEMA!r}"
        )
    if not isinstance(doc.get("suite"), str) or not doc["suite"]:
        raise BenchSchemaError("suite missing or not a string")
    records = doc.get("records")
    if not isinstance(records, list):
        raise BenchSchemaError("records missing or not a list")
    seen = set()
    for i, rec in enumerate(records):
        if not isinstance(rec, dict):
            raise BenchSchemaError(f"record {i} is not an object")
        name = rec.get("name")
        if not isinstance(name, str) or not name:
            raise BenchSchemaError(f"record {i} has no name")
        if name in seen:
            raise BenchSchemaError(f"duplicate record name {name!r}")
        seen.add(name)
        metrics = rec.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            raise BenchSchemaError(f"record {name!r} has no metrics")
        for key, value in metrics.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool) \
                    or not math.isfinite(value):
                raise BenchSchemaError(
                    f"record {name!r} metric {key}={value!r} is not a finite number"
                )
        if "params" in rec and not isinstance(rec["params"], dict):
            raise BenchSchemaError(f"record {name!r} params is not an object")
    return doc


def load_bench_document(path) -> dict:
    """Load and validate a BENCH JSON document from *path*."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise BenchSchemaError(f"{path}: unreadable ({exc})") from exc
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BenchSchemaError(f"{path}: invalid JSON ({exc})") from exc
    return validate_bench_document(doc)
