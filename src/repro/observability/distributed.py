"""Distributed-run observability: rank traces, comm matrix, imbalance.

The paper's headline results are *scaling* figures (Fig. 3) and the
communication-option study (Table 2); explaining them requires per-rank
timing, communication-volume accounting and load-imbalance analysis — the
same layer the waLBerla scaling studies lean on.  This module provides it
for the simulated-MPI runs of :mod:`repro.parallel`:

* **per-rank tracing** — :func:`rank_tracer` installs a rank-tagged
  :class:`~repro.observability.tracing.Tracer` for the calling rank's
  thread; after :func:`repro.parallel.run_ranks` returns, the collected
  tracers merge via :func:`merge_rank_traces` into ONE Chrome/Perfetto
  timeline: one named process track per rank, one thread track per
  pipeline layer, all aligned on the shared ``perf_counter`` clock so
  exchange waits and compute phases line up visually across ranks;

* **communication matrix** — :class:`CommMatrix` accumulates per-
  ``(src, dst)`` bytes and message counts (fed by
  :func:`repro.parallel.ghostlayer.exchange_field`), rendered as a
  heatmap-style text table;

* **imbalance + closure** — :func:`imbalance_factor` computes
  λ = max/mean of the per-rank step times, and
  :func:`comm_closure_report` joins the measured ghost-exchange time
  (wait vs copy split) with the analytic
  :class:`repro.parallel.comm_model.StepTimeModel` prediction, mirroring
  the ECM kernel closure of :mod:`repro.observability.report`.

Imports from :mod:`repro.parallel` are deferred to call time: the
parallel layer imports ``repro.observability`` at module level, so the
reverse edge must stay lazy to keep the import graph acyclic.
"""

from __future__ import annotations

import json
from contextlib import contextmanager

import numpy as np

from .tracing import PIPELINE_LAYERS, Tracer, set_thread_tracer

__all__ = [
    "CommMatrix",
    "rank_tracer",
    "merge_rank_traces",
    "export_merged_trace",
    "imbalance_factor",
    "comm_closure_rows",
    "comm_closure_report",
    "overlap_closure_report",
]

#: shade ramp for the heatmap-style text rendering of :meth:`CommMatrix.render`
_SHADES = " ░▒▓█"


class CommMatrix:
    """Per-``(src, dst)`` communication accounting for one distributed run.

    Byte and message counts are attributed to the *sending* rank; each
    rank's matrix therefore holds one populated row, and the full picture
    emerges by :meth:`merge`-ing the per-rank matrices after the run (the
    counterpart of :meth:`repro.profiling.SolverProfiler.merge`).
    """

    def __init__(self, n_ranks: int):
        n = int(n_ranks)
        if n < 1:
            raise ValueError("CommMatrix needs at least one rank")
        self.n_ranks = n
        self.bytes = np.zeros((n, n), dtype=np.int64)
        self.messages = np.zeros((n, n), dtype=np.int64)

    def add(self, src: int, dst: int, nbytes: int, messages: int = 1) -> None:
        """Account one (or *messages*) message(s) of *nbytes* from src to dst."""
        self.bytes[src, dst] += int(nbytes)
        self.messages[src, dst] += int(messages)

    def merge(self, other: "CommMatrix") -> "CommMatrix":
        """Fold another rank's matrix into this one (element-wise sum)."""
        if other is self:
            return self
        if other.n_ranks != self.n_ranks:
            raise ValueError(
                f"cannot merge CommMatrix of {other.n_ranks} ranks "
                f"into one of {self.n_ranks}"
            )
        self.bytes += other.bytes
        self.messages += other.messages
        return self

    # -- aggregates ------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return int(self.bytes.sum())

    @property
    def total_messages(self) -> int:
        return int(self.messages.sum())

    def bytes_sent_per_rank(self) -> np.ndarray:
        """Row sums: bytes each rank injected into the network."""
        return self.bytes.sum(axis=1)

    def imbalance(self) -> float:
        """max/mean of per-rank sent bytes (1.0 = perfectly balanced)."""
        sent = self.bytes_sent_per_rank().astype(float)
        mean = sent.mean()
        return float(sent.max() / mean) if mean > 0 else float("nan")

    def to_json(self) -> dict:
        """JSON-safe form for ``comm_matrix.json`` and the HTML run report."""
        return {
            "n_ranks": self.n_ranks,
            "bytes": self.bytes.tolist(),
            "messages": self.messages.tolist(),
            "total_bytes": self.total_bytes,
            "total_messages": self.total_messages,
            "imbalance": self.imbalance() if self.total_bytes else None,
        }

    # -- rendering -------------------------------------------------------------

    def render(self, title: str = "communication matrix") -> str:
        """Heatmap-style text table: per-(src, dst) KiB, msgs, row totals."""
        lines = [f"== {title}: bytes sent per (src -> dst), KiB =="]
        peak = float(self.bytes.max())
        header = "   src\\dst " + "".join(f"{d:>10d}" for d in range(self.n_ranks))
        lines.append(header + f"{'Σ sent':>12}{'msgs':>8}")
        for src in range(self.n_ranks):
            cells = []
            for dst in range(self.n_ranks):
                b = float(self.bytes[src, dst])
                if b == 0:
                    cells.append(f"{'·':>10}")
                else:
                    shade = _SHADES[
                        min(len(_SHADES) - 1, 1 + int(3 * b / peak)) if peak else 0
                    ]
                    cells.append(f"{b / 1024:>9.1f}{shade}")
            row_bytes = self.bytes[src].sum() / 1024
            row_msgs = int(self.messages[src].sum())
            lines.append(
                f"   {src:>7d} " + "".join(cells)
                + f"{row_bytes:>11.1f} {row_msgs:>7d}"
            )
        lines.append(
            f"   total: {self.total_bytes / 1024:.1f} KiB in "
            f"{self.total_messages} messages, "
            f"byte imbalance max/mean = {self.imbalance():.3f}"
        )
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"CommMatrix(n_ranks={self.n_ranks}, "
            f"bytes={self.total_bytes}, messages={self.total_messages})"
        )


# -- per-rank tracing -----------------------------------------------------------


@contextmanager
def rank_tracer(rank: int, enabled: bool = True):
    """Install a rank-tagged tracer for the calling thread (one MPI rank).

    Inside the block, :func:`repro.observability.get_tracer` resolves to
    the new tracer on this thread only, so every profiler record and span
    of the rank lands in its own collection.  Yields the tracer — return
    it from the rank program and feed the collected set to
    :func:`merge_rank_traces`::

        def rank_program(comm):
            with rank_tracer(comm.rank) as tracer:
                solver = DistributedSolver(kernels, forest, comm=comm)
                ...
            return tracer

        tracers = run_ranks(4, rank_program)
        export_merged_trace(tracers, "trace.json")
    """
    tracer = Tracer(enabled=enabled, rank=rank)
    previous = set_thread_tracer(tracer)
    try:
        yield tracer
    finally:
        set_thread_tracer(previous)


def merge_rank_traces(tracers) -> dict:
    """Merge per-rank tracers into ONE Chrome/Perfetto trace document.

    Track layout: each rank becomes a named *process* (``rank N``, sorted
    by rank), and within a rank every pipeline layer (span category) gets
    its own named *thread* track — so the φ/µ sweeps, the exchange
    wait/copy phases and the codegen layers of all ranks line up on a
    common timeline.  All simulated ranks share one ``perf_counter``
    clock; timestamps are taken relative to the earliest tracer epoch.
    """
    tracers = [t for t in tracers if t is not None]
    if not tracers:
        raise ValueError("no tracers to merge")
    ranks = [
        t.rank if t.rank is not None else i for i, t in enumerate(tracers)
    ]
    duplicates = sorted({r for r in ranks if ranks.count(r) > 1})
    if duplicates:
        # two tracers on one pid would silently interleave their tracks
        raise ValueError(
            f"duplicate rank ids in merged trace: {duplicates}"
        )
    epoch = min(t.epoch for t in tracers)
    layer_tids = {layer: i for i, layer in enumerate(PIPELINE_LAYERS)}
    meta: list[dict] = []
    spans: list[dict] = []
    counters: list[dict] = []
    for i, tracer in enumerate(tracers):
        rank = ranks[i]
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": rank,
                "tid": 0,
                "args": {"name": f"rank {rank}"},
            }
        )
        meta.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": rank,
                "tid": 0,
                "args": {"sort_index": rank},
            }
        )
        used: dict[int, str] = {}
        extra_tids: dict[str, int] = {}
        for s in tracer.finished_spans():
            cat = s.category or "default"
            tid = layer_tids.get(cat)
            if tid is None:
                tid = extra_tids.setdefault(cat, len(PIPELINE_LAYERS) + len(extra_tids))
            used[tid] = cat
            spans.append(
                {
                    "name": s.name,
                    "cat": cat,
                    "ph": "X",
                    "ts": round((s.start - epoch) * 1e6, 3),
                    "dur": round(s.duration * 1e6, 3),
                    "pid": rank,
                    "tid": tid,
                    "args": s.args,
                }
            )
        for tid, cat in sorted(used.items()):
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": rank,
                    "tid": tid,
                    "args": {"name": cat},
                }
            )
        for name, category, ts, values in tracer.counters:
            counters.append(
                {
                    "name": name,
                    "cat": category or "counter",
                    "ph": "C",
                    "ts": round((ts - epoch) * 1e6, 3),
                    "pid": rank,
                    "tid": 0,
                    "args": values,
                }
            )
    spans.sort(key=lambda e: (e["pid"], e["tid"], e["ts"], -e["dur"]))
    counters.sort(key=lambda e: (e["pid"], e["name"], e["ts"]))
    return {
        "traceEvents": meta + spans + counters,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.observability.distributed"},
    }


def export_merged_trace(tracers, path) -> str:
    """Write the merged multi-rank trace as ``trace.json``; returns the path."""
    text = json.dumps(merge_rank_traces(tracers), indent=1, default=str)
    with open(path, "w") as fh:
        fh.write(text)
    return str(path)


# -- imbalance and model closure -------------------------------------------------


def imbalance_factor(per_rank_seconds) -> float:
    """Load-imbalance factor λ = max/mean of the per-rank step times.

    λ = 1 is a perfectly balanced run; the weak-scaling efficiency loss
    attributable to imbalance is (λ − 1)/λ (the slowest rank gates every
    step because the ghost exchange synchronizes the time loop).
    """
    times = np.asarray(list(per_rank_seconds), dtype=float)
    if times.size == 0 or times.mean() == 0:
        return float("nan")
    return float(times.max() / times.mean())


def comm_closure_rows(step_model, profiler, steps: int, nodes: int = 1) -> list[dict]:
    """Join measured ghost-exchange time with the analytic comm model.

    One dict per exchanged field (``exchange:<field>`` records) plus an
    aggregate ``total`` row.  Keys: ``field``, ``measured_s`` (per step),
    ``wait_s``/``copy_s`` (the deliver vs pack+unpack split),
    ``predicted_s`` (per step, from *step_model* — attributed to the
    total row only), ``ratio`` (measured/predicted).  A ratio far from 1
    on a laptop is expected — the model describes a cluster interconnect,
    not in-process queues — and the column is the calibration factor,
    exactly as in the ECM kernel closure.
    """
    steps = max(int(steps), 1)
    fields = sorted(
        name.split(":", 1)[1]
        for name in profiler.records
        if name.startswith("exchange:") and name.count(":") == 1
    )
    rows: list[dict] = []
    total_measured = total_wait = total_copy = 0.0
    for field in fields:
        rec = profiler.records[f"exchange:{field}"]
        # synchronous exchanges time the blocking phase as ":deliver";
        # the async start/finish exchange times it as ":wait"
        wait = getattr(
            profiler.records.get(f"exchange:{field}:deliver"), "seconds", 0.0
        ) + getattr(
            profiler.records.get(f"exchange:{field}:wait"), "seconds", 0.0
        )
        copy = getattr(
            profiler.records.get(f"exchange:{field}:pack"), "seconds", 0.0
        ) + getattr(
            profiler.records.get(f"exchange:{field}:unpack"), "seconds", 0.0
        )
        measured = rec.seconds / steps
        total_measured += measured
        total_wait += wait / steps
        total_copy += copy / steps
        rows.append(
            {
                "field": field,
                "measured_s": measured,
                "wait_s": wait / steps,
                "copy_s": copy / steps,
                "predicted_s": None,
                "ratio": None,
            }
        )
    predicted = float(step_model.comm_time_s(nodes)) if step_model is not None else None
    rows.append(
        {
            "field": "total",
            "measured_s": total_measured,
            "wait_s": total_wait,
            "copy_s": total_copy,
            "predicted_s": predicted,
            "ratio": (total_measured / predicted) if predicted else None,
        }
    )
    return rows


def comm_closure_report(
    step_model,
    profiler,
    steps: int,
    nodes: int = 1,
    title: str = "comm model closure (predicted vs measured, per step)",
) -> str:
    """Table 2-style closure: StepTimeModel prediction vs live exchange time."""
    from ..perfmodel.report import format_table, report_header

    rows = comm_closure_rows(step_model, profiler, steps, nodes=nodes)
    lines = report_header(title)
    if len(rows) == 1 and rows[0]["measured_s"] == 0.0:
        lines.append("(no ghost exchanges timed yet)")
        return "\n".join(lines)

    def fmt(value, scale=1e3):
        return f"{value * scale:.3f}" if value is not None else "-"

    lines.extend(
        format_table(
            ["exchange", "measured ms", "wait ms", "copy ms",
             "predicted ms", "measured/predicted"],
            [
                (
                    r["field"],
                    fmt(r["measured_s"]),
                    fmt(r["wait_s"]),
                    fmt(r["copy_s"]),
                    fmt(r["predicted_s"]),
                    f"{r['ratio']:.3f}" if r["ratio"] is not None else "-",
                )
                for r in rows
            ],
        )
    )
    lines.append(
        "(the model describes a cluster interconnect; off-cluster the ratio "
        "is a calibration factor, as in the ECM kernel closure)"
    )
    return "\n".join(lines)


def overlap_closure_report(
    step_model,
    measured_step_s: float | None = None,
    mode: str = "sync",
    nodes: int = 1,
    title: str = "communication-hiding closure (predicted vs measured step time)",
) -> str:
    """Predicted sync vs overlapped step time, joined with a measured run.

    *mode* names the schedule that produced *measured_step_s*
    (``"sync"`` or ``"overlap"``); the measured value is compared against
    the matching prediction of
    :meth:`repro.parallel.comm_model.StepTimeModel.overlap_closure`.
    """
    from ..perfmodel.report import report_header

    lines = report_header(title)
    if step_model is None:
        lines.append("(no step model calibrated; overlap closure unavailable)")
        return "\n".join(lines)
    closure = step_model.overlap_closure(
        nodes=nodes,
        measured_sync_s=measured_step_s if mode == "sync" else None,
        measured_overlap_s=measured_step_s if mode == "overlap" else None,
    )
    lines.append(
        f"   predicted step: sync {closure['predicted_sync_s'] * 1e3:.3f} ms, "
        f"overlapped {closure['predicted_overlap_s'] * 1e3:.3f} ms "
        f"(gain {closure['predicted_gain'] * 100.0:.1f}%)"
    )
    if measured_step_s is not None:
        ratio = closure.get("sync_ratio" if mode == "sync" else "overlap_ratio")
        lines.append(
            f"   measured step ({mode}): {measured_step_s * 1e3:.3f} ms"
            + (f", measured/predicted {ratio:.3f}" if ratio is not None else "")
        )
    else:
        lines.append("   (no measured step time yet)")
    return "\n".join(lines)
