"""Shared append-only JSONL ledger: fsync'd writes, torn-tail-tolerant reads.

Both observability ledgers — the perf history
(:class:`repro.perfmodel.ledger.PerfLedger`) and the determinism
fingerprint stream (:class:`repro.observability.fingerprint.FingerprintLedger`)
— need the same durability contract:

* **appends are durable**: each ``extend()`` writes whole lines, flushes
  and ``fsync``\\ s, so a crash can tear at most the final line;
* **reads forgive the torn tail**: a truncated last line (a run killed
  mid-append) is skipped silently even under ``strict=True`` — it is the
  expected signature of a crash, not corruption;
* **everything else is schema-checked**: malformed *middle* lines are
  skipped by default and raise ``SchemaError("<path>:<lineno>: ...")``
  under ``strict=True``.

Records are serialized with ``json.dumps(record, sort_keys=True)`` so a
given record always produces the same bytes — the property the
determinism-smoke CI job relies on when it ``cmp``\\ s two ledgers.

Subclasses customize two hooks: :attr:`JsonlLedger.SchemaError` (the
exception type raised for invalid records) and
:meth:`JsonlLedger.validate` (per-record validation; identity by default).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["JsonlLedger"]


class JsonlLedger:
    """Append-only JSONL file with fsync'd writes and tolerant reads."""

    #: exception type raised for schema violations; subclasses override
    SchemaError: type[ValueError] = ValueError

    def __init__(self, path):
        self.path = Path(path)

    def validate(self, record) -> dict:
        """Return *record* or raise :attr:`SchemaError`; identity by default."""
        return record

    def append(self, record: dict) -> None:
        self.extend([record])

    def extend(self, records) -> int:
        """Validate and append *records*; returns how many were written."""
        validated = [self.validate(r) for r in records]
        if not validated:
            return 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as fh:
            for record in validated:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        return len(validated)

    def load(self, strict: bool = False) -> list[dict]:
        """All valid records, oldest first.

        A truncated final line (a run killed mid-append) is skipped
        silently; any other malformed line is skipped unless *strict*.
        """
        if not self.path.exists():
            return []
        records: list[dict] = []
        lines = self.path.read_text().splitlines()
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(self.validate(json.loads(line)))
            except (json.JSONDecodeError, self.SchemaError) as exc:
                if i == len(lines) - 1 and isinstance(exc, json.JSONDecodeError):
                    continue    # torn tail write
                if strict:
                    raise self.SchemaError(f"{self.path}:{i + 1}: {exc}") from exc
        return records

    def __repr__(self):
        return f"{type(self).__name__}({str(self.path)!r})"
