"""End-to-end observability: tracing, metrics, health, structured logging.

The paper's claim is quantitative — generated kernels run at predicted
MLUP/s — so the reproduction needs more than a final wall-clock table.
This subsystem makes every layer observable:

* :mod:`~repro.observability.tracing` — nested spans over the whole
  pipeline (functional → PDE → discretization → simplification → IR →
  backend → runtime) exported as Chrome-trace JSON,
* :mod:`~repro.observability.metrics` — counters/gauges/histograms with
  JSON and Prometheus text-format export (kernel-cache stats, exchanged
  bytes, per-kernel MLUP/s, step-latency histograms, health events),
* :mod:`~repro.observability.health` — NaN/Inf watchdog, phase-sum drift
  and field-bound alarms with a warn/record/raise policy,
* :mod:`~repro.observability.log` — structured ``key=value`` logging for
  the whole ``repro`` namespace,
* :mod:`~repro.observability.report` — the predicted-vs-measured model
  accuracy table joining :class:`repro.perfmodel.ecm.ECMModel` predictions
  with :class:`repro.profiling.SolverProfiler` measurements,
* :mod:`~repro.observability.distributed` — the scaling layer: rank-tagged
  tracers merged into one multi-track Perfetto timeline, the per-(src, dst)
  communication matrix, the λ = max/mean step-time imbalance factor and
  the comm-model closure against
  :class:`repro.parallel.comm_model.StepTimeModel`,
* :mod:`~repro.observability.bench` — the machine-readable benchmark
  trajectory (``BENCH_scaling.json`` / ``BENCH_kernels.json``) consumed by
  ``tools/bench_regress.py``.

Everything is off by default and zero-cost when disabled; the kernel cache
and the solvers are pre-wired, so ``enable_tracing()`` plus a run is enough
to get a ``trace.json``.
"""

from .bench import (
    BENCH_SCHEMA,
    BenchSchemaError,
    BenchWriter,
    load_bench_document,
    validate_bench_document,
)
from .distributed import (
    CommMatrix,
    comm_closure_report,
    comm_closure_rows,
    export_merged_trace,
    imbalance_factor,
    merge_rank_traces,
    rank_tracer,
)
from .fingerprint import (
    FINGERPRINT_SCHEMA,
    FingerprintLedger,
    FingerprintSchemaError,
    FingerprintStream,
    block_key,
    combined_digest,
    digest_array,
    find_mismatches,
    fingerprint_record,
    parse_block_key,
    tiled_digests,
    validate_fingerprint_record,
)
from .health import HealthError, HealthEvent, HealthMonitor
from .hwcounters import (
    CounterHarness,
    CounterSample,
    attribute_dispatch,
    attribution_scope,
    counter_provenance_line,
    get_counter_harness,
    make_harness,
    perf_events_available,
    probe_capabilities,
    set_counter_harness,
)
from .jsonl import JsonlLedger
from .log import configure_logging, get_logger, kv
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    find_sample,
    get_registry,
    parse_prometheus,
    reset_metrics,
    set_registry,
)
from .postmortem import (
    POSTMORTEM_SCHEMA,
    capture_postmortem,
    field_stats,
    install_excepthook,
    write_postmortem,
)
from .recorder import (
    FlightRecorder,
    RecorderEvent,
    get_recorder,
    rank_recorder,
    set_recorder,
    set_thread_recorder,
)
from .report import export_accuracy_metrics, model_accuracy_report, model_accuracy_rows
from .rundir import MANIFEST_SCHEMA, RunDir, get_rundir, load_manifest, set_rundir
from .tracing import (
    PIPELINE_LAYERS,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_thread_tracer,
    set_tracer,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchSchemaError",
    "BenchWriter",
    "CommMatrix",
    "Counter",
    "CounterHarness",
    "CounterSample",
    "DEFAULT_BUCKETS",
    "FINGERPRINT_SCHEMA",
    "FingerprintLedger",
    "FingerprintSchemaError",
    "FingerprintStream",
    "FlightRecorder",
    "Gauge",
    "HealthError",
    "HealthEvent",
    "HealthMonitor",
    "Histogram",
    "JsonlLedger",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "PIPELINE_LAYERS",
    "POSTMORTEM_SCHEMA",
    "RecorderEvent",
    "RunDir",
    "Span",
    "Tracer",
    "attribute_dispatch",
    "attribution_scope",
    "block_key",
    "capture_postmortem",
    "combined_digest",
    "comm_closure_report",
    "comm_closure_rows",
    "configure_logging",
    "counter_provenance_line",
    "digest_array",
    "disable_tracing",
    "enable_tracing",
    "export_accuracy_metrics",
    "export_merged_trace",
    "field_stats",
    "find_mismatches",
    "find_sample",
    "fingerprint_record",
    "get_counter_harness",
    "get_logger",
    "get_recorder",
    "get_registry",
    "get_rundir",
    "get_tracer",
    "imbalance_factor",
    "install_excepthook",
    "kv",
    "load_bench_document",
    "load_manifest",
    "make_harness",
    "merge_rank_traces",
    "model_accuracy_report",
    "model_accuracy_rows",
    "parse_block_key",
    "parse_prometheus",
    "perf_events_available",
    "probe_capabilities",
    "rank_recorder",
    "rank_tracer",
    "reset_metrics",
    "set_counter_harness",
    "set_recorder",
    "set_registry",
    "set_rundir",
    "set_thread_recorder",
    "set_thread_tracer",
    "set_tracer",
    "tiled_digests",
    "validate_bench_document",
    "validate_fingerprint_record",
    "write_postmortem",
]
