"""Predicted-vs-measured closure: join the ECM model with live timings.

The paper's Fig. 2 argument is that the generated kernels run close to the
ECM/roofline prediction.  This module produces the reproduction's version
of that closure: for every kernel that a :class:`repro.profiling.SolverProfiler`
actually timed, the ECM prediction (on the configured machine model) is
joined with the measured MLUP/s into a *model-accuracy table* — rendered by
``solver.profile_report()`` and the throughput benchmark.

A measured/predicted ratio near 1 on the paper's machine validates the
model; on other hosts the ratio becomes a calibration factor (the machine
model describes a Skylake socket, not this laptop), which is exactly what
the column is for.

All perfmodel imports are deferred to call time so that
``repro.observability`` stays import-cycle-free (the codegen layers it
instruments are below :mod:`repro.perfmodel` in the import graph).
"""

from __future__ import annotations

import math

from .hwcounters import counter_provenance_line
from .metrics import get_registry

__all__ = ["model_accuracy_rows", "model_accuracy_report", "export_accuracy_metrics"]


def model_accuracy_rows(
    kernels,
    profiler,
    machine=None,
    block_shape: tuple[int, ...] | None = None,
    cores: int = 1,
) -> list[dict]:
    """Join ECM predictions with measured rates, one dict per timed kernel.

    Keys: ``kernel``, ``predicted_mlups``, ``measured_mlups``, ``ratio``
    (measured/predicted), ``bound`` (compute|memory), ``calls``, plus the
    counter closure columns: ``predicted_cycles_per_lup`` /
    ``measured_cycles_per_lup`` and ``predicted_bytes_per_lup`` /
    ``measured_bytes_per_lup`` (measured sides ``None`` on hosts without
    perf_event access) and ``ipc``.  Kernels without a cell-counted timing
    record are skipped (fills and exchanges have no LUP rate).
    """
    from ..perfmodel.ecm import _LUPS_PER_UNIT, ECMModel
    from ..perfmodel.layer_condition import analyze_traffic
    from ..perfmodel.machine import SKYLAKE_8174

    machine = machine or SKYLAKE_8174
    model = ECMModel(machine)
    line_bytes = getattr(machine, "cache_line_bytes", 64)
    rows: list[dict] = []
    for kernel in kernels:
        rec = profiler.records.get(kernel.name)
        if rec is None or rec.cells == 0 or rec.seconds == 0.0:
            continue
        shape = block_shape or (60,) * kernel.dim
        traffic = analyze_traffic(kernel, shape)
        prediction = model.predict(kernel, shape, traffic=traffic)
        predicted = prediction.mlups(cores)
        measured = rec.mlups
        llc = machine.cache_levels[-1]
        rows.append(
            {
                "kernel": kernel.name,
                "predicted_mlups": predicted,
                "measured_mlups": measured,
                "ratio": measured / predicted if predicted else float("nan"),
                "bound": "compute" if prediction.is_compute_bound else "memory",
                "calls": rec.calls,
                "predicted_cycles_per_lup": prediction.t_single / _LUPS_PER_UNIT,
                "measured_cycles_per_lup": rec.cycles_per_lup,
                "predicted_bytes_per_lup": traffic.total_bytes(llc.size_bytes),
                "measured_bytes_per_lup": rec.measured_bytes_per_lup(line_bytes),
                "ipc": rec.ipc,
            }
        )
    return rows


def model_accuracy_report(
    kernels,
    profiler,
    machine=None,
    block_shape: tuple[int, ...] | None = None,
    cores: int = 1,
    title: str = "model accuracy (predicted vs measured)",
) -> str:
    """Human-readable predicted-vs-measured table (Fig.-2-style closure)."""
    from ..perfmodel.machine import SKYLAKE_8174
    from ..perfmodel.report import format_table, report_header

    machine = machine or SKYLAKE_8174
    rows = model_accuracy_rows(
        kernels, profiler, machine=machine, block_shape=block_shape, cores=cores
    )
    lines = report_header(f"{title} — {machine.name}, {cores} core(s)")
    if not rows:
        lines.append("(no cell-counted kernel timings yet)")
        return "\n".join(lines)

    def opt(value, spec: str) -> str:
        return format(value, spec) if value is not None else "-"

    lines.extend(
        format_table(
            ["kernel", "calls", "predicted MLUP/s", "measured MLUP/s",
             "measured/predicted", "bound", "pred cy/LUP", "meas cy/LUP",
             "pred B/LUP", "meas B/LUP", "IPC"],
            [
                (
                    r["kernel"],
                    r["calls"],
                    f"{r['predicted_mlups']:.2f}",
                    f"{r['measured_mlups']:.2f}",
                    f"{r['ratio']:.3f}",
                    r["bound"],
                    f"{r['predicted_cycles_per_lup']:.1f}",
                    opt(r["measured_cycles_per_lup"], ".1f"),
                    f"{r['predicted_bytes_per_lup']:.1f}",
                    opt(r["measured_bytes_per_lup"], ".1f"),
                    opt(r["ipc"], ".2f"),
                )
                for r in rows
            ],
        )
    )
    lines.append(counter_provenance_line())
    return "\n".join(lines)


def export_accuracy_metrics(rows: list[dict], registry=None) -> None:
    """Publish the joined rows as gauges (per-kernel predicted/measured).

    Non-finite values (a NaN ratio from ``predicted_mlups == 0``) are
    skipped: Prometheus text format renders them as ``nan``, which the
    parser round-trips but every aggregation silently poisons.
    """
    registry = registry or get_registry()
    gauges = (
        ("repro_kernel_predicted_mlups", "ECM-predicted kernel rate", "predicted_mlups"),
        ("repro_kernel_measured_mlups", "measured kernel rate", "measured_mlups"),
        ("repro_model_accuracy_ratio", "measured/predicted MLUP/s", "ratio"),
        ("repro_kernel_predicted_cycles_per_lup",
         "ECM-predicted cycles per LUP", "predicted_cycles_per_lup"),
        ("repro_kernel_predicted_bytes_per_lup",
         "layer-condition memory traffic per LUP", "predicted_bytes_per_lup"),
    )
    for r in rows:
        for name, help_, key in gauges:
            value = r.get(key)
            if value is None or not math.isfinite(value):
                continue
            registry.gauge(name, help_, kernel=r["kernel"]).set(value)
