"""Predicted-vs-measured closure: join the ECM model with live timings.

The paper's Fig. 2 argument is that the generated kernels run close to the
ECM/roofline prediction.  This module produces the reproduction's version
of that closure: for every kernel that a :class:`repro.profiling.SolverProfiler`
actually timed, the ECM prediction (on the configured machine model) is
joined with the measured MLUP/s into a *model-accuracy table* — rendered by
``solver.profile_report()`` and the throughput benchmark.

A measured/predicted ratio near 1 on the paper's machine validates the
model; on other hosts the ratio becomes a calibration factor (the machine
model describes a Skylake socket, not this laptop), which is exactly what
the column is for.

All perfmodel imports are deferred to call time so that
``repro.observability`` stays import-cycle-free (the codegen layers it
instruments are below :mod:`repro.perfmodel` in the import graph).
"""

from __future__ import annotations

import math

from .metrics import get_registry

__all__ = ["model_accuracy_rows", "model_accuracy_report", "export_accuracy_metrics"]


def model_accuracy_rows(
    kernels,
    profiler,
    machine=None,
    block_shape: tuple[int, ...] | None = None,
    cores: int = 1,
) -> list[dict]:
    """Join ECM predictions with measured rates, one dict per timed kernel.

    Keys: ``kernel``, ``predicted_mlups``, ``measured_mlups``, ``ratio``
    (measured/predicted), ``bound`` (compute|memory), ``calls``.
    Kernels without a cell-counted timing record are skipped (fills and
    exchanges have no LUP rate).
    """
    from ..perfmodel.ecm import ECMModel
    from ..perfmodel.machine import SKYLAKE_8174

    machine = machine or SKYLAKE_8174
    model = ECMModel(machine)
    rows: list[dict] = []
    for kernel in kernels:
        rec = profiler.records.get(kernel.name)
        if rec is None or rec.cells == 0 or rec.seconds == 0.0:
            continue
        prediction = model.predict(kernel, block_shape or (60,) * kernel.dim)
        predicted = prediction.mlups(cores)
        measured = rec.mlups
        rows.append(
            {
                "kernel": kernel.name,
                "predicted_mlups": predicted,
                "measured_mlups": measured,
                "ratio": measured / predicted if predicted else float("nan"),
                "bound": "compute" if prediction.is_compute_bound else "memory",
                "calls": rec.calls,
            }
        )
    return rows


def model_accuracy_report(
    kernels,
    profiler,
    machine=None,
    block_shape: tuple[int, ...] | None = None,
    cores: int = 1,
    title: str = "model accuracy (predicted vs measured)",
) -> str:
    """Human-readable predicted-vs-measured table (Fig.-2-style closure)."""
    from ..perfmodel.machine import SKYLAKE_8174
    from ..perfmodel.report import format_table, report_header

    machine = machine or SKYLAKE_8174
    rows = model_accuracy_rows(
        kernels, profiler, machine=machine, block_shape=block_shape, cores=cores
    )
    lines = report_header(f"{title} — {machine.name}, {cores} core(s)")
    if not rows:
        lines.append("(no cell-counted kernel timings yet)")
        return "\n".join(lines)
    lines.extend(
        format_table(
            ["kernel", "calls", "predicted MLUP/s", "measured MLUP/s",
             "measured/predicted", "bound"],
            [
                (
                    r["kernel"],
                    r["calls"],
                    f"{r['predicted_mlups']:.2f}",
                    f"{r['measured_mlups']:.2f}",
                    f"{r['ratio']:.3f}",
                    r["bound"],
                )
                for r in rows
            ],
        )
    )
    return "\n".join(lines)


def export_accuracy_metrics(rows: list[dict], registry=None) -> None:
    """Publish the joined rows as gauges (per-kernel predicted/measured).

    Non-finite values (a NaN ratio from ``predicted_mlups == 0``) are
    skipped: Prometheus text format renders them as ``nan``, which the
    parser round-trips but every aggregation silently poisons.
    """
    registry = registry or get_registry()
    gauges = (
        ("repro_kernel_predicted_mlups", "ECM-predicted kernel rate", "predicted_mlups"),
        ("repro_kernel_measured_mlups", "measured kernel rate", "measured_mlups"),
        ("repro_model_accuracy_ratio", "measured/predicted MLUP/s", "ratio"),
    )
    for r in rows:
        for name, help_, key in gauges:
            value = r[key]
            if not math.isfinite(value):
                continue
            registry.gauge(name, help_, kernel=r["kernel"]).set(value)
