"""Per-run artifact bundles: one directory, one manifest, every artifact.

Every run used to scatter its outputs across ad-hoc paths — a trace here,
a metrics dump there, checkpoints wherever the caller pointed them.
:class:`RunDir` gives a run a single home::

    run-2026-08-08/
      manifest.json        # config, git rev, host, backend, ranks, wall
      trace.json           # Chrome-trace spans (merged across ranks)
      metrics.prom         # Prometheus text-format metrics snapshot
      metrics.json         # same registry, JSON form
      diagnostics.csv      # in-situ physics diagnostics series
      fingerprints.jsonl   # repro-fingerprint/1 determinism ledger
      health.jsonl         # health watchdog events
      journal.jsonl        # flight-recorder event journal (rank 0)
      journal.rank3.jsonl  # per-rank journals under launch_ranks
      comm_matrix.json     # per-(src,dst) bytes/message matrix
      postmortem.json      # crash bundles, when a run dies
      checkpoints/         # solver checkpoints
      perf/                # repro-perf/1 kernel counter/closure records
      report.html          # tools/run_report.py output

``manifest.json`` (schema ``repro-run/1``) is the index: what the run
was (config, git sha, host, backend, ranks), how it went (status,
wall-clock), and which artifacts exist.  ``tools/run_report.py`` renders
a manifest into a self-contained HTML report; the sweep driver
(ROADMAP item 3) will treat a directory of RunDirs as its job store.

Use it as a context manager for automatic status tracking::

    with RunDir("runs/demo", config={"steps": 100}) as rundir:
        solver = SingleBlockSolver(..., rundir=rundir)
        ...
    # manifest.json now says status="ok" (or "crashed" + postmortem.json)
"""

from __future__ import annotations

import json
import os
import platform
import socket
import sys
import threading
import time
from pathlib import Path

from .bench import git_sha

__all__ = [
    "MANIFEST_SCHEMA",
    "RunDir",
    "get_rundir",
    "set_rundir",
    "load_manifest",
]

MANIFEST_SCHEMA = "repro-run/1"

#: canonical artifact names, also the manifest's inventory keys
_ARTIFACTS = {
    "trace": "trace.json",
    "metrics_prom": "metrics.prom",
    "metrics_json": "metrics.json",
    "diagnostics": "diagnostics.csv",
    "fingerprints": "fingerprints.jsonl",
    "health": "health.jsonl",
    "journal": "journal.jsonl",
    "comm_matrix": "comm_matrix.json",
    "postmortem": "postmortem.json",
    "report": "report.html",
}


class RunDir:
    """One run's artifact directory plus its ``manifest.json``."""

    def __init__(self, path, config: dict | None = None, create: bool = True):
        self.path = Path(path)
        self.config = dict(config or {})
        self._started = time.time()
        self._notes: dict = {}
        self._lock = threading.Lock()
        self._previous_rundir = None
        if create:
            self.path.mkdir(parents=True, exist_ok=True)
            self.checkpoint_dir.mkdir(exist_ok=True)

    # -- canonical paths -------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.path / "manifest.json"

    @property
    def trace_path(self) -> Path:
        return self.path / _ARTIFACTS["trace"]

    @property
    def metrics_path(self) -> Path:
        return self.path / _ARTIFACTS["metrics_prom"]

    @property
    def metrics_json_path(self) -> Path:
        return self.path / _ARTIFACTS["metrics_json"]

    @property
    def diagnostics_path(self) -> Path:
        return self.path / _ARTIFACTS["diagnostics"]

    @property
    def fingerprint_path(self) -> Path:
        """The run's ``repro-fingerprint/1`` determinism ledger."""
        return self.path / _ARTIFACTS["fingerprints"]

    @property
    def health_path(self) -> Path:
        return self.path / _ARTIFACTS["health"]

    @property
    def comm_matrix_path(self) -> Path:
        return self.path / _ARTIFACTS["comm_matrix"]

    @property
    def postmortem_path(self) -> Path:
        return self.path / _ARTIFACTS["postmortem"]

    @property
    def report_path(self) -> Path:
        return self.path / _ARTIFACTS["report"]

    @property
    def checkpoint_dir(self) -> Path:
        return self.path / "checkpoints"

    @property
    def perf_dir(self) -> Path:
        return self.path / "perf"

    @property
    def perf_path(self) -> Path:
        """The run's ``repro-perf/1`` ledger (kernel counters + closure)."""
        return self.perf_dir / "perf.jsonl"

    def journal_path(self, rank: int | None = None) -> Path:
        """The JSONL journal path; rank-suffixed under multi-rank launches."""
        if rank is None:
            return self.path / _ARTIFACTS["journal"]
        return self.path / f"journal.rank{int(rank)}.jsonl"

    # -- manifest --------------------------------------------------------------

    def note(self, **fields) -> None:
        """Merge free-form metadata (backend, ranks, …) into the manifest."""
        with self._lock:
            self._notes.update(fields)

    def artifacts(self) -> dict:
        """Inventory of the canonical artifacts that exist right now."""
        found = {}
        for key, filename in _ARTIFACTS.items():
            if (self.path / filename).exists():
                found[key] = filename
        journals = sorted(
            p.name for p in self.path.glob("journal.rank*.jsonl")
        )
        if journals:
            found["rank_journals"] = journals
        checkpoints = sorted(p.name for p in self.checkpoint_dir.glob("*"))
        if checkpoints:
            found["checkpoints"] = checkpoints
        perf = sorted(p.name for p in self.perf_dir.glob("*")) \
            if self.perf_dir.is_dir() else []
        if perf:
            found["perf"] = perf
        return found

    def write_manifest(self, status: str = "running", **extra) -> dict:
        """Write ``manifest.json``; returns the manifest dict."""
        with self._lock:
            notes = dict(self._notes)
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "status": status,
            "started_at": self._started,
            "wall_seconds": time.time() - self._started,
            "git_sha": git_sha(),
            "host": {
                "hostname": socket.gethostname(),
                "platform": platform.platform(),
                "python": sys.version.split()[0],
                "machine": platform.machine(),
                "pid": os.getpid(),
            },
            "config": self.config,
            "artifacts": self.artifacts(),
        }
        manifest.update(notes)
        manifest.update(extra)
        with open(self.manifest_path, "w") as handle:
            json.dump(manifest, handle, indent=2, default=repr)
            handle.write("\n")
        return manifest

    # -- integration helpers ---------------------------------------------------

    def attach_health(self, monitor) -> None:
        """Mirror a :class:`HealthMonitor`'s events into ``health.jsonl``."""
        rundir = self

        def sink(event):
            try:
                with open(rundir.health_path, "a") as handle:
                    handle.write(json.dumps(event.to_dict(), default=repr) + "\n")
            except OSError:
                pass

        monitor.add_sink(sink)

    # -- context manager -------------------------------------------------------

    def __enter__(self):
        self._previous_rundir = set_rundir(self)
        self.write_manifest(status="running")
        return self

    def __exit__(self, exc_type, exc, tb):
        try:
            if exc is not None:
                # a RankError arrives with the per-rank bundles already on
                # disk (written by the rank runtime, with positions and
                # field stats captured IN the dying ranks) — don't clobber
                # that richer document with a parent-side capture
                if not self.postmortem_path.exists():
                    from .postmortem import capture_postmortem, write_postmortem

                    try:
                        bundle = capture_postmortem(exc)
                        write_postmortem(bundle, self.postmortem_path)
                    except Exception:
                        pass  # forensics must not mask the original exception
                self.write_manifest(status="crashed", error=f"{exc_type.__name__}: {exc}")
            else:
                self.write_manifest(status="ok")
        finally:
            set_rundir(self._previous_rundir)
        return False

    def __repr__(self):
        return f"RunDir({str(self.path)!r})"


_CURRENT_RUNDIR: RunDir | None = None


def get_rundir() -> RunDir | None:
    """The active :class:`RunDir`, or ``None`` outside a run context."""
    return _CURRENT_RUNDIR


def set_rundir(rundir: RunDir | None) -> RunDir | None:
    """Install *rundir* as the active one; returns the previous."""
    global _CURRENT_RUNDIR
    previous = _CURRENT_RUNDIR
    _CURRENT_RUNDIR = rundir
    return previous


def load_manifest(path) -> dict:
    """Load ``manifest.json`` given either its path or the run directory."""
    path = Path(path)
    if path.is_dir():
        path = path / "manifest.json"
    with open(path) as handle:
        manifest = json.load(handle)
    if manifest.get("schema") != MANIFEST_SCHEMA:
        raise ValueError(
            f"{path}: schema is {manifest.get('schema')!r}, expected {MANIFEST_SCHEMA!r}"
        )
    return manifest
