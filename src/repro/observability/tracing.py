"""Pipeline tracing with Chrome-trace/Perfetto export.

A :class:`Tracer` records nested :class:`Span` objects covering both halves
of the paper's workflow:

* **codegen** — functional assembly, variational derivatives,
  discretization, simplification passes (with before/after operation
  counts), IR construction and backend compilation, and
* **runtime** — per-step kernel sweeps, projections, ghost exchanges and
  boundary fills (fed by :meth:`repro.profiling.SolverProfiler.record`, so
  each timing is measured exactly once).

:meth:`Tracer.export_chrome` writes the standard Chrome trace-event JSON
(``trace.json``), loadable in ``chrome://tracing`` or https://ui.perfetto.dev;
span *categories* name the pipeline layer, so the trace viewer can filter
by layer.  The export also carries ``process_name``/``thread_name``
metadata events, so Perfetto shows named tracks instead of bare numeric
pids/tids; a :class:`Tracer` constructed with ``rank=N`` labels its
process track ``rank N`` (the per-rank tracers of
:mod:`repro.observability.distributed` are merged into one multi-track
timeline this way).

The module-level tracer returned by :func:`get_tracer` is disabled by
default — a disabled tracer's :meth:`~Tracer.span` yields ``None`` and
records nothing, keeping the hot path unaffected.  Enable it with
:func:`enable_tracing` (or install a custom instance with
:func:`set_tracer`).  A *thread* can shadow the process-wide tracer with
:func:`set_thread_tracer`: the simulated MPI ranks of
:mod:`repro.parallel.mpi_sim` run as threads of one process, and the
shadowing is what gives every rank its own rank-tagged span collection
while the instrumented code keeps calling plain :func:`get_tracer`.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field as dc_field
from time import perf_counter

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "set_thread_tracer",
    "enable_tracing",
    "disable_tracing",
]

#: the pipeline layers used as span categories, in stack order
PIPELINE_LAYERS = (
    "functional",
    "pde",
    "discretization",
    "simplification",
    "ir",
    "backend",
    "runtime",
)


@dataclass
class Span:
    """One timed, possibly nested operation."""

    name: str
    category: str
    start: float                      # perf_counter seconds
    end: float | None = None
    args: dict = dc_field(default_factory=dict)
    parent: int | None = None         # index of the enclosing span
    index: int = -1
    tid: int = 0

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def __repr__(self):
        return (
            f"Span({self.name!r}, cat={self.category!r}, "
            f"dur={self.duration * 1e3:.3f} ms, parent={self.parent})"
        )


class _ThreadState(threading.local):
    def __init__(self):
        self.stack: list[int] = []


class Tracer:
    """Collects spans and exports them in Chrome trace-event format."""

    def __init__(self, enabled: bool = True, rank: int | None = None):
        self.enabled = enabled
        self.rank = rank
        self._spans: list[Span] = []
        self._counters: list[tuple[str, str, float, dict]] = []
        self._lock = threading.Lock()
        self._state = _ThreadState()
        self._tids: dict[int, int] = {}
        self._epoch = perf_counter()

    @property
    def epoch(self) -> float:
        """``perf_counter`` value taken at construction/reset.

        Trace timestamps are relative to it; rank tracers created inside
        one process share the ``perf_counter`` clock, which is what lets
        :func:`repro.observability.distributed.merge_rank_traces` align
        all ranks on a common timeline.
        """
        return self._epoch

    # -- recording -------------------------------------------------------------

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            tid = self._tids[ident] = len(self._tids)
        return tid

    @contextmanager
    def span(self, name: str, category: str = "", **args):
        """Open a nested span around the enclosed block.

        Yields the live :class:`Span` (or ``None`` when disabled) so callers
        can attach result arguments, e.g. operation counts known only after
        the work ran::

            with tracer.span("pass:cse", category="simplification") as sp:
                out = run_pass(...)
                if sp is not None:
                    sp.args["ops_after"] = count(out)
        """
        if not self.enabled:
            yield None
            return
        stack = self._state.stack
        sp = Span(
            name=name,
            category=category,
            start=perf_counter(),
            args=dict(args),
            parent=stack[-1] if stack else None,
            tid=self._tid(),
        )
        with self._lock:
            sp.index = len(self._spans)
            self._spans.append(sp)
        stack.append(sp.index)
        try:
            yield sp
        finally:
            sp.end = perf_counter()
            stack.pop()

    def add_event(
        self,
        name: str,
        category: str = "",
        start: float = 0.0,
        end: float = 0.0,
        args: dict | None = None,
    ) -> Span | None:
        """Record an already-measured interval (perf_counter seconds).

        Used by :class:`repro.profiling.SolverProfiler` so a kernel sweep is
        timed once and appears both in the profile table and the trace.  The
        event is parented to the innermost span currently open on this
        thread.
        """
        if not self.enabled:
            return None
        stack = self._state.stack
        sp = Span(
            name=name,
            category=category,
            start=start,
            end=end,
            args=dict(args or {}),
            parent=stack[-1] if stack else None,
            tid=self._tid(),
        )
        with self._lock:
            sp.index = len(self._spans)
            self._spans.append(sp)
        return sp

    def add_counter(
        self,
        name: str,
        values: dict[str, float],
        category: str = "",
        ts: float | None = None,
    ) -> None:
        """Record a counter sample (Chrome trace ``ph: "C"`` event).

        Counter events render as stacked value tracks in Perfetto — the
        diagnostics series uses them to plot free energy / solute mass /
        interface area against the kernel timeline.  *ts* is a
        ``perf_counter`` timestamp (defaults to now).
        """
        if not self.enabled:
            return
        sample = (
            name,
            category,
            perf_counter() if ts is None else float(ts),
            {k: float(v) for k, v in values.items()},
        )
        with self._lock:
            self._counters.append(sample)

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()
            self._counters.clear()
            self._tids.clear()
        self._state = _ThreadState()
        self._epoch = perf_counter()

    # -- pickling ---------------------------------------------------------------

    def __getstate__(self) -> dict:
        # rank tracers cross process boundaries (the per-rank results of a
        # process-backed run are gathered for merge_rank_traces); the lock
        # and thread-local span stack are per-process and are rebuilt empty
        # on the other side.  On Linux, perf_counter is CLOCK_MONOTONIC —
        # system-wide — so the pickled epoch stays meaningful and merged
        # multi-process traces align on one timeline.
        with self._lock:
            return {
                "enabled": self.enabled,
                "rank": self.rank,
                "spans": list(self._spans),
                "counters": list(self._counters),
                "tids": dict(self._tids),
                "epoch": self._epoch,
            }

    def __setstate__(self, state: dict) -> None:
        self.enabled = state["enabled"]
        self.rank = state["rank"]
        self._spans = list(state["spans"])
        self._counters = list(state["counters"])
        self._tids = dict(state["tids"])
        self._epoch = state["epoch"]
        self._lock = threading.Lock()
        self._state = _ThreadState()

    # -- introspection ---------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        return list(self._spans)

    @property
    def counters(self) -> list[tuple[str, str, float, dict]]:
        """Recorded counter samples as ``(name, category, ts, values)``."""
        return list(self._counters)

    def finished_spans(self) -> list[Span]:
        return [s for s in self._spans if s.end is not None]

    def span_tree(self) -> list[tuple]:
        """Deterministic ``(name, category, parent_name)`` triples.

        Timing-free view of the span hierarchy — two runs of the same
        pipeline produce identical trees, which the tests assert.
        """
        spans = self._spans
        out = []
        for s in spans:
            parent = spans[s.parent].name if s.parent is not None else None
            out.append((s.name, s.category, parent))
        return out

    def layers_seen(self) -> set[str]:
        return {s.category for s in self._spans if s.category}

    # -- export ----------------------------------------------------------------

    def process_label(self) -> str:
        """Name of this tracer's process track (``rank N`` when rank-tagged)."""
        return f"rank {self.rank}" if self.rank is not None else "repro"

    def to_chrome(self, epoch: float | None = None) -> dict:
        """The trace as a Chrome trace-event ``dict`` (JSON object format).

        Besides the ``"X"`` duration events the export carries the
        ``process_name``/``thread_name`` metadata events (``ph: "M"``)
        that Perfetto and ``chrome://tracing`` use to label tracks —
        without them the UI shows bare numeric pids/tids.  *epoch*
        overrides the timestamp origin (used when merging several
        tracers onto one timeline).
        """
        pid = self.rank if self.rank is not None else os.getpid()
        t0 = self._epoch if epoch is None else epoch
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": self.process_label()},
            }
        ]
        if self.rank is not None:
            events.append(
                {
                    "name": "process_sort_index",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"sort_index": self.rank},
                }
            )
        for tid in sorted(set(self._tids.values())):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": "main" if tid == 0 else f"thread-{tid}"},
                }
            )
        spans = []
        for s in self.finished_spans():
            spans.append(
                {
                    "name": s.name,
                    "cat": s.category or "default",
                    "ph": "X",
                    "ts": round((s.start - t0) * 1e6, 3),
                    "dur": round(s.duration * 1e6, 3),
                    "pid": pid,
                    "tid": s.tid,
                    "args": s.args,
                }
            )
        spans.sort(key=lambda e: (e["tid"], e["ts"], -e["dur"]))
        counters = [
            {
                "name": name,
                "cat": category or "counter",
                "ph": "C",
                "ts": round((ts - t0) * 1e6, 3),
                "pid": pid,
                "tid": 0,
                "args": values,
            }
            for name, category, ts, values in self._counters
        ]
        counters.sort(key=lambda e: (e["name"], e["ts"]))
        return {
            "traceEvents": events + spans + counters,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.observability"},
        }

    def export_chrome(self, path) -> str:
        """Write ``trace.json`` and return the path written."""
        text = json.dumps(self.to_chrome(), indent=1, default=str)
        with open(path, "w") as fh:
            fh.write(text)
        return str(path)


_GLOBAL_TRACER = Tracer(enabled=False)
_THREAD_TRACER = threading.local()


def get_tracer() -> Tracer:
    """This thread's tracer: the thread-local override, else the global one.

    The process-wide tracer is a disabled no-op unless enabled; a thread
    (e.g. a simulated MPI rank) may shadow it via :func:`set_thread_tracer`.
    """
    override = getattr(_THREAD_TRACER, "tracer", None)
    return override if override is not None else _GLOBAL_TRACER


def set_thread_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install *tracer* for the current thread only; ``None`` removes it.

    Returns the previous thread-local tracer (``None`` if there was none).
    Instrumented code keeps calling :func:`get_tracer`; the simulated MPI
    ranks use this to each collect their own rank-tagged spans while
    sharing one process.
    """
    previous = getattr(_THREAD_TRACER, "tracer", None)
    _THREAD_TRACER.tracer = tracer
    return previous


def set_tracer(tracer: Tracer) -> Tracer:
    """Install *tracer* as the process-wide tracer; returns the previous one."""
    global _GLOBAL_TRACER
    previous = _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer
    return previous


def enable_tracing(reset: bool = True) -> Tracer:
    """Switch the global tracer on (optionally clearing old spans)."""
    _GLOBAL_TRACER.enabled = True
    if reset:
        _GLOBAL_TRACER.reset()
    return _GLOBAL_TRACER


def disable_tracing() -> Tracer:
    """Switch the global tracer off (spans already recorded are kept)."""
    _GLOBAL_TRACER.enabled = False
    return _GLOBAL_TRACER
