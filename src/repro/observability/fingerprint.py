"""Determinism observatory: the ``repro-fingerprint/1`` state ledger.

The repo's strongest runtime claim is that every schedule variant —
overlapped communication, the process backend, tiled reductions, any rank
count — produces *bit-identical* fields.  This module turns that claim
into a cheap, always-on observable: a per-step stream of BLAKE2b digests
of the interior field bytes, taken per ``(field, block)`` in a **fixed
lexicographic block order**, so the stream is invariant across 1/N ranks
and sim/process backends — the same traversal discipline that makes
:func:`repro.backends.runtime.tile_sum` /
:func:`repro.diagnostics.suite.merge_partials` reductions
partition-invariant.

Record shape (one JSON object per line, ``sort_keys=True`` so a given
state always serializes to the same bytes)::

    {
      "schema": "repro-fingerprint/1",
      "step": 42,
      "time": 2.1,
      "fields": {"phi": {"0,0": "hex32", "0,1": "hex32", ...}, ...},
      "digest": "hex32"       # combined over fields+blocks in fixed order
    }

Records deliberately carry **no timestamps, hostnames or rank counts** —
two runs of the same model on the same seed must produce byte-identical
ledgers (the determinism-smoke CI job literally ``cmp``\\ s them).

``reference=`` makes a stream *self-auditing*: each emitted record is
compared online against a reference ledger and the first mismatching
``(field, block)`` pair trips a :class:`~repro.observability.health.HealthMonitor`
``divergence`` event (record/warn/raise policies) naming step, field and
block.  ``tools/divergence.py`` does the same offline, plus checkpoint
replay and ulp-level field diffs.
"""

from __future__ import annotations

import hashlib
import itertools
from pathlib import Path
from time import perf_counter

import numpy as np

from .jsonl import JsonlLedger
from .metrics import get_registry
from .recorder import get_recorder
from .tracing import get_tracer

__all__ = [
    "FINGERPRINT_SCHEMA",
    "FingerprintLedger",
    "FingerprintSchemaError",
    "FingerprintStream",
    "OVERHEAD_GAUGE",
    "block_key",
    "combined_digest",
    "digest_array",
    "find_mismatches",
    "fingerprint_record",
    "parse_block_key",
    "tiled_digests",
    "validate_fingerprint_record",
]

FINGERPRINT_SCHEMA = "repro-fingerprint/1"

#: 128-bit digests: collision-safe for this purpose at half the ledger size
DIGEST_SIZE = 16

#: self-measured fingerprint cost, gated <5% of step wall in bench_scaling_smoke
OVERHEAD_GAUGE = "repro_fingerprint_overhead_seconds"


class FingerprintSchemaError(ValueError):
    """A ledger record does not conform to the ``repro-fingerprint/1`` schema."""


# -- digest primitives ---------------------------------------------------------


def block_key(coords) -> str:
    """The ledger key of a block coordinate, e.g. ``(0, 1)`` → ``"0,1"``."""
    return ",".join(str(int(c)) for c in coords)


def parse_block_key(key: str) -> tuple[int, ...]:
    """Inverse of :func:`block_key`; used for *numeric* block ordering.

    Keys must never be ordered as strings — ``"10,0" < "2,0"``
    lexicographically, which would silently change the combined-digest
    traversal order on forests wider than 10 blocks.
    """
    return tuple(int(c) for c in key.split(","))


def digest_array(arr) -> str:
    """BLAKE2b-128 hex digest of one interior array (dtype, shape, bytes).

    Hashing dtype and shape alongside the raw bytes means a transposed or
    re-typed array can never collide with the original by accident.
    """
    a = np.ascontiguousarray(np.asarray(arr))
    h = hashlib.blake2b(digest_size=DIGEST_SIZE)
    h.update(str(a.dtype).encode())
    h.update(repr(tuple(int(n) for n in a.shape)).encode())
    # a C-contiguous array exposes the buffer protocol directly — hashing
    # it avoids the tobytes() copy, which matters at MB-per-step rates
    h.update(a)
    return h.hexdigest()


def tiled_digests(interior, dim: int, tile_shape=None) -> dict[str, str]:
    """Per-block digests of one field interior, keyed by block coordinate.

    ``tile_shape=None`` treats the whole interior as the single block
    ``(0,)*dim``.  With a tile shape, the first *dim* (spatial) axes are
    cut into a lexicographically ordered grid of tiles — exactly the
    :func:`repro.backends.runtime.tile_sum` traversal — so a single-block
    run fingerprinted with ``tile_shape=forest.block_shape`` emits the
    same per-block digests as the block-decomposed run.
    """
    a = np.asarray(interior)
    if dim < 1 or dim > a.ndim:
        raise ValueError(f"dim={dim} invalid for array of shape {a.shape}")
    if tile_shape is None:
        return {block_key((0,) * dim): digest_array(a)}
    tile_shape = tuple(int(t) for t in tile_shape)
    if len(tile_shape) != dim or any(t < 1 for t in tile_shape):
        raise ValueError(f"tile shape {tile_shape} invalid for dim={dim}")
    counts = [-(-a.shape[d] // tile_shape[d]) for d in range(dim)]
    out: dict[str, str] = {}
    for idx in itertools.product(*(range(c) for c in counts)):
        sl = tuple(slice(i * t, (i + 1) * t) for i, t in zip(idx, tile_shape))
        out[block_key(idx)] = digest_array(a[sl])
    return out


def combined_digest(fields: dict[str, dict[str, str]]) -> str:
    """One digest over all per-block digests, in the fixed traversal order.

    Fields sort by name; blocks sort by *parsed* coordinate tuple (never
    by key string).  The combined digest is what two ledgers compare
    first; on mismatch :func:`find_mismatches` localizes the pair.
    """
    h = hashlib.blake2b(digest_size=DIGEST_SIZE)
    for name in sorted(fields):
        h.update(name.encode())
        blocks = fields[name]
        for key in sorted(blocks, key=parse_block_key):
            h.update(key.encode())
            h.update(bytes.fromhex(blocks[key]))
    return h.hexdigest()


# -- records and the ledger ----------------------------------------------------


def fingerprint_record(step: int, time: float, fields: dict) -> dict:
    """Build one validated ``repro-fingerprint/1`` record."""
    record = {
        "schema": FINGERPRINT_SCHEMA,
        "step": int(step),
        "time": float(time),
        "fields": {
            name: dict(blocks) for name, blocks in sorted(fields.items())
        },
        "digest": combined_digest(fields),
    }
    return validate_fingerprint_record(record)


def validate_fingerprint_record(record) -> dict:
    """Raise :class:`FingerprintSchemaError` unless *record* is valid.

    Also recomputes the combined digest from the per-block digests — a
    record whose summary digest disagrees with its own blocks is corrupt,
    not merely divergent.
    """
    if not isinstance(record, dict):
        raise FingerprintSchemaError(
            f"record is {type(record).__name__}, expected object"
        )
    if record.get("schema") != FINGERPRINT_SCHEMA:
        raise FingerprintSchemaError(
            f"schema is {record.get('schema')!r}, expected {FINGERPRINT_SCHEMA!r}"
        )
    step = record.get("step")
    if not isinstance(step, int) or isinstance(step, bool) or step < 0:
        raise FingerprintSchemaError(f"step={step!r} is not a non-negative int")
    time = record.get("time")
    if isinstance(time, bool) or not isinstance(time, (int, float)):
        raise FingerprintSchemaError(f"time={time!r} is not a number")
    fields = record.get("fields")
    if not isinstance(fields, dict) or not fields:
        raise FingerprintSchemaError("fields stanza missing or empty")
    for name, blocks in fields.items():
        if not isinstance(blocks, dict) or not blocks:
            raise FingerprintSchemaError(f"fields[{name!r}] missing or empty")
        for key, digest in blocks.items():
            try:
                parse_block_key(key)
            except ValueError:
                raise FingerprintSchemaError(
                    f"fields[{name!r}] has malformed block key {key!r}"
                ) from None
            if (
                not isinstance(digest, str)
                or len(digest) != 2 * DIGEST_SIZE
                or any(c not in "0123456789abcdef" for c in digest)
            ):
                raise FingerprintSchemaError(
                    f"fields[{name!r}][{key!r}] is not a "
                    f"{2 * DIGEST_SIZE}-char hex digest"
                )
    if record.get("digest") != combined_digest(fields):
        raise FingerprintSchemaError(
            "combined digest does not match the per-block digests"
        )
    return record


class FingerprintLedger(JsonlLedger):
    """Append-only JSONL ledger of ``repro-fingerprint/1`` records."""

    SchemaError = FingerprintSchemaError

    def validate(self, record) -> dict:
        return validate_fingerprint_record(record)


def find_mismatches(record: dict, reference: dict) -> list[dict]:
    """Per-``(field, block)`` digest differences, in fixed traversal order.

    Compares the ``fields`` stanzas of two same-step records; each
    mismatch is ``{"field", "block", "actual", "expected"}`` where a
    digest is ``None`` when that pair exists on only one side.  The first
    entry is the most upstream divergence in the deterministic traversal,
    which is what the auditor and ``tools/divergence.py`` report.
    """
    a, b = record.get("fields", {}), reference.get("fields", {})
    out = []
    for name in sorted(set(a) | set(b)):
        blocks_a, blocks_b = a.get(name, {}), b.get(name, {})
        for key in sorted(set(blocks_a) | set(blocks_b), key=parse_block_key):
            da, db = blocks_a.get(key), blocks_b.get(key)
            if da != db:
                out.append(
                    {"field": name, "block": key, "actual": da, "expected": db}
                )
    return out


def load_reference(reference) -> tuple[Path, dict[int, dict]]:
    """Load a reference ledger as a ``{step: record}`` index.

    *reference* is a ledger file or a run directory (the canonical
    ``fingerprints.jsonl`` inside it).  Raises when empty or absent — an
    audit against nothing would silently pass.
    """
    path = Path(reference)
    if path.is_dir():
        path = path / "fingerprints.jsonl"
    records = FingerprintLedger(path).load()
    if not records:
        raise FileNotFoundError(
            f"reference fingerprint ledger {path} is missing or empty"
        )
    return path, {r["step"]: r for r in records}


# -- the live stream -----------------------------------------------------------


class FingerprintStream:
    """Emits fingerprint records: ledger + flight recorder + trace + audit.

    One stream per run.  Solvers (or the quickstart loop) call
    :meth:`record_state` with the live interiors, or
    :meth:`record_digests` with per-block digests already merged across
    ranks.  All self-time — digesting, serializing, auditing — accrues to
    :attr:`overhead_seconds` and is exported as the
    ``repro_fingerprint_overhead_seconds`` gauge.

    Parameters
    ----------
    path:
        Ledger file to append to (truncated at construction: a stream is
        a fresh trajectory, not history).  ``None`` keeps records
        in-memory only — distributed non-root ranks audit without writing.
    reference:
        Ledger file or run directory to audit against online.  Each
        record's combined digest is compared to the same-step reference
        record; the first mismatching ``(field, block)`` trips a
        ``divergence`` health event.
    health:
        :class:`~repro.observability.health.HealthMonitor` that receives
        divergence events.  ``None`` with *reference* set creates a
        private ``policy="raise"`` monitor — an unmonitored audit that
        cannot fail is worse than none.
    where:
        Location tag for health events (e.g. ``"rank 2"``).
    metrics / trace:
        Export the record/divergence counters and overhead gauge, and
        wrap emission in a ``fingerprint`` trace span carrying the digest.
    """

    def __init__(
        self,
        path=None,
        reference=None,
        health=None,
        where: str = "",
        metrics: bool = True,
        trace: bool = True,
    ):
        self.path = Path(path) if path is not None else None
        self.ledger = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.unlink(missing_ok=True)
            self.ledger = FingerprintLedger(self.path)
        self.reference_path = None
        self._reference = None
        if reference is not None:
            self.reference_path, self._reference = load_reference(reference)
        if health is None and self._reference is not None:
            from .health import HealthMonitor

            health = HealthMonitor(policy="raise", interval=1)
        self.health = health
        self.where = where
        self.metrics = metrics
        self.trace = trace
        self.records: list[dict] = []
        self.matched = 0
        self.unmatched = 0
        self.first_divergence: dict | None = None
        self.overhead_seconds = 0.0

    def __len__(self):
        return len(self.records)

    @property
    def auditing(self) -> bool:
        return self._reference is not None

    def add_overhead(self, seconds: float) -> None:
        """Charge caller-side work (e.g. the distributed digest+allgather)."""
        self.overhead_seconds += float(seconds)

    def record_state(
        self, step: int, time: float, interiors: dict, dim: int, tile_shape=None
    ) -> dict:
        """Digest live *interiors* (per-field arrays) and emit one record."""
        t0 = perf_counter()
        fields = {
            name: tiled_digests(arr, dim, tile_shape)
            for name, arr in interiors.items()
        }
        self.overhead_seconds += perf_counter() - t0
        return self.record_digests(step, time, fields)

    def record_digests(self, step: int, time: float, fields: dict) -> dict:
        """Emit one record from already-computed per-block digests.

        Appends to the ledger, mirrors the digest into the flight-recorder
        event ring and the Chrome trace, bumps the counters, and — when
        auditing — compares against the reference and routes the first
        mismatch through the health monitor (which may raise).
        """
        t0 = perf_counter()
        tracer = get_tracer() if self.trace else None
        span = (
            tracer.span("fingerprint", category="runtime", time_step=int(step))
            if tracer is not None
            else _null_context()
        )
        try:
            with span as sp:
                record = fingerprint_record(step, time, fields)
                self.records.append(record)
                if self.ledger is not None:
                    self.ledger.append(record)
                get_recorder().record(
                    "fingerprint",
                    record["digest"],
                    time_step=record["step"],
                    n_fields=len(record["fields"]),
                )
                if sp is not None:
                    sp.args["digest"] = record["digest"]
                if self.metrics:
                    get_registry().counter(
                        "repro_fingerprint_records_total",
                        "fingerprint records emitted",
                    ).inc()
                self._audit(record)
        finally:
            self.overhead_seconds += perf_counter() - t0
            if self.metrics:
                self.publish_overhead()
        return record

    def _audit(self, record: dict) -> None:
        if self._reference is None:
            return
        reference = self._reference.get(record["step"])
        if reference is None:
            self.unmatched += 1
            return
        if reference["digest"] == record["digest"]:
            self.matched += 1
            return
        mismatches = find_mismatches(record, reference)
        if self.first_divergence is None:
            self.first_divergence = {
                "step": record["step"],
                "n_mismatches": len(mismatches),
                **mismatches[0],
            }
        if self.metrics:
            first = mismatches[0]
            get_registry().counter(
                "repro_fingerprint_divergence_total",
                "fingerprint records that diverged from the reference",
                field=first["field"],
            ).inc()
        if self.health is not None:
            self.health.check_fingerprint(
                mismatches, time_step=record["step"], where=self.where
            )

    def publish_overhead(self, registry=None) -> float:
        """Export the self-measured cost as the overhead gauge."""
        registry = registry or get_registry()
        registry.gauge(
            OVERHEAD_GAUGE,
            "self-measured fingerprint cost (digest+serialize+audit)",
        ).set(self.overhead_seconds)
        return self.overhead_seconds

    def summary(self) -> str:
        """One status line for logs and reports."""
        out = f"fingerprints: {len(self.records)} records"
        if self.path is not None:
            out += f" -> {self.path}"
        if self.auditing:
            if self.first_divergence is None:
                out += (
                    f"; audit vs {self.reference_path}: OK "
                    f"({self.matched} matched, {self.unmatched} unmatched steps)"
                )
            else:
                d = self.first_divergence
                out += (
                    f"; audit vs {self.reference_path}: DIVERGED at step "
                    f"{d['step']} field {d['field']} block ({d['block']})"
                )
        return out

    def __repr__(self):
        return (
            f"FingerprintStream(records={len(self.records)}, "
            f"path={str(self.path) if self.path else None!r}, "
            f"auditing={self.auditing})"
        )


class _null_context:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False
