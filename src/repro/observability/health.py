"""Simulation health monitoring: fail loudly and early, not at t_end.

Long phase-field runs can silently go unstable (too-large ``dt``, bad
parameters) and keep writing garbage checkpoints for hours.  The
:class:`HealthMonitor` is called by both solvers on a configurable cadence
and runs three checks on the live fields:

* **NaN/Inf watchdog** — any non-finite value in φ or µ,
* **phase-sum drift** — the Gibbs-simplex/Lagrange constraint ``Σ_α φ_α = 1``
  must hold post-projection; drift means the projection or the multiplier
  is broken,
* **field bounds** — configurable per-field ``(lo, hi)`` alarms (φ must
  stay in [0, 1]; µ excursions flag a runaway driving force).

Findings become :class:`HealthEvent` records and metrics; the *policy*
decides what else happens: ``"record"`` only stores them, ``"warn"`` also
logs, ``"raise"`` aborts the run with :class:`HealthError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

import numpy as np

from .log import get_logger, kv
from .metrics import get_registry
from .recorder import get_recorder

__all__ = ["HealthError", "HealthEvent", "HealthMonitor"]

_log = get_logger("observability.health")


class HealthError(RuntimeError):
    """Raised (policy ``"raise"``) when a health check fails."""

    def __init__(self, events: list["HealthEvent"]):
        self.events = events
        super().__init__(
            "; ".join(str(e) for e in events) or "health check failed"
        )


@dataclass
class HealthEvent:
    """One failed check at one point in simulated time."""

    time_step: int
    check: str          # "nan" | "phase_sum" | "bounds" | "conservation" | "energy_decay" | "divergence"
    field: str
    message: str
    value: float = 0.0
    where: str = ""     # e.g. "block (0, 1)" for distributed runs

    def __str__(self):
        loc = f" {self.where}" if self.where else ""
        return f"[step {self.time_step}{loc}] {self.check}({self.field}): {self.message}"

    def to_dict(self) -> dict:
        return {
            "time_step": self.time_step,
            "check": self.check,
            "field": self.field,
            "message": self.message,
            "value": self.value,
            "where": self.where,
        }


@dataclass
class HealthMonitor:
    """Configurable watchdog over live simulation fields.

    Parameters
    ----------
    policy:
        ``"record"`` (store events), ``"warn"`` (store + log warning) or
        ``"raise"`` (store + log + raise :class:`HealthError`).
    interval:
        Check cadence in time steps (the solvers call :meth:`due` each step).
    nan_check:
        Enable the non-finite watchdog.
    phase_sum_tol:
        Allowed ``max|Σφ − 1|`` drift, or ``None`` to disable the check.
    bounds:
        Per-field ``{name: (lo, hi)}`` alarms; ``None`` for either end
        leaves that side unchecked.
    conservation_tol:
        Allowed relative drift of a conserved diagnostic (e.g. total
        solute mass) from its first recorded value, or ``None`` to
        disable — used by :meth:`check_diagnostics`.
    energy_decay_slack:
        Relative slack allowed on the free-energy monotonic-decay
        invariant ``dΨ/dt ≤ 0`` (isothermal, no noise); absorbs rounding
        of the reduction itself.
    """

    policy: str = "raise"
    interval: int = 1
    nan_check: bool = True
    phase_sum_tol: float | None = 1e-6
    bounds: dict[str, tuple[float | None, float | None]] = dc_field(
        default_factory=dict
    )
    conservation_tol: float | None = 1e-8
    energy_decay_slack: float = 1e-12
    events: list[HealthEvent] = dc_field(default_factory=list)
    n_checks: int = 0
    sinks: list = dc_field(default_factory=list, repr=False)
    _mass_ref: dict = dc_field(default_factory=dict, repr=False)
    _energy_prev: float | None = dc_field(default=None, repr=False)

    def __post_init__(self):
        if self.policy not in ("record", "warn", "raise"):
            raise ValueError(f"unknown policy {self.policy!r}")
        if self.interval < 1:
            raise ValueError("interval must be >= 1")

    # -- scheduling ------------------------------------------------------------

    def due(self, time_step: int) -> bool:
        """True when *time_step* falls on the check cadence."""
        return time_step % self.interval == 0

    @property
    def healthy(self) -> bool:
        return not self.events

    # -- checking --------------------------------------------------------------

    def check(
        self,
        fields: dict[str, np.ndarray],
        time_step: int = 0,
        phase_sum_of: str | None = None,
        where: str = "",
    ) -> list[HealthEvent]:
        """Run all configured checks on *fields*; returns the new events.

        *phase_sum_of* names the field whose trailing axis holds the phase
        index and must sum to one (skip for scalar order parameters).
        """
        registry = get_registry()
        registry.counter(
            "repro_health_checks_total", "health checks executed"
        ).inc()
        found: list[HealthEvent] = []

        for name, arr in fields.items():
            if self.nan_check:
                bad = np.size(arr) - int(np.count_nonzero(np.isfinite(arr)))
                if bad:
                    found.append(
                        HealthEvent(
                            time_step, "nan", name,
                            f"{bad} non-finite values", float(bad), where,
                        )
                    )
                    continue  # bounds/drift on NaN data is meaningless
            lo, hi = self.bounds.get(name, (None, None))
            if lo is not None or hi is not None:
                below = int(np.count_nonzero(arr < lo)) if lo is not None else 0
                above = int(np.count_nonzero(arr > hi)) if hi is not None else 0
                if below or above:
                    found.append(
                        HealthEvent(
                            time_step, "bounds", name,
                            f"{below + above} values outside [{lo}, {hi}]",
                            float(below + above), where,
                        )
                    )

        if phase_sum_of is not None and self.phase_sum_tol is not None:
            arr = fields.get(phase_sum_of)
            if arr is not None and arr.ndim >= 1 and np.all(np.isfinite(arr)):
                drift = float(np.abs(arr.sum(axis=-1) - 1.0).max())
                if drift > self.phase_sum_tol:
                    found.append(
                        HealthEvent(
                            time_step, "phase_sum", phase_sum_of,
                            f"max |Σφ − 1| = {drift:.3e} "
                            f"(tol {self.phase_sum_tol:.1e})",
                            drift, where,
                        )
                    )

        self.n_checks += 1
        self._record(found, registry)
        return found

    def check_diagnostics(
        self,
        values: dict[str, float],
        time_step: int = 0,
        mass_names: tuple[str, ...] = (),
        energy_name: str | None = None,
        where: str = "",
    ) -> list[HealthEvent]:
        """Run the physics-invariant checks on a diagnostics row.

        *mass_names* lists conserved diagnostics (checked for relative
        drift against their first recorded value), *energy_name* the total
        free energy (checked for monotonic decay against the previous
        value).  Non-finite values are skipped — the NaN watchdog owns
        those.  Findings go through the same policy/metrics machinery as
        the field checks.
        """
        registry = get_registry()
        registry.counter(
            "repro_health_checks_total", "health checks executed"
        ).inc()
        found: list[HealthEvent] = []

        for name in mass_names:
            value = values.get(name)
            if value is None or not np.isfinite(value):
                continue
            ref = self._mass_ref.setdefault(name, float(value))
            if self.conservation_tol is None:
                continue
            drift = abs(float(value) - ref) / max(abs(ref), 1e-300)
            if drift > self.conservation_tol:
                found.append(
                    HealthEvent(
                        time_step, "conservation", name,
                        f"relative drift {drift:.3e} from initial "
                        f"{ref:.17g} (tol {self.conservation_tol:.1e})",
                        drift, where,
                    )
                )

        if energy_name is not None:
            value = values.get(energy_name)
            if value is not None and np.isfinite(value):
                prev = self._energy_prev
                self._energy_prev = float(value)
                if prev is not None:
                    allowed = self.energy_decay_slack * max(abs(prev), 1.0)
                    rise = float(value) - prev
                    if rise > allowed:
                        found.append(
                            HealthEvent(
                                time_step, "energy_decay", energy_name,
                                f"dΨ/dt > 0: {prev:.17g} → {value:.17g} "
                                f"(+{rise:.3e})",
                                rise, where,
                            )
                        )

        self.n_checks += 1
        self._record(found, registry)
        return found

    def check_fingerprint(
        self,
        mismatches: list[dict],
        time_step: int = 0,
        where: str = "",
    ) -> list[HealthEvent]:
        """Report state-fingerprint divergence from a reference ledger.

        *mismatches* is the per-``(field, block)`` digest diff produced by
        :func:`repro.observability.fingerprint.find_mismatches`, already in
        the fixed traversal order, so ``mismatches[0]`` is the most
        upstream divergent pair.  The event names the step, the field and
        the block of that first mismatch and carries the total divergent
        pair count as its value; it goes through the same policy/metrics
        machinery as the field checks (check kind ``"divergence"``).
        """
        registry = get_registry()
        registry.counter(
            "repro_health_checks_total", "health checks executed"
        ).inc()
        found: list[HealthEvent] = []
        if mismatches:
            first = mismatches[0]
            actual = first.get("actual") or "missing"
            expected = first.get("expected") or "missing"
            found.append(
                HealthEvent(
                    time_step, "divergence", first["field"],
                    f"block ({first['block']}): fingerprint {actual} != "
                    f"reference {expected}; {len(mismatches)} (field, block) "
                    f"pair(s) diverged at this step",
                    float(len(mismatches)),
                    where=f"{where} block ({first['block']})".strip(),
                )
            )
        self.n_checks += 1
        self._record(found, registry)
        return found

    def add_sink(self, sink) -> None:
        """Register ``sink(event)`` to be called for every new event.

        :meth:`repro.observability.rundir.RunDir.attach_health` uses this
        to mirror events into ``health.jsonl``; sink failures are swallowed
        so observability never changes run outcomes.
        """
        self.sinks.append(sink)

    def _record(self, found: list[HealthEvent], registry) -> None:
        """Shared event handling: store, count, log, apply the policy."""
        if not found:
            return
        self.events.extend(found)
        recorder = get_recorder()
        for event in found:
            recorder.record(
                "health",
                event.check,
                field=event.field,
                time_step=event.time_step,
                message=event.message,
                value=event.value,
                where=event.where,
            )
            for sink in self.sinks:
                try:
                    sink(event)
                except Exception:
                    pass
            registry.counter(
                "repro_health_events_total",
                "failed health checks",
                check=event.check,
                field=event.field,
            ).inc()
            if self.policy in ("warn", "raise"):
                _log.warning(
                    kv(
                        "health_check_failed",
                        step=event.time_step,
                        check=event.check,
                        field=event.field,
                        detail=event.message,
                        where=event.where,
                    )
                )
        if self.policy == "raise":
            raise HealthError(found)

    # -- reporting -------------------------------------------------------------

    def summary(self) -> str:
        """One-paragraph status line for logs and reports."""
        if self.healthy:
            return f"health: OK ({self.n_checks} checks, 0 events)"
        by_check: dict[str, int] = {}
        for e in self.events:
            by_check[e.check] = by_check.get(e.check, 0) + 1
        detail = ", ".join(f"{k}×{v}" for k, v in sorted(by_check.items()))
        first = self.events[0]
        return (
            f"health: {len(self.events)} events over {self.n_checks} checks "
            f"({detail}); first: {first}"
        )
