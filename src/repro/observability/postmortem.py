"""Crash post-mortems: capture what a dying run was doing, durably.

A long run that dies should leave more behind than a traceback.  This
module turns the :class:`~repro.observability.recorder.FlightRecorder`
ring (plus whatever field state the solver registered) into a JSON
*post-mortem bundle*:

* the exception (type, message, traceback),
* the rank and run position (current time step),
* the open span stack and the last-N recorder events,
* the last kernel dispatched before death,
* per-field numeric forensics — finite min/max/mean, NaN/Inf counts —
  computed at the moment of capture.

Bundles are plain dicts (JSON- and pickle-safe) so
:mod:`repro.parallel.proc_comm` workers can ship them over the result
pipe to the parent, which writes a combined ``postmortem.json`` into the
run directory.  :func:`install_excepthook` covers the single-process
path: any uncaught exception in the main thread dumps a bundle before
the interpreter exits.

Schema (``repro-postmortem/1``)::

    {
      "schema": "repro-postmortem/1",
      "captured_at": <unix time>,
      "rank": 3 | null,
      "pid": ..., "host": ...,
      "exception": {"type": ..., "message": ..., "traceback": ...},
      "position": {"time_step": 17, ...},
      "open_spans": [...], "last_events": [...],
      "last_kernel": {...} | null,
      "fields": {"phi": {"shape": ..., "dtype": ..., "min": ..., ...}},
    }
"""

from __future__ import annotations

import json
import os
import socket
import sys
import time
import traceback as _tb

import numpy as np

from .recorder import get_recorder

__all__ = [
    "POSTMORTEM_SCHEMA",
    "field_stats",
    "capture_postmortem",
    "write_postmortem",
    "install_excepthook",
]

POSTMORTEM_SCHEMA = "repro-postmortem/1"

#: events whose kind marks a kernel dispatch — the "last kernel" of a bundle
_KERNEL_KINDS = ("kernel", "op")


def field_stats(arrays: dict) -> dict:
    """Numeric forensics for a ``{name: ndarray}`` mapping.

    NaN/Inf-aware: min/max/mean are computed over the finite subset only,
    and the non-finite counts are reported separately, so a field that
    went NaN at step k is immediately visible in the bundle.
    """
    stats = {}
    for name, array in arrays.items():
        try:
            arr = np.asarray(array)
            entry = {
                "shape": list(arr.shape),
                "dtype": str(arr.dtype),
                "size": int(arr.size),
            }
            if arr.size and np.issubdtype(arr.dtype, np.number):
                values = arr.astype(np.float64, copy=False)
                finite = np.isfinite(values)
                n_finite = int(finite.sum())
                entry["nan_count"] = int(np.isnan(values).sum())
                entry["inf_count"] = int(np.isinf(values).sum())
                entry["finite_count"] = n_finite
                if n_finite:
                    subset = values[finite]
                    entry["min"] = float(subset.min())
                    entry["max"] = float(subset.max())
                    entry["mean"] = float(subset.mean())
            stats[str(name)] = entry
        except Exception as exc:  # forensics must never raise past here
            stats[str(name)] = {"error": f"{type(exc).__name__}: {exc}"}
    return stats


def capture_postmortem(
    exc: BaseException | None = None,
    recorder=None,
    rank: int | None = None,
    last_n: int = 100,
    extra: dict | None = None,
) -> dict:
    """Snapshot the current recorder (and registered field state) as a bundle.

    Safe to call from any failure path: every sub-capture is individually
    guarded, so a broken state provider degrades to an ``"error"`` entry
    rather than masking the original exception.
    """
    recorder = recorder if recorder is not None else get_recorder()
    bundle = {
        "schema": POSTMORTEM_SCHEMA,
        "captured_at": time.time(),
        "rank": rank if rank is not None else getattr(recorder, "rank", None),
        "pid": os.getpid(),
        "host": socket.gethostname(),
        "exception": None,
        "position": {},
        "open_spans": [],
        "last_events": [],
        "last_kernel": None,
        "fields": {},
    }
    if exc is not None:
        bundle["exception"] = {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": "".join(_tb.format_exception(type(exc), exc, exc.__traceback__)),
        }
    try:
        bundle["position"] = recorder.position
        bundle["open_spans"] = recorder.open_spans()
        bundle["last_events"] = recorder.last_events(last_n)
        last_kernel = recorder.last_of(*_KERNEL_KINDS)
        if last_kernel is not None:
            bundle["last_kernel"] = {
                "name": last_kernel.name,
                "kind": last_kernel.kind,
                "seq": last_kernel.seq,
                "data": dict(last_kernel.data),
            }
    except Exception as inner:
        bundle["recorder_error"] = f"{type(inner).__name__}: {inner}"
    provider = getattr(recorder, "state_provider", None)
    if provider is not None:
        try:
            bundle["fields"] = field_stats(provider())
        except Exception as inner:
            bundle["fields"] = {"error": f"{type(inner).__name__}: {inner}"}
    if extra:
        bundle.update(extra)
    return bundle


def write_postmortem(bundle: dict, path) -> str:
    """Write one bundle (or a combined multi-rank document) as JSON."""
    with open(path, "w") as handle:
        json.dump(bundle, handle, indent=2, default=repr)
        handle.write("\n")
    return str(path)


def install_excepthook(target, recorder=None, rank: int | None = None):
    """Dump a post-mortem to *target* on any uncaught exception.

    Chains to the previously installed ``sys.excepthook`` so default
    traceback printing (or an outer hook) still happens.  Returns the
    installed hook so tests can uninstall it (``sys.excepthook = hook.previous``).
    """
    previous = sys.excepthook

    def hook(exc_type, exc, tb):
        try:
            if exc.__traceback__ is None:
                exc = exc.with_traceback(tb)
            bundle = capture_postmortem(exc, recorder=recorder, rank=rank)
            write_postmortem(bundle, target)
        except Exception:
            pass  # never let forensics mask the original crash
        previous(exc_type, exc, tb)

    hook.previous = previous
    sys.excepthook = hook
    return hook
