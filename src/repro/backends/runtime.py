"""Runtime helpers shared by generated NumPy kernels.

Approximate operations emulate the reduced precision of the hardware
intrinsics (``rsqrt14``, ``__fdividef``) by a float32 round-trip, so their
numerical effect is observable and testable, while exact operations stay in
full double precision.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..rng.philox import philox_field

__all__ = [
    "fast_div",
    "fast_sqrt",
    "fast_rsqrt",
    "rng_uniform",
    "tile_sum",
    "RUNTIME_NAMESPACE",
]


def fast_div(a, b):
    """Approximate division via single precision (CUDA ``__fdividef`` analogue)."""
    return np.asarray(
        np.float32(a) / np.float32(b), dtype=np.float64
    ) if np.isscalar(a) and np.isscalar(b) else np.divide(
        np.asarray(a, dtype=np.float32), np.asarray(b, dtype=np.float32)
    ).astype(np.float64)


def fast_sqrt(x):
    """Approximate square root in single precision."""
    if np.isscalar(x):
        return float(np.sqrt(np.float32(x)))
    return np.sqrt(np.asarray(x, dtype=np.float32)).astype(np.float64)


def fast_rsqrt(x):
    """Approximate reciprocal square root (AVX-512 ``rsqrt14`` analogue)."""
    if np.isscalar(x):
        return float(np.float32(1.0) / np.sqrt(np.float32(x)))
    x32 = np.asarray(x, dtype=np.float32)
    return (np.float32(1.0) / np.sqrt(x32)).astype(np.float64)


def rng_uniform(shape, time_step, seed, stream, offset, low, high):
    """Uniform Philox field for fluctuation terms in generated kernels."""
    return philox_field(
        shape,
        time_step=int(time_step),
        seed=int(seed),
        stream=int(stream),
        offset=tuple(int(o) for o in offset),
        low=float(low),
        high=float(high),
    )


def tile_sum(values, tile_shape=None):
    """Sum *values* with a reproducible, partition-invariant operation order.

    ``tile_shape=None`` sums the whole array at once (fastest; the order is
    whatever NumPy's pairwise summation picks for that shape).  With a tile
    shape, the array is cut into a lexicographically ordered grid of tiles
    (edge tiles may be smaller) and each tile is summed independently, the
    per-tile partials being accumulated left to right in plain double adds.

    This is the fixed-order tree sum used for distributed diagnostics: a
    block-decomposed run sums each block interior separately and merges the
    partials in sorted block-coordinate order, which is *exactly* the
    operation sequence of ``tile_sum(whole_interior, block_shape)`` — so a
    single-process evaluation reproduces the distributed one bit for bit.
    """
    a = np.ascontiguousarray(np.asarray(values, dtype=np.float64))
    if tile_shape is None:
        return float(np.sum(a))
    tile_shape = tuple(int(t) for t in tile_shape)
    if len(tile_shape) > a.ndim or any(t < 1 for t in tile_shape):
        raise ValueError(
            f"tile shape {tile_shape} invalid for array of shape {a.shape}"
        )
    counts = [
        -(-a.shape[d] // tile_shape[d]) for d in range(len(tile_shape))
    ]
    total = 0.0
    for idx in itertools.product(*(range(c) for c in counts)):
        sl = tuple(
            slice(i * t, (i + 1) * t) for i, t in zip(idx, tile_shape)
        )
        total += float(np.sum(np.ascontiguousarray(a[sl])))
    return total


#: Namespace injected into every generated NumPy kernel.
RUNTIME_NAMESPACE = {
    "np": np,
    "_fast_div": fast_div,
    "_fast_sqrt": fast_sqrt,
    "_fast_rsqrt": fast_rsqrt,
    "_rng_uniform": rng_uniform,
    "_tile_sum": tile_sum,
}
