"""Runtime helpers shared by generated NumPy kernels.

Approximate operations emulate the reduced precision of the hardware
intrinsics (``rsqrt14``, ``__fdividef``) by a float32 round-trip, so their
numerical effect is observable and testable, while exact operations stay in
full double precision.
"""

from __future__ import annotations

import numpy as np

from ..rng.philox import philox_field

__all__ = ["fast_div", "fast_sqrt", "fast_rsqrt", "rng_uniform", "RUNTIME_NAMESPACE"]


def fast_div(a, b):
    """Approximate division via single precision (CUDA ``__fdividef`` analogue)."""
    return np.asarray(
        np.float32(a) / np.float32(b), dtype=np.float64
    ) if np.isscalar(a) and np.isscalar(b) else np.divide(
        np.asarray(a, dtype=np.float32), np.asarray(b, dtype=np.float32)
    ).astype(np.float64)


def fast_sqrt(x):
    """Approximate square root in single precision."""
    if np.isscalar(x):
        return float(np.sqrt(np.float32(x)))
    return np.sqrt(np.asarray(x, dtype=np.float32)).astype(np.float64)


def fast_rsqrt(x):
    """Approximate reciprocal square root (AVX-512 ``rsqrt14`` analogue)."""
    if np.isscalar(x):
        return float(np.float32(1.0) / np.sqrt(np.float32(x)))
    x32 = np.asarray(x, dtype=np.float32)
    return (np.float32(1.0) / np.sqrt(x32)).astype(np.float64)


def rng_uniform(shape, time_step, seed, stream, offset, low, high):
    """Uniform Philox field for fluctuation terms in generated kernels."""
    return philox_field(
        shape,
        time_step=int(time_step),
        seed=int(seed),
        stream=int(stream),
        offset=tuple(int(o) for o in offset),
        low=float(low),
        high=float(high),
    )


#: Namespace injected into every generated NumPy kernel.
RUNTIME_NAMESPACE = {
    "np": np,
    "_fast_div": fast_div,
    "_fast_sqrt": fast_sqrt,
    "_fast_rsqrt": fast_rsqrt,
    "_rng_uniform": rng_uniform,
}
