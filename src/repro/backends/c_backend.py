"""C backend: generates C99 + OpenMP sources and executes them via ctypes.

Mirrors the paper's CPU backend (§3.5): loop nests ordered by the IR layer,
loop-invariant subexpressions hoisted to their loop level (the temperature
optimization), restrict-qualified pointers, an OpenMP-parallel outer loop and
optional approximate math (single-precision div/sqrt paths standing in for
the AVX-512 ``rsqrt14`` intrinsics).  An embedded scalar Philox-4x32-10
matches the NumPy backend bit for bit.

Generated kernels are compiled on the fly with the system C compiler and
published into the persistent cross-process cache
(:mod:`repro.profiling.diskcache`): keyed by the kernel's structural IR
fingerprint plus compiler identity and codegen revision, file-locked so
concurrent processes compile each kernel at most once, and atomically
renamed into place so no process can ever ``dlopen`` a partial ``.so``.
Results are bitwise comparable with the NumPy backend (verified in tests).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import sympy as sp
from sympy.printing.c import C99CodePrinter

from ..ir.kernel import Kernel
from ..ir.loops import classify_hoist_levels
from ..observability.hwcounters import attribute_dispatch, get_counter_harness
from ..symbolic.assignment import Assignment
from ..symbolic.coordinates import CoordinateSymbol
from ..symbolic.field import FieldAccess
from ..symbolic.random import RandomValue

__all__ = ["generate_c_source", "compile_c_kernel", "CompiledCKernel", "c_compiler_available"]

_PHILOX_C = r"""
#include <math.h>
#include <stdint.h>

#ifndef M_PI
#define M_PI 3.14159265358979323846
#endif

static inline uint32_t _mulhilo(uint32_t a, uint32_t b, uint32_t *lo) {
    uint64_t p = (uint64_t)a * (uint64_t)b;
    *lo = (uint32_t)p;
    return (uint32_t)(p >> 32);
}

/* Philox-4x32-10, bit-identical to repro.rng.philox */
static inline double _philox_uniform(
    int64_t g0, int64_t g1, int64_t g2, uint32_t c3,
    uint32_t k0, uint32_t k1, int lane, double low, double high)
{
    uint32_t x0 = (uint32_t)(g0 & 0xFFFFFFFF);
    uint32_t x1 = (uint32_t)(g1 & 0xFFFFFFFF);
    uint32_t x2 = (uint32_t)(g2 & 0xFFFFFFFF);
    uint32_t x3 = c3;
    for (int r = 0; r < 10; ++r) {
        uint32_t lo0, lo1;
        uint32_t hi0 = _mulhilo(0xD2511F53u, x0, &lo0);
        uint32_t hi1 = _mulhilo(0xCD9E8D57u, x2, &lo1);
        uint32_t y0 = hi1 ^ x1 ^ k0;
        uint32_t y1 = lo1;
        uint32_t y2 = hi0 ^ x3 ^ k1;
        uint32_t y3 = lo0;
        x0 = y0; x1 = y1; x2 = y2; x3 = y3;
        k0 += 0x9E3779B9u; k1 += 0xBB67AE85u;
    }
    double u;
    if (lane == 0)
        u = ((double)x0 * 0x1p-32 + (double)x1) * 0x1p-32;
    else
        u = ((double)x2 * 0x1p-32 + (double)x3) * 0x1p-32;
    return low + (high - low) * u;
}

static inline double _fast_div(double a, double b) {
    return (double)((float)a / (float)b);
}
static inline double _fast_sqrt(double x) { return (double)sqrtf((float)x); }
static inline double _fast_rsqrt(double x) { return (double)(1.0f / sqrtf((float)x)); }
"""


class _CPrinter(C99CodePrinter):
    """C expression printer aware of field accesses and fast-math nodes."""

    def __init__(self, access_str, rng_str):
        super().__init__()
        self._access_str = access_str
        self._rng_str = rng_str

    def _print_Symbol(self, expr):
        if isinstance(expr, FieldAccess):
            return self._access_str(expr)
        return super()._print_Symbol(expr)

    def _print_Float(self, expr):
        # shortest round-trip decimal; C strtod parses to the nearest double,
        # so this is bit-identical to the Python value
        return repr(float(expr))

    def _print_RandomValue(self, expr):
        return self._rng_str(expr)

    def _print_fast_division(self, expr):
        return f"_fast_div({self._print(expr.args[0])}, {self._print(expr.args[1])})"

    def _print_fast_sqrt(self, expr):
        return f"_fast_sqrt({self._print(expr.args[0])})"

    def _print_fast_rsqrt(self, expr):
        return f"_fast_rsqrt({self._print(expr.args[0])})"

    def _print_Pow(self, expr):
        base, expo = expr.args
        if expo.is_Integer and 1 < abs(int(expo)) <= 8:
            b = self._print(base)
            if not (base.is_Symbol or base.is_Function):
                b = f"({b})"
            chain = "*".join([b] * abs(int(expo)))
            # parenthesize: the caller assumes Pow precedence, the chain has Mul
            return f"({chain})" if int(expo) > 0 else f"(1.0/({chain}))"
        if expo == sp.Rational(-1, 2):
            return f"(1.0/sqrt({self._print(base)}))"
        return super()._print_Pow(expr)


def _flat_index(idx: tuple[int, ...], shape: tuple[int, ...]) -> int:
    flat = 0
    for i, s in zip(idx, shape):
        flat = flat * s + i
    return flat


def _c_func_name(kernel_name: str) -> str:
    """Valid C identifier for a kernel (restricted names contain ':')."""
    import re

    return "kernel_" + re.sub(r"[^0-9A-Za-z_]", "_", kernel_name)


def generate_c_source(kernel: Kernel, func_name: str | None = None) -> str:
    """Emit the complete C99 translation unit for *kernel*."""
    ac = kernel.ac
    dim = kernel.dim
    func_name = func_name or _c_func_name(kernel.name)
    fields = kernel.fields
    params = kernel.parameters

    lines: list[str] = [f"/* generated C kernel: {kernel.name} */", _PHILOX_C, ""]

    args = []
    for f in fields:
        args.append(f"double * restrict f_{f.name}")
    args += [f"const int64_t n{d}" for d in range(dim)]
    args.append("const int64_t gl")
    if kernel.subspace is not None:
        # subspace range offsets: loop runs [sub_lo, n + sub_hi) per axis
        args += [f"const int64_t sub_lo{d}" for d in range(dim)]
        args += [f"const int64_t sub_hi{d}" for d in range(dim)]
    args += [f"const int64_t off{d}" for d in range(dim)]
    args += [f"const double origin{d}" for d in range(dim)]
    args += [f"const double h{d}" for d in range(dim)]
    for p in params:
        if p.name in ("time_step", "seed"):
            continue
        args.append(f"const double p_{p.name}")
    args.append("const int64_t time_step")
    args.append("const int64_t seed")
    if kernel.is_reduction:
        args.append("double * restrict reduce_out")

    lines.append(f"void {func_name}(")
    lines.append("    " + ",\n    ".join(args) + ")")
    lines.append("{")

    # strides (in doubles) per field, C-contiguous with spatial dims first
    for f in fields:
        idx_sz = int(np.prod(f.index_shape)) if f.index_shape else 1
        strides = []
        for d in range(dim):
            inner = " * ".join(
                [f"(n{dd} + 2*gl)" for dd in range(d + 1, dim)] + [str(idx_sz)]
            )
            strides.append(inner)
        for d in range(dim):
            lines.append(f"    const int64_t s_{f.name}_{d} = {strides[d]};")
    lines.append("")

    # spacing values folded at compile time or passed as h<d>
    h_expr = {}
    for d in range(dim):
        folded = kernel.folded_value(f"dx_{d}")
        h_expr[d] = repr(float(folded)) if folded is not None else f"h{d}"

    # group main assignments by write region (flux kernels)
    from .numpy_backend import _region_of

    groups: dict[tuple, list[Assignment]] = {}
    for a in ac.main_assignments:
        groups.setdefault(_region_of(a, dim), []).append(a)

    for region, assignments in sorted(groups.items()):
        lines.extend(
            _emit_c_loop_nest(kernel, region, assignments, h_expr, dim)
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def _emit_c_loop_nest(kernel, region, assignments, h_expr, dim) -> list[str]:
    ac = kernel.ac
    from .numpy_backend import _needed_subexpressions

    sub = _needed_subexpressions(ac, assignments)
    loop_order = kernel.loop_order
    levels = classify_hoist_levels(ac, loop_order)

    def access_str(acc: FieldAccess) -> str:
        parts = []
        for d in range(dim):
            o = int(acc.offsets[d])
            parts.append(f"(i{d} + gl + {o}) * s_{acc.field.name}_{d}")
        flat = _flat_index(acc.index, acc.field.index_shape) if acc.index else 0
        idx = " + ".join(parts + ([str(flat)] if flat else []))
        return f"f_{acc.field.name}[{idx}]"

    def rng_str(r: RandomValue) -> str:
        lo = [region[d][0] for d in range(dim)]
        g = [f"i{d} + off{d} - {lo[d]}" for d in range(dim)]
        while len(g) < 3:
            g.append("0")
        printer0 = _CPrinter(access_str, lambda r_: "0")
        low = printer0.doprint(r.low)
        high = printer0.doprint(r.high)
        return (
            f"_philox_uniform({g[0]}, {g[1]}, {g[2]}, {r.stream // 2}u, "
            f"(uint32_t)(time_step & 0xFFFFFFFF), (uint32_t)(seed & 0xFFFFFFFF), "
            f"{r.stream % 2}, {low}, {high})"
        )

    printer = _CPrinter(access_str, rng_str)

    def pr(e: sp.Expr) -> str:
        return printer.doprint(e)

    # rename params: plain symbols that are parameters get the p_ prefix
    param_names = {p.name for p in kernel.parameters} - {"time_step", "seed"}
    rename = {
        sp.Symbol(n, real=True): sp.Symbol(f"p_{n}", real=True) for n in param_names
    }

    def fix(e: sp.Expr) -> sp.Expr:
        mapping = {
            s: rename[sp.Symbol(s.name, real=True)]
            for s in e.free_symbols
            if not isinstance(s, (FieldAccess, CoordinateSymbol))
            and sp.Symbol(s.name, real=True) in rename
        }
        return e.xreplace(mapping) if mapping else e

    # organize subexpressions by hoist level (position in loop order)
    by_level: dict[int, list[Assignment]] = {}
    for a in sub:
        by_level.setdefault(levels.get(a.lhs, dim), []).append(a)

    out: list[str] = [f"    /* region {region} */", "    {"]
    indent = "    "

    def emit_coord_defs(level: int, pad: str):
        # coordinate of the axis looped at this level-1
        axis = loop_order[level - 1]
        lo = region[axis][0]
        out.append(
            f"{pad}const double x_{axis} = origin{axis} + "
            f"(double)(i{axis} + off{axis} - {lo}) * {h_expr[axis]} + 0.5 * {h_expr[axis]};"
        )

    # level 0 subexpressions (pure parameter math)
    for a in by_level.get(0, []):
        out.append(f"{indent}    const double {a.lhs.name} = {pr(fix(a.rhs))};")

    pad = indent + "    "
    coords_needed = {
        c.axis
        for a in sub + assignments
        for c in a.rhs.atoms(CoordinateSymbol)
    }
    # reduction kernels accumulate into per-output scalars instead of storing
    reductions = kernel.reductions if kernel.is_reduction else ()
    acc_names = {}
    if reductions:
        for i, a in enumerate(assignments):
            acc_names[a.lhs.name] = f"__acc_{i}"
            out.append(f"{indent}    double __acc_{i} = 0.0;")

    restricted = kernel.subspace is not None
    omp_written = False
    for level, axis in enumerate(loop_order, start=1):
        lo, hi = region[axis]
        bound = f"n{axis} + {lo + hi}" if (lo or hi) else f"n{axis}"
        start = f"sub_lo{axis}" if restricted else "0"
        if restricted:
            bound = f"{bound} + sub_hi{axis}"
        if not omp_written:
            clause = (
                " reduction(+:" + ",".join(acc_names.values()) + ")"
                if acc_names
                else ""
            )
            out.append(
                f"{indent}    #pragma omp parallel for schedule(static){clause}"
            )
            omp_written = True
        out.append(
            f"{pad}for (int64_t i{axis} = {start}; i{axis} < {bound}; ++i{axis}) {{"
        )
        pad += "    "
        if axis in coords_needed:
            emit_coord_defs(level, pad)
        for a in by_level.get(level, []):
            out.append(f"{pad}const double {a.lhs.name} = {pr(fix(a.rhs))};")

    for a in assignments:
        if acc_names:
            out.append(f"{pad}{acc_names[a.lhs.name]} += {pr(fix(a.rhs))};")
        else:
            out.append(f"{pad}{access_str(a.lhs)} = {pr(fix(a.rhs))};")

    for _ in range(dim):
        pad = pad[:-4]
        out.append(f"{pad}}}")
    if reductions:
        for i, a in enumerate(assignments):
            out.append(f"{pad}reduce_out[{i}] = __acc_{i};")
    out.append("    }")
    return out


# ---------------------------------------------------------------------------
# compilation & execution


def c_compiler_available() -> bool:
    from shutil import which

    return which(os.environ.get("CC", "cc")) is not None


#: flag basis every shared-object build uses (the -fopenmp variant is
#: tried first); folded into the cache key so a flag change rebuilds
_BASE_FLAGS = ("-O3", "-march=native", "-std=c99", "-shared", "-fPIC", "-lm")


def _compile_attempts(tmp_path: Path, c_path: Path) -> None:
    """Compile *c_path* to *tmp_path*: ``-fopenmp`` first, plain fallback.

    Each failed attempt unlinks whatever the compiler left at *tmp_path*,
    so the retry (and the caller) never sees a partial artifact.
    """
    cc = os.environ.get("CC", "cc")
    base = [cc, *_BASE_FLAGS]
    last = None
    for flags in ([*base, "-fopenmp"], base):
        try:
            subprocess.run(
                [*flags, "-o", str(tmp_path), str(c_path)],
                check=True,
                capture_output=True,
            )
            return
        except subprocess.CalledProcessError as err:
            tmp_path.unlink(missing_ok=True)
            last = err
    raise RuntimeError(
        f"C compilation failed:\n{last.stderr.decode(errors='replace')}"
    )


def _build_shared_object(
    source: str,
    func_name: str,
    key: str | None = None,
    extra_meta: dict | None = None,
) -> Path:
    """Publish the compiled ``.so`` for *source* into the persistent cache.

    *key* defaults to a source-digest cache key; :func:`compile_c_kernel`
    passes the structural kernel-IR fingerprint instead so a disk hit can
    skip source generation entirely.  Compilation happens under the
    entry's file lock into a unique temp name and is published with an
    atomic rename — concurrent or killed compiles can never leave a
    loadable partial artifact.
    """
    from ..profiling.diskcache import (
        KernelDiskCache,
        cache_key,
        codegen_revision,
        compiler_identity,
    )

    cache = KernelDiskCache()
    if key is None:
        digest = hashlib.sha256(source.encode()).hexdigest()
        key = cache_key(digest, flags=_BASE_FLAGS, backend="c")

    def build(tmp_path: Path) -> None:
        import tempfile

        with tempfile.TemporaryDirectory() as td:
            c_path = Path(td) / f"{func_name}.c"
            c_path.write_text(source)
            _compile_attempts(tmp_path, c_path)

    so_path, _hit = cache.get_or_build(
        key,
        build,
        source=source,
        meta={
            "func_name": func_name,
            "flags": list(_BASE_FLAGS),
            "source_sha256": hashlib.sha256(source.encode()).hexdigest(),
            "compiler": compiler_identity(),
            "codegen_revision": codegen_revision(),
            **(extra_meta or {}),
        },
    )
    return so_path


@dataclass
class CompiledCKernel:
    """A compiled, callable C kernel with the NumPy-backend calling convention."""

    kernel: Kernel
    source: str
    _func: object

    @property
    def name(self) -> str:
        return self.kernel.name

    def __call__(
        self,
        arrays: dict[str, np.ndarray],
        block_offset=(0, 0, 0),
        origin=(0.0, 0.0, 0.0),
        ghost_layers: int | None = None,
        tile_shape: tuple[int, ...] | None = None,
        **params,
    ):
        k = self.kernel
        if tile_shape is not None:
            # OpenMP reduction order is fixed by the thread count, not by a
            # tile decomposition; bit-reproducible sums are the NumPy
            # backend's job (see DESIGN.md, "fixed-order reduction")
            raise ValueError(
                "tile_shape is not supported by the C backend; use the "
                "numpy backend for partition-invariant reductions"
            )
        dim = k.dim
        gl = k.ghost_layers if ghost_layers is None else int(ghost_layers)
        ref = arrays[k.fields[0].name]
        interior = [ref.shape[d] - 2 * gl for d in range(dim)]
        argv: list = []
        for f in k.fields:
            a = arrays[f.name]
            if not a.flags["C_CONTIGUOUS"]:
                raise ValueError(f"array {f.name} must be C-contiguous")
            if a.dtype != np.float64:
                raise ValueError(f"array {f.name} must be float64")
            argv.append(a.ctypes.data_as(ctypes.POINTER(ctypes.c_double)))
        argv += [ctypes.c_int64(n) for n in interior]
        argv.append(ctypes.c_int64(gl))
        if k.subspace is not None:
            sub = k.subspace.offsets(tuple(interior))
            argv += [ctypes.c_int64(lo) for lo, _ in sub]
            argv += [ctypes.c_int64(hi) for _, hi in sub]
        argv += [ctypes.c_int64(int(block_offset[d])) for d in range(dim)]
        argv += [ctypes.c_double(float(origin[d])) for d in range(dim)]
        for d in range(dim):
            folded = k.folded_value(f"dx_{d}")
            h = folded if folded is not None else params.get(f"dx_{d}", 1.0)
            argv.append(ctypes.c_double(float(h)))
        for p in k.parameters:
            if p.name in ("time_step", "seed"):
                continue
            if p.name not in params:
                raise KeyError(f"missing kernel parameter {p.name!r}")
            argv.append(ctypes.c_double(float(params[p.name])))
        argv.append(ctypes.c_int64(int(params.get("time_step", 0))))
        argv.append(ctypes.c_int64(int(params.get("seed", 0))))
        # bracket the native call with counter samples so the profiler's
        # attribution excludes the Python-side argument marshaling above
        harness = get_counter_harness()
        if k.is_reduction:
            out = np.zeros(len(k.reductions), dtype=np.float64)
            argv.append(out.ctypes.data_as(ctypes.POINTER(ctypes.c_double)))
            s0 = harness.sample()
            self._func(*argv)
            attribute_dispatch(harness.delta(s0, harness.sample()))
            return {name: float(v) for name, v in zip(k.reductions, out)}
        s0 = harness.sample()
        self._func(*argv)
        attribute_dispatch(harness.delta(s0, harness.sample()))
        return None


def compile_c_kernel(kernel: Kernel) -> CompiledCKernel:
    """Generate, compile (with on-disk caching) and wrap a C kernel."""
    from ..observability.log import get_logger, kv
    from ..observability.tracing import get_tracer

    from ..profiling.cache import kernel_fingerprint
    from ..profiling.diskcache import KernelDiskCache, cache_key

    func_name = _c_func_name(kernel.name)
    with get_tracer().span(f"codegen:c:{kernel.name}", category="backend") as span:
        fingerprint = kernel_fingerprint(kernel)
        key = cache_key(fingerprint, flags=_BASE_FLAGS, backend="c")
        cache = KernelDiskCache()
        hit = cache.lookup(key) is not None
        if hit:
            # warm start: the key pins fingerprint + codegen revision +
            # compiler identity, so the stored source is exactly what we
            # would regenerate — skip sympy→C emission entirely
            source = cache.load_source(key)
            if source is None:
                source = generate_c_source(kernel, func_name)
        else:
            source = generate_c_source(kernel, func_name)
        so_path = _build_shared_object(
            source,
            func_name,
            key=key,
            extra_meta={"kernel": kernel.name, "fingerprint": fingerprint},
        )
        lib = ctypes.CDLL(str(so_path))
        func = getattr(lib, func_name)
        func.restype = None
        if span is not None:
            span.args["disk_cache"] = "hit" if hit else "miss"
        get_logger("backends.c").info(
            kv(
                "c_kernel_ready",
                kernel=kernel.name,
                so=so_path.name,
                disk_cache="hit" if hit else "miss",
            )
        )
        return CompiledCKernel(kernel, source, func)
