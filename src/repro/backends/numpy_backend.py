"""NumPy backend: generates and executes vectorized Python kernels.

This is the reference execution engine of the pipeline (the paper's
interactive workflow, §4.2: "generated kernels ... operate on objects
implementing the Python buffer protocol, e.g. numpy arrays").  Every stencil
assignment becomes a whole-array slice expression; temporaries become
intermediate arrays; staggered (flux) writes use per-assignment regions
extended by one face layer along the flux axis.

The generated source is kept on the compiled object (``.source``) for
inspection and testing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import sympy as sp
from sympy.printing.numpy import NumPyPrinter

from ..ir.kernel import Kernel
from ..symbolic.assignment import Assignment, AssignmentCollection
from ..symbolic.coordinates import CoordinateSymbol
from ..symbolic.field import FieldAccess
from ..symbolic.random import RandomValue
from .runtime import RUNTIME_NAMESPACE

__all__ = ["compile_numpy_kernel", "CompiledNumpyKernel", "create_arrays"]


def create_arrays(
    fields, interior_shape: tuple[int, ...], ghost_layers: int = 1, fill: float = 0.0
) -> dict[str, np.ndarray]:
    """Allocate ghost-layered arrays for a set of fields."""
    arrays = {}
    for f in fields:
        shape = tuple(s + 2 * ghost_layers for s in interior_shape) + f.index_shape
        arrays[f.name] = np.full(shape, fill, dtype=np.float64)
    return arrays


class _Printer(NumPyPrinter):
    """Expression printer with symbol renaming and fast-math lowering."""

    def __init__(self, rename: dict[str, str]):
        # fully qualified names ("numpy.sqrt") keep the generated source
        # independent of what happens to be imported into its namespace;
        # precision 17 guarantees doubles round-trip exactly (bitwise parity
        # with the C backend, which prints at the same precision)
        super().__init__({"precision": 17})
        self._rename = rename

    def _print_Float(self, expr):
        # shortest round-trip representation: bitwise parity with C backend
        return repr(float(expr))

    def _print_Symbol(self, expr):
        return self._rename.get(expr.name, expr.name)

    def _print_fast_division(self, expr):
        return f"_fast_div({self._print(expr.args[0])}, {self._print(expr.args[1])})"

    def _print_fast_sqrt(self, expr):
        return f"_fast_sqrt({self._print(expr.args[0])})"

    def _print_fast_rsqrt(self, expr):
        return f"_fast_rsqrt({self._print(expr.args[0])})"


def _slice_str(offset: int, lo_ext: int, hi_ext: int, axis: int | None = None) -> str:
    """Runtime-ghost-width slice: ``slice(__gl + a, (b - __gl) or None)``.

    With *axis* set (subspace-restricted kernels) the runtime ``__sub`` tuple
    shifts both ends: ``__sub[d][0] >= 0`` moves the start inward from the low
    face, ``__sub[d][1] <= 0`` moves the stop inward from the high face.
    """
    a = int(offset) - lo_ext
    b = hi_ext + int(offset)
    if axis is None:
        return f"slice(__gl + {a}, ({b} - __gl) or None)"
    return (
        f"slice(__gl + {a} + __sub[{axis}][0], "
        f"({b} - __gl + __sub[{axis}][1]) or None)"
    )


def _region_of(assignment: Assignment, dim: int) -> tuple[tuple[int, int], ...]:
    """Write region of a main assignment: interior, extended for flux fields."""
    ext = [(0, 0)] * dim
    lhs = assignment.lhs
    if isinstance(lhs, FieldAccess) and lhs.field.staggered:
        slot_axes = getattr(lhs.field, "slot_axes", None)
        if slot_axes is None:
            raise ValueError(
                f"staggered field {lhs.field.name} lacks slot_axes metadata"
            )
        axis = slot_axes[lhs.index[0]]
        ext[axis] = (0, 1)
    return tuple(ext)


@dataclass
class CompiledNumpyKernel:
    """A generated, executable NumPy kernel."""

    kernel: Kernel
    source: str
    _func: callable

    @property
    def _needs_upper_ext(self) -> int:
        """1 if any staggered write extends one layer past the interior."""
        return int(
            any(
                isinstance(a.lhs, FieldAccess) and a.lhs.field.staggered
                for a in self.kernel.ac.main_assignments
            )
        )

    @property
    def name(self) -> str:
        return self.kernel.name

    def __call__(
        self,
        arrays: dict[str, np.ndarray],
        block_offset: tuple[int, ...] = (0, 0, 0),
        origin: tuple[float, ...] = (0.0, 0.0, 0.0),
        ghost_layers: int | None = None,
        tile_shape: tuple[int, ...] | None = None,
        **params,
    ):
        """Execute one sweep over the interior of *arrays* (in place).

        ``arrays`` maps field names to ghost-layered ndarrays; ``params``
        supplies every free kernel parameter by name (``dt``, ``dx_0``, model
        constants, ``t``, ``time_step``, ``seed`` …).  ``ghost_layers`` is
        the actual ghost width of the arrays (defaults to the kernel's
        minimum requirement).

        Stencil kernels write in place and return ``None``.  Reduction
        kernels leave the arrays untouched and return ``{name: float}`` with
        one raw (unscaled) interior sum per reduction output; ``tile_shape``
        selects the fixed-order tiled summation that makes the result
        partition-invariant (see :func:`repro.backends.runtime.tile_sum`).
        """
        gl = self.kernel.ghost_layers if ghost_layers is None else int(ghost_layers)
        min_gl = max(self.kernel.ghost_layers, self._needs_upper_ext)
        if gl < min_gl:
            raise ValueError(
                f"kernel {self.name} needs at least {min_gl} ghost layers, got {gl}"
            )
        missing = [f.name for f in self.kernel.fields if f.name not in arrays]
        if missing:
            raise KeyError(f"missing arrays for fields: {missing}")
        spatial = None
        for f in self.kernel.fields:
            a = arrays[f.name]
            s = a.shape[: self.kernel.dim]
            if spatial is None:
                spatial = s
            elif s != spatial:
                raise ValueError(
                    f"inconsistent spatial shapes: {f.name} has {s}, expected {spatial}"
                )
            if any(dim_len < 2 * gl + 1 for dim_len in s):
                raise ValueError(f"array {f.name} too small for {gl} ghost layers")
        needed = {p.name for p in self.kernel.parameters} - {"time_step", "seed"}
        for d in self.kernel.coordinate_axes:
            if self.kernel.folded_value(f"dx_{d}") is None:
                needed.add(f"dx_{d}")
        missing_params = needed - set(params)
        if missing_params:
            raise KeyError(f"missing kernel parameters: {sorted(missing_params)}")
        if self.kernel.is_reduction:
            tiles = tuple(int(t) for t in tile_shape) if tile_shape else None
            return self._func(
                arrays, params, tuple(block_offset), tuple(origin), gl, tiles
            )
        if tile_shape is not None:
            raise ValueError(
                f"tile_shape only applies to reduction kernels, not {self.name}"
            )
        if self.kernel.subspace is not None:
            interior = tuple(int(s) - 2 * gl for s in spatial)
            sub = self.kernel.subspace.offsets(interior)
            self._func(arrays, params, tuple(block_offset), tuple(origin), gl, sub)
            return None
        self._func(arrays, params, tuple(block_offset), tuple(origin), gl)
        return None


def compile_numpy_kernel(kernel: Kernel) -> CompiledNumpyKernel:
    """Generate and compile the NumPy implementation of *kernel*."""
    from ..observability.tracing import get_tracer

    with get_tracer().span(
        f"codegen:numpy:{kernel.name}", category="backend"
    ) as span:
        src = generate_numpy_source(kernel)
        import builtins
        import functools

        namespace = dict(RUNTIME_NAMESPACE)
        namespace["numpy"] = np
        namespace["functools"] = functools
        namespace["builtins"] = builtins
        exec(compile(src, f"<numpy kernel {kernel.name}>", "exec"), namespace)
        if span is not None:
            span.args["source_lines"] = src.count("\n")
        return CompiledNumpyKernel(kernel, src, namespace["_kernel"])


def generate_numpy_source(kernel: Kernel) -> str:
    """Produce the Python source of the vectorized kernel."""
    ac = kernel.ac
    dim = kernel.dim

    # group main assignments by write region (flux kernels have per-axis regions)
    groups: dict[tuple, list[Assignment]] = {}
    for a in ac.main_assignments:
        groups.setdefault(_region_of(a, dim), []).append(a)

    param_names = sorted(p.name for p in kernel.parameters)
    body: list[str] = []
    body.append(f"# generated NumPy kernel: {kernel.name}")
    if kernel.is_reduction:
        body.append(
            "def _kernel(__arrays, __params, __block_offset, __origin, __gl,"
            " __tiles=None):"
        )
    elif kernel.subspace is not None:
        body.append(
            "def _kernel(__arrays, __params, __block_offset, __origin, __gl,"
            " __sub):"
        )
    else:
        body.append(
            "def _kernel(__arrays, __params, __block_offset, __origin, __gl):"
        )
    ind = "    "
    ref_field = sorted(ac.fields, key=lambda f: f.name)[0]
    body.append(ind + f"__shape = __arrays[{ref_field.name!r}].shape")
    for p in param_names:
        if p in ("time_step", "seed"):
            body.append(ind + f"{p} = __params.get({p!r}, 0)")
        else:
            body.append(ind + f"{p} = __params[{p!r}]")

    if kernel.is_reduction:
        body.extend(_emit_reduction_block(kernel, ind))
        return "\n".join(body) + "\n"

    for gid, (region, assignments) in enumerate(sorted(groups.items())):
        body.extend(
            _emit_region_block(kernel, region, assignments, gid, ind)
        )
    body.append(ind + "return None")
    return "\n".join(body) + "\n"


def _needed_subexpressions(
    ac: AssignmentCollection, targets: list[Assignment]
) -> list[Assignment]:
    """Subset of subexpressions (in order) feeding the given main assignments."""
    needed: set[sp.Symbol] = set()
    for a in targets:
        needed |= a.rhs.free_symbols
    chosen: list[Assignment] = []
    for a in reversed(ac.subexpressions):
        if a.lhs in needed:
            chosen.append(a)
            needed |= a.rhs.free_symbols
    return list(reversed(chosen))


def _emit_bindings(
    kernel: Kernel,
    region: tuple[tuple[int, int], ...],
    assignments: list[Assignment],
    gid: int,
    ind: str,
):
    """Emit field-read/coordinate/RNG/subexpression bindings for a region.

    Returns ``(lines, pr, region_shape)`` where ``pr`` prints an expression
    with all renames applied and ``region_shape`` is the source string of
    the region's spatial shape tuple.
    """
    ac = kernel.ac
    dim = kernel.dim
    restricted = kernel.subspace is not None

    def sub_axis(d: int) -> int | None:
        return d if restricted else None

    def sub_lo(d: int) -> str:
        return f" + __sub[{d}][0]" if restricted else ""

    def sub_extent(d: int) -> str:
        return f" + __sub[{d}][1] - __sub[{d}][0]" if restricted else ""

    sub = _needed_subexpressions(ac, assignments)
    exprs = [a.rhs for a in sub + assignments]

    # gather atoms
    reads: set[FieldAccess] = set()
    coords: set[CoordinateSymbol] = set()
    rngs: set[RandomValue] = set()
    for e in exprs:
        reads |= e.atoms(FieldAccess)
        coords |= e.atoms(CoordinateSymbol)
        rngs |= e.atoms(RandomValue)

    suffix = f"__r{gid}"
    rename: dict[str, str] = {}
    lines: list[str] = [ind + f"# region {region}"]

    # field read bindings
    for acc in sorted(reads, key=lambda a: a.name):
        slices = ", ".join(
            _slice_str(acc.offsets[d], region[d][0], region[d][1], sub_axis(d))
            for d in range(dim)
        )
        idx = "".join(f", {i}" for i in acc.index)
        rename[acc.name] = acc.name + suffix
        lines.append(
            ind + f"{acc.name}{suffix} = __arrays[{acc.field.name!r}][{slices}{idx}]"
        )

    # coordinate bindings (cell-centre positions over this region)
    for c in sorted(coords, key=lambda s: s.axis):
        d = c.axis
        lo, hi = region[d]
        n_expr = f"__shape[{d}] - 2 * __gl + {lo + hi}" + sub_extent(d)
        reshape = ", ".join("-1" if dd == d else "1" for dd in range(dim))
        folded = kernel.folded_value(f"dx_{d}")
        h_expr = repr(float(folded)) if folded is not None else f"__params['dx_{d}']"
        rename[c.name] = c.name + suffix
        lines.append(
            ind
            + f"{c.name}{suffix} = (__origin[{d}] + (np.arange({n_expr}) "
            + f"+ __block_offset[{d}] - {lo}{sub_lo(d)} + 0.5) * {h_expr})"
            + (f".reshape({reshape})" if dim > 1 else "")
        )

    # RNG bindings
    rng_map: dict[RandomValue, sp.Symbol] = {}
    printer0 = _Printer(rename)
    region_shape = (
        "("
        + ", ".join(
            f"__shape[{d}] - 2 * __gl + {region[d][0] + region[d][1]}"
            + sub_extent(d)
            for d in range(dim)
        )
        + ("," if dim == 1 else "")
        + ")"
    )
    region_offset = (
        "("
        + ", ".join(
            f"__block_offset[{d}] - {region[d][0]}" + sub_lo(d)
            for d in range(dim)
        )
        + ("," if dim == 1 else "")
        + ")"
    )
    for r in sorted(rngs, key=lambda r: r.stream):
        sym = sp.Symbol(f"__rng_{r.stream}{suffix}", real=True)
        rng_map[r] = sym
        low = printer0.doprint(r.low)
        high = printer0.doprint(r.high)
        ts = "__params.get('time_step', 0)"
        seed = "__params.get('seed', 0)"
        lines.append(
            ind
            + f"{sym.name} = _rng_uniform({region_shape}, {ts}, {seed}, "
            + f"{r.stream}, {region_offset}, {low}, {high})"
        )

    printer = _Printer(rename)

    def pr(expr: sp.Expr) -> str:
        if rng_map:
            expr = expr.xreplace(rng_map)
        return printer.doprint(expr)

    # subexpressions
    for a in sub:
        rename[a.lhs.name] = a.lhs.name + suffix
        lines.append(ind + f"{a.lhs.name}{suffix} = {pr(a.rhs)}")

    return lines, pr, region_shape


def _emit_region_block(
    kernel: Kernel,
    region: tuple[tuple[int, int], ...],
    assignments: list[Assignment],
    gid: int,
    ind: str,
) -> list[str]:
    dim = kernel.dim
    restricted = kernel.subspace is not None
    lines, pr, _ = _emit_bindings(kernel, region, assignments, gid, ind)

    # main stores
    for a in assignments:
        lhs: FieldAccess = a.lhs
        slices = ", ".join(
            _slice_str(
                lhs.offsets[d], region[d][0], region[d][1],
                d if restricted else None,
            )
            for d in range(dim)
        )
        idx = "".join(f", {i}" for i in lhs.index)
        lines.append(
            ind + f"__arrays[{lhs.field.name!r}][{slices}{idx}] = {pr(a.rhs)}"
        )
    return lines


def _emit_reduction_block(kernel: Kernel, ind: str) -> list[str]:
    """Emit the body of a sum-reduction kernel (interior region only).

    Each reduction output's density expression is evaluated vectorized over
    the interior, broadcast to the full region shape (constants reduce to
    NumPy scalars otherwise) and summed via ``_tile_sum`` so the operation
    order is the fixed block-tiled tree documented in
    :func:`repro.backends.runtime.tile_sum`.
    """
    region = ((0, 0),) * kernel.dim
    outputs = kernel.ac.reduction_outputs
    lines, pr, region_shape = _emit_bindings(kernel, region, outputs, 0, ind)
    lines.append(ind + "__out = {}")
    for a in outputs:
        lines.append(
            ind
            + f"__out[{a.lhs.name!r}] = _tile_sum(numpy.broadcast_to("
            + f"numpy.asarray({pr(a.rhs)}, dtype=numpy.float64), "
            + f"{region_shape}), __tiles)"
        )
    lines.append(ind + "return __out")
    return lines
