"""CUDA backend: emits complete CUDA C sources (paper §3.5).

The backend "strips away loop nodes of the intermediate representation and
replaces loop counters by index expressions using CUDA's special variables".
Several thread-to-cell mapping strategies are implemented and fully
separated from the stencil code, so they can be exchanged (and auto-tuned):

* ``linear3d`` — one thread per cell, 3D block/grid decomposition,
* ``z_loop``  — one thread per (x, y) column looping over the outermost
  axis (good for kernels with hoistable per-plane expressions).

Approximate operations use ``__fdividef``/``__frsqrt_rn`` intrinsics as in
the paper.  Without a CUDA toolchain the sources cannot be executed here;
they are validated structurally and kept byte-stable for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import sympy as sp

from ..ir.kernel import Kernel
from ..symbolic.assignment import Assignment
from ..symbolic.coordinates import CoordinateSymbol
from ..symbolic.field import FieldAccess
from ..symbolic.random import RandomValue
from .c_backend import _CPrinter, _flat_index
from .numpy_backend import _needed_subexpressions, _region_of

__all__ = ["generate_cuda_source", "MAPPINGS", "CudaKernelSource"]

MAPPINGS = ("linear3d", "z_loop")

_CUDA_PREAMBLE = r"""
#include <stdint.h>

#ifndef M_PI
#define M_PI 3.14159265358979323846
#endif

__device__ __forceinline__ uint32_t _mulhilo(uint32_t a, uint32_t b, uint32_t *lo) {
    uint64_t p = (uint64_t)a * (uint64_t)b;
    *lo = (uint32_t)p;
    return (uint32_t)(p >> 32);
}

__device__ __forceinline__ double _philox_uniform(
    int64_t g0, int64_t g1, int64_t g2, uint32_t c3,
    uint32_t k0, uint32_t k1, int lane, double low, double high)
{
    uint32_t x0 = (uint32_t)(g0 & 0xFFFFFFFF);
    uint32_t x1 = (uint32_t)(g1 & 0xFFFFFFFF);
    uint32_t x2 = (uint32_t)(g2 & 0xFFFFFFFF);
    uint32_t x3 = c3;
    #pragma unroll
    for (int r = 0; r < 10; ++r) {
        uint32_t lo0, lo1;
        uint32_t hi0 = _mulhilo(0xD2511F53u, x0, &lo0);
        uint32_t hi1 = _mulhilo(0xCD9E8D57u, x2, &lo1);
        uint32_t y0 = hi1 ^ x1 ^ k0;
        uint32_t y1 = lo1;
        uint32_t y2 = hi0 ^ x3 ^ k1;
        uint32_t y3 = lo0;
        x0 = y0; x1 = y1; x2 = y2; x3 = y3;
        k0 += 0x9E3779B9u; k1 += 0xBB67AE85u;
    }
    double u = (lane == 0)
        ? ((double)x0 * 0x1p-32 + (double)x1) * 0x1p-32
        : ((double)x2 * 0x1p-32 + (double)x3) * 0x1p-32;
    return low + (high - low) * u;
}

__device__ __forceinline__ double _fast_div(double a, double b) {
    return (double)__fdividef((float)a, (float)b);
}
__device__ __forceinline__ double _fast_sqrt(double x) {
    return (double)__fsqrt_rn((float)x);
}
__device__ __forceinline__ double _fast_rsqrt(double x) {
    return (double)__frsqrt_rn((float)x);
}
"""


@dataclass
class CudaKernelSource:
    """Generated CUDA translation unit plus launch metadata."""

    kernel: Kernel
    source: str
    mapping: str
    block_dim: tuple[int, int, int]

    def launch_bounds(self, interior: tuple[int, ...]) -> tuple[tuple, tuple]:
        """(grid, block) dimensions for a given interior size."""
        bx, by, bz = self.block_dim
        if self.mapping == "linear3d":
            dims = list(interior) + [1, 1, 1]
            grid = (
                -(-dims[2] // bx) if len(interior) > 2 else 1,
                -(-dims[1] // by),
                -(-dims[0] // bz),
            )
            return grid, (bx, by, bz)
        # z_loop: threads cover the two inner axes only
        grid = (-(-interior[-1] // bx), -(-interior[-2] // by), 1)
        return grid, (bx, by, 1)


def generate_cuda_source(
    kernel: Kernel,
    mapping: str = "linear3d",
    block_dim: tuple[int, int, int] = (64, 4, 1),
    order: list[Assignment] | None = None,
    fence_positions: tuple[int, ...] = (),
) -> CudaKernelSource:
    """Emit the CUDA C translation unit for *kernel*.

    ``order`` allows passing a rescheduled/rematerialized statement list
    (from :mod:`repro.gpu`); ``fence_positions`` inserts
    ``__threadfence_block()`` statements at the given statement indices.
    """
    if mapping not in MAPPINGS:
        raise ValueError(f"unknown thread mapping {mapping!r}; choose from {MAPPINGS}")
    ac = kernel.ac
    dim = kernel.dim
    func_name = f"kernel_{kernel.name}"

    groups: dict[tuple, list[Assignment]] = {}
    for a in ac.main_assignments:
        groups.setdefault(_region_of(a, dim), []).append(a)
    if len(groups) > 1 and mapping == "z_loop":
        raise ValueError("z_loop mapping does not support multi-region (flux) kernels")

    lines: list[str] = [f"/* generated CUDA kernel: {kernel.name} ({mapping}) */"]
    lines.append(_CUDA_PREAMBLE)

    args = [f"double * __restrict__ f_{f.name}" for f in kernel.fields]
    args += [f"const int64_t n{d}" for d in range(dim)]
    args.append("const int64_t gl")
    args += [f"const int64_t off{d}" for d in range(dim)]
    args += [f"const double origin{d}" for d in range(dim)]
    args += [f"const double h{d}" for d in range(dim)]
    for p in kernel.parameters:
        if p.name in ("time_step", "seed"):
            continue
        args.append(f"const double p_{p.name}")
    args += ["const int64_t time_step", "const int64_t seed"]

    lines.append(f'extern "C" __global__ void {func_name}(')
    lines.append("    " + ",\n    ".join(args) + ")")
    lines.append("{")

    for f in kernel.fields:
        idx_sz = int(np.prod(f.index_shape)) if f.index_shape else 1
        for d in range(dim):
            inner = " * ".join(
                [f"(n{dd} + 2*gl)" for dd in range(d + 1, dim)] + [str(idx_sz)]
            )
            lines.append(f"    const int64_t s_{f.name}_{d} = {inner};")
    lines.append("")

    # thread-to-cell mapping: fully separated from the stencil body
    axes = list(range(dim))
    cuda_dims = ["x", "y", "z"]
    if mapping == "linear3d":
        for k, axis in enumerate(reversed(axes)):  # inner axis -> threadIdx.x
            c = cuda_dims[k]
            lines.append(
                f"    const int64_t i{axis} = (int64_t)blockIdx.{c} * blockDim.{c} + threadIdx.{c};"
            )
    else:  # z_loop
        for k, axis in enumerate(reversed(axes[1:])):
            c = cuda_dims[k]
            lines.append(
                f"    const int64_t i{axis} = (int64_t)blockIdx.{c} * blockDim.{c} + threadIdx.{c};"
            )

    h_expr = {}
    for d in range(dim):
        folded = kernel.folded_value(f"dx_{d}")
        h_expr[d] = repr(float(folded)) if folded is not None else f"h{d}"

    for region, assignments in sorted(groups.items()):
        lines.extend(
            _emit_cuda_body(
                kernel, region, assignments, h_expr, dim, mapping,
                order=order, fence_positions=fence_positions,
            )
        )
    lines.append("}")
    return CudaKernelSource(
        kernel=kernel,
        source="\n".join(lines) + "\n",
        mapping=mapping,
        block_dim=block_dim,
    )


def _emit_cuda_body(
    kernel, region, assignments, h_expr, dim, mapping, order, fence_positions
) -> list[str]:
    ac = kernel.ac

    if order is None:
        sub = _needed_subexpressions(ac, assignments)
        stmts = sub + assignments
    else:
        # external schedule: filter to this region's statements
        wanted = set()
        for a in assignments:
            wanted.add(a.lhs)
        stmts = [
            a
            for a in order
            if not a.is_field_store or a.lhs in wanted
        ]

    def access_str(acc: FieldAccess) -> str:
        parts = []
        for d in range(dim):
            o = int(acc.offsets[d])
            parts.append(f"(i{d} + gl + {o}) * s_{acc.field.name}_{d}")
        flat = _flat_index(acc.index, acc.field.index_shape) if acc.index else 0
        idx = " + ".join(parts + ([str(flat)] if flat else []))
        return f"f_{acc.field.name}[{idx}]"

    def rng_str(r: RandomValue) -> str:
        lo = [region[d][0] for d in range(dim)]
        g = [f"i{d} + off{d} - {lo[d]}" for d in range(dim)]
        while len(g) < 3:
            g.append("0")
        printer0 = _CPrinter(access_str, lambda r_: "0")
        return (
            f"_philox_uniform({g[0]}, {g[1]}, {g[2]}, {r.stream // 2}u, "
            f"(uint32_t)(time_step & 0xFFFFFFFF), (uint32_t)(seed & 0xFFFFFFFF), "
            f"{r.stream % 2}, {printer0.doprint(r.low)}, {printer0.doprint(r.high)})"
        )

    printer = _CPrinter(access_str, rng_str)

    param_names = {p.name for p in kernel.parameters} - {"time_step", "seed"}
    rename = {n: sp.Symbol(f"p_{n}", real=True) for n in param_names}

    def fix(e: sp.Expr) -> sp.Expr:
        mapping_ = {
            s: rename[s.name]
            for s in e.free_symbols
            if not isinstance(s, (FieldAccess, CoordinateSymbol)) and s.name in rename
        }
        return e.xreplace(mapping_) if mapping_ else e

    out = [f"    /* region {region} */"]
    def bound(a: int) -> str:
        ext = region[a][0] + region[a][1]
        return f"n{a} + {ext}" if ext else f"n{a}"

    guard_axes = range(1, dim) if mapping == "z_loop" else range(dim)
    guards = " || ".join(f"i{a} >= {bound(a)}" for a in guard_axes)
    if guards:
        out.append(f"    if ({guards}) return;")

    body_pad = "    "
    if mapping == "z_loop":
        out.append(f"    for (int64_t i0 = 0; i0 < {bound(0)}; ++i0) {{")
        body_pad = "        "

    coords_needed = {
        c.axis for a in stmts for c in a.rhs.atoms(CoordinateSymbol)
    }
    for axis in sorted(coords_needed):
        lo = region[axis][0]
        out.append(
            f"{body_pad}const double x_{axis} = origin{axis} + "
            f"(double)(i{axis} + off{axis} - {lo}) * {h_expr[axis]} + 0.5 * {h_expr[axis]};"
        )

    fence_set = set(fence_positions)
    for i, a in enumerate(stmts):
        if i in fence_set:
            out.append(f"{body_pad}__threadfence_block();")
        rhs = printer.doprint(fix(a.rhs))
        if a.is_field_store:
            out.append(f"{body_pad}{access_str(a.lhs)} = {rhs};")
        else:
            out.append(f"{body_pad}const double {a.lhs.name} = {rhs};")

    if mapping == "z_loop":
        out.append("    }")
    return out
