"""Code generation backends: NumPy (execution), C (compiled), CUDA (source)."""

from .numpy_backend import CompiledNumpyKernel, compile_numpy_kernel, create_arrays

__all__ = [
    "CompiledNumpyKernel",
    "compile_numpy_kernel",
    "create_arrays",
]
