"""Explicit time integration: PDE systems → stencil assignment collections.

Implements the explicit Euler scheme used by the paper (§3.3, Algorithm 1):

.. math::  u^{n+1} = u^n + \\Delta t \\cdot \\mathrm{rhs}(u^n) / r(u^n)

producing either a single "full" kernel or, via flux collection, the
"split" variant with a staggered pre-computation kernel.
"""

from __future__ import annotations

import sympy as sp

from ..symbolic.assignment import Assignment, AssignmentCollection
from ..symbolic.coordinates import dt as dt_symbol
from ..symbolic.field import Field, FieldAccess
from ..symbolic.pde import PDESystem
from .finite_differences import FiniteDifferenceDiscretization, FluxCollector
from .staggered import SplitKernels, materialize_fluxes

__all__ = ["discretize_system", "HeunKernels"]


class HeunKernels:
    """The two sweeps of a Heun (explicit trapezoidal, RK2) step.

    Demonstrates the paper's §3.3 extension point: a new time integrator is
    one well-identified code-generation module and automatically inherits
    every later optimization (CSE, hoisting, all backends).

    Step structure (``u`` = source field, ``s`` = stage field, ``d`` = dst):

    1. ``s = u + dt·f(u)``          (the Euler predictor)
    2. ``d = u + dt/2·(f(u) + f(s))``  (trapezoidal corrector)

    Ghost layers of the stage field must be synchronized between sweeps.
    """

    def __init__(self, stage_kernel, corrector_kernel, stage_field: Field):
        self.stage_kernel = stage_kernel
        self.corrector_kernel = corrector_kernel
        self.stage_field = stage_field

    def __iter__(self):
        return iter((self.stage_kernel, self.corrector_kernel))


def _retarget(expr, src_field: Field, new_field: Field):
    """Replace accesses to *src_field* by accesses to *new_field*."""
    from ..symbolic.field import FieldAccess

    mapping = {
        acc: FieldAccess(new_field, acc.offsets, acc.index)
        for acc in expr.atoms(FieldAccess)
        if acc.field == src_field
    }
    return expr.xreplace(mapping) if mapping else expr


def _discretize_heun(
    system: PDESystem,
    dst_field: Field,
    discretizer: FiniteDifferenceDiscretization,
    stage_field_name: str,
) -> HeunKernels:
    from ..symbolic.operators import Transient

    for eq in system.equations:
        if eq.rhs.atoms(Transient):
            raise NotImplementedError(
                "Heun integration of right-hand sides containing Transient "
                "terms (e.g. the anti-trapping current) is not supported"
            )
    src = system.field
    stage = Field(
        stage_field_name,
        spatial_dimensions=src.spatial_dimensions,
        index_shape=src.index_shape,
        dtype=src.dtype,
    )

    stage_assignments = []
    corrector_assignments = []
    for eq in system.equations:
        rhs_src = discretizer(eq.rhs) / discretizer(eq.relaxation)
        rhs_stage = _retarget(rhs_src, src, stage)
        stage_assignments.append(
            Assignment(
                FieldAccess(stage, eq.unknown.offsets, eq.unknown.index),
                eq.unknown + dt_symbol * rhs_src,
            )
        )
        corrector_assignments.append(
            Assignment(
                FieldAccess(dst_field, eq.unknown.offsets, eq.unknown.index),
                eq.unknown + dt_symbol / 2 * (rhs_src + rhs_stage),
            )
        )
    return HeunKernels(
        AssignmentCollection(stage_assignments, name=system.name + "_stage"),
        AssignmentCollection(corrector_assignments, name=system.name + "_corrector"),
        stage,
    )


def discretize_system(
    system: PDESystem,
    dst_field: Field,
    discretizer: FiniteDifferenceDiscretization,
    variant: str = "full",
    scheme: str = "euler",
    flux_field_name: str | None = None,
) -> AssignmentCollection | SplitKernels:
    """Discretize all equations of *system* into update kernel(s).

    Parameters
    ----------
    variant:
        ``"full"`` recomputes staggered fluxes at both faces in one sweep;
        ``"split"`` caches them in a staggered field (two sweeps).
    scheme:
        Time integrator: ``"euler"`` (the application domain's established
        scheme) or ``"heun"`` (explicit trapezoidal RK2 — the paper's §3.3
        outlook delivered: a new scheme is one code-generation module and
        inherits every later optimization).
    """
    if scheme not in ("euler", "heun"):
        raise NotImplementedError(
            f"time integration scheme {scheme!r} not implemented "
            "(available: 'euler', 'heun')"
        )
    if variant not in ("full", "split"):
        raise ValueError("variant must be 'full' or 'split'")

    from ..observability.tracing import get_tracer

    with get_tracer().span(
        f"discretize:{system.name}",
        category="discretization",
        variant=variant,
        scheme=scheme,
        equations=len(system.equations),
    ):
        if scheme == "heun":
            if variant != "full":
                raise NotImplementedError(
                    "Heun integration supports only variant='full'"
                )
            return _discretize_heun(
                system,
                dst_field,
                discretizer,
                flux_field_name or f"{system.name}_stage",
            )
        if dst_field.index_shape != system.field.index_shape:
            raise ValueError(
                f"destination field {dst_field.name} has index shape "
                f"{dst_field.index_shape}, expected {system.field.index_shape}"
            )

        collector = FluxCollector() if variant == "split" else None

        main_assignments: list[Assignment] = []
        for eq in system.equations:
            rhs = discretizer(eq.rhs, collector)
            relax = discretizer(eq.relaxation, collector)
            update = eq.unknown + dt_symbol * rhs / relax
            dst_access = FieldAccess(dst_field, eq.unknown.offsets, eq.unknown.index)
            main_assignments.append(Assignment(dst_access, update))

        ac = AssignmentCollection(main_assignments, name=system.name)
        if variant == "full":
            return ac
        return materialize_fluxes(
            ac,
            collector,
            dim=discretizer.dim,
            flux_field_name=flux_field_name or f"{system.name}_flux",
        )
