"""Discretization layer: finite differences, staggered fluxes, time stepping."""

from .finite_differences import FiniteDifferenceDiscretization, FluxCollector
from .staggered import SplitKernels, materialize_fluxes
from .time_integration import discretize_system

__all__ = [
    "FiniteDifferenceDiscretization",
    "FluxCollector",
    "SplitKernels",
    "materialize_fluxes",
    "discretize_system",
]
