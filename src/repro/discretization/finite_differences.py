"""Automatic finite-difference discretization (paper §3.3).

The discretizer eliminates all continuous operators from an expression tree:

* first derivatives of plain field accesses → central differences,
* ``Diff`` of a *composite* expression (and every :class:`Divergence`
  component) → the staggered *divergence-of-fluxes* scheme: the inner
  expression is evaluated at the left/right face positions ``x ± dx/2`` and
  differenced.  Quantities not naturally available at faces are interpolated
  (Eq. 11 of the paper),
* ``Transient`` on a right-hand side → ``(dst − src)/dt`` using the paired
  destination field (this is why the µ kernel reads both ``φ_src`` and
  ``φ_dst`` with a D3C19 stencil),
* coordinate symbols are shifted by ``dx/2`` at staggered positions.

A :class:`FluxCollector` can be attached to record every staggered flux for
the split-kernel transformation (µ-split / φ-split variants).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

import sympy as sp

from ..symbolic.coordinates import CoordinateSymbol, dt as dt_symbol, spacing
from ..symbolic.field import Field, FieldAccess
from ..symbolic.operators import Diff, Divergence, Transient
from ..symbolic.random import RandomValue

__all__ = ["FiniteDifferenceDiscretization", "FluxCollector", "flux_placeholder"]


def flux_placeholder(slot: int, axis: int, shifted: bool) -> sp.Symbol:
    """Placeholder symbol standing for a staggered flux value.

    ``shifted=False`` → flux at the *lower* face of the current cell along
    ``axis``; ``shifted=True`` → lower face of the ``+axis`` neighbour (i.e.
    the current cell's upper face).  Resolved to real staggered-field
    accesses by :func:`repro.discretization.staggered.materialize_fluxes`.
    """
    return sp.Symbol(f"__flux_{slot}_{axis}_{int(shifted)}", real=True)


@dataclass
class FluxCollector:
    """Records staggered flux expressions during discretization."""

    #: slot → (axis, flux expression at the lower face of the current cell)
    entries: list = dc_field(default_factory=list)
    _index: dict = dc_field(default_factory=dict)

    def register(self, axis: int, lower_face_expr: sp.Expr) -> int:
        key = (axis, lower_face_expr)
        if key in self._index:
            return self._index[key]
        slot = len(self.entries)
        self.entries.append((axis, lower_face_expr))
        self._index[key] = slot
        return slot

    def __len__(self):
        return len(self.entries)


class FiniteDifferenceDiscretization:
    """Transforms expressions with continuous operators into stencil form.

    Parameters
    ----------
    dim:
        Spatial dimensionality of the target kernels.
    dst_map:
        Maps source fields to their destination (next time step) fields —
        needed to resolve ``Transient`` on right-hand sides.
    order:
        Finite-difference order for non-staggered first derivatives
        (2 or 4).  Staggered flux evaluation is always the compact
        second-order scheme, the established best practice in the
        application domain (paper §3.3).
    """

    def __init__(self, dim: int = 3, dst_map: dict[Field, Field] | None = None, order: int = 2):
        if order not in (2, 4):
            raise ValueError("only orders 2 and 4 are implemented")
        self.dim = dim
        self.dst_map = dict(dst_map or {})
        self.order = order

    # -- public API ----------------------------------------------------------

    def __call__(self, expr: sp.Expr, flux_collector: FluxCollector | None = None) -> sp.Expr:
        expr = self._replace_transients(sp.sympify(expr))
        return self._discretize(expr, flux_collector)

    # -- transient handling --------------------------------------------------

    def _replace_transients(self, expr: sp.Expr) -> sp.Expr:
        transients = expr.atoms(Transient)
        if not transients:
            return expr
        mapping = {}
        for tr in transients:
            src = tr.arg
            dst_field = self.dst_map.get(src.field)
            if dst_field is None:
                raise ValueError(
                    f"Transient({src}) on a right-hand side requires a "
                    f"destination field for {src.field.name} in dst_map"
                )
            dst = FieldAccess(dst_field, src.offsets, src.index)
            mapping[tr] = (dst - src) / dt_symbol
        return expr.xreplace(mapping)

    # -- core recursion --------------------------------------------------------

    def _discretize(self, expr: sp.Expr, fc: FluxCollector | None) -> sp.Expr:
        if isinstance(expr, Divergence):
            return sp.Add(
                *[
                    self._staggered_difference(f, i, fc)
                    for i, f in enumerate(expr.flux)
                ]
            )
        if isinstance(expr, Diff):
            arg, axis = expr.arg, expr.axis
            if isinstance(arg, FieldAccess):
                return self._central_difference(arg, axis)
            if isinstance(arg, CoordinateSymbol):
                return sp.Integer(1) if arg.axis == axis else sp.S.Zero
            if not _depends_on_space(arg):
                return sp.S.Zero
            return self._staggered_difference(arg, axis, fc)
        if isinstance(expr, Transient):
            raise RuntimeError("unresolved Transient — should have been replaced")
        if not expr.args or isinstance(expr, (FieldAccess, RandomValue)):
            return expr
        return expr.func(*[self._discretize(a, fc) for a in expr.args])

    # -- schemes ---------------------------------------------------------------

    def _central_difference(self, access: FieldAccess, axis: int) -> sp.Expr:
        h = spacing(axis)
        if self.order == 2:
            return (access.shifted(axis, 1) - access.shifted(axis, -1)) / (2 * h)
        return (
            -access.shifted(axis, 2)
            + 8 * access.shifted(axis, 1)
            - 8 * access.shifted(axis, -1)
            + access.shifted(axis, -2)
        ) / (12 * h)

    def _staggered_difference(self, flux: sp.Expr, axis: int, fc: FluxCollector | None) -> sp.Expr:
        """(flux(x + dx/2) − flux(x − dx/2)) / dx with optional flux caching."""
        h = spacing(axis)
        if fc is not None:
            lower = self.staggered_value(flux, axis, -1)
            slot = fc.register(axis, lower)
            upper_ph = flux_placeholder(slot, axis, shifted=True)
            lower_ph = flux_placeholder(slot, axis, shifted=False)
            return (upper_ph - lower_ph) / h
        upper = self.staggered_value(flux, axis, +1)
        lower = self.staggered_value(flux, axis, -1)
        return (upper - lower) / h

    def staggered_value(self, expr: sp.Expr, axis: int, sign: int) -> sp.Expr:
        """Evaluate *expr* at the face position ``x + sign*dx_axis/2``.

        Implements the interpolation rules of Eq. 11: plain accesses are
        averaged onto the face, same-axis first derivatives become compact
        two-point differences, transverse derivatives are the mean of the two
        adjacent central differences, coordinates are shifted by half a cell.
        """
        assert sign in (+1, -1)

        def rec(e: sp.Expr) -> sp.Expr:
            if isinstance(e, FieldAccess):
                return (e + e.shifted(axis, sign)) / 2
            if isinstance(e, CoordinateSymbol):
                if e.axis == axis:
                    return e + sp.Rational(sign, 2) * spacing(axis)
                return e
            if isinstance(e, Diff):
                a = e.arg
                if isinstance(a, FieldAccess):
                    if e.axis == axis:
                        hi = a.shifted(axis, max(sign, 0))
                        lo = a.shifted(axis, min(sign, 0))
                        return (hi - lo) / spacing(axis)
                    here = self._central_difference(a, e.axis)
                    there = self._central_difference(a.shifted(axis, sign), e.axis)
                    return (here + there) / 2
                raise NotImplementedError(
                    "derivatives deeper than second order are not supported "
                    f"by the staggered scheme: {e}"
                )
            if isinstance(e, Divergence):
                raise NotImplementedError("nested divergences are not supported")
            if not e.args or isinstance(e, RandomValue):
                return e
            return e.func(*[rec(a) for a in e.args])

        return rec(sp.sympify(expr))


def _depends_on_space(expr: sp.Expr) -> bool:
    return bool(expr.atoms(FieldAccess, CoordinateSymbol))
