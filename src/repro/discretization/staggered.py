"""Split-kernel generation: caching staggered fluxes in a temporary field.

The paper's "µ-split"/"φ-split" kernel variants avoid computing every flux
twice (the left face value of a cell is the right face value of its left
neighbour) by a first sweep writing all lower-face fluxes into a staggered
temporary field, followed by the main sweep that only differences them.
This trades FLOPs for memory traffic; which variant wins is machine- and
model-dependent (Fig. 2) and is decided by the ECM model.
"""

from __future__ import annotations

import re

import sympy as sp

from ..symbolic.assignment import Assignment, AssignmentCollection
from ..symbolic.field import Field, FieldAccess
from .finite_differences import FluxCollector

__all__ = ["materialize_fluxes", "SplitKernels"]

_PLACEHOLDER_RE = re.compile(r"__flux_(\d+)_(\d+)_(\d+)")


class SplitKernels:
    """Result of a split: the flux pre-computation and the main kernel."""

    def __init__(
        self,
        flux_kernel: AssignmentCollection,
        main_kernel: AssignmentCollection,
        flux_field: Field,
    ):
        self.flux_kernel = flux_kernel
        self.main_kernel = main_kernel
        self.flux_field = flux_field

    def __iter__(self):
        return iter((self.flux_kernel, self.main_kernel))


def materialize_fluxes(
    main: AssignmentCollection,
    collector: FluxCollector,
    dim: int,
    flux_field_name: str = "flux",
) -> SplitKernels:
    """Turn flux placeholders into a staggered field + pre-computation kernel.

    The staggered field stores, at cell ``x`` and slot ``s``, the flux value
    on the *lower* face of ``x`` along the slot's axis.  The main kernel then
    reads ``flux[x]`` and ``flux[x + e_axis]``.
    """
    n_slots = len(collector)
    if n_slots == 0:
        raise ValueError("no fluxes were collected — nothing to split")
    flux_field = Field(
        flux_field_name,
        spatial_dimensions=dim,
        index_shape=(n_slots,),
        staggered=True,
        slot_axes=tuple(axis for axis, _ in collector.entries),
    )

    flux_assignments = [
        Assignment(flux_field.center(slot), expr)
        for slot, (axis, expr) in enumerate(collector.entries)
    ]
    flux_kernel = AssignmentCollection(
        flux_assignments, name=main.name + "_flux"
    )

    slot_axis = {slot: axis for slot, (axis, _) in enumerate(collector.entries)}

    def resolve(symbol: sp.Symbol):
        m = _PLACEHOLDER_RE.fullmatch(symbol.name)
        if not m:
            return None
        slot, axis, shifted = (int(g) for g in m.groups())
        assert slot_axis[slot] == axis, "placeholder axis mismatch"
        acc = flux_field.center(slot)
        return acc.shifted(axis, 1) if shifted else acc

    def replace_placeholders(expr: sp.Expr) -> sp.Expr:
        mapping = {}
        for s in expr.free_symbols:
            if isinstance(s, sp.Symbol) and not isinstance(s, FieldAccess):
                acc = resolve(s)
                if acc is not None:
                    mapping[s] = acc
        return expr.xreplace(mapping) if mapping else expr

    main_kernel = main.transform_rhs(replace_placeholders)
    main_kernel.name = main.name + "_main"
    return SplitKernels(flux_kernel, main_kernel, flux_field)
