"""GPU execution model: register allocation, occupancy, runtime (P100).

Combines the analyses of this package into the performance picture of
Fig. 2 (right) and §6.2:

* the *analysis* register count is twice the peak number of live doubles,
* the *allocated* count adds nvcc's load-hoisting inflation, bounded by
  thread fences,
* above 255 registers per thread the kernel spills (huge penalty; removing
  spills gave the paper +50 %),
* occupancy is limited by the register file; halving register demand below
  128 doubles occupancy and — in the latency-limited regime — performance.

The absolute throughput model is a simple occupancy-scaled roofline on the
published Tesla P100 specifications (§6.2 reports 55–65 % DP utilization,
hindered by latency and low occupancy — exactly this regime).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from ..ir.kernel import Kernel
from ..symbolic.assignment import Assignment
from ..symbolic.field import FieldAccess
from .fences import FencePlan
from .liveness import analyze_liveness

__all__ = ["GPUSpec", "TESLA_P100", "RegisterEstimate", "estimate_registers", "GPUKernelModel"]


@dataclass(frozen=True)
class GPUSpec:
    """Published specification of one GPU."""

    name: str
    sms: int
    registers_per_sm: int          # 32-bit registers
    max_threads_per_sm: int
    max_registers_per_thread: int
    threads_per_block: int
    dp_gflops: float               # peak double precision
    mem_bandwidth_gbs: float       # achievable HBM bandwidth
    latency_hiding_occupancy: float = 0.30  # occupancy giving full speed
    base_registers: int = 24       # indices, pointers, constants
    #: nvcc load-hoisting aggressiveness on arbitrary statement orders…
    reorder_inflation: float = 0.5
    #: …and on orders presented by the register-minimizing scheduler ("we
    #: assume that some of this order is preserved in the internal
    #: representation of the nvcc compiler", §3.5)
    reorder_inflation_scheduled: float = 0.15
    spill_penalty_bytes_per_reg: float = 1.5


TESLA_P100 = GPUSpec(
    name="NVIDIA Tesla P100",
    sms=56,
    registers_per_sm=65536,
    max_threads_per_sm=2048,
    max_registers_per_thread=255,
    threads_per_block=256,
    dp_gflops=4700.0,
    mem_bandwidth_gbs=550.0,
)


@dataclass
class RegisterEstimate:
    """Register pressure of one scheduled/fenced kernel body."""

    analysis_registers: int      # 2 x max live doubles (the paper's "analysis")
    allocated_registers: int     # modeled nvcc allocation (capped at 255)
    demand_registers: int        # uncapped demand
    spilled_registers: int
    max_live: int

    @property
    def spills(self) -> bool:
        return self.spilled_registers > 0


def estimate_registers(
    order: list[Assignment],
    fence_plan: FencePlan | None = None,
    spec: GPUSpec = TESLA_P100,
    scheduled: bool = False,
) -> RegisterEstimate:
    """Model the nvcc register allocation for an ordered kernel body.

    Within each fence window, nvcc keeps a fraction of the window's distinct
    loads in flight in addition to the genuinely live temporaries; the
    fraction is much smaller when the statements were explicitly scheduled
    (nvcc preserves the presented order instead of hoisting).
    """
    live = analyze_liveness(order)
    fence_plan = fence_plan or FencePlan(len(order), ())
    inflation = (
        spec.reorder_inflation_scheduled if scheduled else spec.reorder_inflation
    )

    demand = 0
    for a, b in fence_plan.windows or [(0, len(order))]:
        window_peak = max(live.live_at[a:b], default=0)
        loads = set()
        for stmt in order[a:b]:
            loads |= {
                s for s in stmt.rhs.free_symbols if isinstance(s, FieldAccess)
            }
        window_demand = spec.base_registers + 2 * window_peak + int(
            2 * inflation * len(loads)
        )
        demand = max(demand, window_demand)

    # very large statement counts reduce nvcc's reordering effort (paper):
    # no extra modeling needed — the fences already bound the windows.
    allocated = min(demand, spec.max_registers_per_thread)
    spilled = max(0, demand - spec.max_registers_per_thread)
    return RegisterEstimate(
        analysis_registers=2 * live.max_live,
        allocated_registers=allocated,
        demand_registers=demand,
        spilled_registers=spilled,
        max_live=live.max_live,
    )


@dataclass
class GPUKernelModel:
    """Occupancy-scaled roofline runtime model for one kernel."""

    kernel: Kernel
    registers: RegisterEstimate
    spec: GPUSpec = dc_field(default_factory=lambda: TESLA_P100)

    @property
    def occupancy(self) -> float:
        regs = max(self.registers.allocated_registers, 32)
        threads_by_regs = self.spec.registers_per_sm / regs
        resident = min(self.spec.max_threads_per_sm, threads_by_regs)
        return resident / self.spec.max_threads_per_sm

    @property
    def efficiency(self) -> float:
        """Latency-hiding efficiency: linear in occupancy up to the knee."""
        return min(1.0, self.occupancy / self.spec.latency_hiding_occupancy)

    def time_per_lup_ns(self, bytes_per_lup: float | None = None) -> float:
        oc = self.kernel.operation_count()
        flops = oc.total_flops  # GPU: every op ~1 (dedicated SFU paths)
        if bytes_per_lup is None:
            bytes_per_lup = 8.0 * (oc.loads * 0.45 + 2 * oc.stores)  # cache reuse
        if self.registers.spills:
            bytes_per_lup += (
                self.registers.spilled_registers * self.spec.spill_penalty_bytes_per_reg
            )
        t_comp = flops / (self.spec.dp_gflops * self.efficiency)         # ns
        t_mem = bytes_per_lup / (self.spec.mem_bandwidth_gbs * self.efficiency)
        return max(t_comp, t_mem)

    def mlups(self, bytes_per_lup: float | None = None) -> float:
        return 1e3 / self.time_per_lup_ns(bytes_per_lup)

    def runtime_ms(self, cells: int, bytes_per_lup: float | None = None) -> float:
        return self.time_per_lup_ns(bytes_per_lup) * cells * 1e-6
