"""Register-minimizing statement scheduling (paper §3.5).

Adapts the optimal DAG scheduling of Kessler [34] ("Scheduling expression
DAGs for minimal register need", 1998): a breadth-first search over partial
schedules, deduplicating states that have the same path forward.  The exact
algorithm is infeasible beyond ~50 nodes; since our kernels contain
thousands, the search keeps only a fixed number of the best partial
schedules per step — a tunable *beam* between a greedy search (width 1) and
the full breadth-first search (the paper found no consistent improvement
beyond width ≈ 20).
"""

from __future__ import annotations

from dataclasses import dataclass

import sympy as sp

from ..symbolic.assignment import Assignment
from ..symbolic.field import FieldAccess
from .liveness import analyze_liveness

__all__ = ["schedule_for_registers", "dfs_schedule", "dependency_graph", "ScheduleResult"]


def dependency_graph(order: list[Assignment]) -> tuple[dict, dict]:
    """Def-use edges among assignments (by index), stores kept in order.

    Returns ``(preds, succs)`` index adjacency maps.  Field stores receive
    an ordering chain among themselves so that scheduling never reorders
    memory writes.
    """
    temps = {a.lhs: i for i, a in enumerate(order) if not a.is_field_store}
    preds: dict[int, set[int]] = {i: set() for i in range(len(order))}
    succs: dict[int, set[int]] = {i: set() for i in range(len(order))}
    for i, a in enumerate(order):
        for s in a.rhs.free_symbols:
            if not isinstance(s, FieldAccess) and s in temps:
                j = temps[s]
                if j != i:
                    preds[i].add(j)
                    succs[j].add(i)
    # serialize stores
    stores = [i for i, a in enumerate(order) if a.is_field_store]
    for a, b in zip(stores, stores[1:]):
        preds[b].add(a)
        succs[a].add(b)
    return preds, succs


@dataclass
class ScheduleResult:
    order: list[Assignment]
    max_live: int
    beam_width: int
    states_explored: int


@dataclass
class _State:
    scheduled: tuple[int, ...]
    scheduled_set: frozenset
    live: frozenset
    peak: int


def dfs_schedule(order: list[Assignment]) -> list[Assignment]:
    """Depth-first schedule with Sethi-Ullman subtree ordering.

    Each store's expression DAG is emitted in post-order, expanding the
    operand with the *largest* register need first (the classic
    Sethi-Ullman rule, generalized to the shared DAG with a memoized need
    estimate).  This clusters subtrees and keeps live ranges short — a
    strong starting point that the beam search then refines.
    """
    temps = {a.lhs: i for i, a in enumerate(order) if not a.is_field_store}

    def deps_of(i: int) -> list[int]:
        return sorted(
            {
                temps[s]
                for s in order[i].rhs.free_symbols
                if not isinstance(s, FieldAccess) and s in temps
            }
        )

    # memoized register-need estimate (iterative post-order)
    need: dict[int, int] = {}
    for root in range(len(order)):
        stack = [(root, False)]
        while stack:
            i, expanded = stack.pop()
            if i in need:
                continue
            deps = deps_of(i)
            if expanded or not deps:
                ns = sorted((need[j] for j in deps), reverse=True)
                need[i] = max([n + k for k, n in enumerate(ns)] or [1])
                continue
            stack.append((i, True))
            stack.extend((j, False) for j in deps if j not in need)

    emitted: set[int] = set()
    result: list[Assignment] = []

    def emit(root: int) -> None:
        stack = [(root, False)]
        while stack:
            i, expanded = stack.pop()
            if i in emitted:
                continue
            if expanded:
                emitted.add(i)
                result.append(order[i])
                continue
            stack.append((i, True))
            deps = sorted(deps_of(i), key=lambda j: -need[j])
            for j in reversed(deps):
                if j not in emitted:
                    stack.append((j, False))

    for i, a in enumerate(order):
        if a.is_field_store:
            emit(i)
    for i in range(len(order)):  # defensive: unreachable statements
        if i not in emitted:
            emit(i)
    return result


def schedule_for_registers(
    order: list[Assignment], beam_width: int = 8
) -> ScheduleResult:
    """Reorder assignments to minimize the peak number of live temporaries.

    A beam search over topological orders: at every step each kept state is
    extended by every ready statement; states are ranked by (peak live,
    current live) and deduplicated by their scheduled set (Kessler's
    equivalent-prefix pruning — two prefixes covering the same nodes have
    identical futures).
    """
    n = len(order)
    if n == 0:
        return ScheduleResult([], 0, beam_width, 0)
    # start from the DFS order — it already clusters subtrees; the beam
    # search then only needs local improvements
    order = dfs_schedule(order)
    preds, succs = dependency_graph(order)
    temps = {a.lhs: i for i, a in enumerate(order) if not a.is_field_store}

    # uses of each temp-producing statement
    uses: dict[int, set[int]] = {i: set(succs[i]) for i in range(n)}

    start = _State((), frozenset(), frozenset(), 0)
    beam = [start]
    explored = 0

    for _step in range(n):
        candidates: dict[frozenset, _State] = {}
        for st in beam:
            done = st.scheduled_set
            for i in range(n):
                if i in done or not preds[i] <= done:
                    continue
                explored += 1
                live = set(st.live)
                a = order[i]
                # operands whose last use this is die
                for s in a.rhs.free_symbols:
                    if isinstance(s, FieldAccess) or s not in temps:
                        continue
                    j = temps[s]
                    if uses[j] <= (done | {i}):
                        live.discard(j)
                if not a.is_field_store and succs[i] - done - {i}:
                    live.add(i)
                new = _State(
                    st.scheduled + (i,),
                    done | {i},
                    frozenset(live),
                    max(st.peak, len(live)),
                )
                key = new.scheduled_set
                old = candidates.get(key)
                if old is None or (new.peak, len(new.live)) < (old.peak, len(old.live)):
                    candidates[key] = new
        beam = sorted(candidates.values(), key=lambda s: (s.peak, len(s.live)))[
            :beam_width
        ]
    best = beam[0]
    new_order = [order[i] for i in best.scheduled]
    dfs_live = analyze_liveness(order).max_live
    beam_live = analyze_liveness(new_order).max_live
    if dfs_live <= beam_live:
        return ScheduleResult(list(order), dfs_live, beam_width, explored)
    return ScheduleResult(new_order, beam_live, beam_width, explored)
