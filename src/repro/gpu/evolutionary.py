"""Evolutionary tuning of GPU transformation sequences (paper §3.5).

"The effects of multiple transformations do not add up linearly but can
decrease or amplify each other.  To deal with this non-convex,
multi-dimensional, non-smooth fitness landscape, we use an evolutionary
optimization algorithm to tune a sequence of transformations with their
parameters for each kernel."

Individuals encode (rematerialization on/off + thresholds, scheduling
on/off + beam width, fence interval); fitness is the modeled kernel runtime
on the target GPU.  Deterministic for a fixed seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from ..ir.kernel import Kernel
from .fences import insert_fences
from .model import GPUKernelModel, GPUSpec, TESLA_P100, estimate_registers
from .rematerialize import rematerialize
from .scheduling import schedule_for_registers

__all__ = ["TransformationSequence", "apply_sequence", "evolutionary_tune", "TunedKernel"]


@dataclass(frozen=True)
class TransformationSequence:
    """One individual: a parameterized sequence of GPU transformations."""

    use_remat: bool = False
    remat_max_cost: float = 2.0
    remat_max_uses: int = 4
    use_scheduling: bool = False
    beam_width: int = 8
    fence_interval: int | None = None

    def describe(self) -> str:
        parts = []
        if self.use_remat:
            parts.append(f"dupl(cost≤{self.remat_max_cost:g},uses≤{self.remat_max_uses})")
        if self.use_scheduling:
            parts.append(f"sched(beam={self.beam_width})")
        if self.fence_interval:
            parts.append(f"fence(every {self.fence_interval})")
        return " + ".join(parts) if parts else "none"


@dataclass
class TunedKernel:
    """Result of applying a transformation sequence to a kernel body."""

    sequence: TransformationSequence
    registers: object
    model: GPUKernelModel
    time_per_lup_ns: float


def apply_sequence(
    kernel: Kernel,
    seq: TransformationSequence,
    spec: GPUSpec = TESLA_P100,
) -> TunedKernel:
    """Run the transformation sequence and evaluate the GPU model."""
    order = list(kernel.ac.all_assignments)
    if seq.use_remat:
        order = rematerialize(
            order, max_cost=seq.remat_max_cost, max_uses=seq.remat_max_uses
        )
    if seq.use_scheduling:
        order = schedule_for_registers(order, beam_width=seq.beam_width).order
    fences = insert_fences(order, seq.fence_interval)
    regs = estimate_registers(order, fences, spec, scheduled=seq.use_scheduling)
    model = GPUKernelModel(kernel=kernel, registers=regs, spec=spec)
    return TunedKernel(
        sequence=seq,
        registers=regs,
        model=model,
        time_per_lup_ns=model.time_per_lup_ns(),
    )


def _mutate(seq: TransformationSequence, rng: random.Random) -> TransformationSequence:
    choice = rng.randrange(6)
    if choice == 0:
        return replace(seq, use_remat=not seq.use_remat)
    if choice == 1:
        return replace(seq, remat_max_cost=rng.choice([1.0, 2.0, 3.0, 4.0]))
    if choice == 2:
        return replace(seq, remat_max_uses=rng.choice([2, 3, 4, 6, 8]))
    if choice == 3:
        return replace(seq, use_scheduling=not seq.use_scheduling)
    if choice == 4:
        return replace(seq, beam_width=rng.choice([1, 2, 4, 8, 16, 20]))
    return replace(seq, fence_interval=rng.choice([None, 16, 32, 64, 128]))


def _crossover(
    a: TransformationSequence, b: TransformationSequence, rng: random.Random
) -> TransformationSequence:
    pick = lambda x, y: x if rng.random() < 0.5 else y
    return TransformationSequence(
        use_remat=pick(a.use_remat, b.use_remat),
        remat_max_cost=pick(a.remat_max_cost, b.remat_max_cost),
        remat_max_uses=pick(a.remat_max_uses, b.remat_max_uses),
        use_scheduling=pick(a.use_scheduling, b.use_scheduling),
        beam_width=pick(a.beam_width, b.beam_width),
        fence_interval=pick(a.fence_interval, b.fence_interval),
    )


def evolutionary_tune(
    kernel: Kernel,
    spec: GPUSpec = TESLA_P100,
    population: int = 10,
    generations: int = 8,
    seed: int = 42,
) -> TunedKernel:
    """Evolve the best transformation sequence for *kernel* on *spec*.

    The search can discover "sequences that would have been elusive to
    reasoning and manual experiments"; with a fixed seed the result is
    reproducible.
    """
    rng = random.Random(seed)
    # seed with the paper's hand-picked sequences, then mutate outward
    pop = [
        TransformationSequence(),
        TransformationSequence(use_scheduling=True),
        TransformationSequence(
            use_remat=True, use_scheduling=True, fence_interval=32
        ),
    ][: max(1, population)]
    while len(pop) < population:
        pop.append(_mutate(rng.choice(pop), rng))

    cache: dict[TransformationSequence, TunedKernel] = {}

    def fitness(seq: TransformationSequence) -> TunedKernel:
        if seq not in cache:
            cache[seq] = apply_sequence(kernel, seq, spec)
        return cache[seq]

    for _gen in range(generations):
        ranked = sorted(pop, key=lambda s: fitness(s).time_per_lup_ns)
        elite = ranked[: max(2, population // 3)]
        children = [
            _mutate(_crossover(rng.choice(elite), rng.choice(elite), rng), rng)
            for _ in range(population - len(elite))
        ]
        pop = elite + children

    best = min(cache.values(), key=lambda t: t.time_per_lup_ns)
    return best
