"""Rematerialization of cheap CSE temporaries (paper §3.5).

CSE finds "many small common expressions, reused in multiple assignments,
which creates many intermediates that are alive for a long time".  This
transformation *takes back* some CSE: temporaries that are cheap to compute
and whose operands sit at the top of the dependency graph (constants, field
accesses, parameters) are inlined at every use, trading duplicate arithmetic
for shorter live ranges and lower register pressure.
"""

from __future__ import annotations

import sympy as sp

from ..perfmodel.flops import count_operations
from ..symbolic.assignment import Assignment, AssignmentCollection
from ..symbolic.field import FieldAccess

__all__ = ["rematerialize"]


def _op_cost(expr: sp.Expr) -> float:
    tmp = AssignmentCollection(
        [], [Assignment(sp.Symbol("__cost_probe"), expr)]
    )
    return count_operations(tmp).total_flops


def rematerialize(
    assignments: list[Assignment],
    max_cost: float = 2.0,
    max_uses: int = 4,
    leaf_operands_only: bool = True,
) -> list[Assignment]:
    """Inline cheap temporaries back into their uses.

    Parameters
    ----------
    max_cost:
        Maximum operation count of a temporary eligible for duplication.
    max_uses:
        Do not duplicate values used more often than this (the total extra
        arithmetic is ``cost × uses``).
    leaf_operands_only:
        Restrict to temporaries whose operands are leaves of the dependency
        graph (field accesses, parameters, numbers) — these never extend
        other live ranges when duplicated.
    """
    temps = {a.lhs for a in assignments if not a.is_field_store}
    use_count: dict[sp.Symbol, int] = {}
    for a in assignments:
        for s in a.rhs.free_symbols:
            if s in temps:
                use_count[s] = use_count.get(s, 0) + 1

    replacements: dict[sp.Symbol, sp.Expr] = {}
    kept: list[Assignment] = []
    for a in assignments:
        rhs = a.rhs.xreplace(replacements) if replacements else a.rhs
        if a.is_field_store:
            kept.append(Assignment(a.lhs, rhs))
            continue
        uses = use_count.get(a.lhs, 0)
        cheap = _op_cost(rhs) <= max_cost
        leafy = (not leaf_operands_only) or all(
            isinstance(s, FieldAccess) or s not in temps
            for s in rhs.free_symbols
        )
        if uses and uses <= max_uses and cheap and leafy:
            replacements[a.lhs] = rhs
        else:
            kept.append(Assignment(a.lhs, rhs))
    return kept
