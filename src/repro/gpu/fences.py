"""Thread-fence insertion (paper §3.5).

nvcc aggressively hoists loads to the beginning of a basic block so they
overlap with computation — at the price of many long-lived values.  The
paper found that ``__threadfence()`` statements (like volatile shared
memory) limit this reordering.  We model a fence as a barrier that splits
the statement stream into windows: the compiler may only keep loads of the
*current* window in flight.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..symbolic.assignment import Assignment

__all__ = ["FencePlan", "insert_fences"]


@dataclass(frozen=True)
class FencePlan:
    """Fence positions splitting an assignment sequence into windows."""

    n_statements: int
    positions: tuple[int, ...]  # indices *before* which a fence is placed

    @property
    def windows(self) -> list[tuple[int, int]]:
        bounds = [0, *self.positions, self.n_statements]
        return [
            (a, b) for a, b in zip(bounds, bounds[1:]) if b > a
        ]

    @property
    def count(self) -> int:
        return len(self.positions)


def insert_fences(order: list[Assignment], interval: int | None) -> FencePlan:
    """Place a fence every *interval* statements (None → no fences)."""
    n = len(order)
    if not interval or interval >= n:
        return FencePlan(n, ())
    positions = tuple(range(interval, n, interval))
    return FencePlan(n, positions)
