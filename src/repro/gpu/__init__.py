"""GPU-specific transformations and performance model (paper §3.5, §6.2)."""

from .evolutionary import (
    TransformationSequence,
    TunedKernel,
    apply_sequence,
    evolutionary_tune,
)
from .fences import FencePlan, insert_fences
from .liveness import LivenessResult, analyze_liveness, max_live
from .model import (
    GPUKernelModel,
    GPUSpec,
    RegisterEstimate,
    TESLA_P100,
    estimate_registers,
)
from .rematerialize import rematerialize
from .scheduling import ScheduleResult, dependency_graph, schedule_for_registers

__all__ = [
    "TransformationSequence",
    "TunedKernel",
    "apply_sequence",
    "evolutionary_tune",
    "FencePlan",
    "insert_fences",
    "LivenessResult",
    "analyze_liveness",
    "max_live",
    "GPUKernelModel",
    "GPUSpec",
    "RegisterEstimate",
    "TESLA_P100",
    "estimate_registers",
    "rematerialize",
    "ScheduleResult",
    "dependency_graph",
    "schedule_for_registers",
]
