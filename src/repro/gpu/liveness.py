"""Liveness analysis for GPU register pressure (paper §3.5).

For an ordered SSA assignment list, a temporary is *live* from its
definition to its last use.  The maximum number of simultaneously live
values drives the register demand of the CUDA kernel: each double occupies
two 32-bit registers, and nvcc adds a base overhead (indices, pointers).

The "Registers, analysis" bars of Fig. 2 (right) are exactly this count
multiplied by two.
"""

from __future__ import annotations

from dataclasses import dataclass

import sympy as sp

from ..symbolic.assignment import Assignment
from ..symbolic.field import FieldAccess

__all__ = ["LivenessResult", "analyze_liveness", "max_live"]


@dataclass
class LivenessResult:
    """Liveness of an ordered assignment sequence."""

    order: list[Assignment]
    live_at: list[int]            # live temporaries after each statement
    last_use: dict[sp.Symbol, int]

    @property
    def max_live(self) -> int:
        return max(self.live_at, default=0)

    @property
    def average_live(self) -> float:
        return sum(self.live_at) / len(self.live_at) if self.live_at else 0.0

    def registers(self, base: int = 24) -> int:
        """Estimated 32-bit register demand: 2 per live double + overhead."""
        return base + 2 * self.max_live


def _temp_uses(expr: sp.Expr, temps: set[sp.Symbol]) -> set[sp.Symbol]:
    return {
        s
        for s in expr.free_symbols
        if not isinstance(s, FieldAccess) and s in temps
    }


def analyze_liveness(order: list[Assignment]) -> LivenessResult:
    """Compute the live-temporary profile of an ordered assignment list."""
    temps = {a.lhs for a in order if not a.is_field_store}
    last_use: dict[sp.Symbol, int] = {}
    for i, a in enumerate(order):
        for s in _temp_uses(a.rhs, temps):
            last_use[s] = i
    # values never used stay live to the end conservatively? no: dead at def
    live: set[sp.Symbol] = set()
    live_at: list[int] = []
    for i, a in enumerate(order):
        # uses whose last occurrence is here die after this statement
        for s in _temp_uses(a.rhs, temps):
            if last_use.get(s) == i:
                live.discard(s)
        if not a.is_field_store and last_use.get(a.lhs, -1) > i:
            live.add(a.lhs)
        live_at.append(len(live))
    return LivenessResult(order=list(order), live_at=live_at, last_use=last_use)


def max_live(order: list[Assignment]) -> int:
    """Shortcut for ``analyze_liveness(order).max_live``."""
    return analyze_liveness(order).max_live
