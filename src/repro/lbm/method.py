"""BGK lattice Boltzmann kernels through the phase-field code pipeline.

A fused stream-pull + collide update:

.. math::

    f_i(x, t{+}1) = f_i^{pull} + \\omega \\big(f_i^{eq}(\\rho, u) - f_i^{pull}\\big),
    \\quad f_i^{pull} = f_i(x - c_i, t)

with the second-order equilibrium and Guo-style body forcing via an
equilibrium-velocity shift.  The kernel is an ordinary
:class:`AssignmentCollection`, so constant folding, CSE, operation counting,
the ECM model, and the NumPy/C/CUDA backends all apply unchanged — the
generalization promised in the paper's conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass

import sympy as sp

from ..symbolic.assignment import Assignment, AssignmentCollection
from ..symbolic.field import Field
from .lattice import D2Q9, Lattice

__all__ = ["LBMethod", "create_lbm_update"]


@dataclass
class LBMethod:
    """Single-relaxation-time (BGK) method on a given lattice."""

    lattice: Lattice = D2Q9
    relaxation_rate: float | sp.Expr = 1.0     # ω = 1/τ
    force: tuple = ()                          # constant body force density

    @property
    def omega(self) -> sp.Expr:
        return sp.sympify(self.relaxation_rate)

    @property
    def viscosity(self) -> sp.Expr:
        """Lattice kinematic viscosity ν = cs²(1/ω − 1/2)."""
        return sp.Rational(1, 3) * (1 / self.omega - sp.Rational(1, 2))

    def equilibrium(self, i: int, rho: sp.Expr, u: list[sp.Expr]) -> sp.Expr:
        c = self.lattice.velocities[i]
        w = self.lattice.weights[i]
        cu = sp.Add(*[c[d] * u[d] for d in range(self.lattice.dim)])
        u2 = sp.Add(*[u[d] ** 2 for d in range(self.lattice.dim)])
        return w * rho * (
            1 + 3 * cu + sp.Rational(9, 2) * cu**2 - sp.Rational(3, 2) * u2
        )


def create_lbm_update(
    method: LBMethod,
    src_name: str = "pdf",
    dst_name: str = "pdf_dst",
) -> tuple[AssignmentCollection, Field, Field]:
    """Build the fused stream-collide assignment collection.

    Returns ``(assignments, src_field, dst_field)``; the fields carry one
    inner index per lattice direction.
    """
    lat = method.lattice
    src = Field(src_name, lat.dim, (lat.q,))
    dst = Field(dst_name, lat.dim, (lat.q,))

    pulled = []
    subexpressions = []
    for i, c in enumerate(lat.velocities):
        sym = sp.Symbol(f"f_{i}", real=True)
        offsets = tuple(-cc for cc in c)  # pull scheme
        subexpressions.append(Assignment(sym, src[offsets](i)))
        pulled.append(sym)

    rho = sp.Symbol("rho", real=True)
    subexpressions.append(Assignment(rho, sp.Add(*pulled)))

    u_syms = [sp.Symbol(f"u_{d}", real=True) for d in range(lat.dim)]
    force = tuple(sp.sympify(f) for f in method.force) or (sp.S.Zero,) * lat.dim
    for d in range(lat.dim):
        momentum = sp.Add(
            *[lat.velocities[i][d] * pulled[i] for i in range(lat.q)]
        )
        # equilibrium-velocity shift: u_eq = (Σ c f + F/(2ω·...)·τ)/ρ — the
        # simple Shan-Chen style forcing u_eq = u + τ F / ρ
        shift = force[d] / method.omega
        subexpressions.append(Assignment(u_syms[d], (momentum + shift) / rho))

    omega = method.omega
    mains = []
    for i in range(lat.q):
        feq = method.equilibrium(i, rho, u_syms)
        mains.append(
            Assignment(dst.center(i), pulled[i] + omega * (feq - pulled[i]))
        )
    ac = AssignmentCollection(mains, subexpressions, name=f"lbm_{lat.name.lower()}")
    ac.validate()
    return ac, src, dst


def equilibrium_pdfs(method: LBMethod, rho: float = 1.0, u=(0.0, 0.0)) -> list[float]:
    """Numeric equilibrium distribution (for initialization)."""
    lat = method.lattice
    u = list(u) + [0.0] * (lat.dim - len(u))
    rho_s, u_s = sp.Float(rho), [sp.Float(v) for v in u[: lat.dim]]
    return [float(method.equilibrium(i, rho_s, u_s)) for i in range(lat.q)]
