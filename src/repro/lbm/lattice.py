"""Lattice models for the LBM extension (paper §8 future work).

"We are going to apply and generalize our code generation pipeline to
include also other stencil-based methods, e.g. lattice Boltzmann schemes"
— this subpackage does exactly that: LBM kernels are built from the same
:class:`Field`/:class:`AssignmentCollection` machinery, optimized by the
same passes and executed by the same backends as the phase-field kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import sympy as sp

__all__ = ["Lattice", "D2Q9", "D3Q19"]


@dataclass(frozen=True)
class Lattice:
    """A DdQq velocity set with weights (cs² = 1/3 lattice units)."""

    name: str
    dim: int
    velocities: tuple[tuple[int, ...], ...]
    weights: tuple[sp.Rational, ...]

    @property
    def q(self) -> int:
        return len(self.velocities)

    def opposite(self, i: int) -> int:
        """Index of the velocity −c_i (for bounce-back walls)."""
        target = tuple(-c for c in self.velocities[i])
        return self.velocities.index(target)

    def validate(self) -> None:
        w_sum = sum(self.weights)
        if w_sum != 1:
            raise ValueError(f"weights of {self.name} sum to {w_sum}, not 1")
        for d in range(self.dim):
            first = sum(w * c[d] for w, c in zip(self.weights, self.velocities))
            if first != 0:
                raise ValueError(f"first moment of {self.name} not zero")
        # second moment must equal cs² δ_ab = 1/3 δ_ab
        for a in range(self.dim):
            for b in range(self.dim):
                m2 = sum(
                    w * c[a] * c[b] for w, c in zip(self.weights, self.velocities)
                )
                expected = sp.Rational(1, 3) if a == b else 0
                if m2 != expected:
                    raise ValueError(f"second moment of {self.name} wrong: {m2}")


_w0, _ws, _wd = sp.Rational(4, 9), sp.Rational(1, 9), sp.Rational(1, 36)

D2Q9 = Lattice(
    name="D2Q9",
    dim=2,
    velocities=(
        (0, 0),
        (1, 0), (-1, 0), (0, 1), (0, -1),
        (1, 1), (-1, -1), (1, -1), (-1, 1),
    ),
    weights=(_w0, _ws, _ws, _ws, _ws, _wd, _wd, _wd, _wd),
)

_v0, _vs, _vd = sp.Rational(1, 3), sp.Rational(1, 18), sp.Rational(1, 36)

D3Q19 = Lattice(
    name="D3Q19",
    dim=3,
    velocities=(
        (0, 0, 0),
        (1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1),
        (1, 1, 0), (-1, -1, 0), (1, -1, 0), (-1, 1, 0),
        (1, 0, 1), (-1, 0, -1), (1, 0, -1), (-1, 0, 1),
        (0, 1, 1), (0, -1, -1), (0, 1, -1), (0, -1, 1),
    ),
    weights=(_v0,) + (_vs,) * 6 + (_vd,) * 12,
)

for _lat in (D2Q9, D3Q19):
    _lat.validate()
