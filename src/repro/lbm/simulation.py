"""LBM driver: boundary handling and a single-block simulation loop."""

from __future__ import annotations

import numpy as np

from ..backends.numpy_backend import compile_numpy_kernel, create_arrays
from ..ir import KernelConfig, create_kernel
from ..parallel.boundary import fill_ghosts
from .lattice import Lattice
from .method import LBMethod, create_lbm_update, equilibrium_pdfs

__all__ = ["LBMSimulation", "apply_bounce_back"]


def apply_bounce_back(
    arr: np.ndarray, lattice: Lattice, axis: int, side: int, gl: int = 1
) -> None:
    """Halfway bounce-back wall on one face (in place).

    The ghost layer receives the *opposite-direction* populations of the
    adjacent fluid cells; with pull streaming this realizes a no-slip wall
    located halfway between the last fluid cell and the ghost cell.
    """
    n = arr.shape[axis]
    ghost = [slice(None)] * (arr.ndim - 1)  # spatial dims; pdf index appended
    fluid = [slice(None)] * (arr.ndim - 1)
    if side < 0:
        ghost[axis] = slice(0, gl)
        fluid[axis] = slice(gl, 2 * gl)
    else:
        ghost[axis] = slice(n - gl, n)
        fluid[axis] = slice(n - 2 * gl, n - gl)
    for i in range(lattice.q):
        arr[tuple(ghost) + (i,)] = arr[tuple(fluid) + (lattice.opposite(i),)]


class LBMSimulation:
    """A periodic-or-walled channel simulation on one block.

    ``walls`` lists (axis, side) faces with halfway bounce-back; all other
    faces are periodic.
    """

    def __init__(
        self,
        method: LBMethod,
        shape: tuple[int, ...],
        walls: list[tuple[int, int]] = (),
        backend: str = "numpy",
    ):
        self.method = method
        self.lattice = method.lattice
        if len(shape) != self.lattice.dim:
            raise ValueError(
                f"{self.lattice.name} needs a {self.lattice.dim}D shape"
            )
        self.shape = tuple(int(s) for s in shape)
        self.walls = list(walls)

        ac, self.src_field, self.dst_field = create_lbm_update(method)
        kernel = create_kernel(ac, KernelConfig())
        if backend == "c":
            from ..backends.c_backend import compile_c_kernel

            self._update = compile_c_kernel(kernel)
        else:
            self._update = compile_numpy_kernel(kernel)
        self.kernel = kernel

        self.arrays = create_arrays([self.src_field, self.dst_field], self.shape, 1)
        eq = equilibrium_pdfs(method)
        self.arrays[self.src_field.name][...] = np.asarray(eq)
        self.time_step = 0

    # -- state -----------------------------------------------------------------

    @property
    def pdf(self) -> np.ndarray:
        return self.arrays[self.src_field.name][(slice(1, -1),) * self.lattice.dim]

    def density(self) -> np.ndarray:
        return self.pdf.sum(axis=-1)

    def velocity(self) -> np.ndarray:
        """Macroscopic velocity (without forcing shift), shape (*spatial, dim)."""
        rho = self.density()
        c = np.asarray(self.lattice.velocities, dtype=float)  # (q, dim)
        mom = np.tensordot(self.pdf, c, axes=([-1], [0]))
        return mom / rho[..., None]

    def set_velocity(self, u: np.ndarray, rho: float = 1.0) -> None:
        """Initialize with the equilibrium of a given velocity field."""
        import sympy as sp

        u = np.asarray(u, dtype=float)
        lat = self.lattice
        pdf = self.arrays[self.src_field.name][(slice(1, -1),) * lat.dim]
        rho_s = sp.Symbol("r")
        u_s = [sp.Symbol(f"v{d}") for d in range(lat.dim)]
        for i in range(lat.q):
            expr = self.method.equilibrium(i, rho_s, u_s)
            f = sp.lambdify((rho_s, *u_s), expr, "numpy")
            pdf[..., i] = f(rho, *[u[..., d] for d in range(lat.dim)])

    # -- stepping ----------------------------------------------------------------

    def _boundaries(self) -> None:
        arr = self.arrays[self.src_field.name]
        fill_ghosts(arr, 1, self.lattice.dim, mode="periodic")
        for axis, side in self.walls:
            apply_bounce_back(arr, self.lattice, axis, side)

    def step(self, n_steps: int = 1) -> None:
        src, dst = self.src_field.name, self.dst_field.name
        for _ in range(n_steps):
            self._boundaries()
            self._update(self.arrays, ghost_layers=1)
            self.arrays[src], self.arrays[dst] = self.arrays[dst], self.arrays[src]
            self.time_step += 1

    def total_mass(self) -> float:
        return float(self.density().sum())
