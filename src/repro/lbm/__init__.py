"""Lattice Boltzmann through the same pipeline (paper §8 future work)."""

from .lattice import D2Q9, D3Q19, Lattice
from .method import LBMethod, create_lbm_update, equilibrium_pdfs
from .simulation import LBMSimulation, apply_bounce_back

__all__ = [
    "D2Q9",
    "D3Q19",
    "Lattice",
    "LBMethod",
    "create_lbm_update",
    "equilibrium_pdfs",
    "LBMSimulation",
    "apply_bounce_back",
]
