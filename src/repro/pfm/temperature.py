"""Analytic temperature fields (frozen-temperature approximation).

Directional solidification imposes a moving temperature gradient

.. math::  T(x, t) = T_0 + G\\,(x_{a} - v\\,t)

analytic in one spatial coordinate and time.  Because the dependence is on
a *single* coordinate, the IR layer places that axis outermost and hoists
every temperature-dependent subexpression out of the inner loops — one of
the key manual optimizations of [Bauer et al. 2015] that the pipeline now
performs automatically (paper §3.4, §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import sympy as sp

from ..symbolic.coordinates import CoordinateSymbol, t as t_symbol

__all__ = ["TemperatureField", "constant_temperature", "gradient_temperature"]


@dataclass(frozen=True)
class TemperatureField:
    """A temperature description exposing its symbolic expression."""

    expr: sp.Expr

    @property
    def is_constant(self) -> bool:
        return not (
            self.expr.atoms(CoordinateSymbol) or t_symbol in self.expr.free_symbols
        )

    @property
    def axes(self) -> set[int]:
        return {c.axis for c in self.expr.atoms(CoordinateSymbol)}

    @property
    def time_derivative(self) -> sp.Expr:
        return sp.diff(self.expr, t_symbol)

    def __call__(self) -> sp.Expr:
        return self.expr


def constant_temperature(T0: float) -> TemperatureField:
    """Spatially and temporally constant temperature."""
    return TemperatureField(sp.Float(T0))


def gradient_temperature(T0: float, G: float, v: float, axis: int = 0) -> TemperatureField:
    """Moving frozen gradient ``T = T0 + G (x_axis − v t)``."""
    x = CoordinateSymbol(axis)
    return TemperatureField(sp.Float(T0) + sp.Float(G) * (x - sp.Float(v) * t_symbol))
