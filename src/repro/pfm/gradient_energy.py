"""Gradient energy densities a(φ, ∇φ) — Eq. (4) of the paper.

Built from the generalized gradients

.. math::  q_{\\alpha\\beta} = \\phi_\\alpha \\nabla\\phi_\\beta
            - \\phi_\\beta \\nabla\\phi_\\alpha

either isotropically (``A_{αβ} = 1``, setup P1) or with a cubic anisotropy
``A(Rq)`` whose rotation matrix ``R`` encodes the grain orientation
(setup P2, dendritic solidification).  The anisotropy drastically increases
the FLOP count of the φ kernel — the paper's Table 1 shows P2's φ-full
kernel at roughly four times the operations of P1's.
"""

from __future__ import annotations

from dataclasses import dataclass

import sympy as sp

from ..symbolic.field import Field
from ..symbolic.operators import Diff
from .potentials import _gamma_lookup, pairwise_sum

__all__ = [
    "generalized_gradient",
    "isotropic_gradient_energy",
    "CubicAnisotropy",
    "anisotropic_gradient_energy",
    "rotation_matrix",
]

#: Regularization added under norms to keep 1/|q| finite in bulk regions.
NORM_EPS = sp.Float(1e-32)


def generalized_gradient(phi: Field, a: int, b: int, dim: int | None = None) -> list[sp.Expr]:
    """``q_ab = φ_a ∇φ_b − φ_b ∇φ_a`` as a list of components."""
    dim = dim or phi.spatial_dimensions
    pa, pb = phi.center(a), phi.center(b)
    return [pa * Diff(pb, i) - pb * Diff(pa, i) for i in range(dim)]


def isotropic_gradient_energy(phi: Field, gamma) -> sp.Expr:
    """Eq. (4) with ``A_{αβ} = 1``: ``Σ_{α<β} γ_{αβ} |q_{αβ}|²``."""
    (n,) = phi.index_shape

    def term(a: int, b: int) -> sp.Expr:
        q = generalized_gradient(phi, a, b)
        return _gamma_lookup(gamma, a, b) * sp.Add(*[qi**2 for qi in q])

    return pairwise_sum(n, term)


def rotation_matrix(alpha: float, beta: float = 0.0, gamma_angle: float = 0.0) -> sp.Matrix:
    """Extrinsic z-y-x Euler rotation; encodes a grain orientation."""
    ca, sa = sp.cos(alpha), sp.sin(alpha)
    cb, sb = sp.cos(beta), sp.sin(beta)
    cg, sg = sp.cos(gamma_angle), sp.sin(gamma_angle)
    rz = sp.Matrix([[ca, -sa, 0], [sa, ca, 0], [0, 0, 1]])
    ry = sp.Matrix([[cb, 0, sb], [0, 1, 0], [-sb, 0, cb]])
    rx = sp.Matrix([[1, 0, 0], [0, cg, -sg], [0, sg, cg]])
    return rz * ry * rx


@dataclass
class CubicAnisotropy:
    """Four-fold cubic anisotropy ``A(q) = 1 + δ (4 Σ q_i⁴ / |q|⁴ − 3)``.

    ``rotations`` optionally maps a phase index to a rotation matrix; the
    anisotropy of pair (α, β) is evaluated on ``R_α q`` (solid-phase
    orientation), rotations of the liquid phase are ignored.
    """

    delta: float
    rotations: dict[int, sp.Matrix] | None = None

    def value(self, q: list[sp.Expr], a: int, b: int) -> sp.Expr:
        qv = sp.Matrix(q)
        rot = None
        if self.rotations:
            rot = self.rotations.get(a, self.rotations.get(b))
        if rot is not None:
            if len(q) == 2:
                # embed 2D vector in the rotation's x-y plane
                qv3 = rot * sp.Matrix([qv[0], qv[1], 0])
                qv = sp.Matrix([qv3[0], qv3[1]])
            else:
                qv = rot * qv
        norm2 = sp.Add(*[qi**2 for qi in qv]) + NORM_EPS
        quarts = sp.Add(*[qi**4 for qi in qv])
        return 1 + sp.Float(self.delta) * (4 * quarts / norm2**2 - 3)


def anisotropic_gradient_energy(
    phi: Field, gamma, anisotropy: CubicAnisotropy
) -> sp.Expr:
    """Eq. (4): ``Σ_{α<β} γ_{αβ} A_{αβ}(R q)² |q_{αβ}|²``."""
    (n,) = phi.index_shape

    def term(a: int, b: int) -> sp.Expr:
        q = generalized_gradient(phi, a, b)
        aval = anisotropy.value(q, a, b)
        return _gamma_lookup(gamma, a, b) * aval**2 * sp.Add(*[qi**2 for qi in q])

    return pairwise_sum(n, term)
