"""Single-block time stepping — Algorithm 1 of the paper.

One time step:

1. ``φ_dst ← φ-kernel(φ_src^{D3C7}, µ_src^{D3C1})``   ("φ-full" or "φ-split")
2. Gibbs-simplex projection of ``φ_dst`` (obstacle potential)
3. boundary handling of ``φ_dst``
4. ``µ_dst ← µ-kernel(µ_src^{D3C7}, φ_src^{D3C19}, φ_dst^{D3C19})``
5. boundary handling of ``µ_dst``
6. swap ``φ_src ↔ φ_dst`` and ``µ_src ↔ µ_dst``

The distributed-memory version of the same loop (ghost-layer exchange
instead of boundary fills) lives in :mod:`repro.parallel.timeloop`.
"""

from __future__ import annotations

import numpy as np

from time import perf_counter

from ..backends.numpy_backend import create_arrays
from ..observability.health import HealthMonitor
from ..observability.log import get_logger, kv
from ..observability.metrics import get_registry
from ..observability.recorder import get_recorder
from ..observability.tracing import get_tracer
from ..parallel.boundary import fill_ghosts
from ..profiling import SolverProfiler, compile_cached
from .model import GrandPotentialModel, PhaseFieldKernelSet

__all__ = ["SingleBlockSolver"]

_log = get_logger("pfm.solver")


class SingleBlockSolver:
    """Runs a phase-field model on one rectangular block (NumPy or C kernels).

    Pass a :class:`repro.observability.HealthMonitor` as *health* to run
    NaN/phase-sum/bounds checks on the monitor's cadence during
    :meth:`step`; failures follow the monitor's warn/record/raise policy.
    """

    def __init__(
        self,
        kernel_set: PhaseFieldKernelSet,
        interior_shape: tuple[int, ...],
        boundary: str | tuple = "periodic",
        seed: int = 0,
        backend: str = "numpy",
        health: HealthMonitor | None = None,
        ghost_layers: int | None = None,
        rundir=None,
    ):
        self.kernel_set = kernel_set
        self.model: GrandPotentialModel = kernel_set.model
        self.params = self.model.params
        dim = self.params.dim
        if len(interior_shape) != dim:
            raise ValueError(
                f"interior_shape must have {dim} entries, got {interior_shape}"
            )
        self.shape = tuple(int(s) for s in interior_shape)
        self.boundary = boundary
        self.seed = seed
        required_gl = max(kernel_set.ghost_layers, 1)
        if ghost_layers is None:
            self.ghost_layers = required_gl
        else:
            if int(ghost_layers) < required_gl:
                raise ValueError(
                    f"ghost_layers={ghost_layers} below the kernel set's "
                    f"requirement of {required_gl}"
                )
            self.ghost_layers = int(ghost_layers)

        # compiled once per process via the shared kernel cache: building a
        # second solver from an equal kernel set reuses every binary
        self.backend = backend
        self._phi = [compile_cached(k, backend) for k in kernel_set.phi_kernels]
        self._project = compile_cached(kernel_set.projection_kernel, backend)
        self._mu = [compile_cached(k, backend) for k in kernel_set.mu_kernels]

        self.arrays = create_arrays(kernel_set.fields, self.shape, self.ghost_layers)
        self.time_step = 0
        self.time = 0.0
        self.profiler = SolverProfiler()
        self.health = health
        self._cells_per_sweep = int(np.prod(self.shape))
        self._callbacks: list[tuple[int, object]] = []
        self._diag_suite = None
        self._diag_series = None
        self._fp_stream = None
        self._step_latency = get_registry().histogram(
            "repro_step_seconds", "wall time per solver time step", solver="single"
        )
        # flight-recorder integration: field stats at crash time come from
        # the live arrays; with a RunDir the event journal and health log
        # land in the bundle alongside checkpoints and diagnostics
        self.rundir = rundir
        recorder = get_recorder()
        recorder.set_state_provider(
            lambda: {"phi": self.arrays["phi"], "mu": self.arrays["mu"]}
        )
        if rundir is not None:
            rundir.note(solver="single", backend=backend, shape=list(self.shape))
            recorder.open_journal(rundir.journal_path(recorder.rank))
            if health is not None:
                rundir.attach_health(health)
        _log.info(
            kv(
                "solver_created",
                kind="single",
                shape=self.shape,
                backend=backend,
                boundary=boundary,
                health=health is not None,
            )
        )

    # -- state access ---------------------------------------------------------

    def _interior(self, name: str) -> np.ndarray:
        gl = self.ghost_layers
        sl = (slice(gl, -gl),) * self.params.dim
        return self.arrays[name][sl]

    @property
    def phi(self) -> np.ndarray:
        """Interior view of the phase fields, shape (*spatial, N)."""
        return self._interior("phi")

    @property
    def mu(self) -> np.ndarray:
        """Interior view of the chemical potential, shape (*spatial, K−1)."""
        return self._interior("mu")

    def set_state(self, phi: np.ndarray, mu: np.ndarray | float = 0.0) -> None:
        """Initialize interior φ and µ (µ may be a constant)."""
        if phi.shape != self.shape + (self.params.n_phases,):
            raise ValueError(
                f"phi must have shape {self.shape + (self.params.n_phases,)}"
            )
        self._interior("phi")[...] = phi
        self._interior("mu")[...] = mu
        self._fill("phi")
        self._fill("mu")

    # -- stepping ----------------------------------------------------------------

    def _fill(self, name: str) -> None:
        with self.profiler.measure(f"fill:{name}"):
            fill_ghosts(
                self.arrays[name], self.ghost_layers, self.params.dim, self.boundary
            )

    def _run(self, compiled, **extra) -> None:
        # dispatch is recorded BEFORE the sweep runs, so a kernel that
        # crashes (or wedges) is named by the post-mortem's last event
        get_recorder().record("kernel", compiled.name, time_step=self.time_step)
        with self.profiler.measure(compiled.name, cells=self._cells_per_sweep):
            compiled(
                self.arrays,
                ghost_layers=self.ghost_layers,
                t=self.time,
                time_step=self.time_step,
                seed=self.seed,
                **extra,
            )

    def add_callback(self, fn, every: int = 1) -> None:
        """Register an in-situ hook ``fn(solver)`` run every *every* steps.

        The paper's §4.1 Python interface for "in-situ evaluation and
        computational steering": callbacks see (and may modify) the live
        state between time steps.
        """
        if every < 1:
            raise ValueError("every must be >= 1")
        self._callbacks.append((int(every), fn))

    def save_checkpoint(self, path=None):
        """Write φ, µ and the time state to a compressed checkpoint.

        With no *path* and an attached :class:`RunDir`, the checkpoint goes
        to ``<rundir>/checkpoints/step<NNNNNNNN>``.  Returns the actual
        file path (``.npz`` is appended when missing, the same
        normalization :meth:`load_checkpoint` applies).
        """
        from ..analysis.io import save_snapshot

        if path is None:
            if self.rundir is None:
                raise ValueError("save_checkpoint needs a path (no RunDir attached)")
            path = self.rundir.checkpoint_dir / f"step{self.time_step:08d}"
        written = save_snapshot(
            path, self.phi.copy(), self.mu.copy(), self.time, self.time_step
        )
        get_recorder().record(
            "checkpoint", str(written), time_step=self.time_step
        )
        _log.info(kv("checkpoint_saved", path=written, step=self.time_step))
        return written

    def load_checkpoint(self, path) -> None:
        """Restore a checkpoint written by :meth:`save_checkpoint`.

        Accepts the same path that was passed to :meth:`save_checkpoint`,
        with or without the ``.npz`` suffix.
        """
        from ..analysis.io import load_snapshot

        data = load_snapshot(path)
        self.set_state(data["phi"], data["mu"])
        self.time = data["time"]
        self.time_step = data["time_step"]
        _log.info(kv("checkpoint_loaded", path=path, step=self.time_step))

    # -- in-situ physics diagnostics ------------------------------------------

    def enable_diagnostics(
        self,
        suite=None,
        every: int = 1,
        csv_path=None,
        tile_shape: tuple[int, ...] | None = None,
        check_invariants: bool = True,
        metrics: bool = True,
        trace: bool = True,
    ):
        """Evaluate a :class:`~repro.diagnostics.DiagnosticsSuite` in-situ.

        Every *every* steps (and once immediately, establishing the
        conservation reference) the suite's reduction kernel runs on the
        live fields; rows stream into the returned
        :class:`~repro.diagnostics.DiagnosticsSeries` (CSV/gauges/trace
        counters).  With *check_invariants* and a :class:`HealthMonitor`
        attached, solute-mass drift and free-energy decay violations go
        through the monitor's policy *before* the per-field watchdogs run.
        *tile_shape* selects the fixed-order tiled sum — pass the
        distributed run's block shape to reproduce its series bit for bit.
        """
        from ..diagnostics import DiagnosticsSeries, DiagnosticsSuite, invariant_names

        if every < 1:
            raise ValueError("every must be >= 1")
        if csv_path is None and self.rundir is not None:
            csv_path = self.rundir.diagnostics_path
        if suite is None:
            suite = DiagnosticsSuite.for_model(self.model)
        self._diag_suite = suite
        self._diag_every = int(every)
        self._diag_tiles = tuple(tile_shape) if tile_shape else None
        self._diag_series = DiagnosticsSeries(
            suite.names, csv_path=csv_path, metrics=metrics, trace=trace
        )
        if check_invariants:
            self._diag_mass, self._diag_energy = invariant_names(
                suite.names, self.params
            )
        else:
            self._diag_mass, self._diag_energy = (), None
        self._evaluate_diagnostics()
        return self._diag_series

    @property
    def diagnostics(self):
        """The live :class:`DiagnosticsSeries`, or ``None`` when disabled."""
        return self._diag_series

    def _evaluate_diagnostics(self) -> dict:
        suite = self._diag_suite
        raw, n_cells = suite.partial(
            self.arrays,
            ghost_layers=self.ghost_layers,
            tile_shape=self._diag_tiles,
            t=self.time,
            time_step=self.time_step,
            seed=self.seed,
        )
        values = suite.finalize(raw, n_cells)
        self._diag_series.record(self.time_step, self.time, values)
        if self.health is not None and (self._diag_mass or self._diag_energy):
            self.health.check_diagnostics(
                values,
                self.time_step,
                mass_names=self._diag_mass,
                energy_name=self._diag_energy,
            )
        return values

    # -- determinism fingerprints ----------------------------------------------

    def enable_fingerprints(
        self,
        every: int = 1,
        fields: tuple[str, ...] | None = None,
        reference=None,
        path=None,
        tile_shape: tuple[int, ...] | None = None,
        metrics: bool = True,
        trace: bool = True,
    ):
        """Stream ``repro-fingerprint/1`` state digests every *every* steps.

        Each record carries per-``(field, block)`` BLAKE2b digests of the
        interior bytes plus a combined digest, taken in the fixed
        lexicographic traversal order — pass a distributed run's block
        shape as *tile_shape* to reproduce its per-block stream bit for
        bit (the default treats the whole interior as one block).

        *path* defaults to the attached RunDir's canonical
        ``fingerprints.jsonl``.  *reference* (a ledger file or run
        directory) makes the run self-auditing: every record is compared
        online and the first mismatching ``(field, block)`` trips a
        ``divergence`` health event through the solver's monitor (or a
        private ``policy="raise"`` one when none is attached).  Records
        once immediately and then after each *every*-th step.
        """
        from ..observability.fingerprint import FingerprintStream

        if every < 1:
            raise ValueError("every must be >= 1")
        names = tuple(fields) if fields else ("phi", "mu")
        for name in names:
            if name not in self.arrays:
                raise ValueError(f"unknown field {name!r}")
        if path is None and self.rundir is not None:
            path = self.rundir.fingerprint_path
        self._fp_stream = FingerprintStream(
            path=path,
            reference=reference,
            health=self.health,
            metrics=metrics,
            trace=trace,
        )
        self._fp_every = int(every)
        self._fp_fields = names
        self._fp_tiles = tuple(tile_shape) if tile_shape else None
        self._evaluate_fingerprints()
        return self._fp_stream

    @property
    def fingerprints(self):
        """The live :class:`FingerprintStream`, or ``None`` when disabled."""
        return self._fp_stream

    def _evaluate_fingerprints(self) -> dict:
        interiors = {name: self._interior(name) for name in self._fp_fields}
        return self._fp_stream.record_state(
            self.time_step,
            self.time,
            interiors,
            dim=self.params.dim,
            tile_shape=self._fp_tiles,
        )

    def step(self, n_steps: int = 1) -> None:
        """Advance the solution by *n_steps* explicit Euler steps."""
        tracer = get_tracer()
        recorder = get_recorder()
        for _ in range(n_steps):
            t0 = perf_counter()
            begin_step = self.time_step
            recorder.step_begin(begin_step)
            with tracer.span("step", category="runtime", time_step=self.time_step):
                for k in self._phi:
                    self._run(k)
                self._run(self._project)
                self._fill("phi_dst")
                for k in self._mu:
                    self._run(k)
                self._fill("mu_dst")
                self.arrays["phi"], self.arrays["phi_dst"] = (
                    self.arrays["phi_dst"],
                    self.arrays["phi"],
                )
                self.arrays["mu"], self.arrays["mu_dst"] = (
                    self.arrays["mu_dst"],
                    self.arrays["mu"],
                )
                self.time_step += 1
                self.time += self.params.dt
                # invariants run BEFORE the field watchdogs: a too-large dt
                # trips the named energy_decay check while values are still
                # finite, not the NaN alarm steps later
                if (
                    self._diag_suite is not None
                    and self.time_step % self._diag_every == 0
                ):
                    self._evaluate_diagnostics()
                if self.health is not None and self.health.due(self.time_step):
                    self.health.check(
                        {"phi": self.phi, "mu": self.mu},
                        self.time_step,
                        phase_sum_of="phi",
                    )
                for every, fn in self._callbacks:
                    if self.time_step % every == 0:
                        fn(self)
                # fingerprints run LAST: they must digest the state the
                # next step will consume, after any steering callback
                if (
                    self._fp_stream is not None
                    and self.time_step % self._fp_every == 0
                ):
                    self._evaluate_fingerprints()
            seconds = perf_counter() - t0
            recorder.step_end(begin_step, seconds)
            self._step_latency.observe(seconds)

    # -- diagnostics ----------------------------------------------------------

    def profile_report(self, machine=None) -> str:
        """Per-kernel timing table plus the predicted-vs-measured closure.

        The second section joins the ECM prediction for every generated
        kernel (on *machine*, default Skylake 8174) with the measured
        MLUP/s of this run — the reproduction's Fig.-2-style model-accuracy
        check.
        """
        from ..observability.report import model_accuracy_report

        base = self.profiler.report(
            f"solver profile: {self.shape} interior, backend={self.backend!r}, "
            f"{self.time_step} steps"
        )
        accuracy = model_accuracy_report(
            self.kernel_set.all_kernels,
            self.profiler,
            machine=machine,
            block_shape=self.shape,
        )
        parts = [base, "", accuracy]
        if self.health is not None:
            parts += ["", self.health.summary()]
        return "\n".join(parts)

    def export_metrics(self, registry=None) -> None:
        """Publish this solver's profile into the metrics registry."""
        self.profiler.export_metrics(registry, solver="single")

    def export_perf(self, path=None, machine=None, bench: str = "solver") -> str | None:
        """Append this run's ``repro-perf/1`` records (``perf/perf.jsonl``).

        One record per cell-counted kernel, joining measured rates (and
        hardware counters where the host provides them) with the ECM
        prediction; appends to *path*, or the attached RunDir's canonical
        perf ledger.  Returns the path, or ``None`` with nothing to write.
        """
        from ..perfmodel.ledger import PerfLedger, records_from_profiler

        if path is None:
            if self.rundir is None:
                raise ValueError("export_perf needs a path (no RunDir attached)")
            path = self.rundir.perf_path
        records = records_from_profiler(
            bench,
            self.kernel_set.all_kernels,
            self.profiler,
            machine=machine,
            block_shape=self.shape,
            options={"backend": self.backend, "shape": list(self.shape)},
        )
        if not records:
            return None
        PerfLedger(path).extend(records)
        return str(path)

    def phase_fractions(self) -> np.ndarray:
        """Volume fraction of every phase."""
        return self.phi.reshape(-1, self.params.n_phases).mean(axis=0)

    def check_invariants(self, atol: float = 1e-9) -> None:
        """Assert Σφ = 1 and φ ∈ [0, 1] (post-projection invariants)."""
        phi = self.phi
        if not np.all((phi >= -atol) & (phi <= 1 + atol)):
            raise AssertionError("phase fields left [0, 1]")
        if not np.allclose(phi.sum(axis=-1), 1.0, atol=1e-7):
            raise AssertionError("phase fields do not sum to one")
