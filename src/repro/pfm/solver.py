"""Single-block time stepping — Algorithm 1 of the paper.

One time step:

1. ``φ_dst ← φ-kernel(φ_src^{D3C7}, µ_src^{D3C1})``   ("φ-full" or "φ-split")
2. Gibbs-simplex projection of ``φ_dst`` (obstacle potential)
3. boundary handling of ``φ_dst``
4. ``µ_dst ← µ-kernel(µ_src^{D3C7}, φ_src^{D3C19}, φ_dst^{D3C19})``
5. boundary handling of ``µ_dst``
6. swap ``φ_src ↔ φ_dst`` and ``µ_src ↔ µ_dst``

The distributed-memory version of the same loop (ghost-layer exchange
instead of boundary fills) lives in :mod:`repro.parallel.timeloop`.
"""

from __future__ import annotations

import numpy as np

from ..backends.numpy_backend import create_arrays
from ..parallel.boundary import fill_ghosts
from ..profiling import SolverProfiler, compile_cached
from .model import GrandPotentialModel, PhaseFieldKernelSet

__all__ = ["SingleBlockSolver"]


class SingleBlockSolver:
    """Runs a phase-field model on one rectangular block (NumPy or C kernels)."""

    def __init__(
        self,
        kernel_set: PhaseFieldKernelSet,
        interior_shape: tuple[int, ...],
        boundary: str | tuple = "periodic",
        seed: int = 0,
        backend: str = "numpy",
    ):
        self.kernel_set = kernel_set
        self.model: GrandPotentialModel = kernel_set.model
        self.params = self.model.params
        dim = self.params.dim
        if len(interior_shape) != dim:
            raise ValueError(
                f"interior_shape must have {dim} entries, got {interior_shape}"
            )
        self.shape = tuple(int(s) for s in interior_shape)
        self.boundary = boundary
        self.seed = seed
        self.ghost_layers = max(kernel_set.ghost_layers, 1)

        # compiled once per process via the shared kernel cache: building a
        # second solver from an equal kernel set reuses every binary
        self.backend = backend
        self._phi = [compile_cached(k, backend) for k in kernel_set.phi_kernels]
        self._project = compile_cached(kernel_set.projection_kernel, backend)
        self._mu = [compile_cached(k, backend) for k in kernel_set.mu_kernels]

        self.arrays = create_arrays(kernel_set.fields, self.shape, self.ghost_layers)
        self.time_step = 0
        self.time = 0.0
        self.profiler = SolverProfiler()
        self._cells_per_sweep = int(np.prod(self.shape))
        self._callbacks: list[tuple[int, object]] = []

    # -- state access ---------------------------------------------------------

    def _interior(self, name: str) -> np.ndarray:
        gl = self.ghost_layers
        sl = (slice(gl, -gl),) * self.params.dim
        return self.arrays[name][sl]

    @property
    def phi(self) -> np.ndarray:
        """Interior view of the phase fields, shape (*spatial, N)."""
        return self._interior("phi")

    @property
    def mu(self) -> np.ndarray:
        """Interior view of the chemical potential, shape (*spatial, K−1)."""
        return self._interior("mu")

    def set_state(self, phi: np.ndarray, mu: np.ndarray | float = 0.0) -> None:
        """Initialize interior φ and µ (µ may be a constant)."""
        if phi.shape != self.shape + (self.params.n_phases,):
            raise ValueError(
                f"phi must have shape {self.shape + (self.params.n_phases,)}"
            )
        self._interior("phi")[...] = phi
        self._interior("mu")[...] = mu
        self._fill("phi")
        self._fill("mu")

    # -- stepping ----------------------------------------------------------------

    def _fill(self, name: str) -> None:
        with self.profiler.measure(f"fill:{name}"):
            fill_ghosts(
                self.arrays[name], self.ghost_layers, self.params.dim, self.boundary
            )

    def _run(self, compiled, **extra) -> None:
        with self.profiler.measure(compiled.name, cells=self._cells_per_sweep):
            compiled(
                self.arrays,
                ghost_layers=self.ghost_layers,
                t=self.time,
                time_step=self.time_step,
                seed=self.seed,
                **extra,
            )

    def add_callback(self, fn, every: int = 1) -> None:
        """Register an in-situ hook ``fn(solver)`` run every *every* steps.

        The paper's §4.1 Python interface for "in-situ evaluation and
        computational steering": callbacks see (and may modify) the live
        state between time steps.
        """
        if every < 1:
            raise ValueError("every must be >= 1")
        self._callbacks.append((int(every), fn))

    def save_checkpoint(self, path):
        """Write φ, µ and the time state to a compressed checkpoint.

        Returns the actual file path (``.npz`` is appended when missing, the
        same normalization :meth:`load_checkpoint` applies).
        """
        from ..analysis.io import save_snapshot

        return save_snapshot(
            path, self.phi.copy(), self.mu.copy(), self.time, self.time_step
        )

    def load_checkpoint(self, path) -> None:
        """Restore a checkpoint written by :meth:`save_checkpoint`.

        Accepts the same path that was passed to :meth:`save_checkpoint`,
        with or without the ``.npz`` suffix.
        """
        from ..analysis.io import load_snapshot

        data = load_snapshot(path)
        self.set_state(data["phi"], data["mu"])
        self.time = data["time"]
        self.time_step = data["time_step"]

    def step(self, n_steps: int = 1) -> None:
        """Advance the solution by *n_steps* explicit Euler steps."""
        for _ in range(n_steps):
            for k in self._phi:
                self._run(k)
            self._run(self._project)
            self._fill("phi_dst")
            for k in self._mu:
                self._run(k)
            self._fill("mu_dst")
            self.arrays["phi"], self.arrays["phi_dst"] = (
                self.arrays["phi_dst"],
                self.arrays["phi"],
            )
            self.arrays["mu"], self.arrays["mu_dst"] = (
                self.arrays["mu_dst"],
                self.arrays["mu"],
            )
            self.time_step += 1
            self.time += self.params.dt
            for every, fn in self._callbacks:
                if self.time_step % every == 0:
                    fn(self)

    # -- diagnostics ----------------------------------------------------------

    def profile_report(self) -> str:
        """Per-kernel timing table (calls, wall time, MLUP/s) for this solver."""
        return self.profiler.report(
            f"solver profile: {self.shape} interior, backend={self.backend!r}, "
            f"{self.time_step} steps"
        )

    def phase_fractions(self) -> np.ndarray:
        """Volume fraction of every phase."""
        return self.phi.reshape(-1, self.params.n_phases).mean(axis=0)

    def check_invariants(self, atol: float = 1e-9) -> None:
        """Assert Σφ = 1 and φ ∈ [0, 1] (post-projection invariants)."""
        phi = self.phi
        if not np.all((phi >= -atol) & (phi <= 1 + atol)):
            raise AssertionError("phase fields left [0, 1]")
        if not np.allclose(phi.sum(axis=-1), 1.0, atol=1e-7):
            raise AssertionError("phase fields do not sum to one")
