"""The grand-potential phase-field model: functional → PDEs → kernels.

This module performs the paper's full vertical assembly (Fig. 1):

1. build the energy density ``ε a(φ,∇φ) + ω(φ)/ε + ψ(φ,µ,T)`` from a
   :class:`~repro.pfm.parameters.ModelParameters` configuration,
2. derive the N Allen-Cahn equations by variational derivative, add the
   Lagrange multiplier ``Λ = (1/N) Σ δΨ/δφ_β`` and optional Philox
   fluctuations (Eq. 7),
3. construct the K−1 chemical-potential equations non-variationally
   (Eq. 8) with mobility (Eq. 9) and anti-trapping current (Eq. 10),
4. discretize (full or split variants) and produce backend-ready kernels,
   including the Gibbs-simplex projection that realizes the obstacle part
   of the potential.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import sympy as sp

from ..discretization import (
    FiniteDifferenceDiscretization,
    SplitKernels,
    discretize_system,
)
from ..ir import Kernel, KernelConfig, create_kernel
from ..observability.log import get_logger, kv
from ..observability.tracing import get_tracer
from ..symbolic import (
    Assignment,
    AssignmentCollection,
    Divergence,
    EnergyFunctional,
    EvolutionEquation,
    Field,
    PDESystem,
    functional_derivative,
    random_uniform,
)
from ..symbolic.coordinates import dt as dt_symbol, spacing
from ..symbolic.operators import Diff, Transient
from .antitrapping import anti_trapping_current
from .driving_force import GrandPotentialDrivingForce
from .gradient_energy import anisotropic_gradient_energy, isotropic_gradient_energy
from .interpolation import g_interp, h_interp, h_interp_prime
from .parameters import ModelParameters
from .potentials import multi_obstacle_potential

__all__ = ["GrandPotentialModel", "PhaseFieldKernelSet"]

_TAU_EPS = sp.Float(1e-9)
_log = get_logger("pfm.model")


@dataclass
class PhaseFieldKernelSet:
    """All kernels of one time step (Algorithm 1) plus their fields."""

    model: "GrandPotentialModel"
    phi_kernels: list[Kernel]
    projection_kernel: Kernel
    mu_kernels: list[Kernel]
    variant_phi: str
    variant_mu: str

    @property
    def all_kernels(self) -> list[Kernel]:
        return self.phi_kernels + [self.projection_kernel] + self.mu_kernels

    @property
    def fields(self) -> list[Field]:
        seen: dict[str, Field] = {}
        for k in self.all_kernels:
            for f in k.fields:
                seen[f.name] = f
        return [seen[n] for n in sorted(seen)]

    @property
    def ghost_layers(self) -> int:
        return max(k.ghost_layers for k in self.all_kernels)


class GrandPotentialModel:
    """Symbolic assembly of the thermodynamically consistent model."""

    def __init__(self, params: ModelParameters):
        self.params = params
        n, k, dim = params.n_phases, params.n_mu, params.dim
        self.phi = Field("phi", dim, (n,))
        self.phi_dst = Field("phi_dst", dim, (n,))
        self.mu = Field("mu", dim, (k,))
        self.mu_dst = Field("mu_dst", dim, (k,))
        self.driving_force = GrandPotentialDrivingForce(params.phases)
        self.T = params.temperature.expr
        self._dpsi_cache: list[sp.Expr] | None = None

    # -- energy functional layer (paper §3.1) --------------------------------

    def gradient_energy(self) -> sp.Expr:
        p = self.params
        if p.anisotropy is None:
            return isotropic_gradient_energy(self.phi, p.gamma)
        return anisotropic_gradient_energy(self.phi, p.gamma, p.anisotropy)

    def obstacle_potential(self) -> sp.Expr:
        p = self.params
        return multi_obstacle_potential(self.phi, p.gamma, p.gamma_triple)

    def energy_functional(self) -> EnergyFunctional:
        with get_tracer().span(
            "assemble_energy_functional",
            category="functional",
            phases=self.params.n_phases,
        ):
            return EnergyFunctional(
                gradient_energy=self.gradient_energy(),
                potential=self.obstacle_potential(),
                driving_force=self.driving_force.psi_total(self.phi, self.mu, self.T),
                epsilon=sp.Float(self.params.epsilon),
            )

    def energy_density(self) -> sp.Expr:
        return self.energy_functional().density

    # -- PDE layer (paper §3.2) ------------------------------------------------

    def variational_derivatives(self) -> list[sp.Expr]:
        """δΨ/δφ_α for every phase (cached — they are expensive)."""
        if self._dpsi_cache is None:
            with get_tracer().span(
                "variational_derivatives",
                category="pde",
                phases=self.params.n_phases,
            ):
                density = self.energy_density()
                self._dpsi_cache = [
                    functional_derivative(density, self.phi.center(a))
                    for a in range(self.params.n_phases)
                ]
        return self._dpsi_cache

    def tau_interpolated(self) -> sp.Expr:
        """Local kinetic coefficient from pairwise τ_αβ (paper §3.2)."""
        p = self.params
        n = p.n_phases
        num = sp.Add(
            *[
                sp.Float(p.tau[a, b]) * self.phi.center(a) * self.phi.center(b)
                for b in range(n)
                for a in range(b)
            ]
        )
        den = sp.Add(
            *[self.phi.center(a) * self.phi.center(b) for b in range(n) for a in range(b)]
        )
        off = p.tau[~np.eye(n, dtype=bool)]
        fallback = sp.Float(float(off.mean()))
        return sp.Piecewise((num / den, den > _TAU_EPS), (fallback, True))

    def phi_system(self) -> PDESystem:
        """Allen-Cahn equations with Lagrange multiplier and fluctuations."""
        with get_tracer().span("build_phi_system", category="pde"):
            return self._phi_system()

    def _phi_system(self) -> PDESystem:
        p = self.params
        n = p.n_phases
        dpsi = self.variational_derivatives()
        lam = sp.Add(*dpsi) / n
        relax = self.tau_interpolated() * sp.Float(p.epsilon)
        equations = []
        for a in range(n):
            rhs = -dpsi[a] + lam
            if p.fluctuation_amplitude:
                rhs += sp.Float(p.fluctuation_amplitude) * random_uniform(
                    -1, 1, stream=a
                )
            equations.append(
                EvolutionEquation(self.phi.center(a), rhs, relaxation=relax)
            )
        return PDESystem(equations, name="phi")

    def mobility_matrix(self) -> sp.Matrix:
        """Eq. (9): M = Σ_α D_α (∂c_α/∂µ) g_α(φ)."""
        p = self.params
        k = p.n_mu
        total = sp.zeros(k, k)
        for a, phase in enumerate(p.phases):
            total += (
                sp.Float(p.diffusivities[a])
                * phase.susceptibility(self.T)
                * g_interp(self.phi.center(a))
            )
        return total

    def mu_system(self) -> PDESystem:
        """Eq. (8): the non-variational chemical potential evolution."""
        with get_tracer().span("build_mu_system", category="pde"):
            return self._mu_system()

    def _mu_system(self) -> PDESystem:
        p = self.params
        k = p.n_mu
        mv = self.driving_force.mu_vector(self.mu)

        chi = self.driving_force.susceptibility_total(self.phi, self.T)
        chi_inv = chi.inv() if k > 1 else sp.Matrix([[1 / chi[0, 0]]])
        M = self.mobility_matrix()

        if p.anti_trapping:
            jat = anti_trapping_current(
                self.phi,
                self.mu,
                self.driving_force,
                self.T,
                sp.Float(p.epsilon),
                p.liquid_phase,
                dim=p.dim,
            )
        else:
            jat = [[sp.S.Zero] * p.dim for _ in range(k)]

        div_terms = []
        for m in range(k):
            flux = [
                sp.Add(*[M[m, n_] * Diff(self.mu.center(n_), i) for n_ in range(k)])
                - jat[m][i]
                for i in range(p.dim)
            ]
            div_terms.append(Divergence(flux))

        # source terms: −Σ_α (∂c/∂φ_α) ∂φ_α/∂t − (∂c/∂T) ∂T/∂t
        sources = [sp.S.Zero] * k
        for a, phase in enumerate(p.phases):
            c_a = phase.concentration(mv, self.T)
            hp = h_interp_prime(self.phi.center(a))
            dphidt = Transient(self.phi.center(a))
            for m in range(k):
                sources[m] -= c_a[m] * hp * dphidt
        dTdt = self.params.temperature.time_derivative
        if dTdt != 0:
            for a, phase in enumerate(p.phases):
                dc_dT = -(
                    2 * sp.Matrix(phase.a1.tolist()) * mv
                    + sp.Matrix(phase.b1.tolist())
                )
                h_a = h_interp(self.phi.center(a))
                for m in range(k):
                    sources[m] -= dc_dT[m] * h_a * dTdt

        equations = []
        for m in range(k):
            rhs = sp.Add(
                *[chi_inv[m, n_] * (div_terms[n_] + sources[n_]) for n_ in range(k)]
            )
            equations.append(EvolutionEquation(self.mu.center(m), rhs))
        return PDESystem(equations, name="mu")

    def projection_collection(self) -> AssignmentCollection:
        """Gibbs-simplex projection realizing the obstacle potential.

        Clips every updated phase field to [0, 1] and renormalizes the sum
        to one — the standard treatment of the multi-obstacle potential.
        """
        n = self.params.n_phases
        clipped = [
            Assignment(
                sp.Symbol(f"clip_{a}", real=True),
                sp.Min(sp.Integer(1), sp.Max(sp.Integer(0), self.phi_dst.center(a))),
            )
            for a in range(n)
        ]
        total = Assignment(
            sp.Symbol("clip_total", real=True),
            # guard against the (unphysical) all-clipped-to-zero cell
            sp.Max(sp.Add(*[c.lhs for c in clipped]), sp.Float(1e-300)),
        )
        mains = [
            Assignment(self.phi_dst.center(a), clipped[a].lhs / total.lhs)
            for a in range(n)
        ]
        return AssignmentCollection(mains, clipped + [total], name="phi_project")

    # -- discretization & kernel creation (paper §3.3–3.4) ------------------------

    def discretizer(self) -> FiniteDifferenceDiscretization:
        return FiniteDifferenceDiscretization(
            dim=self.params.dim,
            dst_map={self.phi: self.phi_dst, self.mu: self.mu_dst},
        )

    def compile_time_constants(self) -> dict:
        p = self.params
        consts = {dt_symbol: p.dt}
        for d in range(p.dim):
            consts[spacing(d)] = p.dx
        return consts

    def create_kernels(
        self,
        variant_phi: str = "full",
        variant_mu: str = "full",
        target: str = "cpu",
        approximations: tuple = (),
        fold_constants: bool = True,
    ) -> PhaseFieldKernelSet:
        """Discretize both systems and lower them to kernels.

        ``variant_*`` select the full (recompute) or split (staggered
        pre-computation) kernel forms — the µ-full / µ-split / φ-full /
        φ-split variants of Table 1 and Algorithm 1.
        """
        disc = self.discretizer()
        config = KernelConfig(
            target=target,
            approximations=approximations,
            parameter_values=self.compile_time_constants() if fold_constants else None,
        )

        def build(system: PDESystem, dst: Field, variant: str, flux_name: str):
            result = discretize_system(
                system, dst, disc, variant=variant, flux_field_name=flux_name
            )
            if isinstance(result, SplitKernels):
                return [
                    create_kernel(result.flux_kernel, config),
                    create_kernel(result.main_kernel, config),
                ]
            return [create_kernel(result, config)]

        with get_tracer().span(
            "create_kernels",
            category="pipeline",
            variant_phi=variant_phi,
            variant_mu=variant_mu,
            target=target,
        ):
            phi_kernels = build(
                self.phi_system(), self.phi_dst, variant_phi, "phi_flux"
            )
            mu_kernels = build(self.mu_system(), self.mu_dst, variant_mu, "mu_flux")
            projection = create_kernel(
                self.projection_collection(), KernelConfig(target=target)
            )
        kernel_set = PhaseFieldKernelSet(
            model=self,
            phi_kernels=phi_kernels,
            projection_kernel=projection,
            mu_kernels=mu_kernels,
            variant_phi=variant_phi,
            variant_mu=variant_mu,
        )
        _log.info(
            kv(
                "kernel_set_created",
                kernels=len(kernel_set.all_kernels),
                variant_phi=variant_phi,
                variant_mu=variant_mu,
                target=target,
                ghost_layers=kernel_set.ghost_layers,
            )
        )
        return kernel_set
