"""Grand-potential driving force from parabolic fits — Eq. (6) of the paper.

Instead of calling CALPHAD thermodynamic databases at run time, each phase's
grand potential density is a parabolic fit

.. math::  \\psi_\\alpha(\\mu, T) = \\mu \\cdot A_\\alpha(T)\\,\\mu
            + B_\\alpha(T) \\cdot \\mu + C_\\alpha(T)

with coefficients affine-linear in T:  ``A(T) = A⁰ + A¹ T`` etc.  ``µ`` is
the (K−1)-dimensional chemical potential vector of a K-component alloy.

Derived thermodynamic quantities (all computed symbolically, "as soon as
the functional dependence of c on µ is defined"):

* concentration      ``c_α = −∂ψ_α/∂µ``  (vector)
* susceptibility     ``∂c_α/∂µ``          (symmetric matrix)
* entropy density    ``−∂ψ_α/∂T``
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import sympy as sp

from ..symbolic.field import Field
from .interpolation import h_interp

__all__ = ["ParabolicPhaseData", "GrandPotentialDrivingForce"]


def _affine(c0, c1, T: sp.Expr):
    return sp.sympify(c0) + sp.sympify(c1) * T


@dataclass
class ParabolicPhaseData:
    """Parabolic grand-potential coefficients of one phase.

    ``a0``/``a1``: symmetric (K−1)×(K−1) arrays — constant and T-linear part
    of A(T); ``b0``/``b1``: length K−1 vectors; ``c0``/``c1``: scalars.
    """

    a0: np.ndarray
    a1: np.ndarray
    b0: np.ndarray
    b1: np.ndarray
    c0: float
    c1: float

    def __post_init__(self):
        self.a0 = np.atleast_2d(np.asarray(self.a0, dtype=float))
        self.a1 = np.atleast_2d(np.asarray(self.a1, dtype=float))
        self.b0 = np.atleast_1d(np.asarray(self.b0, dtype=float))
        self.b1 = np.atleast_1d(np.asarray(self.b1, dtype=float))
        k = self.b0.shape[0]
        if self.a0.shape != (k, k) or self.a1.shape != (k, k):
            raise ValueError("A coefficient shape mismatch")
        if not np.allclose(self.a0, self.a0.T) or not np.allclose(self.a1, self.a1.T):
            raise ValueError("A(T) must be symmetric")

    @property
    def n_mu(self) -> int:
        return self.b0.shape[0]

    def a_matrix(self, T: sp.Expr) -> sp.Matrix:
        k = self.n_mu
        return sp.Matrix(
            k, k, lambda i, j: _affine(self.a0[i, j], self.a1[i, j], T)
        )

    def b_vector(self, T: sp.Expr) -> sp.Matrix:
        return sp.Matrix([_affine(self.b0[i], self.b1[i], T) for i in range(self.n_mu)])

    def c_scalar(self, T: sp.Expr) -> sp.Expr:
        return _affine(self.c0, self.c1, T)

    # -- thermodynamics ------------------------------------------------------

    def psi(self, mu: sp.Matrix, T: sp.Expr) -> sp.Expr:
        """Grand potential density ψ_α(µ, T) — Eq. (6)."""
        A = self.a_matrix(T)
        return (mu.T * A * mu)[0, 0] + (self.b_vector(T).T * mu)[0, 0] + self.c_scalar(T)

    def concentration(self, mu: sp.Matrix, T: sp.Expr) -> sp.Matrix:
        """c_α(µ, T) = −∂ψ_α/∂µ = −(2 A µ + B)."""
        return -(2 * self.a_matrix(T) * mu + self.b_vector(T))

    def susceptibility(self, T: sp.Expr) -> sp.Matrix:
        """∂c_α/∂µ = −2 A(T) (independent of µ for parabolic fits)."""
        return -2 * self.a_matrix(T)

    def parameter_count(self) -> int:
        """Number of scalar configuration values this phase contributes."""
        k = self.n_mu
        sym = k * (k + 1) // 2
        return 2 * (sym + k + 1)  # ×2 for the affine-linear T dependence


class GrandPotentialDrivingForce:
    """ψ(φ, µ, T) = Σ_α ψ_α(µ, T) h_α(φ_α) and its derived quantities."""

    def __init__(self, phases: list[ParabolicPhaseData], h=h_interp):
        if not phases:
            raise ValueError("need at least one phase")
        k = {p.n_mu for p in phases}
        if len(k) != 1:
            raise ValueError("phases disagree on the number of µ components")
        self.phases = list(phases)
        self.h = h

    @property
    def n_phases(self) -> int:
        return len(self.phases)

    @property
    def n_mu(self) -> int:
        return self.phases[0].n_mu

    def mu_vector(self, mu: Field) -> sp.Matrix:
        if mu.index_shape != (self.n_mu,):
            raise ValueError(
                f"µ field has index shape {mu.index_shape}, expected ({self.n_mu},)"
            )
        return sp.Matrix([mu.center(m) for m in range(self.n_mu)])

    def psi_total(self, phi: Field, mu: Field, T: sp.Expr) -> sp.Expr:
        """The driving-force part of the energy density."""
        mv = self.mu_vector(mu)
        return sp.Add(
            *[
                p.psi(mv, T) * self.h(phi.center(a))
                for a, p in enumerate(self.phases)
            ]
        )

    def concentration_total(self, phi: Field, mu: Field, T: sp.Expr) -> sp.Matrix:
        """c(φ, µ, T) = Σ_α c_α(µ, T) h_α(φ)."""
        mv = self.mu_vector(mu)
        total = sp.zeros(self.n_mu, 1)
        for a, p in enumerate(self.phases):
            total += p.concentration(mv, T) * self.h(phi.center(a))
        return total

    def susceptibility_total(self, phi: Field, T: sp.Expr) -> sp.Matrix:
        """∂c/∂µ = Σ_α (∂c_α/∂µ) h_α(φ) — the matrix inverted in Eq. (8)."""
        total = sp.zeros(self.n_mu, self.n_mu)
        for a, p in enumerate(self.phases):
            total += p.susceptibility(T) * self.h(phi.center(a))
        return total

    def parameter_count(self) -> int:
        """Total driving-force configuration parameters (paper §5.1)."""
        return sum(p.parameter_count() for p in self.phases)
