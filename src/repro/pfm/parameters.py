"""Model parameterizations, including the paper's P1 and P2 setups (§5.1).

* **P1** — 4 phases, 3 components (ternary eutectic directional
  solidification, the setup manually optimized in [Bauer et al. 2015]):
  *isotropic* gradient energy (``A_{αβ} = 1``) and an analytic temperature
  gradient depending on time and one spatial coordinate.
* **P2** — 3 phases, 2 components, *anisotropic* gradient energy (cubic,
  with per-grain rotations): dendritic solidification.  The apparently
  small change quadruples the φ-kernel FLOPs (Table 1) — without code
  generation "a complete re-implementation of the kernel would have been
  necessary".

All values are non-dimensionalized; magnitudes follow the grand-potential
literature (interface width ≈ 4Δx, parabolic free energies concave in µ).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

import numpy as np

from .driving_force import ParabolicPhaseData
from .gradient_energy import CubicAnisotropy, rotation_matrix
from .temperature import TemperatureField, constant_temperature, gradient_temperature

__all__ = ["ModelParameters", "make_p1", "make_p2", "make_two_phase_binary"]


@dataclass
class ModelParameters:
    """Complete configuration of a grand-potential phase-field model."""

    name: str
    dim: int
    phases: list[ParabolicPhaseData]          # one entry per phase α
    gamma: np.ndarray                          # (N, N) interface energies
    tau: np.ndarray                            # (N, N) kinetic coefficients
    diffusivities: np.ndarray                  # (N,) per-phase diffusivities
    temperature: TemperatureField
    epsilon: float = 4.0                       # interface width parameter
    dx: float = 1.0
    dt: float = 0.01
    gamma_triple: float | None = None          # third-phase suppression
    anisotropy: CubicAnisotropy | None = None
    liquid_phase: int = -1                     # index; -1 → last phase
    fluctuation_amplitude: float = 0.0
    anti_trapping: bool = True

    def __post_init__(self):
        self.gamma = np.asarray(self.gamma, dtype=float)
        self.tau = np.asarray(self.tau, dtype=float)
        self.diffusivities = np.asarray(self.diffusivities, dtype=float)
        n = self.n_phases
        if self.gamma.shape != (n, n) or self.tau.shape != (n, n):
            raise ValueError("gamma/tau must be (N, N)")
        if not np.allclose(self.gamma, self.gamma.T):
            raise ValueError("gamma must be symmetric")
        if self.diffusivities.shape != (n,):
            raise ValueError("diffusivities must have one entry per phase")
        if self.liquid_phase < 0:
            self.liquid_phase += n
        if not 0 <= self.liquid_phase < n:
            raise ValueError("liquid_phase out of range")

    @property
    def n_phases(self) -> int:
        return len(self.phases)

    @property
    def n_mu(self) -> int:
        return self.phases[0].n_mu

    @property
    def n_components(self) -> int:
        return self.n_mu + 1

    def configuration_parameter_count(self) -> int:
        """Scalar values fixed at compile time (paper §5.1's counting).

        Driving force: 2·(sym(K−1) + (K−1) + 1) per phase; mobilities add
        N·(K−1)²; plus pairwise γ and τ matrices.
        """
        n = self.n_phases
        k = self.n_mu
        driving = sum(p.parameter_count() for p in self.phases)
        mobility = n * k * k
        pairwise = 2 * (n * (n - 1) // 2)
        return driving + mobility + pairwise


def _phase(a_diag, b, c0, c1, a1_scale=0.0, b1=None):
    """Helper: isotropic-in-µ parabolic phase with concave A = −diag(a_diag)."""
    a_diag = np.atleast_1d(np.asarray(a_diag, dtype=float))
    k = a_diag.shape[0]
    a0 = -np.diag(a_diag)
    a1 = a1_scale * np.eye(k)
    b = np.atleast_1d(np.asarray(b, dtype=float))
    b1 = np.zeros(k) if b1 is None else np.atleast_1d(np.asarray(b1, dtype=float))
    return ParabolicPhaseData(a0=a0, a1=a1, b0=b, b1=b1, c0=c0, c1=c1)


def make_p1(
    dim: int = 3,
    fluctuation_amplitude: float = 0.0,
    G: float = 1e-3,
    v: float = 1e-3,
    T0: float = 1.0,
) -> ModelParameters:
    """Setup P1: ternary eutectic (4 phases / 3 components), isotropic.

    The three solid phases differ in their preferred concentrations (B
    vectors) and in the temperature sensitivity of their potentials (c1),
    giving a eutectic driving force below T0; the liquid is the reference.
    """
    # identical, T-constant A matrices keep the susceptibility inverse cheap
    # (a "simplified configuration" the code generator exploits, §5.1);
    # the T-linear B vectors carry the temperature dependence of the
    # concentrations into the fluxes and the anti-trapping current.
    # ψ_s − ψ_l = B·µ + c1·(T − T_m) with T_m = 1: solids are favored below
    # the eutectic temperature, with the moving gradient selecting the front
    solids = [
        _phase([0.5, 0.5], [+0.30, +0.10], -0.25, +0.25, b1=[0.02, 0.01]),
        _phase([0.5, 0.5], [-0.30, +0.10], -0.25, +0.25, b1=[-0.02, 0.01]),
        _phase([0.5, 0.5], [+0.00, -0.35], -0.25, +0.25, b1=[0.00, -0.02]),
    ]
    liquid = _phase([0.5, 0.5], [0.0, 0.0], 0.0, 0.0)
    n = 4
    gamma = np.full((n, n), 1.0)
    np.fill_diagonal(gamma, 0.0)
    tau = np.full((n, n), 1.0)
    d = np.array([0.1, 0.1, 0.1, 1.0])  # liquid diffuses fastest
    return ModelParameters(
        name="P1",
        dim=dim,
        phases=solids + [liquid],
        gamma=gamma,
        tau=tau,
        diffusivities=d,
        temperature=gradient_temperature(T0=T0, G=G, v=v, axis=0),
        epsilon=4.0,
        dx=1.0,
        dt=5e-3,
        gamma_triple=15.0,
        anisotropy=None,
        liquid_phase=3,
        fluctuation_amplitude=fluctuation_amplitude,
    )


def make_p2(
    dim: int = 3,
    delta: float = 0.3,
    orientations_deg: tuple = (10.0, 40.0),
    fluctuation_amplitude: float = 0.0,
    undercooling: float = 0.3,
) -> ModelParameters:
    """Setup P2: binary dendritic solidification (3 phases / 2 components).

    Two solid grains with different cubic-anisotropy orientations compete
    in an undercooled binary melt (constant temperature below liquidus).
    """
    # melting point T_m = 1: ψ_s − ψ_l = 0.25µ + 0.5(T − 1)
    solids = [
        _phase([0.5], [+0.25], -0.5, +0.5),
        _phase([0.5], [+0.25], -0.5, +0.5),
    ]
    liquid = _phase([0.5], [0.0], 0.0, 0.0)
    n = 3
    gamma = np.full((n, n), 1.0)
    np.fill_diagonal(gamma, 0.0)
    tau = np.full((n, n), 1.0)
    d = np.array([0.05, 0.05, 1.0])
    # full 3D misorientations (second Euler angle tilts out of plane) —
    # dense rotation matrices, as for the competing grains of Fig. 4
    rotations = {
        i: rotation_matrix(np.deg2rad(angle), np.deg2rad(15.0))
        for i, angle in enumerate(orientations_deg)
    }
    return ModelParameters(
        name="P2",
        dim=dim,
        phases=solids + [liquid],
        gamma=gamma,
        tau=tau,
        diffusivities=d,
        temperature=constant_temperature(1.0 - undercooling),
        epsilon=4.0,
        dx=1.0,
        dt=5e-3,
        gamma_triple=10.0,
        anisotropy=CubicAnisotropy(delta=delta, rotations=rotations),
        liquid_phase=2,
        fluctuation_amplitude=fluctuation_amplitude,
    )


def make_two_phase_binary(dim: int = 2, anti_trapping: bool = False) -> ModelParameters:
    """Minimal 2-phase / 2-component model used for reference validation."""
    # ψ_s − ψ_l = 0.2µ + 0.5(T − 1): solid favored below T_m = 1
    solid = _phase([0.5], [+0.2], -0.5, +0.5)
    liquid = _phase([0.5], [0.0], 0.0, 0.0)
    gamma = np.array([[0.0, 1.0], [1.0, 0.0]])
    tau = np.ones((2, 2))
    return ModelParameters(
        name="binary2",
        dim=dim,
        phases=[solid, liquid],
        gamma=gamma,
        tau=tau,
        diffusivities=np.array([0.2, 1.0]),
        temperature=constant_temperature(0.8),
        epsilon=4.0,
        dx=1.0,
        dt=5e-3,
        gamma_triple=None,
        liquid_phase=1,
        anti_trapping=anti_trapping,
    )
