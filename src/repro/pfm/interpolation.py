"""Interpolation functions for multi-phase-field models (paper §3.1–3.2).

Two families are used by the grand-potential model:

* ``h_α(φ)`` — interpolates the grand potential density between phases.  It
  must map 0→0, 1→1 with zero gradient at both ends so that the bulk states
  are stationary.  The standard cubic polynomial ``h(x) = x²(3−2x)`` is the
  default.
* ``g_α(φ)`` — a *simpler* interpolation for the mobility, following
  Karma's non-variational formulation (the paper's remark below Eq. 9).
  Linear ``g(x) = x`` by default.
"""

from __future__ import annotations

import sympy as sp

__all__ = ["h_interp", "h_interp_prime", "g_interp", "h_quintic", "h_quintic_prime"]


def h_interp(x: sp.Expr) -> sp.Expr:
    """Cubic interpolation ``x²(3 − 2x)``: h(0)=0, h(1)=1, h'(0)=h'(1)=0."""
    x = sp.sympify(x)
    return x**2 * (3 - 2 * x)


def h_interp_prime(x: sp.Expr) -> sp.Expr:
    """Derivative ``6x(1 − x)`` of the cubic interpolation."""
    x = sp.sympify(x)
    return 6 * x * (1 - x)


def h_quintic(x: sp.Expr) -> sp.Expr:
    """Quintic interpolation ``x³(10 − 15x + 6x²)`` (also h''(0)=h''(1)=0)."""
    x = sp.sympify(x)
    return x**3 * (10 - 15 * x + 6 * x**2)


def h_quintic_prime(x: sp.Expr) -> sp.Expr:
    """Derivative ``30x²(1 − x)²`` of the quintic interpolation."""
    x = sp.sympify(x)
    return 30 * x**2 * (1 - x) ** 2


def g_interp(x: sp.Expr) -> sp.Expr:
    """Mobility interpolation (linear) used in Eq. 9."""
    return sp.sympify(x)
