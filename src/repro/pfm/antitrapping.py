"""Anti-trapping current J_at — Eq. (10) of the paper.

The thin-interface correction of Karma, generalized to multi-phase
multi-component systems [Choudhury & Nestler 2012]: a solute flux directed
along the interface normal of each solid phase α against the liquid l,

.. math::

    J_{at} = \\frac{\\pi\\epsilon}{4} \\sum_{\\alpha \\ne l}
        \\frac{g_\\alpha(\\phi)\\,h_l(\\phi)}{\\sqrt{\\phi_\\alpha\\phi_l}}
        \\, \\frac{\\partial\\phi_\\alpha}{\\partial t}
        \\, \\big(\\hat n_\\alpha \\cdot \\hat n_l\\big)
        \\, \\big(c_l(\\mu) - c_\\alpha(\\mu)\\big)\\, \\hat n_\\alpha

with normals ``n̂_α = ∇φ_α/|∇φ_α|``.  The normalizations introduce the
inverse square roots and the ``√(φ_α φ_l)`` the square roots counted for the
µ kernels in Table 1.  ``∂φ_α/∂t`` stays a :class:`Transient` node; the
discretizer resolves it to ``(φ_dst − φ_src)/dt``, which is why the µ kernel
reads both φ arrays with a wide (D3C19) stencil.
"""

from __future__ import annotations

import sympy as sp

from ..symbolic.field import Field
from ..symbolic.operators import Diff, Transient
from .driving_force import GrandPotentialDrivingForce
from .interpolation import g_interp, h_interp

__all__ = ["anti_trapping_current"]

#: Regularizations keeping bulk regions finite (numerator vanishes faster).
_NORM_EPS = sp.Float(1e-32)
_PHI_EPS = sp.Float(1e-16)


def anti_trapping_current(
    phi: Field,
    mu: Field,
    driving_force: GrandPotentialDrivingForce,
    T: sp.Expr,
    epsilon: sp.Expr,
    liquid_phase: int,
    dim: int | None = None,
    g=g_interp,
    h=h_interp,
) -> list[list[sp.Expr]]:
    """Return ``J_at[m][i]`` — µ-component m, spatial direction i."""
    dim = dim or phi.spatial_dimensions
    (n,) = phi.index_shape
    if not 0 <= liquid_phase < n:
        raise ValueError(f"liquid phase index {liquid_phase} out of range")

    mv = driving_force.mu_vector(mu)
    k = driving_force.n_mu

    phil = phi.center(liquid_phase)
    grad_l = [Diff(phil, i) for i in range(dim)]
    inv_norm_l = (sp.Add(*[gi**2 for gi in grad_l]) + _NORM_EPS) ** sp.Rational(-1, 2)
    c_l = driving_force.phases[liquid_phase].concentration(mv, T)

    jat = [[sp.S.Zero for _ in range(dim)] for _ in range(k)]
    prefactor = sp.pi * epsilon / 4

    for a in range(n):
        if a == liquid_phase:
            continue
        phia = phi.center(a)
        grad_a = [Diff(phia, i) for i in range(dim)]
        inv_norm_a = (sp.Add(*[gi**2 for gi in grad_a]) + _NORM_EPS) ** sp.Rational(
            -1, 2
        )
        normal_dot = sp.Add(*[ga * gl for ga, gl in zip(grad_a, grad_l)]) * (
            inv_norm_a * inv_norm_l
        )
        weight = g(phia) * h(phil) / sp.sqrt(phia * phil + _PHI_EPS)
        c_a = driving_force.phases[a].concentration(mv, T)
        dphidt = Transient(phia)
        common = prefactor * weight * dphidt * normal_dot
        for m in range(k):
            delta_c = c_l[m] - c_a[m]
            for i in range(dim):
                jat[m][i] += common * delta_c * grad_a[i] * inv_norm_a
    return jat
