"""Grand-potential phase-field models — the paper's application layer."""

from .antitrapping import anti_trapping_current
from .driving_force import GrandPotentialDrivingForce, ParabolicPhaseData
from .gradient_energy import (
    CubicAnisotropy,
    anisotropic_gradient_energy,
    generalized_gradient,
    isotropic_gradient_energy,
    rotation_matrix,
)
from .initialize import (
    add_seed,
    interface_profile,
    lamellar_front,
    normalize_phases,
    planar_front,
)
from .interpolation import g_interp, h_interp, h_interp_prime, h_quintic
from .model import GrandPotentialModel, PhaseFieldKernelSet
from .parameters import ModelParameters, make_p1, make_p2, make_two_phase_binary
from .potentials import multi_obstacle_potential, multi_well_potential
from .solver import SingleBlockSolver
from .temperature import TemperatureField, constant_temperature, gradient_temperature

__all__ = [
    "anti_trapping_current",
    "GrandPotentialDrivingForce",
    "ParabolicPhaseData",
    "CubicAnisotropy",
    "anisotropic_gradient_energy",
    "generalized_gradient",
    "isotropic_gradient_energy",
    "rotation_matrix",
    "add_seed",
    "interface_profile",
    "lamellar_front",
    "normalize_phases",
    "planar_front",
    "g_interp",
    "h_interp",
    "h_interp_prime",
    "h_quintic",
    "GrandPotentialModel",
    "PhaseFieldKernelSet",
    "ModelParameters",
    "make_p1",
    "make_p2",
    "make_two_phase_binary",
    "multi_obstacle_potential",
    "multi_well_potential",
    "SingleBlockSolver",
    "TemperatureField",
    "constant_temperature",
    "gradient_temperature",
]
