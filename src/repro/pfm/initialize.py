"""Initial conditions for phase-field simulations.

All helpers operate on interior-shaped arrays with the phase index last,
``phi[..., α]``, matching the field layout of the generated kernels.
The interface profile is the obstacle-potential equilibrium
``φ(d) = ½(1 − sin(d/ε))`` clamped to [0, 1] (interface width πε).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "interface_profile",
    "planar_front",
    "add_seed",
    "lamellar_front",
    "normalize_phases",
]


def interface_profile(distance: np.ndarray, epsilon: float) -> np.ndarray:
    """Equilibrium profile: 1 on the negative side, 0 on the positive side."""
    arg = np.clip(np.asarray(distance, dtype=float) / epsilon, -np.pi / 2, np.pi / 2)
    return 0.5 * (1.0 - np.sin(arg))


def _cell_centers(shape: tuple[int, ...], dx: float) -> list[np.ndarray]:
    grids = np.indices(shape, dtype=float)
    return [(g + 0.5) * dx for g in grids]


def normalize_phases(phi: np.ndarray) -> np.ndarray:
    """Clip to [0,1] and renormalize so that Σ_α φ_α = 1 everywhere."""
    phi = np.clip(phi, 0.0, 1.0)
    total = phi.sum(axis=-1, keepdims=True)
    total[total == 0] = 1.0
    return phi / total


def planar_front(
    shape: tuple[int, ...],
    n_phases: int,
    solid_phase: int,
    liquid_phase: int,
    position: float,
    epsilon: float,
    dx: float = 1.0,
    axis: int = 0,
) -> np.ndarray:
    """Solid below ``position`` along ``axis``, liquid above."""
    coords = _cell_centers(shape, dx)
    d = coords[axis] - position
    phi = np.zeros(shape + (n_phases,))
    solid = interface_profile(d, epsilon)
    phi[..., solid_phase] = solid
    phi[..., liquid_phase] = 1.0 - solid
    return normalize_phases(phi)


def lamellar_front(
    shape: tuple[int, ...],
    n_phases: int,
    solid_phases: list[int],
    liquid_phase: int,
    position: float,
    lamella_width: float,
    epsilon: float,
    dx: float = 1.0,
    growth_axis: int = 0,
    lamella_axis: int = 1,
) -> np.ndarray:
    """Alternating solid lamellae below a planar solid/liquid front.

    The classic ternary-eutectic starting condition (paper Fig. 4 left):
    stripes of the solid phases cycle along ``lamella_axis``.
    """
    coords = _cell_centers(shape, dx)
    d = coords[growth_axis] - position
    solid_frac = interface_profile(d, epsilon)
    stripe = np.floor(coords[lamella_axis] / lamella_width).astype(int) % len(
        solid_phases
    )
    phi = np.zeros(shape + (n_phases,))
    for i, p in enumerate(solid_phases):
        phi[..., p] = solid_frac * (stripe == i)
    phi[..., liquid_phase] = 1.0 - solid_frac
    return normalize_phases(phi)


def add_seed(
    phi: np.ndarray,
    center: tuple[float, ...],
    radius: float,
    phase: int,
    liquid_phase: int,
    epsilon: float,
    dx: float = 1.0,
) -> np.ndarray:
    """Plant a spherical solid seed into the liquid (in place, returned)."""
    shape = phi.shape[:-1]
    coords = _cell_centers(shape, dx)
    d = np.sqrt(
        sum((c - c0) ** 2 for c, c0 in zip(coords, center))
    ) - radius
    seed = interface_profile(d, epsilon)
    phi[..., phase] = np.maximum(phi[..., phase], seed)
    phi[..., liquid_phase] = np.clip(phi[..., liquid_phase] - seed, 0.0, 1.0)
    return normalize_phases(phi)
