"""Multi-phase potentials ω(φ) — Eq. (5) of the paper.

The multi-obstacle potential

.. math::

    \\omega(\\phi) = \\frac{16}{\\pi^2} \\sum_{\\alpha<\\beta}
        \\gamma_{\\alpha\\beta}\\, \\phi_\\alpha \\phi_\\beta
        + \\sum_{\\alpha<\\beta<\\delta}
        \\gamma_{\\alpha\\beta\\delta}\\, \\phi_\\alpha\\phi_\\beta\\phi_\\delta

with higher-order terms suppressing spurious third phases.  The obstacle
part (infinite outside the Gibbs simplex) is realised by the projection
kernel (:func:`repro.pfm.model.build_projection_kernel`), the established
practice for this potential.  A smooth multi-well variant is provided for
comparison/testing.
"""

from __future__ import annotations

from typing import Callable

import sympy as sp

from ..symbolic.field import Field

__all__ = ["multi_obstacle_potential", "multi_well_potential", "pairwise_sum"]


def pairwise_sum(n: int, term: Callable[[int, int], sp.Expr]) -> sp.Expr:
    """``Σ_{α<β} term(α, β)`` over *n* phases."""
    return sp.Add(*[term(a, b) for b in range(n) for a in range(b)])


def _gamma_lookup(gamma, a: int, b: int) -> sp.Expr:
    if callable(gamma):
        return sp.sympify(gamma(a, b))
    try:
        return sp.sympify(gamma[a][b])
    except TypeError:
        return sp.sympify(gamma)


def multi_obstacle_potential(
    phi: Field,
    gamma,
    gamma_triple=None,
) -> sp.Expr:
    """Eq. (5): pairwise obstacle terms plus optional triple-phase penalty.

    Parameters
    ----------
    phi:
        Phase field with ``N`` inner indices.
    gamma:
        Pairwise interface energies: nested sequence ``gamma[a][b]``, a
        callable ``(a, b) → value``, or a scalar used for all pairs.
    gamma_triple:
        Higher-order coefficient(s): scalar, callable ``(a, b, d) → value``
        or nested mapping; ``None`` disables the term.
    """
    (n,) = phi.index_shape
    pre = sp.Rational(16, 1) / sp.pi**2
    omega = pre * pairwise_sum(
        n, lambda a, b: _gamma_lookup(gamma, a, b) * phi.center(a) * phi.center(b)
    )
    if gamma_triple is not None:
        triples = []
        for d in range(n):
            for b in range(d):
                for a in range(b):
                    if callable(gamma_triple):
                        g3 = sp.sympify(gamma_triple(a, b, d))
                    else:
                        try:
                            g3 = sp.sympify(gamma_triple[a][b][d])
                        except TypeError:
                            g3 = sp.sympify(gamma_triple)
                    triples.append(g3 * phi.center(a) * phi.center(b) * phi.center(d))
        omega += sp.Add(*triples)
    return omega


def multi_well_potential(phi: Field, gamma) -> sp.Expr:
    """Smooth multi-well alternative ``9 Σ γ_ab φ_a² φ_b²`` (for comparison)."""
    (n,) = phi.index_shape
    return 9 * pairwise_sum(
        n,
        lambda a, b: _gamma_lookup(gamma, a, b) * phi.center(a) ** 2 * phi.center(b) ** 2,
    )
