"""repro — Code generation for massively parallel phase-field simulations.

A full reproduction of Bauer et al., SC '19 (DOI 10.1145/3295500.3356186):
a sympy-embedded DSL for free-energy functionals, automatic variational
derivatives and finite-difference discretization, an optimizing IR with
NumPy/C/CUDA backends, ECM/GPU performance models, and a block-structured
distributed-memory substrate with simulated MPI.

Layer map (paper Fig. 1):

=====================  ====================================
abstraction layer      subpackage
=====================  ====================================
energy functional      :mod:`repro.symbolic` (+ :mod:`repro.pfm`)
continuous PDEs        :mod:`repro.symbolic.pde`
discretization         :mod:`repro.discretization`
intermediate repr.     :mod:`repro.ir`, :mod:`repro.simplification`
backends               :mod:`repro.backends`, :mod:`repro.gpu`
performance models     :mod:`repro.perfmodel`, :mod:`repro.gpu.model`
observability          :mod:`repro.profiling`
distributed memory     :mod:`repro.parallel`
applications           :mod:`repro.pfm`, :mod:`repro.analysis`
=====================  ====================================
"""

__version__ = "1.0.0"

from . import (
    analysis,
    backends,
    discretization,
    gpu,
    ir,
    lbm,
    parallel,
    perfmodel,
    pfm,
    profiling,
    rng,
    simplification,
    symbolic,
)

__all__ = [
    "analysis",
    "backends",
    "discretization",
    "gpu",
    "ir",
    "lbm",
    "parallel",
    "perfmodel",
    "pfm",
    "profiling",
    "rng",
    "simplification",
    "symbolic",
    "__version__",
]
