"""Cluster-scale scaling simulator (paper Fig. 3).

Combines the node-level performance models (ECM for CPU sockets, the
occupancy model for GPUs) with the communication model into weak- and
strong-scaling predictions for SuperMUC-NG-like and Piz-Daint-like systems.

The *shape* of the published curves — flat MLUP/s per core/GPU under weak
scaling, and the latency-dominated efficiency loss of strong scaling at
extreme core counts — emerges from the compute/communication ratio; the
absolute node rate is supplied by the caller (model prediction or a real
single-core measurement re-scaled, mirroring the paper's methodology).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .comm_model import CommOptions, NetworkModel, StepTimeModel

__all__ = ["ClusterModel", "WeakScalingPoint", "StrongScalingPoint"]


@dataclass
class WeakScalingPoint:
    ranks: int
    mlups_per_rank: float
    efficiency: float


@dataclass
class StrongScalingPoint:
    ranks: int
    steps_per_second: float
    mlups_per_rank: float
    efficiency: float


@dataclass
class ClusterModel:
    """A homogeneous cluster of compute ranks (cores or GPUs)."""

    name: str
    network: NetworkModel
    ranks_per_node: int
    rank_compute_mlups: float           # compute-only rate of one rank
    exchanged_doubles_per_cell: float
    options: CommOptions = CommOptions()
    ghost_layers: int = 1

    def _inter_node_fraction(self) -> float:
        """Fraction of ghost faces crossing the node boundary.

        With Morton-ordered placement a node's R blocks form a compact
        cluster whose surface scales like R^(2/3).
        """
        if self.ranks_per_node <= 1:
            return 1.0
        return min(1.0, self.ranks_per_node ** (-1.0 / 3.0) * 1.5)

    def _step_model(self, block_shape: tuple[int, ...], mlups: float | None = None) -> StepTimeModel:
        return StepTimeModel(
            compute_mlups=mlups if mlups is not None else self.rank_compute_mlups,
            block_shape=block_shape,
            exchanged_doubles_per_cell=self.exchanged_doubles_per_cell,
            network=self.network,
            options=self.options,
            ghost_layers=self.ghost_layers,
            inter_node_fraction=self._inter_node_fraction(),
        )

    # -- weak scaling ------------------------------------------------------------

    def weak_scaling(
        self, block_shape: tuple[int, ...], rank_counts: list[int]
    ) -> list[WeakScalingPoint]:
        """Constant per-rank workload, growing rank count (Fig. 3 left/middle)."""
        points = []
        for ranks in rank_counts:
            nodes = max(1, ranks // self.ranks_per_node)
            model = self._step_model(block_shape)
            rate = model.mlups(nodes)
            points.append(
                WeakScalingPoint(
                    ranks=ranks,
                    mlups_per_rank=rate,
                    efficiency=model.parallel_efficiency(nodes),
                )
            )
        return points

    # -- strong scaling -----------------------------------------------------------

    def strong_scaling(
        self,
        global_shape: tuple[int, ...],
        rank_counts: list[int],
        simd_width: int = 8,
    ) -> list[StrongScalingPoint]:
        """Fixed total domain split over growing rank counts (Fig. 3 right).

        Small blocks lose some node-level efficiency (SIMD remainder loops,
        less favourable surface-to-volume in the caches) — "slightly better
        performance is obtained where the fastest dimension is a multiple of
        the SIMD width, or when cubic blocks can be chosen".
        """
        total_cells = int(np.prod(global_shape))
        points = []
        for ranks in rank_counts:
            cells_per_rank = total_cells / ranks
            edge = max(2.0, cells_per_rank ** (1.0 / len(global_shape)))
            block_shape = (int(round(edge)),) * len(global_shape)
            # SIMD remainder of the contiguous dimension
            inner = block_shape[-1]
            simd_eff = inner / (simd_width * np.ceil(inner / simd_width))
            # cubic-block bonus is implicit; penalize tiny blocks' ghost share
            mlups = self.rank_compute_mlups * (0.6 + 0.4 * simd_eff)
            nodes = max(1, ranks // self.ranks_per_node)
            model = self._step_model(block_shape, mlups=mlups)
            t_step = model.step_time_s(nodes)
            points.append(
                StrongScalingPoint(
                    ranks=ranks,
                    steps_per_second=1.0 / t_step,
                    mlups_per_rank=cells_per_rank / t_step / 1e6,
                    efficiency=model.parallel_efficiency(nodes),
                )
            )
        return points

    def with_options(self, **kwargs) -> "ClusterModel":
        """A copy with modified communication options (for Table 2)."""
        return replace(self, options=replace(self.options, **kwargs))
