"""Distributed-memory substrate: block forest, ghost exchange, scaling models."""

from .blockforest import Block, BlockForest, morton_key
from .boundary import DIRICHLET, NEUMANN, PERIODIC, DirichletValue, fill_ghosts
from .cluster import ClusterModel, StrongScalingPoint, WeakScalingPoint
from .comm_model import (
    ARIES_DRAGONFLY,
    OMNIPATH_FAT_TREE,
    CommOptions,
    NetworkModel,
    StepTimeModel,
)
from .ghostlayer import GhostExchange, communication_volume_bytes, exchange_field
from .mpi_adapter import MPI4PyComm, fold_tag, mpi4py_available
from .mpi_sim import CollectiveOps, RankError, Request, SimComm, run_ranks
from .proc_comm import (
    ProcComm,
    launch_ranks,
    process_backend_available,
    run_ranks_processes,
)
from .timeloop import DistributedSolver

__all__ = [
    "Block",
    "BlockForest",
    "morton_key",
    "DIRICHLET",
    "DirichletValue",
    "NEUMANN",
    "PERIODIC",
    "fill_ghosts",
    "ClusterModel",
    "StrongScalingPoint",
    "WeakScalingPoint",
    "ARIES_DRAGONFLY",
    "OMNIPATH_FAT_TREE",
    "CommOptions",
    "NetworkModel",
    "StepTimeModel",
    "communication_volume_bytes",
    "exchange_field",
    "GhostExchange",
    "MPI4PyComm",
    "fold_tag",
    "mpi4py_available",
    "CollectiveOps",
    "RankError",
    "Request",
    "SimComm",
    "run_ranks",
    "ProcComm",
    "launch_ranks",
    "process_backend_available",
    "run_ranks_processes",
    "DistributedSolver",
]
