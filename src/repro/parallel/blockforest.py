"""Block-structured domain partitioning (waLBerla-style, paper §4.1).

The global domain is divided into equally sized rectangular blocks; blocks
are assigned to ranks along a Morton (Z-order) space-filling curve, which
keeps each rank's blocks spatially compact — the load balancing strategy of
the framework.  All data structures are fully distributed: a rank only
materializes the blocks it owns, so per-process memory does not grow with
the total process count.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

import numpy as np

__all__ = ["Block", "BlockForest", "morton_key"]


def morton_key(coords: tuple[int, ...], bits: int = 21) -> int:
    """Interleave the bits of the block coordinates (Z-order curve)."""
    key = 0
    dim = len(coords)
    for bit in range(bits):
        for d, c in enumerate(coords):
            key |= ((c >> bit) & 1) << (bit * dim + d)
    return key


@dataclass
class Block:
    """One block of the structured grid owned by some rank."""

    coords: tuple[int, ...]        # position in the block grid
    interior_shape: tuple[int, ...]
    cell_offset: tuple[int, ...]   # global cell index of the first interior cell
    arrays: dict[str, np.ndarray] = dc_field(default_factory=dict)

    @property
    def id(self) -> tuple[int, ...]:
        return self.coords


class BlockForest:
    """The global block grid: geometry, ownership, neighbourhood."""

    def __init__(
        self,
        global_shape: tuple[int, ...],
        block_shape: tuple[int, ...],
        periodic: tuple[bool, ...] | bool = True,
    ):
        if len(global_shape) != len(block_shape):
            raise ValueError("global_shape and block_shape disagree on dimension")
        self.dim = len(global_shape)
        self.global_shape = tuple(int(s) for s in global_shape)
        self.block_shape = tuple(int(s) for s in block_shape)
        for g, b in zip(self.global_shape, self.block_shape):
            if g % b != 0:
                raise ValueError(
                    f"block shape {block_shape} does not tile domain {global_shape}"
                )
        self.blocks_per_dim = tuple(
            g // b for g, b in zip(self.global_shape, self.block_shape)
        )
        if isinstance(periodic, bool):
            periodic = (periodic,) * self.dim
        self.periodic = tuple(periodic)

    # -- enumeration -------------------------------------------------------------

    @property
    def n_blocks(self) -> int:
        return int(np.prod(self.blocks_per_dim))

    def all_block_coords(self) -> list[tuple[int, ...]]:
        grids = np.indices(self.blocks_per_dim).reshape(self.dim, -1).T
        return [tuple(int(c) for c in row) for row in grids]

    def morton_order(self) -> list[tuple[int, ...]]:
        return sorted(self.all_block_coords(), key=morton_key)

    # -- ownership ----------------------------------------------------------------

    def distribute(self, n_ranks: int) -> dict[int, list[tuple[int, ...]]]:
        """Assign blocks to ranks: contiguous chunks of the Morton curve.

        Chunk sizes differ by at most one block — the static load balancing
        of the framework (each block carries identical work).
        """
        order = self.morton_order()
        n = len(order)
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        if n_ranks > n:
            raise ValueError(f"{n_ranks} ranks but only {n} blocks")
        base, extra = divmod(n, n_ranks)
        assignment: dict[int, list[tuple[int, ...]]] = {}
        pos = 0
        for r in range(n_ranks):
            count = base + (1 if r < extra else 0)
            assignment[r] = order[pos : pos + count]
            pos += count
        return assignment

    def distribute_weighted(
        self, weights: dict[tuple[int, ...], float], n_ranks: int
    ) -> dict[int, list[tuple[int, ...]]]:
        """Weighted (dynamic) load balancing along the Morton curve.

        waLBerla rebalances when per-block costs diverge (e.g. blocks full of
        interface cells cost more than bulk blocks).  Blocks keep their
        Morton order (spatial compactness) and the curve is cut into
        contiguous chunks of approximately equal *total weight*.
        """
        order = self.morton_order()
        if n_ranks < 1 or n_ranks > len(order):
            raise ValueError(f"invalid rank count {n_ranks} for {len(order)} blocks")
        w = [max(float(weights.get(c, 1.0)), 0.0) for c in order]
        total = sum(w)
        if total <= 0:
            return self.distribute(n_ranks)
        assignment: dict[int, list[tuple[int, ...]]] = {r: [] for r in range(n_ranks)}
        rank, acc = 0, 0.0
        remaining_weight = total
        remaining_blocks = len(order)
        # adaptive target, fixed while filling one rank: the weight still to
        # place divided by the ranks still to fill
        rank_target = remaining_weight / n_ranks
        for i, coords in enumerate(order):
            ranks_left = n_ranks - rank
            if (
                assignment[rank]
                and rank < n_ranks - 1
                and acc + w[i] / 2 >= rank_target
                and remaining_blocks > ranks_left - 1
            ):
                rank += 1
                acc = 0.0
                rank_target = remaining_weight / (n_ranks - rank)
            assignment[rank].append(coords)
            acc += w[i]
            remaining_weight -= w[i]
            remaining_blocks -= 1
        # guarantee every rank owns at least one block
        for r in range(n_ranks):
            if not assignment[r]:
                donor = max(assignment, key=lambda k: len(assignment[k]))
                assignment[r].append(assignment[donor].pop())
        return assignment

    def owner_map(self, n_ranks: int) -> dict[tuple[int, ...], int]:
        owners: dict[tuple[int, ...], int] = {}
        for rank, coords_list in self.distribute(n_ranks).items():
            for c in coords_list:
                owners[c] = rank
        return owners

    # -- geometry -------------------------------------------------------------------

    def make_block(self, coords: tuple[int, ...]) -> Block:
        offset = tuple(c * b for c, b in zip(coords, self.block_shape))
        return Block(
            coords=tuple(coords),
            interior_shape=self.block_shape,
            cell_offset=offset,
        )

    def neighbor(self, coords: tuple[int, ...], axis: int, direction: int):
        """Neighbouring block coords along ±axis, or None at a wall."""
        c = list(coords)
        c[axis] += direction
        n = self.blocks_per_dim[axis]
        if 0 <= c[axis] < n:
            return tuple(c)
        if self.periodic[axis]:
            c[axis] %= n
            return tuple(c)
        return None

    def __repr__(self):
        return (
            f"BlockForest(domain={self.global_shape}, block={self.block_shape}, "
            f"{self.n_blocks} blocks, periodic={self.periodic})"
        )
