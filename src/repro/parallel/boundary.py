"""Ghost-layer boundary handling for single blocks.

Filling ghost layers axis by axis also populates edge/corner ghosts
correctly (each later axis copies already-filled ghost strips), which the
wide D3C19 stencils of the µ kernel rely on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fill_ghosts", "PERIODIC", "NEUMANN", "DIRICHLET", "DirichletValue"]

PERIODIC = "periodic"
NEUMANN = "neumann"
DIRICHLET = "dirichlet"


class DirichletValue:
    """Per-axis Dirichlet boundary: ghost cells mirror around a fixed value.

    Ghosts are set to ``2·value − interior`` so that the midpoint of the
    ghost/interior pair (the wall position of a cell-centred grid) holds
    exactly ``value`` — second-order accurate for the central stencils.
    ``value`` may be a scalar or an array broadcastable to the face slab
    (e.g. a per-component vector for a phase field).
    """

    def __init__(self, value, axis: int | None = None):
        self.value = value
        self.axis = axis

    def __repr__(self):
        return f"DirichletValue({self.value!r})"


def _axis_slice(arr: np.ndarray, axis: int, sl: slice) -> tuple:
    index = [slice(None)] * arr.ndim
    index[axis] = sl
    return tuple(index)


def fill_ghosts(
    arr: np.ndarray,
    ghost_layers: int,
    dim: int,
    mode: str | tuple[str, ...] = PERIODIC,
) -> None:
    """Fill the ghost frame of *arr* in place.

    ``mode`` is a single mode or a per-axis tuple; supported modes are
    ``"periodic"`` (wrap-around) and ``"neumann"`` (zero-gradient,
    replicating the outermost interior layer).
    """
    gl = int(ghost_layers)
    if gl == 0:
        return
    modes = (mode,) * dim if isinstance(mode, str) else tuple(mode)
    if len(modes) != dim:
        raise ValueError(f"need one mode per axis, got {modes}")
    for axis in range(dim):
        n = arr.shape[axis]
        if n < 3 * gl:
            raise ValueError(
                f"axis {axis} too small ({n}) for ghost width {gl}"
            )
        m = modes[axis]
        if isinstance(m, DirichletValue):
            value = np.asarray(m.value)
            for layer in range(gl):
                # ghost layer `layer` mirrors interior layer `2gl-1-layer`
                lo_g = _axis_slice(arr, axis, slice(layer, layer + 1))
                lo_i = _axis_slice(arr, axis, slice(2 * gl - 1 - layer, 2 * gl - layer))
                arr[lo_g] = 2.0 * value - arr[lo_i]
                hi_g = _axis_slice(arr, axis, slice(n - 1 - layer, n - layer))
                hi_i = _axis_slice(
                    arr, axis, slice(n - 2 * gl + layer, n - 2 * gl + layer + 1)
                )
                arr[hi_g] = 2.0 * value - arr[hi_i]
            continue
        if m == PERIODIC:
            arr[_axis_slice(arr, axis, slice(0, gl))] = arr[
                _axis_slice(arr, axis, slice(n - 2 * gl, n - gl))
            ]
            arr[_axis_slice(arr, axis, slice(n - gl, n))] = arr[
                _axis_slice(arr, axis, slice(gl, 2 * gl))
            ]
        elif m == NEUMANN:
            # zero-gradient via mirroring: ghost layer `layer` mirrors
            # interior layer `2gl-1-layer`, matching the DirichletValue
            # scheme (and the block-level wall fill) for every ghost width;
            # for gl=1 this reduces to replicating the edge layer
            lo_src = arr[_axis_slice(arr, axis, slice(gl, 2 * gl))]
            hi_src = arr[_axis_slice(arr, axis, slice(n - 2 * gl, n - gl))]
            arr[_axis_slice(arr, axis, slice(0, gl))] = np.flip(lo_src, axis=axis)
            arr[_axis_slice(arr, axis, slice(n - gl, n))] = np.flip(hi_src, axis=axis)
        else:
            raise ValueError(f"unknown boundary mode {m!r}")
