"""Real-parallel rank runtime: process-backed communicator, shared-memory ghosts.

:func:`repro.parallel.mpi_sim.run_ranks` executes the SPMD protocol on
rank-stepped *threads* of one GIL-bound process — perfect for correctness,
useless for wall-clock scaling.  This module graduates the same communicator
interface to real OS processes:

* every rank is a forked ``multiprocessing`` worker (true cores, private
  GIL, inherited closures/compiled-kernel cache — no pickling of the rank
  program);
* bulk array payloads (ghost strips, aggregated exchange bundles) travel
  through per-``(src, dst)`` ``multiprocessing.shared_memory`` slabs: the
  sender parks each array in its slab with a bump allocator, the receiver
  copies it out and acknowledges the bytes so the slab recycles — one copy
  in, one copy out, no pickling of the hot data;
* small control messages (tags, templates, non-array objects) travel over
  per-pair duplex pipes, which also carry the slab acknowledgements and —
  crucially — provide the happens-before edge: a receiver only reads a slab
  region after the descriptor naming it arrived through the pipe;
* collectives come from :class:`~repro.parallel.mpi_sim.CollectiveOps`, so
  the message pattern and rank-ordered reduction are *identical* to the
  simulator — distributed diagnostics stay bit-identical across backends.

Failure semantics mirror the simulator: blocking receives carry a deadline
and raise :class:`~repro.parallel.mpi_sim.RankError` naming the
``(source, dest, tag)`` channel; a failed rank sets a shared event that
unblocks every other rank's receive; the parent bounds the whole run with
*join_timeout* and terminates + names stuck ranks instead of hanging.

:func:`launch_ranks` is the uniform front-end over the three runtimes::

    launch_ranks(4, program, backend="sim")      # threads, one process
    launch_ranks(4, program, backend="process")  # real cores, this module
    launch_ranks(4, program, backend="mpi4py")   # under mpirun -n 4

Caveats of the process backend: it requires the ``fork`` start method
(rank programs may be closures over unpicklable kernel objects), and ranks
must be launched *before* the parent process runs any OpenMP parallel
region — libgomp's thread pool does not survive a fork.  Pass
``env={"OMP_NUM_THREADS": ...}`` to bound each rank's threads; the workers
apply it before their first parallel region.
"""

from __future__ import annotations

import os
import queue
import threading
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from time import monotonic
from typing import Any, Callable

import numpy as np

from .mpi_sim import _JOIN_TIMEOUT, _RECV_TIMEOUT, CollectiveOps, RankError, Request, run_ranks

__all__ = [
    "ProcComm",
    "launch_ranks",
    "run_ranks_processes",
    "process_backend_available",
]

#: per-(src, dst) shared-memory slab size; /dev/shm pages materialize only
#: when written, so this is a ceiling, not an allocation
_DEFAULT_SLAB_BYTES = 16 * 2**20

#: arrays below this travel pickled through the pipe (descriptor overhead
#: would exceed the copy)
_SHM_MIN_BYTES = 1024

#: slab offsets are 16-byte aligned so float64/complex payloads map cleanly
_ALIGN = 16


def process_backend_available() -> bool:
    """Whether this platform can run the process backend (fork + shm)."""
    import multiprocessing as mp

    if "fork" not in mp.get_all_start_methods():
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:
        return False
    return True


@dataclass
class _ShmRef:
    """Descriptor for an ndarray parked in the sender's shared-memory slab."""

    offset: int
    shape: tuple
    dtype: str
    reserved: int  # aligned byte count to acknowledge back


class _SlabWriter:
    """Bump allocator over one sender→receiver shared-memory segment.

    Only the sender allocates; the receiver acknowledges consumed bytes over
    the duplex control pipe.  Because messages are produced and consumed in
    the tight per-step rhythm of the ghost exchange, ``in_use`` returns to
    zero constantly and the allocator simply rewinds — no free-list needed.
    A payload that cannot be placed before *timeout* (slab full, receiver
    not draining) falls back to the pickle pipe, so the slab size bounds
    performance, never correctness.
    """

    def __init__(self, shm, ack_conn, timeout: float):
        self.shm = shm
        self.capacity = shm.size
        self.offset = 0
        self.in_use = 0
        self.ack_conn = ack_conn
        self.timeout = float(timeout)
        self._ack_eof = False

    def _consume_acks(self, block_s: float = 0.0) -> bool:
        if self._ack_eof:
            return False
        got = False
        try:
            while self.ack_conn.poll(block_s):
                self.in_use -= int(self.ack_conn.recv())
                got = True
                block_s = 0.0
        except (EOFError, OSError):
            # receiver exited; outstanding regions will never be acked —
            # alloc falls back to the pipe, whose send reports the dead peer
            self._ack_eof = True
        if self.in_use <= 0:
            self.in_use = 0
            self.offset = 0
        return got

    def alloc(self, nbytes: int) -> int | None:
        need = (nbytes + _ALIGN - 1) & ~(_ALIGN - 1)
        if need > self.capacity:
            return None
        self._consume_acks()
        if self.offset + need > self.capacity:
            deadline = monotonic() + self.timeout
            while self.offset + need > self.capacity:
                if self._ack_eof:
                    return None
                self._consume_acks(block_s=min(0.2, self.timeout))
                if self.offset + need <= self.capacity:
                    break
                if monotonic() >= deadline:
                    return None  # caller falls back to the pipe
        off = self.offset
        self.offset += need
        self.in_use += need
        return off

    def write(self, arr: np.ndarray) -> _ShmRef | None:
        data = np.ascontiguousarray(arr)
        off = self.alloc(data.nbytes)
        if off is None:
            return None
        view = np.frombuffer(
            self.shm.buf, dtype=data.dtype, count=data.size, offset=off
        ).reshape(data.shape)
        view[...] = data
        need = (data.nbytes + _ALIGN - 1) & ~(_ALIGN - 1)
        return _ShmRef(off, data.shape, data.dtype.str, need)


def _pack(obj: Any, slab: _SlabWriter | None) -> Any:
    """Copy large ndarrays in *obj* into the slab, returning the template.

    Recurses through tuples/lists/dicts (the shapes the exchange protocol
    sends); anything else passes through and is pickled by the pipe.  Small
    arrays are copied (value semantics) and pickled.
    """
    if isinstance(obj, np.ndarray):
        if slab is not None and obj.nbytes >= _SHM_MIN_BYTES:
            ref = slab.write(obj)
            if ref is not None:
                return ref
        # a real copy, not ascontiguousarray (which aliases contiguous
        # input): the pipe pickles on the sender thread, after send() has
        # returned — value semantics must be fixed at send time
        return np.array(obj, order="C", copy=True)
    if isinstance(obj, tuple):
        return tuple(_pack(v, slab) for v in obj)
    if isinstance(obj, list):
        return [_pack(v, slab) for v in obj]
    if isinstance(obj, dict):
        return {k: _pack(v, slab) for k, v in obj.items()}
    return obj


def _materialize(template: Any, shm) -> tuple[Any, int]:
    """Rebuild the object, copying slab-parked arrays out; returns freed bytes."""
    freed = 0

    def walk(x):
        nonlocal freed
        if isinstance(x, _ShmRef):
            freed += x.reserved
            dtype = np.dtype(x.dtype)
            count = int(np.prod(x.shape, dtype=np.int64)) if x.shape else 1
            src = np.frombuffer(shm.buf, dtype=dtype, count=count, offset=x.offset)
            return src.reshape(x.shape).copy()
        if isinstance(x, tuple):
            return tuple(walk(v) for v in x)
        if isinstance(x, list):
            return [walk(v) for v in x]
        if isinstance(x, dict):
            return {k: walk(v) for k, v in x.items()}
        return x

    return walk(template), freed


def _copy_value(obj: Any) -> Any:
    """Value semantics for self-transfers (arrays copied, rest shared)."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, tuple):
        return tuple(_copy_value(v) for v in obj)
    if isinstance(obj, list):
        return [_copy_value(v) for v in obj]
    if isinstance(obj, dict):
        return {k: _copy_value(v) for k, v in obj.items()}
    return obj


#: sentinel closing a communicator's sender thread
_STOP = object()


@dataclass
class _Peer:
    """One rank's endpoints toward a single other rank."""

    data_out: Any      # my data messages out; peer's slab acks back
    data_in: Any       # peer's data messages in; my slab acks back
    slab: _SlabWriter  # shared-memory slab me → peer
    shm_in: Any        # shared-memory segment peer → me
    gone: bool = False  # data_in hit EOF: the peer exited (buffered
    #                     messages were all drained first — socket data
    #                     outlives the writer, so EOF is not an error until
    #                     a receive wants a message that never arrived)


class ProcComm(CollectiveOps):
    """``SimComm``-compatible communicator over processes + shared memory."""

    def __init__(self, rank, size, peers, barrier, failed, recv_timeout):
        self.rank = int(rank)
        self._size = int(size)
        self._peers: dict[int, _Peer] = peers
        self._barrier = barrier
        self._failed = failed
        self._recv_timeout = float(recv_timeout)
        self._self_queues: dict[Any, deque] = {}
        #: per-source buffered messages whose tag did not match a pending recv
        self._inbox: dict[int, dict[Any, deque]] = {j: {} for j in peers}
        # pipe writes happen on a dedicated thread so `send` is buffered and
        # never blocks the rank program, matching SimComm semantics — two
        # ranks sending large pipe-fallback payloads head-to-head must not
        # deadlock on the kernel pipe buffer.  Slab packing stays in the
        # caller: the slab write completes before the descriptor is queued,
        # which preserves the happens-before edge through the pipe.
        self._outq: queue.SimpleQueue = queue.SimpleQueue()
        self._send_failures: list[tuple[int, BaseException]] = []
        self._sender = threading.Thread(
            target=self._sender_loop, name=f"procsend-{self.rank}", daemon=True
        )
        self._sender.start()

    @property
    def size(self) -> int:
        return self._size

    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    # -- point to point --------------------------------------------------------

    def _sender_loop(self) -> None:
        while True:
            item = self._outq.get()
            if item is _STOP:
                return
            dest, payload = item
            try:
                self._peers[dest].data_out.send(payload)
            except (BrokenPipeError, OSError) as exc:
                self._failed.set()
                self._send_failures.append((dest, exc))

    def _flush_sends(self, timeout: float) -> bool:
        """Drain the outbound queue before the rank reports its result."""
        self._outq.put(_STOP)
        self._sender.join(timeout=timeout)
        return not self._sender.is_alive()

    def _check_rank(self, rank: int, role: str) -> None:
        if not 0 <= rank < self._size:
            raise ValueError(f"invalid {role} rank {rank}")

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._check_rank(dest, "destination")
        if dest == self.rank:
            self._self_queues.setdefault(tag, deque()).append(_copy_value(obj))
            return
        peer = self._peers[dest]
        template = _pack(obj, peer.slab)
        if self._send_failures:
            lost, exc = self._send_failures[0]
            raise RankError(
                f"send to rank {lost} failed: peer is gone ({exc})"
            ) from exc
        self._outq.put((dest, (tag, template)))

    def _drain(self, source: int, block_s: float = 0.0) -> None:
        """Move every available message from *source* into the inbox.

        Materializes slab payloads immediately (freeing the peer's slab via
        an ack on the duplex pipe) so a sender never waits on a receiver
        that is merely polling a different tag.
        """
        peer = self._peers[source]
        if peer.gone:
            return
        inbox = self._inbox[source]
        while True:
            try:
                if not peer.data_in.poll(block_s):
                    return
                tag, template = peer.data_in.recv()
            except (EOFError, OSError):
                peer.gone = True
                return
            value, freed = _materialize(template, peer.shm_in)
            if freed:
                try:
                    peer.data_in.send(freed)
                except (BrokenPipeError, OSError):
                    pass  # peer already gone; its slab no longer matters
            inbox.setdefault(tag, deque()).append(value)
            block_s = 0.0

    def _try_recv(self, source: int, tag: int) -> tuple[bool, Any]:
        """Non-blocking probe for a matching message; never waits."""
        if source == self.rank:
            q = self._self_queues.get(tag)
            if q:
                return True, q.popleft()
            return False, None
        self._drain(source)
        q = self._inbox[source].get(tag)
        if q:
            return True, q.popleft()
        return False, None

    def recv(self, source: int, tag: int = 0) -> Any:
        self._check_rank(source, "source")
        if source == self.rank:
            q = self._self_queues.get(tag)
            if not q:
                raise RankError(
                    f"recv from self with no buffered send "
                    f"(source={source}, dest={self.rank}, tag={tag!r}) — "
                    f"immediate deadlock"
                )
            return q.popleft()
        timeout = self._recv_timeout
        deadline = monotonic() + timeout
        poll = min(0.2, max(timeout / 20.0, 0.005))
        inbox = self._inbox[source]
        first = True
        while True:
            # inbox first: the wanted message may have been drained already
            # (while receiving an earlier tag) — a blocking poll here would
            # wait a full period for *new* pipe data that never needs to come
            q = inbox.get(tag)
            if q:
                return q.popleft()
            self._drain(source, block_s=0.0 if first else poll)
            first = False
            q = inbox.get(tag)
            if q:
                return q.popleft()
            if self._peers[source].gone:
                # the sender exited and every buffered message was drained:
                # this message can never arrive — same diagnosis as a
                # timeout, just known immediately
                self._failed.set()
                raise RankError(
                    f"rank {source} exited with no matching send "
                    f"(source={source}, dest={self.rank}, tag={tag!r}) — "
                    f"likely deadlock or protocol mismatch"
                )
            if self._failed.is_set():
                raise RankError("another rank failed during recv")
            if monotonic() >= deadline:
                self._failed.set()
                try:
                    self._barrier.abort()
                except Exception:
                    pass
                raise RankError(
                    f"recv timed out after {timeout:g} s "
                    f"(source={source}, dest={self.rank}, tag={tag!r}) — "
                    f"no matching send; likely deadlock"
                )

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        self.send(obj, dest, tag)  # slab/pipe-buffered: completes immediately
        return Request(lambda: None, _done=True)

    def irecv(self, source: int, tag: int = 0) -> Request:
        return Request(
            lambda: self.recv(source, tag),
            _poll=lambda: self._try_recv(source, tag),
        )

    # -- collectives (pattern inherited from CollectiveOps) --------------------

    def barrier(self) -> None:
        try:
            self._barrier.wait(timeout=self._recv_timeout)
        except threading.BrokenBarrierError:
            self._failed.set()
            raise RankError(
                f"barrier broken on rank {self.rank} — another rank failed "
                f"or timed out"
            ) from None


# -- the SPMD process runner ------------------------------------------------------


def _write_postmortems(postmortems: dict, rundir=None) -> str | None:
    """Write the combined multi-rank ``postmortem.json``; never raises.

    Targets *rundir* (explicit), else the ambient run directory, else
    nothing.  The document wraps per-rank bundles:
    ``{"schema": "repro-postmortem/1", "ranks": {"3": {...}}}``.
    """
    try:
        from ..observability.postmortem import POSTMORTEM_SCHEMA, write_postmortem
        from ..observability.rundir import get_rundir

        rundir = rundir if rundir is not None else get_rundir()
        if rundir is None:
            return None
        document = {
            "schema": POSTMORTEM_SCHEMA,
            "ranks": {str(rank): bundle for rank, bundle in sorted(postmortems.items())},
        }
        return write_postmortem(document, rundir.postmortem_path)
    except Exception:
        return None  # forensics must never mask the RankError being raised


def _worker(rank, size, func, args, kwargs, pipes, shms, result_pipes,
            barrier, failed, recv_timeout, env):
    if env:
        os.environ.update({k: str(v) for k, v in env.items()})
    # close inherited endpoints that belong to other ranks (or the parent):
    # without this, a dead rank's pipes never reach EOF because every
    # sibling still holds a copy of its file descriptors
    result_conn = result_pipes[rank][1]
    for r, (parent_end, child_end) in enumerate(result_pipes):
        parent_end.close()
        if r != rank:
            child_end.close()
    peers: dict[int, _Peer] = {}
    for (i, j), (end_i, end_j) in pipes.items():
        if i == rank:
            end_j.close()
        elif j == rank:
            end_i.close()
        else:
            end_i.close()
            end_j.close()
    for j in range(size):
        if j == rank:
            continue
        peers[j] = _Peer(
            data_out=pipes[(rank, j)][0],
            data_in=pipes[(j, rank)][1],
            slab=_SlabWriter(
                shms[(rank, j)], ack_conn=pipes[(rank, j)][0], timeout=recv_timeout
            ),
            shm_in=shms[(j, rank)],
        )
    comm = ProcComm(rank, size, peers, barrier, failed, recv_timeout)
    try:
        result = func(comm, *args, **kwargs)
        status = ("ok", result)
    except BaseException as exc:  # noqa: BLE001 - serialized to the parent
        failed.set()
        try:
            barrier.abort()
        except Exception:
            pass
        # the dying rank's forensics ride the result pipe to the parent:
        # a bare "rank 3 failed" becomes a bundle naming the step, the
        # last kernel dispatched and the field state at death
        try:
            from ..observability.postmortem import capture_postmortem

            bundle = capture_postmortem(exc, rank=rank)
        except Exception:
            bundle = None
        status = (
            "error", f"{type(exc).__name__}: {exc}", traceback.format_exc(), bundle
        )
    # buffered sends a peer has not yet consumed must survive this rank's
    # exit (MPI buffered-send semantics): drain the sender thread before
    # reporting — socketpair data stays readable after the writer exits
    comm._flush_sends(timeout=min(recv_timeout, 30.0))
    try:
        result_conn.send(status)
    except Exception:
        failed.set()
        try:
            result_conn.send(
                ("error", f"rank {rank} produced an unsendable result", "")
            )
        except Exception:
            pass
    finally:
        try:
            result_conn.close()
        except Exception:
            pass
        for shm in shms.values():
            try:
                shm.close()
            except Exception:
                pass


def run_ranks_processes(
    size: int,
    func: Callable[..., Any],
    *args,
    recv_timeout: float = _RECV_TIMEOUT,
    join_timeout: float = _JOIN_TIMEOUT,
    slab_bytes: int = _DEFAULT_SLAB_BYTES,
    env: dict | None = None,
    rundir=None,
    **kwargs,
) -> list:
    """Run ``func(comm, *args, **kwargs)`` on *size* real-process ranks.

    The drop-in counterpart of :func:`repro.parallel.mpi_sim.run_ranks`
    with true multi-core execution: returns the per-rank results, re-raises
    the first rank failure as a :class:`RankError`, and terminates + names
    ranks still running after *join_timeout*.  *slab_bytes* sizes each
    directed shared-memory ghost-buffer slab; *env* is applied inside every
    worker before the rank program runs (e.g. ``OMP_NUM_THREADS``).

    Crash forensics: a dying worker captures a post-mortem bundle (last
    events, open spans, field stats — see
    :mod:`repro.observability.postmortem`) and pickles it back over its
    result pipe.  The bundles are attached to the raised
    :class:`RankError` as ``exc.postmortems`` (``{rank: bundle}``) and —
    when *rundir* or the ambient :func:`repro.observability.rundir.get_rundir`
    is set — written as a combined ``postmortem.json``.

    Requires the ``fork`` start method: rank programs are typically
    closures over kernel sets and forests that never need to pickle, and a
    warm compiled-kernel cache in the parent is inherited for free.  Fork
    the ranks *before* running OpenMP parallel regions in the parent.
    """
    if size < 1:
        raise ValueError("need at least one rank")
    if not process_backend_available():
        raise RuntimeError(
            "process backend unavailable: needs the 'fork' start method and "
            "multiprocessing.shared_memory"
        )
    import multiprocessing as mp
    from multiprocessing import shared_memory

    ctx = mp.get_context("fork")
    pipes: dict[tuple, tuple] = {}
    shms: dict[tuple, Any] = {}
    procs: list = []
    result_pipes = [ctx.Pipe(duplex=False) for _ in range(size)]
    try:
        for i in range(size):
            for j in range(size):
                if i != j:
                    pipes[(i, j)] = ctx.Pipe(duplex=True)
                    shms[(i, j)] = shared_memory.SharedMemory(
                        create=True, size=int(slab_bytes)
                    )
        barrier = ctx.Barrier(size)
        failed = ctx.Event()
        procs = [
            ctx.Process(
                target=_worker,
                args=(rank, size, func, args, kwargs, pipes, shms,
                      result_pipes, barrier, failed, recv_timeout, env),
                name=f"procrank-{rank}",
                daemon=True,
            )
            for rank in range(size)
        ]
        for p in procs:
            p.start()
        # drop the parent's copies of the rank-to-rank endpoints and the
        # workers' result ends, so EOFs propagate
        for end_i, end_j in pipes.values():
            end_i.close()
            end_j.close()
        for _parent_end, child_end in result_pipes:
            child_end.close()

        results: list = [None] * size
        errors: list[tuple[int, RankError]] = []
        postmortems: dict[int, dict] = {}
        remaining = {result_pipes[r][0]: r for r in range(size)}
        deadline = monotonic() + join_timeout
        while remaining:
            timeout = deadline - monotonic()
            if timeout <= 0:
                break
            ready = mp_connection.wait(list(remaining), timeout=timeout)
            if not ready:
                break
            for conn in ready:
                r = remaining.pop(conn)
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    errors.append(
                        (r, RankError(f"rank {r} exited without a result"))
                    )
                    continue
                if msg[0] == "ok":
                    results[r] = msg[1]
                else:
                    detail = msg[1] + (f"\n{msg[2]}" if msg[2] else "")
                    errors.append((r, RankError(detail)))
                    # the 4th element (when present) is the worker's
                    # post-mortem bundle; older 3-tuples stay accepted
                    if len(msg) > 3 and isinstance(msg[3], dict):
                        postmortems[r] = msg[3]
        if remaining:
            failed.set()
            stuck = sorted(remaining.values())
            for r in stuck:
                procs[r].terminate()
            raise RankError(
                f"rank(s) {', '.join(map(str, stuck))} still running after "
                f"{join_timeout:g} s — stuck or deadlocked; terminated"
            )
        for p in procs:
            p.join(timeout=30)
        if errors:
            errors.sort(key=lambda e: e[0])
            # prefer the originating failure over sympathetic
            # "another rank failed" unwinds
            rank, exc = next(
                (e for e in errors if "another rank failed" not in str(e[1])),
                errors[0],
            )
            if postmortems:
                _write_postmortems(postmortems, rundir)
            failure = RankError(f"rank {rank} failed: {exc}")
            failure.postmortems = postmortems
            raise failure from exc
        return results
    finally:
        for p in procs:
            if p.is_alive():
                p.kill()
                p.join(timeout=5)
        for parent_end, child_end in result_pipes:
            for end in (parent_end, child_end):
                try:
                    end.close()
                except Exception:
                    pass
        for shm in shms.values():
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass
            except Exception:
                pass


def launch_ranks(
    size: int,
    func: Callable[..., Any],
    *args,
    backend: str = "sim",
    recv_timeout: float = _RECV_TIMEOUT,
    join_timeout: float = _JOIN_TIMEOUT,
    slab_bytes: int = _DEFAULT_SLAB_BYTES,
    env: dict | None = None,
    rundir=None,
    **kwargs,
) -> list:
    """Run an SPMD rank program on the chosen runtime; one call, three backends.

    * ``backend="sim"`` — rank-stepped threads in this process
      (:func:`~repro.parallel.mpi_sim.run_ranks`); *slab_bytes*/*env* are
      ignored.
    * ``backend="process"`` — real OS processes with shared-memory ghost
      buffers (:func:`run_ranks_processes`); true multi-core wall clock.
    * ``backend="mpi4py"`` — the already-running MPI world: the script must
      execute under ``mpirun -n <size>``; every rank calls its program on a
      hardened :class:`~repro.parallel.mpi_adapter.MPI4PyComm` and the
      per-rank results are allgathered so the return value matches the
      other backends (the full list, on every rank).

    Returns the list of per-rank results; rank failures raise
    :class:`~repro.parallel.mpi_sim.RankError` on every backend.  With a
    *rundir* (or an ambient one from :class:`repro.observability.RunDir`'s
    context manager), the sim and process backends write crash post-mortem
    bundles to ``<rundir>/postmortem.json``; the mpi4py backend does not —
    a crashed MPI rank is torn down by ``mpirun`` before any capture hop.
    """
    if backend == "sim":
        return run_ranks(
            size, func, *args,
            recv_timeout=recv_timeout, join_timeout=join_timeout,
            rundir=rundir, **kwargs,
        )
    if backend == "process":
        return run_ranks_processes(
            size, func, *args,
            recv_timeout=recv_timeout, join_timeout=join_timeout,
            slab_bytes=slab_bytes, env=env, rundir=rundir, **kwargs,
        )
    if backend == "mpi4py":
        from .mpi_adapter import MPI4PyComm, mpi4py_available

        if not mpi4py_available():
            raise RuntimeError(
                "backend='mpi4py' requested but mpi4py is not installed"
            )
        comm = MPI4PyComm()
        if comm.size != size:
            raise RuntimeError(
                f"launched under {comm.size} MPI rank(s) but {size} requested; "
                f"run under `mpirun -n {size}`"
            )
        result = func(comm, *args, **kwargs)
        return comm.allgather(result)
    raise ValueError(
        f"unknown backend {backend!r}; expected 'sim', 'process' or 'mpi4py'"
    )
