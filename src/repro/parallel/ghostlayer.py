"""Ghost-layer exchange across blocks and ranks (paper §4.3).

The exchange proceeds axis by axis; later axes transport the ghost strips
already filled by earlier axes, so edge and corner ghost cells end up
correct without dedicated diagonal messages — the same scheme the
single-block boundary fill uses.  For every axis:

1. pack the boundary strips of all owned blocks into contiguous buffers,
2. deliver them — directly for on-rank neighbours, via (simulated) MPI
   messages for remote neighbours,
3. unpack into the neighbours' ghost strips; domain walls without a
   neighbour get the local boundary condition instead.

Message tags carry (field, axis, direction); the destination block travels
inside the payload, so the protocol survives the bounded-integer tag folding
of real MPI (:mod:`repro.parallel.mpi_adapter`) without misrouting.
"""

from __future__ import annotations

from itertools import product
from time import perf_counter

import numpy as np

from .blockforest import Block, BlockForest
from .mpi_sim import SimComm

__all__ = [
    "exchange_field",
    "ExchangePlan",
    "GhostExchange",
    "communication_volume_bytes",
]


def _strip(arr: np.ndarray, axis: int, sl: slice) -> tuple:
    idx = [slice(None)] * arr.ndim
    idx[axis] = sl
    return tuple(idx)


def _apply_wall(arr: np.ndarray, axis: int, side: int, gl: int, mode: str) -> None:
    n = arr.shape[axis]
    if mode == "neumann":
        # zero-gradient via mirroring (ghost layer `layer` = interior layer
        # `2gl-1-layer`), identical to the single-block fill_ghosts scheme
        # so distributed and single-block runs agree for every ghost width
        if side < 0:
            src = arr[_strip(arr, axis, slice(gl, 2 * gl))]
            arr[_strip(arr, axis, slice(0, gl))] = np.flip(src, axis=axis)
        else:
            src = arr[_strip(arr, axis, slice(n - 2 * gl, n - gl))]
            arr[_strip(arr, axis, slice(n - gl, n))] = np.flip(src, axis=axis)
    elif mode == "periodic":
        raise RuntimeError(
            "periodic walls are handled by the block forest wrap-around"
        )
    else:
        raise ValueError(f"unknown wall mode {mode!r}")


def exchange_field(
    blocks: dict[tuple, Block],
    forest: BlockForest,
    owners: dict[tuple, int],
    comm: SimComm | None,
    field_name: str,
    ghost_layers: int,
    wall_mode: str = "neumann",
    profiler=None,
    comm_matrix=None,
) -> int:
    """Synchronize the ghost layers of *field_name* over all blocks.

    Returns the number of bytes sent to remote ranks (for statistics).
    When a :class:`repro.profiling.SolverProfiler` is given, the exchange
    is timed under ``exchange:<field>`` (total, with remote byte and
    message counts) and additionally split per axis into

    * ``exchange:<field>:pack`` — packing boundary strips, on-rank ghost
      copies and domain-wall fills (copy work),
    * ``exchange:<field>:deliver`` — MPI sends and the blocking receives
      (the wait component), and
    * ``exchange:<field>:unpack`` — writing received strips into ghosts,

    so wait time is attributable separately from copy time.  ``messages``
    counts the MPI messages *sent* by this rank, mirroring the byte count.
    A :class:`repro.observability.CommMatrix` passed as *comm_matrix*
    additionally receives per-``(src, dst)`` byte/message accounting.
    """
    gl = int(ghost_layers)
    dim = forest.dim
    my_rank = comm.rank if comm is not None else 0
    sent_bytes = 0
    sent_messages = 0
    timing = profiler is not None
    t_begin = perf_counter() if timing else 0.0

    for axis in range(dim):
        t0 = perf_counter() if timing else 0.0
        outgoing: list[tuple[int, tuple, tuple, int]] = []
        for coords, block in blocks.items():
            arr = block.arrays[field_name]
            n = arr.shape[axis]
            for side in (-1, +1):
                nb = forest.neighbor(coords, axis, side)
                if nb is None:
                    _apply_wall(arr, axis, side, gl, wall_mode)
                    continue
                if side < 0:
                    payload = arr[_strip(arr, axis, slice(gl, 2 * gl))]
                else:
                    payload = arr[_strip(arr, axis, slice(n - 2 * gl, n - gl))]
                owner = owners[nb]
                if owner == my_rank:
                    target = blocks[nb].arrays[field_name]
                    tn = target.shape[axis]
                    if side < 0:  # I am the +axis neighbour of nb
                        target[_strip(target, axis, slice(tn - gl, tn))] = payload
                    else:
                        target[_strip(target, axis, slice(0, gl))] = payload
                else:
                    if comm is None:
                        raise RuntimeError("remote neighbour but no communicator")
                    # tag carries only (field, axis, side); the payload names
                    # the destination block, so matching stays correct even
                    # when tags are folded to bounded MPI integers
                    tag = (field_name, axis, side)
                    # explicit copy: the strip is a view that later axes of
                    # this very exchange will overwrite (ghost corners)
                    outgoing.append((owner, tag, (nb, payload.copy()), payload.nbytes))
        # receive strips destined for my blocks: count expected messages per
        # (source rank, sender side) channel, then dispatch by block coords
        expected: dict[tuple[int, int], int] = {}
        for coords, block in blocks.items():
            for side in (-1, +1):
                nb = forest.neighbor(coords, axis, side)
                if nb is None or owners[nb] == my_rank:
                    continue
                key = (owners[nb], -side)  # the sender used its own side
                expected[key] = expected.get(key, 0) + 1
        if timing:
            t1 = perf_counter()
            profiler.record(f"exchange:{field_name}:pack", t1 - t0, end=t1)
        if not outgoing and not expected:
            continue

        t0 = perf_counter() if timing else 0.0
        axis_bytes = 0
        send_requests = []
        for owner, tag, message, nbytes in outgoing:
            # non-blocking: a blocking send of a large unbuffered strip can
            # deadlock on real MPI when two ranks send to each other before
            # either receives (the simulator's send is always buffered)
            send_requests.append(comm.isend(message, owner, tag=tag))
            axis_bytes += nbytes
            if comm_matrix is not None:
                comm_matrix.add(my_rank, owner, nbytes)
        sent_bytes += axis_bytes
        sent_messages += len(outgoing)
        received: list[tuple[int, tuple]] = []
        for (src, sender_side), count in sorted(expected.items()):
            tag = (field_name, axis, sender_side)
            for _ in range(count):
                received.append((sender_side, comm.recv(src, tag=tag)))
        for req in send_requests:
            req.wait()
        if timing:
            t1 = perf_counter()
            profiler.record(
                f"exchange:{field_name}:deliver", t1 - t0,
                nbytes=axis_bytes, messages=len(outgoing), end=t1,
            )

        t0 = perf_counter() if timing else 0.0
        for sender_side, (dst_coords, payload) in received:
            arr = blocks[dst_coords].arrays[field_name]
            n = arr.shape[axis]
            if sender_side > 0:  # sender's +side strip fills my low ghost
                arr[_strip(arr, axis, slice(0, gl))] = payload
            else:
                arr[_strip(arr, axis, slice(n - gl, n))] = payload
        if timing:
            t1 = perf_counter()
            profiler.record(f"exchange:{field_name}:unpack", t1 - t0, end=t1)

    if timing:
        t_end = perf_counter()
        profiler.record(
            f"exchange:{field_name}", t_end - t_begin,
            nbytes=sent_bytes, messages=sent_messages, end=t_end,
        )
    return sent_bytes


def _neighbor_at(forest: BlockForest, coords: tuple, offset: tuple) -> tuple | None:
    """Neighbour block at a (possibly diagonal) offset vector, or None at a wall."""
    cur = coords
    for axis, o in enumerate(offset):
        if o:
            cur = forest.neighbor(cur, axis, o)
            if cur is None:
                return None
    return cur


def _src_region(shape: tuple, axis_offsets: tuple, gl: int) -> tuple:
    """Sender-side interior region adjacent to the face/edge/corner *offset*."""
    idx = []
    for n, o in zip(shape, axis_offsets):
        if o < 0:
            idx.append(slice(gl, 2 * gl))
        elif o > 0:
            idx.append(slice(n - 2 * gl, n - gl))
        else:
            idx.append(slice(gl, n - gl))
    return tuple(idx)


def _dst_region(shape: tuple, axis_offsets: tuple, gl: int) -> tuple:
    """Receiver-side ghost region filled by a message sent with *offset*.

    The sender lies at ``-offset`` from the receiver, so a ``+1`` component
    (sender moved up to reach the receiver) fills the receiver's *low* ghost.
    """
    idx = []
    for n, o in zip(shape, axis_offsets):
        if o > 0:
            idx.append(slice(0, gl))
        elif o < 0:
            idx.append(slice(n - gl, n))
        else:
            idx.append(slice(gl, n - gl))
    return tuple(idx)


class ExchangePlan:
    """Precomputed topology for one rank's :class:`GhostExchange`.

    The neighbour structure (which regions copy where, which messages go to
    which rank, which faces are domain walls) depends only on the forest,
    the ownership map and the ghost width — not on field data — so the
    solver computes it once and reuses it every step for every field.  All
    region indices are spatial-only tuples; trailing index dimensions pass
    through untouched.
    """

    def __init__(self, blocks, forest, owners, my_rank: int, ghost_layers: int):
        gl = int(ghost_layers)
        self.ghost_layers = gl
        dim = forest.dim
        # uniform block shapes: spatial extents come from the forest
        shape = tuple(s + 2 * gl for s in forest.block_shape)
        offsets = [off for off in product((-1, 0, +1), repeat=dim) if any(off)]
        #: on-rank ghost copies: (src_coords, src_region, dst_coords, dst_region)
        self.local: list[tuple] = []
        #: remote strips grouped per destination rank (one aggregated message
        #: per neighbour rank per exchange): rank -> [(src_coords, src_region,
        #: offset, dst_coords)]
        self.sends_by_rank: dict[int, list[tuple]] = {}
        #: source ranks a bundle is expected from, ascending
        self.recv_sources: list[int] = []
        #: ghost region a strip sent with *offset* lands in
        self.dst_region_of: dict[tuple, tuple] = {
            off: _dst_region(shape, off, gl) for off in offsets
        }
        #: domain-wall fills in ascending axis order: (coords, axis, side)
        self.walls: list[tuple] = []
        for coords in sorted(blocks):
            for off in offsets:
                nb = _neighbor_at(forest, coords, off)
                if nb is None:
                    continue
                owner = owners[nb]
                if owner == my_rank:
                    self.local.append(
                        (coords, _src_region(shape, off, gl),
                         nb, self.dst_region_of[off])
                    )
                else:
                    self.sends_by_rank.setdefault(owner, []).append(
                        (coords, _src_region(shape, off, gl), off, nb)
                    )
        # neighbourhood is symmetric (periodic wrap included): every rank I
        # send to also sends to me, exactly one bundle each
        self.recv_sources = sorted(self.sends_by_rank)
        for axis in range(dim):
            for coords in sorted(blocks):
                for side in (-1, +1):
                    if forest.neighbor(coords, axis, side) is None:
                        self.walls.append((coords, axis, side))


class GhostExchange:
    """Asynchronous ghost-layer exchange split into ``start()`` / ``finish()``.

    Unlike the synchronous axis-by-axis relay of :func:`exchange_field`
    (whose later axes must wait for earlier ones to land before they can
    transport ghost corners), this exchange packs one strip per non-zero
    neighbour offset vector in ``{-1, 0, +1}^dim`` — faces span the interior
    of the other axes; edges and corners travel as dedicated diagonal
    strips.  That removes the intra-exchange ordering dependency, so
    ``start()`` can fire every send (and the on-rank copies, which only read
    stable interiors) before any compute, and ``finish()`` merely waits,
    unpacks and applies domain-wall fills.  Between the two calls, kernels
    restricted to the block interior may run freely: ghost cells are the
    only memory the exchange writes.  All strips bound for the same rank
    are aggregated into a single message (the per-neighbour send buffers of
    real MPI stencil codes), so each exchange costs one message per
    neighbour rank regardless of block count.  The static topology — which
    regions copy where, which ranks exchange bundles, which faces are
    domain walls — lives in an :class:`ExchangePlan` the solver computes
    once and reuses every step.

    The result is bit-identical to :func:`exchange_field`: faces carry the
    same interior strips, diagonal messages carry exactly the cells the
    relay would have forwarded through intermediate ghost strips, and wall
    fills (applied in ascending axis order after unpacking, mirror scheme)
    reproduce the relay's corner resolution.

    Profiler attribution: ``exchange:<field>:pack`` (packing + sends +
    on-rank copies, recorded by ``start``), ``exchange:<field>:wait``
    (blocking on in-flight receives) and ``exchange:<field>:unpack``
    (ghost writes + wall fills), plus the ``exchange:<field>`` total —
    the total counts only time spent inside the exchange, not the compute
    hidden between ``start`` and ``finish``.
    """

    def __init__(
        self,
        blocks: dict[tuple, Block],
        forest: BlockForest,
        owners: dict[tuple, int],
        comm: SimComm | None,
        field_name: str,
        ghost_layers: int,
        wall_mode: str = "neumann",
        profiler=None,
        comm_matrix=None,
        plan: ExchangePlan | None = None,
    ):
        self.blocks = blocks
        self.forest = forest
        self.owners = owners
        self.comm = comm
        self.field_name = field_name
        self.gl = int(ghost_layers)
        self.wall_mode = wall_mode
        self.profiler = profiler
        self.comm_matrix = comm_matrix
        self.my_rank = comm.rank if comm is not None else 0
        # the neighbour topology is static — reuse a precomputed plan when
        # the caller (the solver) holds one, else derive it here
        self.plan = plan if plan is not None else ExchangePlan(
            blocks, forest, owners, self.my_rank, self.gl
        )
        # capture array references now: the solver swaps its name->array
        # bindings at the end of a step, but a pending exchange must keep
        # unpacking into the arrays it packed from
        self.arrays: dict[tuple, np.ndarray] = {
            coords: block.arrays[field_name] for coords, block in blocks.items()
        }
        self.bytes_sent = 0
        self.messages_sent = 0
        self._requests: list = []       # (source, tag, Request) in recv order
        self._send_requests: list = []  # isend handles; real MPI requires a
        #                                 wait on every request to complete it
        self._seconds = 0.0             # time spent inside start()+finish()
        self._started = False
        self._finished = False

    def start(self) -> None:
        """Pack boundary regions, fire all sends, post all receives."""
        if self._started:
            raise RuntimeError(f"exchange of {self.field_name!r} already started")
        self._started = True
        t0 = perf_counter()
        plan = self.plan
        arrays = self.arrays
        # on-rank copies only read stable interiors, so they may run now
        for src_coords, src_region, dst_coords, dst_region in plan.local:
            arrays[dst_coords][dst_region] = arrays[src_coords][src_region]
        if plan.sends_by_rank and self.comm is None:
            raise RuntimeError("remote neighbour but no communicator")
        tag = (self.field_name, "ghosts")
        for owner in sorted(plan.sends_by_rank):
            # aggregate every strip bound for *owner* into one message; each
            # entry names its destination block and the sender-side offset so
            # the receiver can place it without per-strip tags
            bundle = [
                (dst_coords, off, arrays[src_coords][src_region].copy())
                for src_coords, src_region, off, dst_coords
                in plan.sends_by_rank[owner]
            ]
            self._send_requests.append(self.comm.isend(bundle, owner, tag=tag))
            nbytes = sum(p.nbytes for _, _, p in bundle)
            self.bytes_sent += nbytes
            self.messages_sent += 1
            if self.comm_matrix is not None:
                self.comm_matrix.add(self.my_rank, owner, nbytes)
        # post one receive per neighbour rank, ascending: the neighbourhood
        # is symmetric (periodic wrap included), so each rank I send to owes
        # me exactly one bundle in return
        for source in plan.recv_sources:
            self._requests.append((source, tag, self.comm.irecv(source, tag=tag)))
        t1 = perf_counter()
        self._seconds += t1 - t0
        if self.profiler is not None:
            self.profiler.record(
                f"exchange:{self.field_name}:pack", t1 - t0, end=t1,
            )

    def finish(self) -> None:
        """Wait for in-flight receives, unpack ghosts, fill domain walls."""
        if not self._started:
            raise RuntimeError(f"exchange of {self.field_name!r} never started")
        if self._finished:
            raise RuntimeError(f"exchange of {self.field_name!r} already finished")
        self._finished = True
        plan = self.plan

        t0 = perf_counter()
        received: list[list] = [req.wait() for _source, _tag, req in self._requests]
        # complete the sends too: a dropped isend request leaks under real
        # MPI (receives complete first, so these waits never block for long)
        for req in self._send_requests:
            req.wait()
        self._send_requests.clear()
        t1 = perf_counter()
        if self.profiler is not None:
            self.profiler.record(
                f"exchange:{self.field_name}:wait", t1 - t0, end=t1,
            )

        t2 = perf_counter()
        for bundle in received:
            for dst_coords, sender_off, payload in bundle:
                self.arrays[dst_coords][plan.dst_region_of[sender_off]] = payload
        # wall fills last, in ascending axis order: later-axis mirrors read
        # earlier-axis ghost corners, exactly like the synchronous relay
        for coords, axis, side in plan.walls:
            _apply_wall(self.arrays[coords], axis, side, self.gl, self.wall_mode)
        t3 = perf_counter()
        if self.profiler is not None:
            self.profiler.record(
                f"exchange:{self.field_name}:unpack", t3 - t2, end=t3,
            )
        self._seconds += t3 - t0
        if self.profiler is not None:
            self.profiler.record(
                f"exchange:{self.field_name}", self._seconds,
                nbytes=self.bytes_sent, messages=self.messages_sent, end=t3,
            )


def communication_volume_bytes(
    block_shape: tuple[int, ...], ghost_layers: int, doubles_per_cell: float
) -> float:
    """Ghost volume exchanged per block per sweep (all faces, one field set)."""
    dim = len(block_shape)
    total_cells = 0.0
    for axis in range(dim):
        face = np.prod([s for d, s in enumerate(block_shape) if d != axis])
        total_cells += 2 * ghost_layers * face
    return total_cells * doubles_per_cell * 8.0
