"""Ghost-layer exchange across blocks and ranks (paper §4.3).

The exchange proceeds axis by axis; later axes transport the ghost strips
already filled by earlier axes, so edge and corner ghost cells end up
correct without dedicated diagonal messages — the same scheme the
single-block boundary fill uses.  For every axis:

1. pack the boundary strips of all owned blocks into contiguous buffers,
2. deliver them — directly for on-rank neighbours, via (simulated) MPI
   messages for remote neighbours,
3. unpack into the neighbours' ghost strips; domain walls without a
   neighbour get the local boundary condition instead.

Message tags carry (field, axis, direction); the destination block travels
inside the payload, so the protocol survives the bounded-integer tag folding
of real MPI (:mod:`repro.parallel.mpi_adapter`) without misrouting.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from .blockforest import Block, BlockForest
from .mpi_sim import SimComm

__all__ = ["exchange_field", "communication_volume_bytes"]


def _strip(arr: np.ndarray, axis: int, sl: slice) -> tuple:
    idx = [slice(None)] * arr.ndim
    idx[axis] = sl
    return tuple(idx)


def _apply_wall(arr: np.ndarray, axis: int, side: int, gl: int, mode: str) -> None:
    n = arr.shape[axis]
    if mode == "neumann":
        if side < 0:
            edge = arr[_strip(arr, axis, slice(gl, gl + 1))]
            arr[_strip(arr, axis, slice(0, gl))] = edge
        else:
            edge = arr[_strip(arr, axis, slice(n - gl - 1, n - gl))]
            arr[_strip(arr, axis, slice(n - gl, n))] = edge
    elif mode == "periodic":
        raise RuntimeError(
            "periodic walls are handled by the block forest wrap-around"
        )
    else:
        raise ValueError(f"unknown wall mode {mode!r}")


def exchange_field(
    blocks: dict[tuple, Block],
    forest: BlockForest,
    owners: dict[tuple, int],
    comm: SimComm | None,
    field_name: str,
    ghost_layers: int,
    wall_mode: str = "neumann",
    profiler=None,
    comm_matrix=None,
) -> int:
    """Synchronize the ghost layers of *field_name* over all blocks.

    Returns the number of bytes sent to remote ranks (for statistics).
    When a :class:`repro.profiling.SolverProfiler` is given, the exchange
    is timed under ``exchange:<field>`` (total, with remote byte and
    message counts) and additionally split per axis into

    * ``exchange:<field>:pack`` — packing boundary strips, on-rank ghost
      copies and domain-wall fills (copy work),
    * ``exchange:<field>:deliver`` — MPI sends and the blocking receives
      (the wait component), and
    * ``exchange:<field>:unpack`` — writing received strips into ghosts,

    so wait time is attributable separately from copy time.  ``messages``
    counts the MPI messages *sent* by this rank, mirroring the byte count.
    A :class:`repro.observability.CommMatrix` passed as *comm_matrix*
    additionally receives per-``(src, dst)`` byte/message accounting.
    """
    gl = int(ghost_layers)
    dim = forest.dim
    my_rank = comm.rank if comm is not None else 0
    sent_bytes = 0
    sent_messages = 0
    timing = profiler is not None
    t_begin = perf_counter() if timing else 0.0

    for axis in range(dim):
        t0 = perf_counter() if timing else 0.0
        outgoing: list[tuple[int, tuple, tuple, int]] = []
        for coords, block in blocks.items():
            arr = block.arrays[field_name]
            n = arr.shape[axis]
            for side in (-1, +1):
                nb = forest.neighbor(coords, axis, side)
                if nb is None:
                    _apply_wall(arr, axis, side, gl, wall_mode)
                    continue
                if side < 0:
                    payload = arr[_strip(arr, axis, slice(gl, 2 * gl))]
                else:
                    payload = arr[_strip(arr, axis, slice(n - 2 * gl, n - gl))]
                owner = owners[nb]
                if owner == my_rank:
                    target = blocks[nb].arrays[field_name]
                    tn = target.shape[axis]
                    if side < 0:  # I am the +axis neighbour of nb
                        target[_strip(target, axis, slice(tn - gl, tn))] = payload
                    else:
                        target[_strip(target, axis, slice(0, gl))] = payload
                else:
                    if comm is None:
                        raise RuntimeError("remote neighbour but no communicator")
                    # tag carries only (field, axis, side); the payload names
                    # the destination block, so matching stays correct even
                    # when tags are folded to bounded MPI integers
                    tag = (field_name, axis, side)
                    # explicit copy: the strip is a view that later axes of
                    # this very exchange will overwrite (ghost corners)
                    outgoing.append((owner, tag, (nb, payload.copy()), payload.nbytes))
        # receive strips destined for my blocks: count expected messages per
        # (source rank, sender side) channel, then dispatch by block coords
        expected: dict[tuple[int, int], int] = {}
        for coords, block in blocks.items():
            for side in (-1, +1):
                nb = forest.neighbor(coords, axis, side)
                if nb is None or owners[nb] == my_rank:
                    continue
                key = (owners[nb], -side)  # the sender used its own side
                expected[key] = expected.get(key, 0) + 1
        if timing:
            t1 = perf_counter()
            profiler.record(f"exchange:{field_name}:pack", t1 - t0, end=t1)
        if not outgoing and not expected:
            continue

        t0 = perf_counter() if timing else 0.0
        axis_bytes = 0
        for owner, tag, message, nbytes in outgoing:
            comm.send(message, owner, tag=tag)
            axis_bytes += nbytes
            if comm_matrix is not None:
                comm_matrix.add(my_rank, owner, nbytes)
        sent_bytes += axis_bytes
        sent_messages += len(outgoing)
        received: list[tuple[int, tuple]] = []
        for (src, sender_side), count in sorted(expected.items()):
            tag = (field_name, axis, sender_side)
            for _ in range(count):
                received.append((sender_side, comm.recv(src, tag=tag)))
        if timing:
            t1 = perf_counter()
            profiler.record(
                f"exchange:{field_name}:deliver", t1 - t0,
                nbytes=axis_bytes, messages=len(outgoing), end=t1,
            )

        t0 = perf_counter() if timing else 0.0
        for sender_side, (dst_coords, payload) in received:
            arr = blocks[dst_coords].arrays[field_name]
            n = arr.shape[axis]
            if sender_side > 0:  # sender's +side strip fills my low ghost
                arr[_strip(arr, axis, slice(0, gl))] = payload
            else:
                arr[_strip(arr, axis, slice(n - gl, n))] = payload
        if timing:
            t1 = perf_counter()
            profiler.record(f"exchange:{field_name}:unpack", t1 - t0, end=t1)

    if timing:
        t_end = perf_counter()
        profiler.record(
            f"exchange:{field_name}", t_end - t_begin,
            nbytes=sent_bytes, messages=sent_messages, end=t_end,
        )
    return sent_bytes


def communication_volume_bytes(
    block_shape: tuple[int, ...], ghost_layers: int, doubles_per_cell: float
) -> float:
    """Ghost volume exchanged per block per sweep (all faces, one field set)."""
    dim = len(block_shape)
    total_cells = 0.0
    for axis in range(dim):
        face = np.prod([s for d, s in enumerate(block_shape) if d != axis])
        total_cells += 2 * ghost_layers * face
    return total_cells * doubles_per_cell * 8.0
