"""Distributed time stepping: Algorithm 1 over a block forest.

Each rank owns a set of blocks (Morton-distributed); the step structure is
identical to :class:`repro.pfm.solver.SingleBlockSolver`, with ghost-layer
*exchanges* replacing the single-block boundary fills:

1. φ-kernel on every owned block (φ_src D3C7, µ_src D3C1)
2. projection, then ghost exchange of φ_dst
3. µ-kernel (µ_src D3C7, φ_src+φ_dst D3C19)
4. ghost exchange of µ_dst, swap

Philox counters use *global* cell coordinates (``block.cell_offset``), so a
distributed run with fluctuations is bit-identical to a single-block run —
verified in the test suite.
"""

from __future__ import annotations

import numpy as np

from time import perf_counter

from ..backends.numpy_backend import compile_numpy_kernel
from ..diagnostics.suite import merge_partials
from ..ir.kernel import split_interior_frontier
from ..observability.distributed import CommMatrix
from ..observability.health import HealthMonitor
from ..observability.log import get_logger, kv
from ..observability.metrics import get_registry
from ..observability.recorder import get_recorder
from ..observability.tracing import get_tracer
from ..pfm.model import PhaseFieldKernelSet
from ..profiling import SolverProfiler, compile_cached
from .blockforest import Block, BlockForest
from .ghostlayer import ExchangePlan, GhostExchange, exchange_field
from .mpi_sim import SimComm

__all__ = ["DistributedSolver"]

_log = get_logger("parallel.timeloop")


class DistributedSolver:
    """Runs a phase-field model on the blocks owned by one rank.

    Pass a :class:`repro.observability.HealthMonitor` as *health* to check
    every owned block on the monitor's cadence during :meth:`step`.

    ``overlap=True`` selects the communication-hiding schedule (paper
    §4.3): each ghost exchange is split into an asynchronous
    :meth:`~repro.parallel.ghostlayer.GhostExchange.start` /
    :meth:`~repro.parallel.ghostlayer.GhostExchange.finish` pair, and the
    µ sweep is split into an *interior* kernel (cells that read no ghost
    data) run while the φ_dst exchange is in flight, plus per-face
    *frontier* kernels run after it lands.  The schedule is bit-identical
    to ``overlap=False`` and to the single-block solver — the restricted
    kernels iterate the same global cell coordinates, so even the Philox
    fluctuation streams agree.

    ``ghost_layers`` widens the ghost frame beyond what the kernels
    require (e.g. to validate gl=2 wall handling end to end).
    """

    def __init__(
        self,
        kernel_set: PhaseFieldKernelSet,
        forest: BlockForest,
        comm: SimComm | None = None,
        wall_mode: str = "neumann",
        seed: int = 0,
        compiled_cache: dict | None = None,
        health: HealthMonitor | None = None,
        overlap: bool = False,
        ghost_layers: int | None = None,
        backend: str = "numpy",
        rundir=None,
    ):
        self.kernel_set = kernel_set
        self.model = kernel_set.model
        self.params = self.model.params
        self.forest = forest
        self.comm = comm
        self.wall_mode = wall_mode
        self.seed = seed
        required_gl = max(kernel_set.ghost_layers, 1)
        if ghost_layers is None:
            self.ghost_layers = required_gl
        else:
            if int(ghost_layers) < required_gl:
                raise ValueError(
                    f"ghost_layers={ghost_layers} below the kernel set's "
                    f"requirement of {required_gl}"
                )
            self.ghost_layers = int(ghost_layers)
        self.rank = comm.rank if comm is not None else 0
        n_ranks = comm.size if comm is not None else 1
        self.n_ranks = n_ranks

        self.owners = forest.owner_map(n_ranks)
        self.blocks: dict[tuple, Block] = {}
        for coords, owner in self.owners.items():
            if owner == self.rank:
                block = forest.make_block(coords)
                gl = self.ghost_layers
                for f in kernel_set.fields:
                    shape = tuple(s + 2 * gl for s in block.interior_shape) + f.index_shape
                    block.arrays[f.name] = np.zeros(shape, dtype=np.float64)
                self.blocks[coords] = block

        # ``compiled_cache`` predates the process-wide kernel cache and keys
        # on kernel *names* only — kept for callers that need rank-private
        # compilations; by default the shared structural cache is used, so
        # every rank/solver built from an equal kernel set compiles once
        self.backend = backend
        if compiled_cache is not None:
            if backend != "numpy":
                raise ValueError("compiled_cache only supports the numpy backend")

            def compiled(kernel):
                if kernel.name not in compiled_cache:
                    compiled_cache[kernel.name] = compile_numpy_kernel(kernel)
                return compiled_cache[kernel.name]
        else:
            def compiled(kernel):
                return compile_cached(kernel, backend)

        self._phi = [compiled(k) for k in kernel_set.phi_kernels]
        self._project = compiled(kernel_set.projection_kernel)
        self._mu = [compiled(k) for k in kernel_set.mu_kernels]

        self.overlap = bool(overlap)
        self._pending: GhostExchange | None = None
        self._exchange_plan: ExchangePlan | None = None
        if self.overlap:
            self._validate_overlap()
            # lower each µ kernel into one interior variant plus 2·dim
            # frontier slabs; together they tile the block exactly once
            self._mu_interior = []
            self._mu_frontier = []
            for k in kernel_set.mu_kernels:
                interior, frontiers = split_interior_frontier(k)
                self._mu_interior.append(compiled(interior))
                self._mu_frontier.extend(compiled(f) for f in frontiers)
            # defer the µ_dst finish() into the next step only when the φ
            # sweep reads µ at the centre cell alone — then stale µ ghosts
            # during the φ sweep are never observed
            phi_like = [*kernel_set.phi_kernels, kernel_set.projection_kernel]
            self._defer_mu = all(
                acc.max_abs_offset == 0
                for k in phi_like
                for acc in k.ac.field_reads
                if acc.field.name == "mu"
            )

        self.time_step = 0
        self.time = 0.0
        self.bytes_sent = 0
        self.step_seconds = 0.0
        self.profiler = SolverProfiler()
        self.comm_matrix = CommMatrix(n_ranks)
        self.health = health
        self._diag_suite = None
        self._diag_series = None
        self._fp_stream = None
        self._cells_per_block = {
            coords: int(np.prod(block.interior_shape))
            for coords, block in self.blocks.items()
        }
        registry = get_registry()
        self._step_latency = registry.histogram(
            "repro_step_seconds", "wall time per solver time step",
            solver="distributed", rank=self.rank,
        )
        self._bytes_counter = registry.counter(
            "repro_exchange_bytes_total", "ghost-layer bytes sent to remote ranks",
            rank=self.rank,
        )
        # flight-recorder integration: per-block field stats at crash time,
        # and (under a RunDir) a rank-suffixed event journal so a dead rank
        # leaves its last events on disk even if the pipe hop fails too
        self.rundir = rundir
        recorder = get_recorder()
        recorder.set_state_provider(self._recorder_state)
        if rundir is not None:
            if self.rank == 0:
                rundir.note(
                    solver="distributed", backend=backend,
                    ranks=self.n_ranks, overlap=self.overlap,
                    forest=str(forest.global_shape),
                )
            journal_rank = self.rank if self.n_ranks > 1 else None
            recorder.open_journal(rundir.journal_path(journal_rank))
            if health is not None:
                rundir.attach_health(health)
        _log.info(
            kv(
                "solver_created",
                kind="distributed",
                rank=self.rank,
                blocks=len(self.blocks),
                forest=str(forest.global_shape),
                health=health is not None,
            )
        )

    def _recorder_state(self) -> dict:
        """Live per-block φ/µ views for crash post-mortem field stats."""
        state = {}
        for coords, block in self.blocks.items():
            tag = "_".join(str(c) for c in coords)
            state[f"phi[block {tag}]"] = block.arrays["phi"]
            state[f"mu[block {tag}]"] = block.arrays["mu"]
        return state

    # -- initialization -------------------------------------------------------

    def set_state_from(self, init) -> None:
        """Initialize every owned block.

        ``init(cell_offset, interior_shape) -> (phi_block, mu_block)`` where
        ``phi_block`` has shape ``interior_shape + (N,)`` and ``mu_block``
        broadcasts to ``interior_shape + (K−1,)``.
        """
        self._finish_pending()
        gl = self.ghost_layers
        for block in self.blocks.values():
            phi0, mu0 = init(block.cell_offset, block.interior_shape)
            sl = (slice(gl, -gl),) * self.forest.dim
            block.arrays["phi"][sl] = phi0
            block.arrays["mu"][sl] = mu0
        self._exchange("phi")
        self._exchange("mu")

    # -- checkpointing ---------------------------------------------------------

    def _block_checkpoint_path(self, base, coords):
        from pathlib import Path

        base = Path(base)
        tag = "block_" + "_".join(str(c) for c in coords)
        return base.with_name(f"{base.stem}.{tag}.npz")

    def save_checkpoint(self, path=None) -> list:
        """Write one ``.npz`` per owned block next to the normalized *path*.

        Block ``(i, j, ...)`` lands in ``<stem>.block_i_j.npz`` holding the
        interior φ/µ plus time and step, so a restart with any rank count
        (over the same forest) can reassemble the state.  With no *path*
        and an attached :class:`RunDir`, blocks land under
        ``<rundir>/checkpoints/``.  Returns the paths written by this rank.
        """
        from ..analysis.io import save_snapshot, snapshot_path

        if path is None:
            if self.rundir is None:
                raise ValueError("save_checkpoint needs a path (no RunDir attached)")
            path = self.rundir.checkpoint_dir / f"step{self.time_step:08d}"
        self._finish_pending()
        base = snapshot_path(path)
        get_recorder().record(
            "checkpoint", str(base), time_step=self.time_step, blocks=len(self.blocks)
        )
        gl = self.ghost_layers
        sl = (slice(gl, -gl),) * self.forest.dim
        written = []
        for coords in sorted(self.blocks):
            arrays = self.blocks[coords].arrays
            written.append(
                save_snapshot(
                    self._block_checkpoint_path(base, coords),
                    arrays["phi"][sl].copy(),
                    arrays["mu"][sl].copy(),
                    self.time,
                    self.time_step,
                )
            )
        _log.info(
            kv(
                "checkpoint_saved",
                kind="distributed",
                rank=self.rank,
                base=str(base),
                blocks=len(written),
                time_step=self.time_step,
            )
        )
        return written

    def load_checkpoint(self, path) -> None:
        """Restore every owned block from :meth:`save_checkpoint` files.

        Restores interiors, time and step, then re-exchanges φ and µ so the
        ghost frame is consistent — a resumed run continues bit-identically
        to an uninterrupted one.
        """
        from ..analysis.io import load_snapshot, snapshot_path

        self._finish_pending()
        base = snapshot_path(path)
        gl = self.ghost_layers
        sl = (slice(gl, -gl),) * self.forest.dim
        times: set[float] = set()
        steps: set[int] = set()
        for coords in sorted(self.blocks):
            data = load_snapshot(self._block_checkpoint_path(base, coords))
            arrays = self.blocks[coords].arrays
            arrays["phi"][sl] = data["phi"]
            arrays["mu"][sl] = data["mu"]
            times.add(float(data["time"]))
            steps.add(int(data["time_step"]))
        if len(times) > 1 or len(steps) > 1:
            raise ValueError(
                f"inconsistent per-block checkpoints under {base}: "
                f"times={sorted(times)}, steps={sorted(steps)}"
            )
        if times:
            self.time = times.pop()
            self.time_step = steps.pop()
        self._exchange("phi")
        self._exchange("mu")
        _log.info(
            kv(
                "checkpoint_loaded",
                kind="distributed",
                rank=self.rank,
                base=str(base),
                blocks=len(self.blocks),
                time_step=self.time_step,
            )
        )

    # -- stepping ----------------------------------------------------------------

    def _validate_overlap(self) -> None:
        ks = self.kernel_set
        margin = max((max(k.ghost_layers, 1) for k in ks.mu_kernels), default=1)
        if min(self.forest.block_shape) < 2 * margin:
            raise ValueError(
                f"overlap requires blocks of at least {2 * margin} cells per "
                f"axis (interior margin {margin}), got {self.forest.block_shape}"
            )
        # the interior/frontier split runs a kernel's pieces back to back,
        # so no µ kernel may read a field another µ kernel writes
        for ki in ks.mu_kernels:
            for kj in ks.mu_kernels:
                if ki is kj:
                    continue
                clash = {f.name for f in ki.ac.fields_read} & {
                    f.name for f in kj.ac.fields_written
                }
                if clash:
                    raise ValueError(
                        f"overlap schedule needs independent µ kernels, but "
                        f"{ki.name!r} reads {sorted(clash)} written by {kj.name!r}"
                    )

    def _exchange(self, name: str) -> None:
        sent = exchange_field(
            self.blocks,
            self.forest,
            self.owners,
            self.comm,
            name,
            self.ghost_layers,
            self.wall_mode,
            profiler=self.profiler,
            comm_matrix=self.comm_matrix,
        )
        self.bytes_sent += sent
        if sent:
            self._bytes_counter.inc(sent)

    def _start_exchange(self, name: str) -> GhostExchange:
        if self._exchange_plan is None:
            self._exchange_plan = ExchangePlan(
                self.blocks, self.forest, self.owners,
                self.rank, self.ghost_layers,
            )
        ex = GhostExchange(
            self.blocks,
            self.forest,
            self.owners,
            self.comm,
            name,
            self.ghost_layers,
            self.wall_mode,
            profiler=self.profiler,
            comm_matrix=self.comm_matrix,
            plan=self._exchange_plan,
        )
        ex.start()
        return ex

    def _finish_exchange(self, ex: GhostExchange) -> None:
        ex.finish()
        self.bytes_sent += ex.bytes_sent
        if ex.bytes_sent:
            self._bytes_counter.inc(ex.bytes_sent)

    def _finish_pending(self) -> None:
        """Land the µ_dst exchange deferred from the previous step.

        Any operation that reads ghost cells or drains the message queues
        (gather, checkpointing, diagnostics, reports, the next frontier
        sweep) must call this first.
        """
        if self._pending is not None:
            ex, self._pending = self._pending, None
            self._finish_exchange(ex)

    def _run(self, compiled, block: Block) -> None:
        # dispatch recorded BEFORE the sweep: a crashing kernel is the
        # post-mortem's last event (see SingleBlockSolver._run)
        get_recorder().record(
            "kernel", compiled.name,
            time_step=self.time_step, block=list(block.coords),
        )
        cells = self._cells_per_block.get(tuple(block.coords), 0)
        sub = getattr(getattr(compiled, "kernel", None), "subspace", None)
        if sub is not None:
            cells = 1
            for lo, hi in sub.concrete(block.interior_shape):
                cells *= hi - lo
        with self.profiler.measure(compiled.name, cells=cells):
            compiled(
                block.arrays,
                ghost_layers=self.ghost_layers,
                block_offset=block.cell_offset,
                t=self.time,
                time_step=self.time_step,
                seed=self.seed,
            )

    def _sweep_phi(self) -> None:
        for block in self.blocks.values():
            for k in self._phi:
                self._run(k, block)
            self._run(self._project, block)

    def _step_synchronous(self) -> None:
        self._sweep_phi()
        self._exchange("phi_dst")
        for block in self.blocks.values():
            for k in self._mu:
                self._run(k, block)
        self._exchange("mu_dst")

    def _step_overlapped(self) -> None:
        # φ sweep, then hide the φ_dst exchange behind the µ interior
        # kernels; the µ frontier runs once the ghosts have landed
        self._sweep_phi()
        ex_phi = self._start_exchange("phi_dst")
        for block in self.blocks.values():
            for k in self._mu_interior:
                self._run(k, block)
        # the previous step's µ_dst exchange (today's µ_src ghosts) must
        # land before any frontier cell reads them
        self._finish_pending()
        self._finish_exchange(ex_phi)
        for block in self.blocks.values():
            for k in self._mu_frontier:
                self._run(k, block)
        ex_mu = self._start_exchange("mu_dst")
        if self._defer_mu:
            # φ reads µ at the centre only, so next step's φ sweep can hide
            # this exchange too; finish() lands it before the µ frontier
            self._pending = ex_mu
        else:
            self._finish_exchange(ex_mu)

    def step(self, n_steps: int = 1) -> None:
        tracer = get_tracer()
        recorder = get_recorder()
        for _ in range(n_steps):
            t0 = perf_counter()
            begin_step = self.time_step
            recorder.step_begin(begin_step, rank=self.rank)
            with tracer.span(
                "step",
                category="runtime",
                time_step=self.time_step,
                overlap=self.overlap,
            ):
                if self.overlap:
                    self._step_overlapped()
                else:
                    self._step_synchronous()
                for block in self.blocks.values():
                    block.arrays["phi"], block.arrays["phi_dst"] = (
                        block.arrays["phi_dst"],
                        block.arrays["phi"],
                    )
                    block.arrays["mu"], block.arrays["mu_dst"] = (
                        block.arrays["mu_dst"],
                        block.arrays["mu"],
                    )
                self.time_step += 1
                self.time += self.params.dt
                # invariants run BEFORE the field watchdogs — see
                # SingleBlockSolver.step for the ordering rationale
                if (
                    self._diag_suite is not None
                    and self.time_step % self._diag_every == 0
                ):
                    self._evaluate_diagnostics()
                if self.health is not None and self.health.due(self.time_step):
                    self._check_health()
                if (
                    self._fp_stream is not None
                    and self.time_step % self._fp_every == 0
                ):
                    self._evaluate_fingerprints()
            dt = perf_counter() - t0
            recorder.step_end(begin_step, dt)
            self.step_seconds += dt
            self._step_latency.observe(dt)

    # -- in-situ physics diagnostics ------------------------------------------

    def enable_diagnostics(
        self,
        suite=None,
        every: int = 1,
        csv_path=None,
        check_invariants: bool = True,
    ):
        """Evaluate a :class:`~repro.diagnostics.DiagnosticsSuite` in-situ.

        Collective: every rank evaluates its own blocks' partial sums, the
        partials are allgathered and merged in sorted block-coordinate
        order (a fixed sequence of scalar adds), so every rank — and a
        single-process run over the same forest — computes the bit-identical
        global series.  CSV and metrics gauges are emitted on rank 0 only;
        invariant checks run on all ranks (same merged values) so a
        policy-"raise" monitor aborts every rank.
        """
        from ..diagnostics import DiagnosticsSeries, DiagnosticsSuite, invariant_names

        if every < 1:
            raise ValueError("every must be >= 1")
        if csv_path is None and self.rundir is not None:
            csv_path = self.rundir.diagnostics_path
        if suite is None:
            suite = DiagnosticsSuite.for_model(self.model)
        self._diag_suite = suite
        self._diag_every = int(every)
        self._diag_series = DiagnosticsSeries(
            suite.names,
            csv_path=csv_path if self.rank == 0 else None,
            metrics=self.rank == 0,
            trace=True,
        )
        if check_invariants:
            self._diag_mass, self._diag_energy = invariant_names(
                suite.names, self.params
            )
        else:
            self._diag_mass, self._diag_energy = (), None
        self._evaluate_diagnostics()
        return self._diag_series

    @property
    def diagnostics(self):
        """The live :class:`DiagnosticsSeries`, or ``None`` when disabled."""
        return self._diag_series

    def _evaluate_diagnostics(self) -> dict:
        self._finish_pending()
        suite = self._diag_suite
        local: dict[tuple, tuple[dict, int]] = {}
        for coords, block in self.blocks.items():
            local[coords] = suite.partial(
                block.arrays,
                ghost_layers=self.ghost_layers,
                block_offset=block.cell_offset,
                t=self.time,
                time_step=self.time_step,
                seed=self.seed,
            )
        if self.comm is not None:
            per_block: dict[tuple, tuple[dict, int]] = {}
            for part in self.comm.allgather(local):
                per_block.update(part)
        else:
            per_block = local
        totals, n_cells = merge_partials(per_block, tuple(suite.names))
        values = suite.finalize(totals, n_cells)
        self._diag_series.record(self.time_step, self.time, values)
        if self.health is not None and (self._diag_mass or self._diag_energy):
            self.health.check_diagnostics(
                values,
                self.time_step,
                mass_names=self._diag_mass,
                energy_name=self._diag_energy,
                where=f"rank {self.rank}",
            )
        return values

    def _check_health(self) -> None:
        gl = self.ghost_layers
        sl = (slice(gl, -gl),) * self.forest.dim
        for coords, block in self.blocks.items():
            self.health.check(
                {"phi": block.arrays["phi"][sl], "mu": block.arrays["mu"][sl]},
                self.time_step,
                phase_sum_of="phi",
                where=f"rank {self.rank} block {coords}",
            )

    # -- determinism fingerprints ----------------------------------------------

    def enable_fingerprints(
        self,
        every: int = 1,
        fields: tuple[str, ...] | None = None,
        reference=None,
        path=None,
    ):
        """Stream ``repro-fingerprint/1`` state digests every *every* steps.

        Collective: every rank digests its own blocks' interiors, the
        per-block digests are allgathered and assembled in sorted
        block-coordinate order, so every rank — and a single-block run
        fingerprinted with ``tile_shape=forest.block_shape`` — emits the
        bit-identical record stream.  The ledger is written on rank 0
        only; the online audit against *reference* runs on ALL ranks
        (same merged record), so a policy-"raise" monitor aborts every
        rank at the first divergent (step, field, block).
        """
        from ..observability.fingerprint import FingerprintStream

        if every < 1:
            raise ValueError("every must be >= 1")
        names = tuple(fields) if fields else ("phi", "mu")
        for name in names:
            for block in self.blocks.values():
                if name not in block.arrays:
                    raise ValueError(f"unknown field {name!r}")
        if path is None and self.rundir is not None:
            path = self.rundir.fingerprint_path
        self._fp_stream = FingerprintStream(
            path=path if self.rank == 0 else None,
            reference=reference,
            health=self.health,
            where=f"rank {self.rank}" if self.n_ranks > 1 else "",
            metrics=self.rank == 0,
        )
        self._fp_every = int(every)
        self._fp_fields = names
        self._evaluate_fingerprints()
        return self._fp_stream

    @property
    def fingerprints(self):
        """The live :class:`FingerprintStream`, or ``None`` when disabled."""
        return self._fp_stream

    def _evaluate_fingerprints(self) -> dict:
        from ..observability.fingerprint import block_key, digest_array

        self._finish_pending()
        t0 = perf_counter()
        gl = self.ghost_layers
        sl = (slice(gl, -gl),) * self.forest.dim
        local: dict[str, dict[str, str]] = {}
        for coords, block in self.blocks.items():
            local[block_key(coords)] = {
                name: digest_array(block.arrays[name][sl])
                for name in self._fp_fields
            }
        if self.comm is not None:
            merged: dict[str, dict[str, str]] = {}
            for part in self.comm.allgather(local):
                merged.update(part)
        else:
            merged = local
        fields = {
            name: {key: merged[key][name] for key in merged}
            for name in self._fp_fields
        }
        self._fp_stream.add_overhead(perf_counter() - t0)
        return self._fp_stream.record_digests(self.time_step, self.time, fields)

    # -- diagnostics ----------------------------------------------------------

    def default_step_model(self):
        """A :class:`StepTimeModel` calibrated from this run's measurements.

        The compute rate is the rank's aggregate measured kernel MLUP/s; the
        exchanged volume follows from the block shape and the field set
        (φ: N components, µ: K−1).  Returns ``None`` before any kernel has
        been timed.
        """
        from .comm_model import OMNIPATH_FAT_TREE, CommOptions, StepTimeModel

        kernel_recs = [r for r in self.profiler.records.values() if r.cells]
        kernel_secs = sum(r.seconds for r in kernel_recs)
        kernel_cells = sum(r.cells for r in kernel_recs)
        if kernel_secs <= 0.0 or kernel_cells == 0:
            return None
        return StepTimeModel(
            compute_mlups=kernel_cells / kernel_secs / 1e6,
            block_shape=self.forest.block_shape,
            exchanged_doubles_per_cell=float(
                self.params.n_phases + self.params.n_mu
            ),
            network=OMNIPATH_FAT_TREE,
            options=CommOptions(overlap=self.overlap),
            ghost_layers=self.ghost_layers,
        )

    def scaling_report(self, step_model=None, nodes: int = 1) -> str:
        """Comm matrix, λ imbalance factor and comm-model closure.

        Under a communicator this is a *collective* call — every rank must
        invoke it (it gathers the per-rank step times and comm matrices);
        all ranks return the same matrix and λ, with the closure table
        built from the calling rank's own exchange timings.  Pass a
        :class:`repro.parallel.comm_model.StepTimeModel` to predict against
        specific hardware; by default one is calibrated from the run itself
        (:meth:`default_step_model`).
        """
        from ..observability.distributed import (
            comm_closure_report,
            imbalance_factor,
            overlap_closure_report,
        )

        self._finish_pending()
        matrix = CommMatrix(self.n_ranks)
        if self.comm is not None:
            # merge each gathered matrix exactly once — under a process- or
            # MPI-backed communicator the allgather returns *copies*, so an
            # identity check against self.comm_matrix would double-count
            # this rank's rows (the thread-backed simulator returns the
            # object itself, where the same single merge is still correct)
            gathered = self.comm.allgather(
                (self.rank, self.step_seconds, self.comm_matrix)
            )
            step_times = [t for _, t, _ in sorted(gathered)]
            for _, _, other in gathered:
                matrix.merge(other)
        else:
            matrix.merge(self.comm_matrix)
            step_times = [self.step_seconds]
        lam = imbalance_factor(step_times)
        model = step_model if step_model is not None else self.default_step_model()
        measured = (
            self.step_seconds / self.time_step if self.time_step else None
        )
        lines = [
            matrix.render(
                f"communication matrix: {self.n_ranks} ranks, "
                f"{self.time_step} steps"
            ),
            f"   load imbalance λ (max/mean per-rank step time): {lam:.3f}",
            "",
            comm_closure_report(
                model,
                self.profiler,
                self.time_step,
                nodes=nodes,
            ),
            "",
            overlap_closure_report(
                model,
                measured_step_s=measured,
                mode="overlap" if self.overlap else "sync",
                nodes=nodes,
            ),
        ]
        return "\n".join(lines)

    def profile_report(self, machine=None, step_model=None, nodes: int = 1) -> str:
        """Per-rank timing table plus the predicted-vs-measured closures.

        Includes the distributed scaling section (:meth:`scaling_report`);
        under a communicator every rank must therefore call this together.
        """
        from ..observability.report import model_accuracy_report

        self._finish_pending()
        base = self.profiler.report(
            f"distributed profile: rank {self.rank}, {len(self.blocks)} blocks, "
            f"{self.time_step} steps"
        )
        accuracy = model_accuracy_report(
            self.kernel_set.all_kernels,
            self.profiler,
            machine=machine,
            block_shape=self.forest.block_shape,
        )
        parts = [base, "", accuracy, "", self.scaling_report(step_model, nodes=nodes)]
        if self.health is not None:
            parts += ["", self.health.summary()]
        return "\n".join(parts)

    def export_metrics(self, registry=None) -> None:
        """Publish this rank's profile into the metrics registry."""
        self.profiler.export_metrics(
            registry, solver="distributed", rank=self.rank
        )

    def export_perf(self, path=None, machine=None, bench: str = "distributed") -> str | None:
        """Append rank 0's ``repro-perf/1`` records to the run's perf ledger.

        Mirrors :meth:`export_comm_matrix`: rank 0 writes — to *path*, or
        the attached RunDir's canonical ``perf/perf.jsonl`` — and returns
        the path; other ranks return ``None``.
        """
        from ..perfmodel.ledger import PerfLedger, records_from_profiler

        self._finish_pending()
        if self.rank != 0:
            return None
        if path is None:
            if self.rundir is None:
                raise ValueError("export_perf needs a path (no RunDir attached)")
            path = self.rundir.perf_path
        records = records_from_profiler(
            bench,
            self.kernel_set.all_kernels,
            self.profiler,
            machine=machine,
            block_shape=self.forest.block_shape,
            options={
                "backend": self.backend,
                "ranks": self.n_ranks,
                "overlap": bool(self.overlap),
            },
        )
        if not records:
            return None
        PerfLedger(path).extend(records)
        return str(path)

    def export_comm_matrix(self, path=None) -> str | None:
        """Write the merged comm matrix as JSON (``comm_matrix.json``).

        Collective under a communicator (allgather of the per-rank
        matrices); rank 0 writes — to *path*, or the attached RunDir's
        canonical location — and returns the path, other ranks return
        ``None``.
        """
        import json

        self._finish_pending()
        matrix = CommMatrix(self.n_ranks)
        if self.comm is not None:
            for other in self.comm.allgather(self.comm_matrix):
                matrix.merge(other)
        else:
            matrix.merge(self.comm_matrix)
        if self.rank != 0:
            return None
        if path is None:
            if self.rundir is None:
                raise ValueError("export_comm_matrix needs a path (no RunDir attached)")
            path = self.rundir.comm_matrix_path
        with open(path, "w") as handle:
            json.dump(matrix.to_json(), handle, indent=1)
            handle.write("\n")
        return str(path)

    # -- gathering -----------------------------------------------------------------

    def gather(self, name: str) -> np.ndarray | None:
        """Assemble the global interior field on rank 0 (None elsewhere)."""
        self._finish_pending()
        gl = self.ghost_layers
        sl = (slice(gl, -gl),) * self.forest.dim
        local = {
            coords: block.arrays[name][sl].copy()
            for coords, block in self.blocks.items()
        }
        if self.comm is not None:
            pieces = self.comm.gather(local, root=0)
            if self.rank != 0:
                return None
            merged: dict = {}
            for p in pieces:
                merged.update(p)
        else:
            merged = local
        sample = next(iter(merged.values()))
        shape = tuple(self.forest.global_shape) + sample.shape[self.forest.dim:]
        out = np.zeros(shape, dtype=np.float64)
        for coords, data in merged.items():
            offset = tuple(c * b for c, b in zip(coords, self.forest.block_shape))
            # slice with each piece's actual spatial extent: edge blocks that
            # are smaller than block_shape assemble without zero-padding the
            # data or raising a broadcast error
            spatial = data.shape[: self.forest.dim]
            sl2 = tuple(slice(o, o + s) for o, s in zip(offset, spatial))
            out[sl2] = data
        return out
