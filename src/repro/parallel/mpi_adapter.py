"""Adapter to run the distributed time loop on *real* MPI (mpi4py).

The whole :mod:`repro.parallel` stack is written against the small
communicator interface of :class:`~repro.parallel.mpi_sim.SimComm`.  This
module provides the same interface on top of an ``mpi4py`` communicator, so
that ``mpirun -n 8 python my_run.py`` executes the identical ghost-layer
protocol on real hardware.  mpi4py is optional; importing this module
without it only fails when an adapter is actually constructed.

The simulated communicator uses rich (tuple) tags for its per-channel
queues; MPI tags are bounded integers, so tags are folded deterministically
with CRC-32 (``hash()`` is salted per process and therefore unusable across
ranks).

Two mpi4py sharp edges are flattened here so the exchange protocol cannot
silently corrupt a real-parallel run:

* ``irecv`` of a pickled message uses a small default buffer (~32 KiB);
  any real ghost-layer strip beyond that fails with a truncation error.
  :meth:`MPI4PyComm.irecv` therefore posts a pre-sized receive buffer
  (``irecv_buffer_bytes``, default 16 MiB — comfortably above the largest
  aggregated ghost bundle of the benchmarks).
* ``bool`` is an ``int`` subclass, so a naive passthrough would alias the
  tags ``True``/``1`` and ``False``/``0``; and the negative collective
  tags (``-1``/``-2``) are not valid MPI tags.  :func:`fold_tag` routes
  both through the deterministic pickle+CRC fold — pickled booleans differ
  from pickled ints, so the folded tags stay distinct.
"""

from __future__ import annotations

import pickle
import zlib
from typing import Any

__all__ = ["fold_tag", "MPI4PyComm", "mpi4py_available"]

#: Conservative bound below every implementation's MPI_TAG_UB.
_TAG_MODULUS = 32749  # largest prime below 32768

#: Default pre-sized ``irecv`` buffer (mpi4py's default is ~32 KiB, far
#: below a realistic aggregated ghost bundle).
_IRECV_BUFFER_BYTES = 16 * 2**20


def fold_tag(tag: Any) -> int:
    """Deterministically fold an arbitrary (picklable) tag to a valid MPI tag.

    Identical on every rank and across processes (unlike ``hash``).  Plain
    non-negative ``int`` tags below the modulus pass through unchanged;
    everything else — rich tuple tags, negative collective tags, and
    booleans (an ``int`` subclass that must NOT alias ``1``/``0``) — folds
    through CRC-32 of its pickle, which keeps ``True`` distinct from ``1``
    because the two pickle differently.

    Collisions are possible but only matter for *concurrent* messages on the
    same (src, dst) pair; the ghost-layer protocol posts matching sends and
    receives in a deterministic per-axis order, so a collision at worst
    pairs messages of the same exchange — which carry distinct (axis, side,
    block) tags precisely to disambiguate, hence the wide modulus.
    """
    if type(tag) is int and 0 <= tag < _TAG_MODULUS:
        return tag
    payload = pickle.dumps(tag, protocol=2)
    return zlib.crc32(payload) % _TAG_MODULUS


def mpi4py_available() -> bool:
    try:
        import mpi4py  # noqa: F401

        return True
    except ImportError:
        return False


class _WrappedRequest:
    """``SimComm.Request``-shaped facade over an ``mpi4py`` request."""

    __slots__ = ("_req",)

    def __init__(self, req):
        self._req = req

    def wait(self):
        return self._req.wait()

    def test(self):
        result = self._req.test()
        # mpi4py returns (flag, msg) for pickled requests; normalize to the
        # (done, value) pair of repro.parallel.mpi_sim.Request.test
        if isinstance(result, tuple):
            return bool(result[0]), result[1]
        return bool(result), None


class MPI4PyComm:
    """``SimComm``-compatible facade over an ``mpi4py.MPI.Comm``.

    *irecv_buffer_bytes* pre-sizes every non-blocking receive: mpi4py's
    pickled ``irecv`` cannot grow its buffer after posting, so the buffer
    must bound the largest message the exchange protocol may deliver
    (blocking ``recv`` probes the true size and needs no buffer).
    """

    def __init__(self, comm=None, irecv_buffer_bytes: int = _IRECV_BUFFER_BYTES):
        from mpi4py import MPI  # deferred: mpi4py is optional

        self._mpi = MPI
        self._comm = comm if comm is not None else MPI.COMM_WORLD
        self.rank = self._comm.Get_rank()
        self.irecv_buffer_bytes = int(irecv_buffer_bytes)

    @property
    def size(self) -> int:
        return self._comm.Get_size()

    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    # -- point to point (pickle-based, mpi4py lower-case API) -----------------

    def send(self, obj, dest: int, tag=0) -> None:
        self._comm.send(obj, dest=dest, tag=fold_tag(tag))

    def recv(self, source: int, tag=0):
        return self._comm.recv(source=source, tag=fold_tag(tag))

    def isend(self, obj, dest: int, tag=0):
        return _WrappedRequest(
            self._comm.isend(obj, dest=dest, tag=fold_tag(tag))
        )

    def irecv(self, source: int, tag=0):
        # pre-sized buffer: mpi4py's default (~32 KiB) truncates any real
        # ghost-layer strip; the buffer is per-request, so concurrent
        # receives do not share it
        buf = bytearray(self.irecv_buffer_bytes)
        return _WrappedRequest(
            self._comm.irecv(buf, source=source, tag=fold_tag(tag))
        )

    def sendrecv(self, obj, dest: int, source: int, sendtag=0, recvtag=0):
        return self._comm.sendrecv(
            obj, dest=dest, sendtag=fold_tag(sendtag),
            source=source, recvtag=fold_tag(recvtag),
        )

    # -- collectives -------------------------------------------------------------

    def barrier(self) -> None:
        self._comm.Barrier()

    def bcast(self, obj, root: int = 0):
        return self._comm.bcast(obj, root=root)

    def gather(self, obj, root: int = 0):
        return self._comm.gather(obj, root=root)

    def allgather(self, obj):
        return self._comm.allgather(obj)

    def allreduce(self, value, op: str = "sum"):
        ops = {
            "sum": self._mpi.SUM,
            "max": self._mpi.MAX,
            "min": self._mpi.MIN,
        }
        if op not in ops:
            raise ValueError(f"unknown reduction op {op!r}")
        return self._comm.allreduce(value, op=ops[op])
