"""Simulated MPI: a thread-based, mpi4py-style communicator.

The distributed-memory algorithms of :mod:`repro.parallel` are written
against this small MPI interface (blocking/non-blocking point-to-point and
the collectives the time loop needs).  :func:`run_ranks` executes an SPMD
function on N in-process ranks backed by per-channel FIFO queues — the
protocol (ghost exchange, reductions) runs *exactly* as it would under real
MPI, just inside one process, which keeps the paper's communication scheme
fully testable on a laptop.

The API follows the mpi4py tutorial conventions (lower-case = pickled
objects; NumPy arrays pass by reference since ranks share an address space,
so receivers copy).
"""

from __future__ import annotations

import queue
import threading
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable

import numpy as np

__all__ = ["CollectiveOps", "SimComm", "Request", "run_ranks", "RankError"]

#: default deadline for a blocking receive — a rank waiting longer than
#: this on a message that never comes is deadlocked, not slow
_RECV_TIMEOUT = 60.0

#: default deadline for the whole SPMD run — a rank thread still alive past
#: it is stuck outside a receive (receives have their own deadline)
_JOIN_TIMEOUT = 300.0


class RankError(RuntimeError):
    """An exception raised inside one of the simulated ranks."""


class _Router:
    """Per-(src, dst, tag) FIFO channels shared by all ranks."""

    def __init__(self, size: int, recv_timeout: float = _RECV_TIMEOUT):
        self.size = size
        self.recv_timeout = float(recv_timeout)
        self._channels: dict[tuple, queue.Queue] = {}
        self._lock = threading.Lock()
        self.barrier = threading.Barrier(size)
        self.failed = threading.Event()

    def channel(self, src: int, dst: int, tag: int) -> queue.Queue:
        if src == dst:
            # self-transfers never touch the router (real MPI matches them
            # inside the rank); a self-channel here would mask deadlocks
            raise RuntimeError(
                f"rank {src} must not enqueue to itself (tag={tag!r}); "
                "self-transfers are handled by the communicator's local buffer"
            )
        key = (src, dst, tag)
        with self._lock:
            ch = self._channels.get(key)
            if ch is None:
                ch = self._channels[key] = queue.Queue()
            return ch


@dataclass
class Request:
    """Handle for a non-blocking operation (mpi4py's ``isend``/``irecv``).

    ``wait()`` blocks until completion; ``test()`` is a true non-blocking
    probe via the *_poll* callable (returning ``(done, value)``) and never
    waits.  A request without a poll function (buffered sends) is complete
    from the start.
    """

    _result: Callable[[], Any]
    _poll: Callable[[], tuple[bool, Any]] | None = None
    _done: bool = False
    _value: Any = None

    def wait(self) -> Any:
        if not self._done:
            self._value = self._result()
            self._done = True
        return self._value

    def test(self) -> tuple[bool, Any]:
        if self._done:
            return True, self._value
        if self._poll is None:
            # no probe: the operation completed at creation (buffered send)
            return True, self.wait()
        done, value = self._poll()
        if done:
            self._value = value
            self._done = True
            return True, value
        return False, None


class CollectiveOps:
    """Collectives implemented over a backend's ``send``/``recv``/``barrier``.

    Shared by :class:`SimComm` and the process-backed communicator of
    :mod:`repro.parallel.proc_comm`, so every backend executes the identical
    message pattern AND the identical (rank-ordered) reduction — summation
    order is what makes distributed diagnostics bit-identical across
    backends.  Negative tags are reserved for these collectives.
    """

    def sendrecv(self, obj: Any, dest: int, source: int, sendtag: int = 0, recvtag: int = 0) -> Any:
        self.send(obj, dest, sendtag)
        return self.recv(source, recvtag)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        if self.rank == root:
            for r in range(self.size):
                if r != root:
                    self.send(obj, r, tag=-1)
            return obj
        return self.recv(root, tag=-1)

    def gather(self, obj: Any, root: int = 0) -> list | None:
        self.send(obj, root, tag=-2)
        if self.rank != root:
            return None
        return [self.recv(r, tag=-2) for r in range(self.size)]

    def allgather(self, obj: Any) -> list:
        data = self.gather(obj, root=0)
        return self.bcast(data, root=0)

    def allreduce(self, value, op: str = "sum"):
        data = self.allgather(value)
        if op == "sum":
            total = data[0]
            for v in data[1:]:
                total = total + v
            return total
        if op == "max":
            return max(data)
        if op == "min":
            return min(data)
        raise ValueError(f"unknown reduction op {op!r}")


class SimComm(CollectiveOps):
    """Communicator handed to every rank function."""

    def __init__(self, rank: int, router: _Router):
        self.rank = rank
        self._router = router
        # rank-local FIFO per tag: self-sends bypass the router entirely,
        # as real MPI matches them inside the rank (no network round trip)
        self._self_queues: dict[Any, deque] = {}

    @property
    def size(self) -> int:
        return self._router.size

    # mpi4py-style accessors
    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    # -- point to point --------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid destination rank {dest}")
        if isinstance(obj, np.ndarray):
            obj = obj.copy()  # value semantics as with real MPI
        if dest == self.rank:
            self._self_queues.setdefault(tag, deque()).append(obj)
            return
        self._router.channel(self.rank, dest, tag).put(obj)

    def recv(self, source: int, tag: int = 0) -> Any:
        if not 0 <= source < self.size:
            raise ValueError(f"invalid source rank {source}")
        if source == self.rank:
            q = self._self_queues.get(tag)
            if not q:
                # a blocking self-receive with nothing buffered can never be
                # satisfied — fail immediately instead of waiting out the
                # deadline (the matching send must already have happened)
                raise RankError(
                    f"recv from self with no buffered send "
                    f"(source={source}, dest={self.rank}, tag={tag!r}) — "
                    f"immediate deadlock"
                )
            return q.popleft()
        ch = self._router.channel(source, self.rank, tag)
        timeout = self._router.recv_timeout
        deadline = perf_counter() + timeout
        poll = min(0.2, max(timeout / 20.0, 0.005))
        while True:
            try:
                return ch.get(timeout=poll)
            except queue.Empty:
                if self._router.failed.is_set():
                    raise RankError("another rank failed during recv")
                if perf_counter() >= deadline:
                    # deadlock, not slowness: flag the run as failed so the
                    # other ranks' receives unblock too, then name the
                    # channel so the hang is diagnosable
                    self._router.failed.set()
                    self._router.barrier.abort()
                    raise RankError(
                        f"recv timed out after {timeout:g} s "
                        f"(source={source}, dest={self.rank}, tag={tag!r}) — "
                        f"no matching send; likely deadlock"
                    )

    def _try_recv(self, source: int, tag: int) -> tuple[bool, Any]:
        """Non-blocking probe for a matching message; never waits."""
        if source == self.rank:
            q = self._self_queues.get(tag)
            if q:
                return True, q.popleft()
            return False, None
        ch = self._router.channel(source, self.rank, tag)
        try:
            return True, ch.get_nowait()
        except queue.Empty:
            return False, None

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        self.send(obj, dest, tag)  # buffered: completes immediately
        return Request(lambda: None, _done=True)

    def irecv(self, source: int, tag: int = 0) -> Request:
        return Request(
            lambda: self.recv(source, tag),
            _poll=lambda: self._try_recv(source, tag),
        )

    # -- collectives -------------------------------------------------------------

    def barrier(self) -> None:
        self._router.barrier.wait()


def run_ranks(
    size: int,
    func: Callable[..., Any],
    *args,
    recv_timeout: float = _RECV_TIMEOUT,
    join_timeout: float = _JOIN_TIMEOUT,
    rundir=None,
    **kwargs,
) -> list:
    """Run ``func(comm, *args, **kwargs)`` on *size* simulated ranks.

    Returns the per-rank return values; re-raises the first rank failure.
    *recv_timeout* bounds every blocking receive — a rank stuck past it
    raises :class:`RankError` naming the ``(source, dest, tag)`` channel
    instead of hanging the whole run (deadlock diagnosability).
    *join_timeout* bounds the whole run: a rank thread still alive past it
    (stuck outside a receive, e.g. in user code) raises a :class:`RankError`
    naming the stuck rank instead of silently returning ``None`` for it.

    Crash forensics match the process backend: a failing rank's flight
    recorder is snapshotted into a post-mortem bundle, the bundles are
    attached to the raised :class:`RankError` as ``exc.postmortems``, and
    — under *rundir* or an ambient run directory — written as a combined
    ``postmortem.json``.
    """
    router = _Router(size, recv_timeout=recv_timeout)
    results: list = [None] * size
    errors: list = []
    postmortems: dict[int, dict] = {}

    def worker(rank: int):
        comm = SimComm(rank, router)
        try:
            results[rank] = func(comm, *args, **kwargs)
        except Exception as exc:  # noqa: BLE001 - propagate to caller
            router.failed.set()
            router.barrier.abort()
            errors.append((rank, exc))
            # snapshot on the failing thread, where the thread-local
            # rank recorder (if any) is still installed
            try:
                from ..observability.postmortem import capture_postmortem

                postmortems[rank] = capture_postmortem(exc, rank=rank)
            except Exception:
                pass

    threads = [
        threading.Thread(target=worker, args=(r,), name=f"simrank-{r}", daemon=True)
        for r in range(size)
    ]
    for t in threads:
        t.start()
    deadline = perf_counter() + join_timeout
    for t in threads:
        t.join(timeout=max(0.0, deadline - perf_counter()))
    stuck = [r for r, t in enumerate(threads) if t.is_alive()]
    if stuck:
        # flag the run as failed so blocked receives in the stuck ranks
        # unwind, then give them a moment to notice before reporting
        router.failed.set()
        router.barrier.abort()
        for r in stuck:
            threads[r].join(timeout=5.0)
        still_stuck = [r for r in stuck if threads[r].is_alive()]
        if still_stuck:
            raise RankError(
                f"rank(s) {', '.join(map(str, still_stuck))} still running "
                f"after {join_timeout:g} s — stuck outside a receive; "
                f"results discarded (threads left to the daemon reaper)"
            )
    if errors:
        rank, exc = errors[0]
        if postmortems:
            from .proc_comm import _write_postmortems

            _write_postmortems(postmortems, rundir)
        failure = RankError(f"rank {rank} failed: {exc!r}")
        failure.postmortems = dict(postmortems)
        raise failure from exc
    if stuck:
        # the abort unwound them without surfacing an exception — still a
        # failed run: their results arrived only after the deadline
        raise RankError(
            f"rank(s) {', '.join(map(str, stuck))} exceeded the "
            f"{join_timeout:g} s run deadline"
        )
    return results
