"""Analytic communication cost model (paper §4.3, §6.2, Table 2).

Models one ghost-layer exchange per time step per rank:

* message latencies (per face-neighbour message),
* wire time over the interconnect (latency-bandwidth model with a topology
  contention factor),
* for GPUs without GPUDirect: staging the buffers through host memory
  (device→host and host→device PCIe copies) plus the packing kernels,
* overlap: asynchronous MPI + independent CUDA streams hide communication
  behind computation (the µ exchange behind the φ kernel; the φ exchange
  behind the inner part of the µ kernel), so the step time becomes
  ``max(T_compute, T_comm)`` instead of the sum.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .ghostlayer import communication_volume_bytes

__all__ = ["NetworkModel", "OMNIPATH_FAT_TREE", "ARIES_DRAGONFLY", "CommOptions", "StepTimeModel"]


@dataclass(frozen=True)
class NetworkModel:
    """Latency-bandwidth interconnect model with topology contention."""

    name: str
    latency_us: float             # per message
    bandwidth_gbs: float          # injection bandwidth per node
    topology: str                 # "fat-tree" | "dragonfly"
    contention_base: float = 0.01 # efficiency loss per doubling of nodes

    def efficiency(self, nodes: int) -> float:
        """Mild, topology-dependent bandwidth efficiency at scale.

        Fat trees provide (nearly) full bisection bandwidth inside an
        island; dragonfly global links are slightly more contended.  Both
        systems in the paper scale near-perfectly, so the factors are small.
        """
        doublings = np.log2(max(nodes, 1))
        scale = 1.0 if self.topology == "fat-tree" else 1.5
        return max(0.7, 1.0 - self.contention_base * scale * doublings / 10.0)


#: SuperMUC-NG: Intel Omni-Path, fat tree over eight islands.
OMNIPATH_FAT_TREE = NetworkModel(
    name="Omni-Path fat tree (SuperMUC-NG)",
    latency_us=1.5,
    bandwidth_gbs=12.5,
    topology="fat-tree",
)

#: Piz Daint: Cray Aries, dragonfly.  The bandwidth is the *effective*
#: per-node injection rate for ghost-exchange-sized messages, well below the
#: nominal link speed.
ARIES_DRAGONFLY = NetworkModel(
    name="Aries dragonfly (Piz Daint)",
    latency_us=1.2,
    bandwidth_gbs=3.5,
    topology="dragonfly",
)


@dataclass(frozen=True)
class CommOptions:
    """The four configurations of Table 2."""

    overlap: bool = True
    gpudirect: bool = True        # CPU runs ignore this
    pcie_bandwidth_gbs: float = 22.0   # effective D2H+H2D aggregate
    pack_kernel_overhead_us: float = 15.0   # device-side packing per exchange
    messages_per_exchange: int = 6          # face neighbours in 3D
    #: per-step framework overhead that cannot overlap with kernels
    #: (boundary bookkeeping, MPI progression, in-situ hooks).  The paper's
    #: strong-scaling end points (≈0.2 s/step at 48 cores, 460 steps/s at
    #: 152 064 cores on 512×256×256) imply a ≈2 ms floor per step.
    per_step_overhead_us: float = 0.0


@dataclass
class StepTimeModel:
    """Per-rank time of one full time step (compute + ghost exchange).

    Parameters
    ----------
    compute_mlups:
        Aggregate compute-only rate of the rank (node socket share or GPU),
        combining all kernels of Algorithm 1.
    block_shape:
        Cells of the per-rank block.
    exchanged_doubles_per_cell:
        Field components whose ghost layers are exchanged each step
        (φ: N, µ: K−1 → e.g. 6 for P1).
    """

    compute_mlups: float
    block_shape: tuple[int, ...]
    exchanged_doubles_per_cell: float
    network: NetworkModel
    options: CommOptions = CommOptions()
    ghost_layers: int = 1
    inter_node_fraction: float = 1.0   # fraction of ghost data leaving the node

    @property
    def cells(self) -> int:
        return int(np.prod(self.block_shape))

    def compute_time_s(self) -> float:
        return self.cells / (self.compute_mlups * 1e6)

    def comm_time_parts_s(self, nodes: int = 1) -> tuple[float, float]:
        """(hideable, non-hideable) communication time per step.

        Asynchronous MPI transfers and the device-side packing kernels can
        overlap with computation; the host-staging copies used *without*
        GPUDirect are synchronous ``cudaMemcpy`` calls that cannot — this is
        why Table 2 shows overlap+staging (422) below overlap+GPUDirect
        (440).
        """
        volume = communication_volume_bytes(
            self.block_shape, self.ghost_layers, self.exchanged_doubles_per_cell
        ) * self.inter_node_fraction
        net_bw = self.network.bandwidth_gbs * self.network.efficiency(nodes) * 1e9
        n_exchanges = 2  # φ_dst and µ_dst per step
        hideable = (
            self.options.messages_per_exchange
            * n_exchanges
            * self.network.latency_us
            * 1e-6
        )
        hideable += volume / net_bw
        hideable += n_exchanges * self.options.pack_kernel_overhead_us * 1e-6
        non_hideable = self.options.per_step_overhead_us * 1e-6
        if not self.options.gpudirect:
            # stage through host memory: D2H + H2D copies of the full volume
            non_hideable = 2.0 * volume / (self.options.pcie_bandwidth_gbs * 1e9)
        return hideable, non_hideable

    def comm_time_s(self, nodes: int = 1) -> float:
        hideable, non_hideable = self.comm_time_parts_s(nodes)
        return hideable + non_hideable

    def step_time_s(self, nodes: int = 1) -> float:
        tc = self.compute_time_s()
        hideable, non_hideable = self.comm_time_parts_s(nodes)
        if self.options.overlap:
            # asynchronous MPI + CUDA streams hide the transfers behind the
            # φ/µ kernels (inner/outer split, §4.3)
            return max(tc, hideable) + non_hideable
        return tc + hideable + non_hideable

    def mlups(self, nodes: int = 1) -> float:
        return self.cells / self.step_time_s(nodes) / 1e6

    def parallel_efficiency(self, nodes: int = 1) -> float:
        return self.compute_time_s() / self.step_time_s(nodes)

    def with_overlap(self, overlap: bool) -> "StepTimeModel":
        """Copy of the model with communication hiding switched on/off."""
        return replace(self, options=replace(self.options, overlap=overlap))

    def overlap_closure(
        self,
        nodes: int = 1,
        measured_sync_s: float | None = None,
        measured_overlap_s: float | None = None,
    ) -> dict:
        """Predicted vs measured benefit of communication hiding.

        Returns a closure dict pairing the model's synchronous and
        overlapped step-time predictions with (optionally) measured step
        times from the two schedules of :class:`~repro.parallel.timeloop.
        DistributedSolver` (``overlap=False`` / ``overlap=True``).  The
        predicted gain is the fraction of the synchronous step the model
        expects overlap to hide; ``*_ratio`` entries report measured/model
        so a miscalibrated model is visible at a glance.
        """
        sync = self.with_overlap(False)
        over = self.with_overlap(True)
        pred_sync = sync.step_time_s(nodes)
        pred_over = over.step_time_s(nodes)
        out = {
            "predicted_sync_s": pred_sync,
            "predicted_overlap_s": pred_over,
            "predicted_gain": 1.0 - pred_over / pred_sync if pred_sync else 0.0,
            "measured_sync_s": measured_sync_s,
            "measured_overlap_s": measured_overlap_s,
        }
        if measured_sync_s is not None and measured_overlap_s is not None:
            out["measured_gain"] = (
                1.0 - measured_overlap_s / measured_sync_s
                if measured_sync_s
                else 0.0
            )
        if measured_sync_s is not None and pred_sync:
            out["sync_ratio"] = measured_sync_s / pred_sync
        if measured_overlap_s is not None and pred_over:
            out["overlap_ratio"] = measured_overlap_s / pred_over
        return out
