"""Persistent cross-process compiled-kernel cache (content-addressed store).

The paper's premise is that code-generation cost is paid *once* and
amortized over massive runs — yet the in-memory kernel cache
(:mod:`repro.profiling.cache`) dies with the process, so every new worker
in a parameter study pays the full sympy→CSE→C→gcc latency again.  This
module is the missing tier: an on-disk, content-addressed ``.so`` store
shared by every process of every run.

Layout (one directory per cache key)::

    <cache_root>/
      <key[:2]>/<key>/
        kernel.so      # the published artifact — appears ATOMICALLY
        kernel.c       # generated source (provenance, reused on hits)
        meta.json      # key inputs: fingerprint, compiler, flags, revision
        builds.jsonl   # one line per actual build (the exactly-once sentinel)
        lock           # fcntl.flock advisory lock file

Key schema — a key names the *exact* binary that any conforming process
would build, so a hit can never hand back a stale or wrong-ISA artifact::

    key = sha256(schema | backend | content digest (kernel IR fingerprint
                 or source digest) | codegen revision (hash of the backend
                 sources) | compiler identity (path + --version banner) |
                 flag list)

Publication protocol (concurrent processes compile each kernel at most
once, and **no** code path can ever load a partial ``.so``):

1. lock-free fast path: if ``kernel.so`` exists it is complete (it only
   ever appears via ``os.replace``) — hit;
2. take an exclusive ``flock`` on ``<entry>/lock`` (a killed holder's
   lock is released by the kernel when its fd closes);
3. re-check ``kernel.so`` — a racer may have published while we waited;
4. build into ``.tmp.<pid>.<nonce>`` *inside the entry directory* (same
   filesystem), fsync, then ``os.replace`` onto ``kernel.so``;
5. append one line to ``builds.jsonl`` while still holding the lock.

A process killed mid-compile leaves only a ``.tmp.*`` orphan (swept by
the next lock holder) — never a readable ``kernel.so``.

The cache lives in a per-user XDG directory (``$XDG_CACHE_HOME/repro/
kernels``), **not** world-writable ``/tmp``: no cross-user collisions, no
hostile sibling pre-planting a binary at a predictable path.  Override
with ``REPRO_CACHE_DIR`` (tests point it at a tmpdir; clusters point it
at a node-local scratch).
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from ..observability.log import get_logger, kv
from ..observability.metrics import get_registry

try:  # pragma: no cover - fcntl exists on every POSIX platform we target
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

__all__ = [
    "CACHE_SCHEMA",
    "DiskCacheStats",
    "KernelDiskCache",
    "cache_key",
    "cache_root",
    "codegen_revision",
    "compiler_identity",
    "disk_cache_stats",
    "reset_disk_cache_stats",
]

CACHE_SCHEMA = "repro-kernel-cache/1"

#: backend source files whose bytes define the codegen revision: any edit
#: to the emitted C (or to the loop/CSE machinery both backends share)
#: changes the hash and invalidates every cached binary automatically
_CODEGEN_SOURCES = (
    "backends/c_backend.py",
    "backends/numpy_backend.py",
    "ir/kernel.py",
    "ir/loops.py",
)

_log = get_logger("profiling.diskcache")

_LOCK = threading.Lock()
_HITS = 0
_MISSES = 0
_BUILDS = 0

_IDENTITY_CACHE: dict[str, dict] = {}
_REVISION: str | None = None


@dataclass(frozen=True)
class DiskCacheStats:
    """Snapshot of this process's disk-tier counters."""

    hits: int
    misses: int
    builds: int

    def __str__(self):
        return (
            f"kernel disk cache: {self.hits} hits, {self.misses} misses, "
            f"{self.builds} builds"
        )


def disk_cache_stats() -> DiskCacheStats:
    with _LOCK:
        return DiskCacheStats(hits=_HITS, misses=_MISSES, builds=_BUILDS)


def reset_disk_cache_stats() -> None:
    global _HITS, _MISSES, _BUILDS
    with _LOCK:
        _HITS = _MISSES = _BUILDS = 0


def cache_root() -> Path:
    """The persistent cache directory (``REPRO_CACHE_DIR`` overrides XDG).

    Defaults to ``$XDG_CACHE_HOME/repro/kernels`` (``~/.cache/repro/
    kernels``) — per-user, so two users on one host never collide and
    nobody else can pre-plant artifacts at a predictable shared path.
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "kernels"


def compiler_identity(cc: str | None = None) -> dict:
    """Identity of the compiler a build would use: path + version banner.

    Cached per compiler path for the life of the process; folded into
    every cache key so switching ``CC``, upgrading the toolchain, or
    moving a shared cache to a host with a different compiler never
    silently reuses a stale (or wrong-ISA, under ``-march=native``)
    binary.
    """
    cc = cc or os.environ.get("CC", "cc")
    cached = _IDENTITY_CACHE.get(cc)
    if cached is not None:
        return cached
    try:
        out = subprocess.run(
            [cc, "--version"], capture_output=True, text=True, timeout=30
        )
        version = (out.stdout or out.stderr).splitlines()[0].strip() if (
            out.stdout or out.stderr
        ) else "unknown"
    except (OSError, subprocess.TimeoutExpired, IndexError):
        version = "unavailable"
    identity = {"cc": cc, "version": version}
    _IDENTITY_CACHE[cc] = identity
    return identity


def codegen_revision() -> str:
    """Hash of the codegen sources — bumps automatically on any edit.

    Covers the C emitter, the NumPy lowering helpers it shares, and the
    kernel IR: a change to any of them may change the emitted program, so
    every cached binary built under the old revision is invalidated.
    """
    global _REVISION
    if _REVISION is not None:
        return _REVISION
    h = hashlib.sha256()
    src_root = Path(__file__).resolve().parents[1]
    for rel in _CODEGEN_SOURCES:
        path = src_root / rel
        try:
            h.update(path.read_bytes())
        except OSError:
            h.update(rel.encode())
        h.update(b"\x00")
    _REVISION = h.hexdigest()[:16]
    return _REVISION


def cache_key(
    content_digest: str,
    *,
    flags: tuple[str, ...] | list[str] = (),
    backend: str = "c",
    cc: str | None = None,
) -> str:
    """Content-addressed key for one compiled artifact.

    *content_digest* is the structural kernel-IR fingerprint
    (:func:`repro.profiling.kernel_fingerprint`) — or a raw source digest
    for artifacts built outside the kernel pipeline.  The key additionally
    folds the cache schema, backend, codegen revision, compiler identity
    and the exact flag list, so any input that could change the binary
    changes the key.
    """
    identity = compiler_identity(cc)
    h = hashlib.sha256()
    for part in (
        CACHE_SCHEMA,
        backend,
        content_digest,
        codegen_revision(),
        identity["cc"],
        identity["version"],
        "|".join(flags),
    ):
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


class _FileLock:
    """Exclusive advisory flock with a deadline; released on process death."""

    def __init__(self, path: Path, timeout: float = 600.0):
        self.path = path
        self.timeout = timeout
        self._fd: int | None = None

    def __enter__(self):
        self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            return self
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                return self
            except OSError:
                if time.monotonic() >= deadline:
                    os.close(self._fd)
                    self._fd = None
                    raise TimeoutError(
                        f"could not acquire kernel-cache lock {self.path} "
                        f"within {self.timeout}s (another process stuck "
                        f"compiling?)"
                    ) from None
                time.sleep(0.02)

    def __exit__(self, *exc):
        if self._fd is not None:
            if fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
            self._fd = None
        return False


class KernelDiskCache:
    """Content-addressed artifact store with locked, atomic publication."""

    #: name of the published artifact inside an entry directory
    ARTIFACT = "kernel.so"

    def __init__(self, root=None, lock_timeout: float = 600.0):
        self.root = Path(root) if root is not None else cache_root()
        self.lock_timeout = lock_timeout

    # -- paths -----------------------------------------------------------------

    def entry_dir(self, key: str) -> Path:
        return self.root / key[:2] / key

    def artifact_path(self, key: str, artifact: str | None = None) -> Path:
        return self.entry_dir(key) / (artifact or self.ARTIFACT)

    # -- read side -------------------------------------------------------------

    def lookup(self, key: str, artifact: str | None = None) -> Path | None:
        """The published artifact path, or ``None`` — never a partial file."""
        path = self.artifact_path(key, artifact)
        return path if path.exists() else None

    def load_source(self, key: str) -> str | None:
        """The generated source stored beside the artifact, if present."""
        path = self.entry_dir(key) / "kernel.c"
        try:
            return path.read_text()
        except OSError:
            return None

    def load_meta(self, key: str) -> dict | None:
        try:
            return json.loads((self.entry_dir(key) / "meta.json").read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def build_count(self, key: str) -> int:
        """How many actual builds ever published into this entry."""
        try:
            text = (self.entry_dir(key) / "builds.jsonl").read_text()
        except OSError:
            return 0
        return sum(1 for line in text.splitlines() if line.strip())

    # -- write side ------------------------------------------------------------

    def get_or_build(
        self,
        key: str,
        build,
        *,
        source: str | None = None,
        meta: dict | None = None,
        artifact: str | None = None,
    ) -> tuple[Path, bool]:
        """Return ``(path, hit)`` for the artifact under *key*.

        On a miss, ``build(tmp_path)`` must write the complete artifact at
        *tmp_path* (or raise — a failed build publishes nothing).  The
        temp file lives in the entry directory, so the final
        ``os.replace`` is an atomic same-filesystem rename: concurrent
        readers either see the complete artifact or none at all.
        """
        global _HITS, _MISSES, _BUILDS
        registry = get_registry()
        final = self.artifact_path(key, artifact)
        if final.exists():
            self._count_hit(registry)
            return final, True
        entry = self.entry_dir(key)
        entry.mkdir(parents=True, exist_ok=True)
        with _FileLock(entry / "lock", timeout=self.lock_timeout):
            if final.exists():
                # a racer published while we waited for the lock
                self._count_hit(registry)
                return final, True
            self._sweep_orphans(entry)
            tmp = entry / f".tmp.{os.getpid()}.{uuid.uuid4().hex[:8]}"
            try:
                build(tmp)
                if not tmp.exists():
                    raise RuntimeError(
                        f"builder for {key[:12]} produced no artifact"
                    )
                if source is not None:
                    self._write_atomic(entry / "kernel.c", source)
                record = dict(meta or {})
                record.setdefault("schema", CACHE_SCHEMA)
                record["key"] = key
                record["size_bytes"] = tmp.stat().st_size
                record["created"] = time.time()
                self._write_atomic(
                    entry / "meta.json", json.dumps(record, indent=1, default=repr)
                )
                os.replace(tmp, final)  # ATOMIC publication
            finally:
                tmp.unlink(missing_ok=True)
            # the exactly-once sentinel: one line per actual build, appended
            # under the same lock that serialized the build itself
            with open(entry / "builds.jsonl", "a") as fh:
                fh.write(json.dumps({"pid": os.getpid(), "time": time.time()}) + "\n")
        with _LOCK:
            _MISSES += 1
            _BUILDS += 1
        registry.counter(
            "repro_kernel_cache_disk_misses_total",
            "persistent kernel-cache misses (artifact built)",
        ).inc()
        registry.gauge(
            "repro_kernel_cache_disk_bytes",
            "total bytes of published artifacts in the persistent cache",
        ).set(self.total_bytes())
        _log.info(
            kv(
                "disk_cache_built",
                key=key[:12],
                bytes=final.stat().st_size,
                root=str(self.root),
            )
        )
        return final, False

    def _count_hit(self, registry) -> None:
        global _HITS
        with _LOCK:
            _HITS += 1
        registry.counter(
            "repro_kernel_cache_disk_hits_total",
            "persistent kernel-cache hits (compile skipped)",
        ).inc()

    @staticmethod
    def _write_atomic(path: Path, text: str) -> None:
        tmp = path.with_name(f".tmp.{os.getpid()}.{uuid.uuid4().hex[:8]}")
        tmp.write_text(text)
        os.replace(tmp, path)

    @staticmethod
    def _sweep_orphans(entry: Path) -> None:
        """Drop temp files left by builders that were killed mid-compile."""
        for orphan in entry.glob(".tmp.*"):
            try:
                orphan.unlink()
            except OSError:
                pass

    # -- maintenance -----------------------------------------------------------

    def entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(
            p for p in self.root.glob("??/*") if p.is_dir()
        )

    def total_bytes(self) -> int:
        """Bytes of *published* artifacts (temp orphans excluded)."""
        total = 0
        for entry in self.entries():
            for name in (self.ARTIFACT, "bench"):
                path = entry / name
                try:
                    total += path.stat().st_size
                except OSError:
                    pass
        return total

    def purge(self) -> int:
        """Remove every cache entry; returns how many were dropped."""
        import shutil

        dropped = 0
        for entry in self.entries():
            shutil.rmtree(entry, ignore_errors=True)
            dropped += 1
        get_registry().gauge(
            "repro_kernel_cache_disk_bytes",
            "total bytes of published artifacts in the persistent cache",
        ).set(0)
        if dropped:
            _log.info(kv("disk_cache_purged", entries=dropped, root=str(self.root)))
        return dropped

    def __repr__(self):
        return f"KernelDiskCache({str(self.root)!r})"
