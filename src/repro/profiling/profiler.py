"""Per-kernel runtime profiling (the paper's §5 performance accounting).

The evaluation of the paper reports MLUP/s per generated kernel and the
communication volume per time step; waLBerla exposes the same numbers to
Python as per-sweep timers.  :class:`SolverProfiler` is our equivalent: the
solvers wrap every kernel invocation, ghost exchange and boundary fill in a
:meth:`SolverProfiler.measure` block, and :meth:`SolverProfiler.report`
renders the aggregate — calls, total/mean wall time, MLUP/s, bytes moved —
in the table style of :mod:`repro.perfmodel.report`.

Profiling is always on: one ``perf_counter`` pair per kernel sweep is noise
next to the sweep itself.  Construct with ``enabled=False`` to make
``measure`` a true no-op.

Every accepted timing is also forwarded to the global
:class:`repro.observability.tracing.Tracer` (when enabled) as a ``runtime``
span — the profiler is the single span source for the runtime loop, so a
kernel sweep is measured exactly once and appears in both the profile table
and the Chrome trace.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter

from ..observability.recorder import get_recorder
from ..observability.tracing import get_tracer
from ..perfmodel.report import format_table, report_header

__all__ = ["SolverProfiler", "TimingRecord"]


@dataclass
class TimingRecord:
    """Aggregate timing of one named operation (kernel, exchange, fill)."""

    name: str
    calls: int = 0
    seconds: float = 0.0
    cells: int = 0
    bytes: int = 0
    messages: int = 0     # MPI messages behind this operation (exchanges)

    @property
    def mean_seconds(self) -> float:
        return self.seconds / self.calls if self.calls else 0.0

    @property
    def mlups(self) -> float:
        """Million lattice-cell updates per second (0 for non-kernel rows)."""
        if self.cells == 0 or self.seconds == 0.0:
            return 0.0
        return self.cells / self.seconds / 1e6


class SolverProfiler:
    """Collects named wall-clock timings with cell and byte counters."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.records: dict[str, TimingRecord] = {}

    def record(
        self,
        name: str,
        seconds: float,
        cells: int = 0,
        nbytes: int = 0,
        end: float | None = None,
        messages: int = 0,
    ) -> None:
        """Accumulate one timed interval under *name*.

        *end* is the ``perf_counter`` value at which the interval finished;
        when given and the global tracer is enabled, the interval is also
        emitted as a ``runtime`` trace span (one measurement, two sinks).
        *messages* counts the MPI messages behind the interval, so exchange
        wait time is attributable to message count as well as volume.
        """
        rec = self.records.get(name)
        if rec is None:
            rec = self.records[name] = TimingRecord(name)
        rec.calls += 1
        rec.seconds += seconds
        rec.cells += cells
        rec.bytes += nbytes
        rec.messages += messages
        tracer = get_tracer()
        if tracer.enabled and end is not None:
            args = {}
            if cells:
                args["cells"] = cells
            if nbytes:
                args["bytes"] = nbytes
            if messages:
                args["messages"] = messages
            tracer.add_event(
                name, category="runtime", start=end - seconds, end=end, args=args
            )
        # the profiler is also the single event source for the flight
        # recorder: every kernel sweep, ghost-exchange phase and fill
        # becomes one "op" event in the ring (and the crash post-mortem)
        recorder = get_recorder()
        if recorder.enabled:
            data = {"seconds": seconds}
            if cells:
                data["cells"] = cells
            if nbytes:
                data["bytes"] = nbytes
            if messages:
                data["messages"] = messages
            recorder.record("op", name, **data)

    @contextmanager
    def measure(self, name: str, cells: int = 0, nbytes: int = 0):
        """Time the enclosed block and accumulate it under *name*."""
        if not self.enabled:
            yield
            return
        t0 = perf_counter()
        try:
            yield
        finally:
            t1 = perf_counter()
            self.record(name, t1 - t0, cells, nbytes, end=t1)

    # -- aggregation -----------------------------------------------------------

    def merge(self, other: "SolverProfiler") -> None:
        """Fold another profiler's records into this one (multi-rank reduce).

        Field-wise accumulation; merging a profiler into itself is a no-op
        (the snapshot plus the identity check keep ``merge(self)`` from
        corrupting the records it iterates).
        """
        for rec in list(other.records.values()):
            mine = self.records.get(rec.name)
            if mine is None:
                mine = self.records[rec.name] = TimingRecord(rec.name)
            if mine is rec:
                continue
            mine.calls += rec.calls
            mine.seconds += rec.seconds
            mine.cells += rec.cells
            mine.bytes += rec.bytes
            mine.messages += rec.messages

    def reset(self) -> None:
        self.records.clear()

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.records.values())

    # -- metrics export --------------------------------------------------------

    def export_metrics(self, registry=None, **labels) -> None:
        """Publish every record into a :class:`MetricsRegistry`.

        Per operation: ``repro_op_calls_total``, ``repro_op_seconds_total``,
        ``repro_op_bytes_total`` counters-as-gauges plus a
        ``repro_kernel_mlups`` gauge for cell-counted records.  Extra
        *labels* (e.g. ``solver="distributed"``, ``rank=0``) are attached to
        every sample.
        """
        from ..observability.metrics import get_registry

        registry = registry or get_registry()
        for rec in self.records.values():
            registry.gauge(
                "repro_op_calls_total", "profiled operation invocations",
                op=rec.name, **labels,
            ).set(rec.calls)
            registry.gauge(
                "repro_op_seconds_total", "profiled operation wall time",
                op=rec.name, **labels,
            ).set(rec.seconds)
            if rec.bytes:
                registry.gauge(
                    "repro_op_bytes_total", "bytes moved by operation",
                    op=rec.name, **labels,
                ).set(rec.bytes)
            if rec.messages:
                registry.gauge(
                    "repro_op_messages_total", "MPI messages behind operation",
                    op=rec.name, **labels,
                ).set(rec.messages)
            if rec.cells:
                registry.gauge(
                    "repro_kernel_mlups", "measured kernel rate",
                    kernel=rec.name, **labels,
                ).set(rec.mlups)

    # -- reporting -------------------------------------------------------------

    def report(self, title: str = "solver profile") -> str:
        """Human-readable per-kernel table (calls, time, MLUP/s, MiB moved)."""
        lines = report_header(title)
        if not self.records:
            lines.append("(no timed operations yet)")
            return "\n".join(lines)
        rows = []
        for rec in sorted(self.records.values(), key=lambda r: -r.seconds):
            rows.append(
                (
                    rec.name,
                    rec.calls,
                    f"{rec.seconds:.4f}",
                    f"{rec.mean_seconds * 1e3:.3f}",
                    f"{rec.mlups:.2f}" if rec.cells else "-",
                    f"{rec.bytes / 2**20:.2f}" if rec.bytes else "-",
                    f"{rec.messages}" if rec.messages else "-",
                )
            )
        lines.extend(
            format_table(
                ["operation", "calls", "total s", "mean ms", "MLUP/s",
                 "MiB moved", "msgs"],
                rows,
            )
        )
        lines.append(f"total timed: {self.total_seconds:.4f} s")
        return "\n".join(lines)
