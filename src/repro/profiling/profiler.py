"""Per-kernel runtime profiling (the paper's §5 performance accounting).

The evaluation of the paper reports MLUP/s per generated kernel and the
communication volume per time step; waLBerla exposes the same numbers to
Python as per-sweep timers.  :class:`SolverProfiler` is our equivalent: the
solvers wrap every kernel invocation, ghost exchange and boundary fill in a
:meth:`SolverProfiler.measure` block, and :meth:`SolverProfiler.report`
renders the aggregate — calls, total/mean wall time, MLUP/s, bytes moved —
in the table style of :mod:`repro.perfmodel.report`.

Profiling is always on: one ``perf_counter`` pair per kernel sweep is noise
next to the sweep itself.  Construct with ``enabled=False`` to make
``measure`` a true no-op.

Every accepted timing is also forwarded to the global
:class:`repro.observability.tracing.Tracer` (when enabled) as a ``runtime``
span — the profiler is the single span source for the runtime loop, so a
kernel sweep is measured exactly once and appears in both the profile table
and the Chrome trace.

Hardware counters: :meth:`SolverProfiler.measure` samples the process-wide
:class:`repro.observability.hwcounters.CounterHarness` around every block,
so each :class:`TimingRecord` accumulates CPU seconds and — on hosts with
``perf_event`` access — cycles, instructions and cache references/misses.
The derived rates (cycles/LUP, IPC, measured bytes/LUP from cache-miss
counts × line size) feed the measured-vs-ECM closure table; on hosts
without counters the fields stay zero and the report says so explicitly.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter

from ..observability.hwcounters import (
    attribution_scope,
    counter_provenance_line,
    get_counter_harness,
)
from ..observability.recorder import get_recorder
from ..observability.tracing import get_tracer
from ..perfmodel.report import format_table, report_header

__all__ = ["SolverProfiler", "TimingRecord"]

#: bytes per cache line assumed when deriving traffic from miss counts
#: (overridden by the detected machine's line size where one is known)
DEFAULT_LINE_BYTES = 64


@dataclass
class TimingRecord:
    """Aggregate timing of one named operation (kernel, exchange, fill)."""

    name: str
    calls: int = 0
    seconds: float = 0.0
    cells: int = 0
    bytes: int = 0
    messages: int = 0     # MPI messages behind this operation (exchanges)
    # -- hardware-counter aggregates (0.0 when the rung provides none) --------
    cpu_seconds: float = 0.0
    cycles: float = 0.0
    instructions: float = 0.0
    cache_references: float = 0.0
    cache_misses: float = 0.0
    stalled_cycles: float = 0.0
    counted_calls: int = 0    # calls that carried hardware counter values

    _COUNTER_FIELDS = (
        "cpu_seconds", "cycles", "instructions",
        "cache_references", "cache_misses", "stalled_cycles",
    )

    @property
    def mean_seconds(self) -> float:
        return self.seconds / self.calls if self.calls else 0.0

    @property
    def mlups(self) -> float:
        """Million lattice-cell updates per second (0 for non-kernel rows)."""
        if self.cells == 0 or self.seconds == 0.0:
            return 0.0
        return self.cells / self.seconds / 1e6

    @property
    def cycles_per_lup(self) -> float | None:
        """Measured cycles per lattice-site update (``None`` sans counters)."""
        if self.cycles <= 0.0 or self.cells == 0:
            return None
        return self.cycles / self.cells

    @property
    def ipc(self) -> float | None:
        """Instructions retired per cycle (``None`` without counters)."""
        if self.cycles <= 0.0 or self.instructions <= 0.0:
            return None
        return self.instructions / self.cycles

    def measured_bytes_per_lup(
        self, line_bytes: int = DEFAULT_LINE_BYTES
    ) -> float | None:
        """Memory traffic per LUP derived from cache-miss counts × line size."""
        if self.cache_misses <= 0.0 or self.cells == 0:
            return None
        return self.cache_misses * line_bytes / self.cells

    def absorb_counters(self, counters) -> None:
        """Accumulate one :class:`CounterSample` delta into the aggregates."""
        if counters is None:
            return
        if counters.cpu_seconds is not None:
            self.cpu_seconds += counters.cpu_seconds
        if counters.cycles is not None:
            self.counted_calls += 1
        for field in self._COUNTER_FIELDS[1:]:
            value = getattr(counters, field)
            if value is not None:
                setattr(self, field, getattr(self, field) + value)


class SolverProfiler:
    """Collects named wall-clock timings with cell and byte counters."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.records: dict[str, TimingRecord] = {}

    def record(
        self,
        name: str,
        seconds: float,
        cells: int = 0,
        nbytes: int = 0,
        end: float | None = None,
        messages: int = 0,
        counters=None,
    ) -> None:
        """Accumulate one timed interval under *name*.

        *end* is the ``perf_counter`` value at which the interval finished;
        when given and the global tracer is enabled, the interval is also
        emitted as a ``runtime`` trace span (one measurement, two sinks).
        *messages* counts the MPI messages behind the interval, so exchange
        wait time is attributable to message count as well as volume.
        *counters* is a :class:`~repro.observability.hwcounters.CounterSample`
        delta covering the interval (``None`` when sampling is off).
        """
        rec = self.records.get(name)
        if rec is None:
            rec = self.records[name] = TimingRecord(name)
        rec.calls += 1
        rec.seconds += seconds
        rec.cells += cells
        rec.bytes += nbytes
        rec.messages += messages
        rec.absorb_counters(counters)
        tracer = get_tracer()
        if tracer.enabled and end is not None:
            args = {}
            if cells:
                args["cells"] = cells
            if nbytes:
                args["bytes"] = nbytes
            if messages:
                args["messages"] = messages
            tracer.add_event(
                name, category="runtime", start=end - seconds, end=end, args=args
            )
        # the profiler is also the single event source for the flight
        # recorder: every kernel sweep, ghost-exchange phase and fill
        # becomes one "op" event in the ring (and the crash post-mortem)
        recorder = get_recorder()
        if recorder.enabled:
            data = {"seconds": seconds}
            if cells:
                data["cells"] = cells
            if nbytes:
                data["bytes"] = nbytes
            if messages:
                data["messages"] = messages
            recorder.record("op", name, **data)

    @contextmanager
    def measure(self, name: str, cells: int = 0, nbytes: int = 0):
        """Time the enclosed block and accumulate it under *name*."""
        if not self.enabled:
            yield
            return
        harness = get_counter_harness()
        t0 = perf_counter()
        s0 = harness.sample()
        try:
            with attribution_scope() as slot:
                yield
        finally:
            t1 = perf_counter()
            # prefer the tight dispatch delta (sampled around the native
            # call by the backend, excluding Python marshaling); fall back
            # to the whole-block delta when no dispatch reported in
            if slot.sample is not None:
                delta = slot.sample
            else:
                delta = harness.delta(s0, harness.sample())
            self.record(name, t1 - t0, cells, nbytes, end=t1, counters=delta)

    # -- aggregation -----------------------------------------------------------

    def merge(self, other: "SolverProfiler") -> None:
        """Fold another profiler's records into this one (multi-rank reduce).

        Field-wise accumulation; merging a profiler into itself is a no-op
        (the snapshot plus the identity check keep ``merge(self)`` from
        corrupting the records it iterates).
        """
        for rec in list(other.records.values()):
            mine = self.records.get(rec.name)
            if mine is None:
                mine = self.records[rec.name] = TimingRecord(rec.name)
            if mine is rec:
                continue
            mine.calls += rec.calls
            mine.seconds += rec.seconds
            mine.cells += rec.cells
            mine.bytes += rec.bytes
            mine.messages += rec.messages
            mine.counted_calls += rec.counted_calls
            for field in TimingRecord._COUNTER_FIELDS:
                setattr(mine, field, getattr(mine, field) + getattr(rec, field))

    def reset(self) -> None:
        self.records.clear()

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.records.values())

    # -- metrics export --------------------------------------------------------

    def export_metrics(self, registry=None, **labels) -> None:
        """Publish every record into a :class:`MetricsRegistry`.

        Per operation: ``repro_op_calls_total``, ``repro_op_seconds_total``,
        ``repro_op_bytes_total`` counters-as-gauges plus a
        ``repro_kernel_mlups`` gauge for cell-counted records.  Extra
        *labels* (e.g. ``solver="distributed"``, ``rank=0``) are attached to
        every sample.
        """
        from ..observability.metrics import get_registry

        registry = registry or get_registry()
        for rec in self.records.values():
            registry.gauge(
                "repro_op_calls_total", "profiled operation invocations",
                op=rec.name, **labels,
            ).set(rec.calls)
            registry.gauge(
                "repro_op_seconds_total", "profiled operation wall time",
                op=rec.name, **labels,
            ).set(rec.seconds)
            if rec.bytes:
                registry.gauge(
                    "repro_op_bytes_total", "bytes moved by operation",
                    op=rec.name, **labels,
                ).set(rec.bytes)
            if rec.messages:
                registry.gauge(
                    "repro_op_messages_total", "MPI messages behind operation",
                    op=rec.name, **labels,
                ).set(rec.messages)
            if rec.cpu_seconds:
                registry.gauge(
                    "repro_op_cpu_seconds_total", "profiled operation CPU time",
                    op=rec.name, **labels,
                ).set(rec.cpu_seconds)
            if rec.cells:
                registry.gauge(
                    "repro_kernel_mlups", "measured kernel rate",
                    kernel=rec.name, **labels,
                ).set(rec.mlups)
                if rec.cycles_per_lup is not None:
                    registry.gauge(
                        "repro_kernel_cycles_per_lup",
                        "measured cycles per lattice-site update",
                        kernel=rec.name, **labels,
                    ).set(rec.cycles_per_lup)
                if rec.ipc is not None:
                    registry.gauge(
                        "repro_kernel_ipc", "instructions retired per cycle",
                        kernel=rec.name, **labels,
                    ).set(rec.ipc)
                measured_bpl = rec.measured_bytes_per_lup()
                if measured_bpl is not None:
                    registry.gauge(
                        "repro_kernel_measured_bytes_per_lup",
                        "memory traffic per LUP from cache-miss counts",
                        kernel=rec.name, **labels,
                    ).set(measured_bpl)

    # -- reporting -------------------------------------------------------------

    def report(self, title: str = "solver profile") -> str:
        """Human-readable per-kernel table (calls, time, MLUP/s, MiB moved)."""
        lines = report_header(title)
        if not self.records:
            lines.append("(no timed operations yet)")
            return "\n".join(lines)
        have_counters = any(r.counted_calls for r in self.records.values())
        rows = []
        for rec in sorted(self.records.values(), key=lambda r: -r.seconds):
            row = [
                rec.name,
                rec.calls,
                f"{rec.seconds:.4f}",
                f"{rec.mean_seconds * 1e3:.3f}",
                f"{rec.mlups:.2f}" if rec.cells else "-",
                f"{rec.bytes / 2**20:.2f}" if rec.bytes else "-",
                f"{rec.messages}" if rec.messages else "-",
            ]
            if have_counters:
                cyl = rec.cycles_per_lup
                ipc = rec.ipc
                row.append(f"{cyl:.1f}" if cyl is not None else "-")
                row.append(f"{ipc:.2f}" if ipc is not None else "-")
            rows.append(tuple(row))
        headers = ["operation", "calls", "total s", "mean ms", "MLUP/s",
                   "MiB moved", "msgs"]
        if have_counters:
            headers += ["cy/LUP", "IPC"]
        lines.extend(format_table(headers, rows))
        lines.append(f"total timed: {self.total_seconds:.4f} s")
        lines.append(counter_provenance_line())
        return "\n".join(lines)
