"""Process-wide compiled-kernel cache keyed on kernel structure.

The paper's workflow compiles every generated kernel exactly once and then
reuses the binary for the whole run (waLBerla caches sweep functors the same
way).  Our reproduction used to recompile each kernel for every solver
instance — a parameter study with S solvers paid S× the code-generation
cost.  This module fixes that: compiled kernels are cached per process,
keyed on ``(backend, structural fingerprint of the Kernel IR)``, so two
solvers built from the same (or a structurally identical) kernel set share
one compiled object.  Compiled kernels are stateless — all arrays and
parameters arrive per call — which makes the sharing safe.

Hit/miss counters make the behaviour observable (and testable).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from time import perf_counter

import sympy as sp

from ..ir.kernel import Kernel
from ..observability.log import get_logger, kv
from ..observability.metrics import get_registry
from ..observability.tracing import get_tracer

_log = get_logger("profiling.cache")

__all__ = [
    "kernel_fingerprint",
    "compile_cached",
    "kernel_cache_stats",
    "clear_kernel_cache",
    "CacheStats",
]

_LOCK = threading.Lock()
_CACHE: dict[tuple[str, str], object] = {}
_HITS = 0
_MISSES = 0


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of the cache counters."""

    hits: int
    misses: int
    size: int

    def __str__(self):
        return f"kernel cache: {self.size} entries, {self.hits} hits, {self.misses} misses"


def kernel_fingerprint(kernel: Kernel) -> str:
    """Structural SHA-256 fingerprint of a lowered :class:`Kernel`.

    Covers everything the backends consume: the SSA program (``srepr`` of
    every assignment), loop order, ghost layers, hoist levels, types, field
    metadata (staggering decides write regions) and the codegen-relevant
    config (target, approximations, folded parameter values, vector width).
    Two independently generated kernel sets from identical model parameters
    hash equal, so the cache also deduplicates across regenerations.
    """
    cached = getattr(kernel, "_fingerprint", None)
    if cached is not None:
        return cached
    h = hashlib.sha256()

    def put(s: str) -> None:
        h.update(s.encode())
        h.update(b"\x00")

    put(kernel.name)
    put(str(kernel.dim))
    put(str(kernel.ghost_layers))
    put(str(kernel.loop_order))
    put(str(getattr(kernel, "reductions", ())))
    # iteration-space restriction changes the emitted loop bounds/slices
    put(str(getattr(kernel, "subspace", None)))
    for a in kernel.ac.all_assignments:
        put(sp.srepr(a.lhs))
        put(sp.srepr(a.rhs))
    put(str(sorted((s.name, lvl) for s, lvl in kernel.hoist_levels.items())))
    put(str(sorted((s.name, str(t)) for s, t in kernel.types.items())))
    for f in kernel.fields:
        put(
            f"{f.name}|{f.spatial_dimensions}|{f.index_shape}|{f.staggered}"
            f"|{getattr(f, 'slot_axes', None)}"
        )
    cfg = kernel.config
    values = cfg.parameter_values or {}
    folded = sorted(
        (k.name if isinstance(k, sp.Symbol) else str(k), repr(v))
        for k, v in values.items()
    )
    put(f"{cfg.target}|{cfg.approximations}|{cfg.vector_width}|{folded}")
    digest = h.hexdigest()
    kernel._fingerprint = digest
    return digest


def _compile(kernel: Kernel, backend: str):
    if backend == "numpy":
        from ..backends.numpy_backend import compile_numpy_kernel

        return compile_numpy_kernel(kernel)
    if backend == "c":
        from ..backends.c_backend import compile_c_kernel

        return compile_c_kernel(kernel)
    raise ValueError(f"unknown backend {backend!r}; choose 'numpy' or 'c'")


def compile_cached(kernel: Kernel, backend: str = "numpy"):
    """Compile *kernel* for *backend*, reusing any structurally equal build.

    Lookup order is memory → disk → compile: a miss here falls through to
    the backend compiler, and for the C backend that consults the
    persistent cross-process disk tier (:mod:`repro.profiling.diskcache`)
    before invoking the toolchain — a warm process compiles nothing.
    """
    global _HITS, _MISSES
    registry = get_registry()
    with get_tracer().span(
        f"compile:{kernel.name}", category="backend", backend=backend
    ) as span:
        key = (backend, kernel_fingerprint(kernel))
        with _LOCK:
            compiled = _CACHE.get(key)
            if compiled is not None:
                _HITS += 1
                registry.counter(
                    "repro_kernel_cache_hits_total", "kernel cache hits"
                ).inc()
                if span is not None:
                    span.args["cache"] = "hit"
                _log.debug(kv("cache_hit", kernel=kernel.name, backend=backend))
                return compiled
        # compile outside the lock: codegen is slow and reentrant-safe
        t0 = perf_counter()
        compiled = _compile(kernel, backend)
        with _LOCK:
            winner = _CACHE.setdefault(key, compiled)
            _MISSES += 1
            size = len(_CACHE)
        registry.counter(
            "repro_kernel_cache_misses_total", "kernel cache misses (compiles)"
        ).inc()
        registry.gauge(
            "repro_kernel_cache_size", "compiled kernels held by the cache"
        ).set(size)
        if span is not None:
            span.args["cache"] = "miss"
        _log.info(
            kv(
                "kernel_compiled",
                kernel=kernel.name,
                backend=backend,
                seconds=perf_counter() - t0,
                cache_size=size,
            )
        )
        return winner


def kernel_cache_stats() -> CacheStats:
    with _LOCK:
        return CacheStats(hits=_HITS, misses=_MISSES, size=len(_CACHE))


def clear_kernel_cache(disk: bool = False) -> None:
    """Drop all cached kernels and reset the counters (used by tests).

    With ``disk=True`` the persistent disk tier (resolved from the current
    ``REPRO_CACHE_DIR``/XDG environment) is purged too, and its per-process
    counters reset — tests no longer leak compiled artifacts between runs.
    """
    global _HITS, _MISSES
    with _LOCK:
        _CACHE.clear()
        _HITS = 0
        _MISSES = 0
    if disk:
        from .diskcache import KernelDiskCache, reset_disk_cache_stats

        KernelDiskCache().purge()
        reset_disk_cache_stats()
