"""Shared kernel cache and runtime profiling (observability subsystem).

Two concerns every solver shares:

* :mod:`repro.profiling.cache` — compile each generated kernel once per
  process and reuse it across solver instances (keyed on backend plus a
  structural fingerprint of the kernel IR),
* :mod:`repro.profiling.profiler` — per-kernel wall-clock accounting
  (calls, time, MLUP/s, bytes exchanged) rendered as a report table.
"""

from .cache import (
    CacheStats,
    clear_kernel_cache,
    compile_cached,
    kernel_cache_stats,
    kernel_fingerprint,
)
from .profiler import SolverProfiler, TimingRecord

__all__ = [
    "CacheStats",
    "SolverProfiler",
    "TimingRecord",
    "clear_kernel_cache",
    "compile_cached",
    "kernel_cache_stats",
    "kernel_fingerprint",
]
