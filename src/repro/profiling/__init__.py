"""Shared kernel cache and runtime profiling (observability subsystem).

Three concerns every solver shares:

* :mod:`repro.profiling.cache` — compile each generated kernel once per
  process and reuse it across solver instances (keyed on backend plus a
  structural fingerprint of the kernel IR),
* :mod:`repro.profiling.diskcache` — the persistent cross-process tier:
  a content-addressed on-disk ``.so`` store with file-locked atomic
  publication, so a warm process compiles nothing,
* :mod:`repro.profiling.profiler` — per-kernel wall-clock accounting
  (calls, time, MLUP/s, bytes exchanged) rendered as a report table.
"""

from .cache import (
    CacheStats,
    clear_kernel_cache,
    compile_cached,
    kernel_cache_stats,
    kernel_fingerprint,
)
from .diskcache import (
    DiskCacheStats,
    KernelDiskCache,
    cache_key,
    cache_root,
    disk_cache_stats,
    reset_disk_cache_stats,
)
from .profiler import SolverProfiler, TimingRecord

__all__ = [
    "CacheStats",
    "DiskCacheStats",
    "KernelDiskCache",
    "SolverProfiler",
    "TimingRecord",
    "cache_key",
    "cache_root",
    "clear_kernel_cache",
    "compile_cached",
    "disk_cache_stats",
    "kernel_cache_stats",
    "kernel_fingerprint",
    "reset_disk_cache_stats",
]
