"""Philox-4x32-10 counter-based random number generator (Salmon et al. 2011).

The paper (§3.3) replaces fluctuation terms by the *stateless* Philox
generator: the global cell index and the current time step are used as
counters/keys, so cell updates stay independent — no RNG state is loaded
from memory and kernels remain trivially parallel and reproducible.

This is a full vectorized NumPy implementation, bit-exact against the
reference test vectors shipped with Random123 (see tests).  The C backend
embeds an equivalent scalar implementation so both backends draw identical
numbers for identical (cell, step, seed, stream) tuples.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "philox_4x32_10",
    "philox_uniform_double2",
    "philox_field",
    "PHILOX_M0",
    "PHILOX_M1",
    "PHILOX_W0",
    "PHILOX_W1",
]

PHILOX_M0 = np.uint64(0xD2511F53)
PHILOX_M1 = np.uint64(0xCD9E8D57)
PHILOX_W0 = np.uint32(0x9E3779B9)
PHILOX_W1 = np.uint32(0xBB67AE85)

_U32 = np.uint64(0xFFFFFFFF)
_TWO_POW_M64 = float(2.0**-64)
_TWO_POW_M32 = float(2.0**-32)


def _mulhilo(a: np.uint64, b) -> tuple[np.ndarray, np.ndarray]:
    """64-bit product of 32-bit values split into (hi, lo) 32-bit halves."""
    prod = a * b.astype(np.uint64)
    return (prod >> np.uint64(32)).astype(np.uint32), (prod & _U32).astype(np.uint32)


def philox_4x32_10(c0, c1, c2, c3, k0, k1) -> tuple[np.ndarray, ...]:
    """Run 10 Philox rounds on 4x32-bit counters with a 2x32-bit key.

    All inputs broadcast; returns four uint32 arrays.
    """
    c0 = np.asarray(c0, dtype=np.uint32)
    c1 = np.asarray(c1, dtype=np.uint32)
    c2 = np.asarray(c2, dtype=np.uint32)
    c3 = np.asarray(c3, dtype=np.uint32)
    c0, c1, c2, c3 = np.broadcast_arrays(c0, c1, c2, c3)
    k0 = np.uint32(np.uint64(k0) & _U32)
    k1 = np.uint32(np.uint64(k1) & _U32)

    for _ in range(10):
        hi0, lo0 = _mulhilo(PHILOX_M0, c0)
        hi1, lo1 = _mulhilo(PHILOX_M1, c2)
        c0, c1, c2, c3 = (
            hi1 ^ c1 ^ k0,
            lo1,
            hi0 ^ c3 ^ k1,
            lo0,
        )
        # uint32 wrap-around is intended; add in uint64 to avoid warnings
        k0 = np.uint32((np.uint64(k0) + np.uint64(PHILOX_W0)) & _U32)
        k1 = np.uint32((np.uint64(k1) + np.uint64(PHILOX_W1)) & _U32)
    return c0, c1, c2, c3


def philox_uniform_double2(c0, c1, c2, c3, k0, k1) -> tuple[np.ndarray, np.ndarray]:
    """Two uniform doubles in [0, 1) per counter block (53-bit precision)."""
    r0, r1, r2, r3 = philox_4x32_10(c0, c1, c2, c3, k0, k1)
    d0 = (
        r0.astype(np.float64) * _TWO_POW_M32 + r1.astype(np.float64)
    ) * _TWO_POW_M32
    d1 = (
        r2.astype(np.float64) * _TWO_POW_M32 + r3.astype(np.float64)
    ) * _TWO_POW_M32
    return d0, d1


def philox_field(
    shape: tuple[int, ...],
    time_step: int,
    seed: int = 0,
    stream: int = 0,
    offset: tuple[int, ...] = (0, 0, 0),
    low: float = -1.0,
    high: float = 1.0,
) -> np.ndarray:
    """Uniform random field over a grid, keyed on cell index and time step.

    The first three counter words carry the *global* cell coordinates
    (``offset`` shifts local block coordinates into the global frame so that
    a distributed run draws the same numbers as a single-block run), the
    fourth carries the stream pair index.  ``(time_step, seed)`` is the key.
    """
    dim = len(shape)
    if dim > 3:
        raise ValueError("philox_field supports at most 3 spatial dimensions")
    idx = np.indices(shape, dtype=np.int64)
    coords = [idx[d] + np.int64(offset[d]) for d in range(dim)]
    while len(coords) < 3:
        coords.append(np.zeros(shape, dtype=np.int64))
    c0 = (coords[0] & 0xFFFFFFFF).astype(np.uint32)
    c1 = (coords[1] & 0xFFFFFFFF).astype(np.uint32)
    c2 = (coords[2] & 0xFFFFFFFF).astype(np.uint32)
    c3 = np.uint32(stream // 2)
    d0, d1 = philox_uniform_double2(c0, c1, c2, c3, np.uint32(time_step & 0xFFFFFFFF),
                                    np.uint32(seed & 0xFFFFFFFF))
    u = d0 if stream % 2 == 0 else d1
    return low + (high - low) * u
