"""Counter-based random number generation (Philox-4x32-10)."""

from .philox import philox_4x32_10, philox_field, philox_uniform_double2

__all__ = ["philox_4x32_10", "philox_field", "philox_uniform_double2"]
