"""Automatic performance modeling: op counts, layer conditions, ECM, roofline."""

from .ecm import ECMModel, ECMPrediction, combine_kernels_mlups
from .flops import SKYLAKE_WEIGHTS, OperationCount, count_operations
from .instruction_tables import HASWELL_TABLE, SKYLAKE_TABLE, InstructionTable, weights_for
from .layer_condition import TrafficAnalysis, analyze_traffic, blocking_factor
from .ledger import (
    PERF_SCHEMA,
    PerfLedger,
    PerfSchemaError,
    host_stanza,
    perf_record,
    records_from_profiler,
    series_key,
    validate_perf_record,
)
from .machine import (
    HASWELL_2690V3,
    MACHINES,
    SKYLAKE_8174,
    CacheLevel,
    MachineModel,
    detect_host,
    detect_machine,
)
from .benchmark_mode import MeasuredPerformance, generate_benchmark_source, measure_kernel
from .report import performance_report
from .roofline import RooflinePoint, roofline
from .selection import SelectionReport, VariantRating, select_variants

__all__ = [
    "ECMModel",
    "ECMPrediction",
    "combine_kernels_mlups",
    "SKYLAKE_WEIGHTS",
    "OperationCount",
    "count_operations",
    "InstructionTable",
    "SKYLAKE_TABLE",
    "HASWELL_TABLE",
    "weights_for",
    "TrafficAnalysis",
    "analyze_traffic",
    "blocking_factor",
    "HASWELL_2690V3",
    "MACHINES",
    "SKYLAKE_8174",
    "CacheLevel",
    "MachineModel",
    "detect_host",
    "detect_machine",
    "PERF_SCHEMA",
    "PerfLedger",
    "PerfSchemaError",
    "host_stanza",
    "perf_record",
    "records_from_profiler",
    "series_key",
    "validate_perf_record",
    "performance_report",
    "RooflinePoint",
    "roofline",
    "MeasuredPerformance",
    "generate_benchmark_source",
    "measure_kernel",
    "SelectionReport",
    "VariantRating",
    "select_variants",
]
