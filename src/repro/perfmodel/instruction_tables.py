"""Per-microarchitecture instruction throughput tables (the IACA substitute).

The paper determines compute throughput with Intel's closed-source IACA
tool; as an open substitute we carry Agner-Fog-style reciprocal-throughput
tables per microarchitecture and derive the normalized-FLOP weights the
counting machinery (:mod:`repro.perfmodel.flops`) uses.  Weights are
expressed relative to one SIMD add/mul (≈ the paper's normalization: on
Skylake a double division costs ~16 add-slots, an approximate sqrt ~10, an
approximate rsqrt ~2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

__all__ = ["InstructionTable", "SKYLAKE_TABLE", "HASWELL_TABLE", "weights_for"]


@dataclass(frozen=True)
class InstructionTable:
    """Reciprocal throughputs (cycles per SIMD instruction) for doubles."""

    name: str
    simd_doubles: int
    add: float            # vaddpd
    mul: float            # vmulpd
    fma: float            # vfmadd*
    div: float            # vdivpd (full vector)
    sqrt: float           # vsqrtpd
    rsqrt_approx: float | None   # vrsqrt14pd (AVX-512 only)
    blend: float = 1.0

    def weights(self) -> Mapping[str, float]:
        """Normalized-FLOP weights relative to one add/mul slot."""
        base = self.add
        sqrt_approx = self.rsqrt_approx * 5 if self.rsqrt_approx else self.sqrt
        return {
            "adds": 1.0,
            "muls": self.mul / base,
            "divs": self.div / base,
            "sqrts": sqrt_approx / base,
            "rsqrts": (self.rsqrt_approx or self.sqrt) / base,
            "fast_divs": max(self.div / base / 4.0, 2.0),
            "fast_sqrts": max(sqrt_approx / base / 2.5, 2.0),
            "fast_rsqrts": max((self.rsqrt_approx or self.sqrt) / base / 2.0, 1.0),
            "funcs": 20.0,
            "rngs": 12.0,
            "blends": self.blend / base,
        }


#: Skylake-SP with AVX-512 (Agner Fog: vdivpd zmm ≈ 16 cy, vsqrtpd ≈ 19/31,
#: vrsqrt14pd ≈ 2 cy).  Matches the paper's 1/1/16/10/2 weighting.
SKYLAKE_TABLE = InstructionTable(
    name="Skylake-SP (AVX-512)",
    simd_doubles=8,
    add=1.0,
    mul=1.0,
    fma=1.0,
    div=16.0,
    sqrt=19.0,
    rsqrt_approx=2.0,
)

#: Haswell with AVX2 (vdivpd ymm ≈ 16–20 cy, vsqrtpd ymm ≈ 19–28, no
#: double-precision rsqrt approximation).
HASWELL_TABLE = InstructionTable(
    name="Haswell (AVX2)",
    simd_doubles=4,
    add=1.0,
    mul=1.0,
    fma=1.0,
    div=20.0,
    sqrt=22.0,
    rsqrt_approx=None,
)

_TABLES = {"skylake": SKYLAKE_TABLE, "haswell": HASWELL_TABLE}


def weights_for(arch: str) -> Mapping[str, float]:
    """Normalized-FLOP weight table for a microarchitecture name."""
    key = arch.lower()
    if key not in _TABLES:
        raise KeyError(f"unknown architecture {arch!r}; have {sorted(_TABLES)}")
    return _TABLES[key].weights()
