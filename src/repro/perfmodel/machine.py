"""Machine models for analytic performance prediction (paper §3.6).

A :class:`MachineModel` captures "the most essential aspects of a compute
system": ALU throughput and the cache/memory hierarchy.  The two CPU systems
of the paper are provided:

* ``SKYLAKE_8174`` — one socket of SuperMUC-NG (Intel Xeon Platinum 8174,
  24 cores, AVX-512),
* ``HASWELL_2690V3`` — the Piz Daint host CPU (Xeon E5-2690 v3).

Values follow the published specifications and the paper's own artifact
appendix (``lscpu`` output).  The GPU model lives in :mod:`repro.gpu.model`.

Host auto-detection (:func:`detect_machine`, :func:`detect_host`) reads
physical core count, cache sizes and the cache line size from ``/sys``
(topology and cacheinfo), with documented fallbacks for containers that
hide them: ``os.cpu_count()`` for cores, 32 KiB/256 KiB/8 MiB for
L1/L2/L3 and 64 B lines — deliberately generic x86-era values, flagged by
``detected=False`` per field in the host stanza.  The stanza's ``key``
hashes only hardware identity (never the hostname: CI containers get a
fresh hostname every run), so the perf-history ledger can refuse to
compare records from different machines.
"""

from __future__ import annotations

import hashlib
import os
import platform
import re
import socket
from dataclasses import dataclass, replace
from pathlib import Path

__all__ = [
    "MachineModel",
    "CacheLevel",
    "SKYLAKE_8174",
    "HASWELL_2690V3",
    "MACHINES",
    "detect_physical_cores",
    "detect_cache_hierarchy",
    "detect_host",
    "detect_machine",
]


@dataclass(frozen=True)
class CacheLevel:
    """One level of the memory hierarchy."""

    name: str
    size_bytes: int          # capacity visible to one core (L3: per-socket)
    bandwidth_bytes_per_cycle: float   # per core, towards the next level
    shared: bool = False     # shared across the socket (L3/memory)


@dataclass(frozen=True)
class MachineModel:
    """Parameters of one CPU socket for the ECM model."""

    name: str
    clock_ghz: float                 # sustained clock under AVX load
    cores_per_socket: int
    sockets_per_node: int
    simd_doubles: int                # SIMD width in doubles
    fma_ports: int                   # superscalar FP pipelines
    cache_levels: tuple[CacheLevel, ...]
    mem_bandwidth_gbs: float         # saturated per-socket memory bandwidth
    mem_latency_penalty: float = 0.35  # utilization-dependent inflation factor
    cache_line_bytes: int = 64       # coherency line size (traffic unit)

    @property
    def flop_throughput_per_cycle(self) -> float:
        """Normalized-FLOP units retired per cycle per core.

        Normalized FLOPs already weight div/sqrt by their inverse
        throughput, so the ALU retires ``simd_doubles * fma_ports`` units
        per cycle.
        """
        return self.simd_doubles * self.fma_ports

    @property
    def cores_per_node(self) -> int:
        return self.cores_per_socket * self.sockets_per_node

    def mem_bandwidth_bytes_per_cycle(self) -> float:
        """Per-socket memory bandwidth expressed in bytes/cycle."""
        return self.mem_bandwidth_gbs / self.clock_ghz

    def level(self, name: str) -> CacheLevel:
        for lv in self.cache_levels:
            if lv.name == name:
                return lv
        raise KeyError(name)


SKYLAKE_8174 = MachineModel(
    name="Intel Xeon Platinum 8174 (SuperMUC-NG)",
    clock_ghz=2.3,                  # AVX-512 sustained clock
    cores_per_socket=24,
    sockets_per_node=2,
    simd_doubles=8,                 # AVX-512
    fma_ports=2,
    cache_levels=(
        CacheLevel("L1", 32 * 1024, 128.0),
        CacheLevel("L2", 1024 * 1024, 64.0),
        CacheLevel("L3", 33 * 1024 * 1024, 32.0, shared=True),
    ),
    mem_bandwidth_gbs=110.0,
)

HASWELL_2690V3 = MachineModel(
    name="Intel Xeon E5-2690 v3 (Piz Daint host)",
    clock_ghz=2.6,
    cores_per_socket=12,
    sockets_per_node=1,
    simd_doubles=4,                 # AVX2
    fma_ports=2,
    cache_levels=(
        CacheLevel("L1", 32 * 1024, 64.0),
        CacheLevel("L2", 256 * 1024, 32.0),
        CacheLevel("L3", 30 * 1024 * 1024, 16.0, shared=True),
    ),
    mem_bandwidth_gbs=60.0,
)

MACHINES = {"skylake": SKYLAKE_8174, "haswell": HASWELL_2690V3}


# ---------------------------------------------------------------------------
# host auto-detection

_SYS_CPU = Path("/sys/devices/system/cpu")

#: fallbacks when /sys hides the hierarchy (documented generic values)
_FALLBACK_CACHES = (("L1", 32 * 1024), ("L2", 256 * 1024), ("L3", 8 * 1024 * 1024))
_FALLBACK_LINE_BYTES = 64


def _read_sys(path: Path) -> str | None:
    try:
        return path.read_text().strip()
    except OSError:
        return None


def _parse_size(text: str) -> int | None:
    """Parse a cacheinfo size string (``32K``, ``8192K``, ``1M``) to bytes."""
    m = re.fullmatch(r"(\d+)([KMG]?)", text.strip())
    if not m:
        return None
    value = int(m.group(1))
    return value * {"": 1, "K": 1024, "M": 1024**2, "G": 1024**3}[m.group(2)]


def detect_physical_cores() -> tuple[int, bool]:
    """(physical core count, detected?) — unique (package, core) pairs.

    Hyperthread siblings share a ``core_id`` within their
    ``physical_package_id``; counting distinct pairs gives physical cores.
    Fallback: ``os.cpu_count()`` (logical CPUs — an overcount on SMT
    hosts), flagged ``detected=False``.
    """
    pairs = set()
    try:
        for cpu in _SYS_CPU.glob("cpu[0-9]*"):
            pkg = _read_sys(cpu / "topology" / "physical_package_id")
            core = _read_sys(cpu / "topology" / "core_id")
            if pkg is None or core is None:
                continue
            pairs.add((pkg, core))
    except OSError:
        pass
    if pairs:
        return len(pairs), True
    return os.cpu_count() or 1, False


def detect_cache_hierarchy() -> tuple[tuple[tuple[str, int], ...], int, bool]:
    """((level name, size bytes), ...), line size, detected? — from cpu0.

    Reads ``/sys/devices/system/cpu/cpu0/cache/index*``; instruction-only
    caches are skipped, split L1 keeps the data side.  Fallback: the
    generic 32K/256K/8M hierarchy with 64-byte lines.
    """
    levels: dict[int, int] = {}
    line_bytes = None
    try:
        for index in sorted((_SYS_CPU / "cpu0" / "cache").glob("index[0-9]*")):
            ctype = _read_sys(index / "type")
            if ctype == "Instruction":
                continue
            level = _read_sys(index / "level")
            size = _read_sys(index / "size")
            if level is None or size is None:
                continue
            parsed = _parse_size(size)
            if parsed is None:
                continue
            levels[int(level)] = parsed
            coherency = _read_sys(index / "coherency_line_size")
            if coherency and coherency.isdigit():
                line_bytes = int(coherency)
    except OSError:
        pass
    if levels:
        hierarchy = tuple(
            (f"L{lv}", levels[lv]) for lv in sorted(levels)
        )
        return hierarchy, line_bytes or _FALLBACK_LINE_BYTES, True
    return _FALLBACK_CACHES, _FALLBACK_LINE_BYTES, False


def _cpu_model_name() -> str:
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def detect_host() -> dict:
    """The perf-history host stanza: hardware identity plus a stable key.

    The ``key`` hashes only what identifies the *machine* — CPU model,
    physical cores, cache hierarchy, line size, architecture — and never
    the hostname: CI containers get a fresh hostname per run, and records
    that differ only by hostname must remain comparable.  ``hostname``
    stays in the stanza informationally.
    """
    cores, cores_detected = detect_physical_cores()
    caches, line_bytes, caches_detected = detect_cache_hierarchy()
    identity = {
        "cpu_model": _cpu_model_name(),
        "arch": platform.machine(),
        "physical_cores": cores,
        "caches": {name: size for name, size in caches},
        "cache_line_bytes": line_bytes,
    }
    digest = hashlib.sha256(
        repr(sorted(identity.items(), key=lambda kv: kv[0])).encode()
    ).hexdigest()[:16]
    return {
        **identity,
        "cores_detected": cores_detected,
        "caches_detected": caches_detected,
        "hostname": socket.gethostname(),   # informational, NOT in the key
        "key": digest,
    }


def detect_machine(base: MachineModel | None = None) -> MachineModel:
    """A :class:`MachineModel` describing *this* host, best effort.

    Starts from *base* (default ``HASWELL_2690V3`` — conservative AVX2
    throughput assumptions) and overrides what ``/sys`` actually exposes:
    physical cores, cache sizes, line size.  Clock and bandwidth keep the
    base values — there is no portable way to read sustained AVX clock or
    saturated bandwidth, and the ECM ratio column exists precisely to
    absorb that calibration error.
    """
    base = base or HASWELL_2690V3
    cores, _ = detect_physical_cores()
    caches, line_bytes, detected = detect_cache_hierarchy()
    cache_levels = base.cache_levels
    if detected:
        bandwidths = [lv.bandwidth_bytes_per_cycle for lv in base.cache_levels]
        while len(bandwidths) < len(caches):
            bandwidths.append(bandwidths[-1] / 2.0)
        cache_levels = tuple(
            CacheLevel(
                name,
                size,
                bandwidths[i],
                shared=(i == len(caches) - 1),
            )
            for i, (name, size) in enumerate(caches)
        )
    return replace(
        base,
        name=f"detected: {_cpu_model_name()}",
        cores_per_socket=max(1, cores),
        sockets_per_node=1,
        cache_levels=cache_levels,
        cache_line_bytes=line_bytes,
    )
