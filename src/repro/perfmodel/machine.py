"""Machine models for analytic performance prediction (paper §3.6).

A :class:`MachineModel` captures "the most essential aspects of a compute
system": ALU throughput and the cache/memory hierarchy.  The two CPU systems
of the paper are provided:

* ``SKYLAKE_8174`` — one socket of SuperMUC-NG (Intel Xeon Platinum 8174,
  24 cores, AVX-512),
* ``HASWELL_2690V3`` — the Piz Daint host CPU (Xeon E5-2690 v3).

Values follow the published specifications and the paper's own artifact
appendix (``lscpu`` output).  The GPU model lives in :mod:`repro.gpu.model`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineModel", "CacheLevel", "SKYLAKE_8174", "HASWELL_2690V3", "MACHINES"]


@dataclass(frozen=True)
class CacheLevel:
    """One level of the memory hierarchy."""

    name: str
    size_bytes: int          # capacity visible to one core (L3: per-socket)
    bandwidth_bytes_per_cycle: float   # per core, towards the next level
    shared: bool = False     # shared across the socket (L3/memory)


@dataclass(frozen=True)
class MachineModel:
    """Parameters of one CPU socket for the ECM model."""

    name: str
    clock_ghz: float                 # sustained clock under AVX load
    cores_per_socket: int
    sockets_per_node: int
    simd_doubles: int                # SIMD width in doubles
    fma_ports: int                   # superscalar FP pipelines
    cache_levels: tuple[CacheLevel, ...]
    mem_bandwidth_gbs: float         # saturated per-socket memory bandwidth
    mem_latency_penalty: float = 0.35  # utilization-dependent inflation factor

    @property
    def flop_throughput_per_cycle(self) -> float:
        """Normalized-FLOP units retired per cycle per core.

        Normalized FLOPs already weight div/sqrt by their inverse
        throughput, so the ALU retires ``simd_doubles * fma_ports`` units
        per cycle.
        """
        return self.simd_doubles * self.fma_ports

    @property
    def cores_per_node(self) -> int:
        return self.cores_per_socket * self.sockets_per_node

    def mem_bandwidth_bytes_per_cycle(self) -> float:
        """Per-socket memory bandwidth expressed in bytes/cycle."""
        return self.mem_bandwidth_gbs / self.clock_ghz

    def level(self, name: str) -> CacheLevel:
        for lv in self.cache_levels:
            if lv.name == name:
                return lv
        raise KeyError(name)


SKYLAKE_8174 = MachineModel(
    name="Intel Xeon Platinum 8174 (SuperMUC-NG)",
    clock_ghz=2.3,                  # AVX-512 sustained clock
    cores_per_socket=24,
    sockets_per_node=2,
    simd_doubles=8,                 # AVX-512
    fma_ports=2,
    cache_levels=(
        CacheLevel("L1", 32 * 1024, 128.0),
        CacheLevel("L2", 1024 * 1024, 64.0),
        CacheLevel("L3", 33 * 1024 * 1024, 32.0, shared=True),
    ),
    mem_bandwidth_gbs=110.0,
)

HASWELL_2690V3 = MachineModel(
    name="Intel Xeon E5-2690 v3 (Piz Daint host)",
    clock_ghz=2.6,
    cores_per_socket=12,
    sockets_per_node=1,
    simd_doubles=4,                 # AVX2
    fma_ports=2,
    cache_levels=(
        CacheLevel("L1", 32 * 1024, 64.0),
        CacheLevel("L2", 256 * 1024, 32.0),
        CacheLevel("L3", 30 * 1024 * 1024, 16.0, shared=True),
    ),
    mem_bandwidth_gbs=60.0,
)

MACHINES = {"skylake": SKYLAKE_8174, "haswell": HASWELL_2690V3}
