"""Append-only perf history: the ``repro-perf/1`` variant ledger.

``BENCH_*.json`` documents are overwritten in place — a snapshot, not a
trajectory.  The ledger is the memory: every bench run *appends* one JSONL
record per measured kernel (or bench-level series) under
``benchmarks/history/``, keyed by

    kernel fingerprint x codegen options x host

so ``tools/perf_trend.py`` can plot per-variant trends and closure drift
over time, and refuse to compare records from different machines (the host
``key`` hashes hardware identity only — never the hostname, which CI
containers refresh every run; see :func:`repro.perfmodel.machine.detect_host`).

Record shape (one JSON object per line)::

    {
      "schema": "repro-perf/1",
      "timestamp": "2026-08-08T12:00:00+00:00",
      "git_sha": "abc123..." | null,
      "bench": "scaling_smoke",            # producing bench/suite
      "name": "kernels/phi_update",        # series name within the bench
      "kernel": {"name": ..., "fingerprint": ...} | null,
      "options": {...},                    # codegen options of the variant
      "host": {... detect_host() stanza ..., "key": "hex16"},
      "measured": {
        "mlups": ..., "mean_seconds": ..., "cpu_seconds": ...,
        "cycles_per_lup": null, "ipc": null, "bytes_per_lup": null,
        "counter_source": "rusage"
      },
      "predicted": {
        "mlups": ..., "cycles_per_lup": ..., "bytes_per_lup": ...,
        "t_comp": ..., "t_cache": ..., "t_mem": ...
      } | null
    }

Counter-derived fields are ``null`` (not 0) on hosts without perf_event
access — the degradation chain keeps the *time-derived* fields populated,
so the history stays useful on the 1-core CI container.  ``measured`` is a
flexible metrics dict: bench-level records (scaling efficiency, step wall)
carry their own keys; direction per metric follows
:func:`repro.observability.bench.lower_is_better`.
"""

from __future__ import annotations

import json
import math
from datetime import datetime, timezone
from pathlib import Path

from ..observability.bench import git_sha
from ..observability.jsonl import JsonlLedger
from .machine import detect_host

__all__ = [
    "PERF_SCHEMA",
    "PerfSchemaError",
    "PerfLedger",
    "host_stanza",
    "perf_record",
    "records_from_profiler",
    "series_key",
    "validate_perf_record",
]

PERF_SCHEMA = "repro-perf/1"

#: default history location, relative to the repo root
DEFAULT_HISTORY = Path("benchmarks") / "history" / "perf_history.jsonl"


class PerfSchemaError(ValueError):
    """A ledger record does not conform to the ``repro-perf/1`` schema."""


def host_stanza() -> dict:
    """The host identity stanza (cached: hardware does not change mid-run)."""
    global _HOST_STANZA
    if _HOST_STANZA is None:
        _HOST_STANZA = detect_host()
    return dict(_HOST_STANZA)


_HOST_STANZA: dict | None = None


def _clean_metrics(metrics: dict, context: str) -> dict:
    """Validate a measured/predicted stanza: numbers or None, finite."""
    clean = {}
    for key, value in metrics.items():
        if value is None or isinstance(value, str):
            clean[key] = value
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise PerfSchemaError(f"{context}.{key}={value!r} is not a number")
        if not math.isfinite(value):
            raise PerfSchemaError(f"{context}.{key}={value!r} is not finite")
        clean[key] = float(value)
    return clean


def perf_record(
    bench: str,
    name: str,
    measured: dict,
    predicted: dict | None = None,
    kernel: dict | None = None,
    options: dict | None = None,
    timestamp: str | None = None,
) -> dict:
    """Build one validated ``repro-perf/1`` record."""
    record = {
        "schema": PERF_SCHEMA,
        "timestamp": timestamp
        or datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_sha": git_sha(),
        "bench": bench,
        "name": name,
        "kernel": dict(kernel) if kernel else None,
        "options": dict(options or {}),
        "host": host_stanza(),
        "measured": _clean_metrics(measured, "measured"),
        "predicted": _clean_metrics(predicted, "predicted") if predicted else None,
    }
    return validate_perf_record(record)


def validate_perf_record(record) -> dict:
    """Raise :class:`PerfSchemaError` unless *record* is valid."""
    if not isinstance(record, dict):
        raise PerfSchemaError(f"record is {type(record).__name__}, expected object")
    if record.get("schema") != PERF_SCHEMA:
        raise PerfSchemaError(
            f"schema is {record.get('schema')!r}, expected {PERF_SCHEMA!r}"
        )
    for field in ("bench", "name", "timestamp"):
        if not isinstance(record.get(field), str) or not record[field]:
            raise PerfSchemaError(f"{field} missing or not a string")
    host = record.get("host")
    if not isinstance(host, dict) or not host.get("key"):
        raise PerfSchemaError("host stanza missing or without a key")
    measured = record.get("measured")
    if not isinstance(measured, dict) or not measured:
        raise PerfSchemaError("measured stanza missing or empty")
    kernel = record.get("kernel")
    if kernel is not None:
        if not isinstance(kernel, dict) or not kernel.get("fingerprint"):
            raise PerfSchemaError("kernel stanza must carry a fingerprint")
    _clean_metrics(measured, "measured")
    if record.get("predicted"):
        _clean_metrics(record["predicted"], "predicted")
    return record


def series_key(record: dict) -> tuple:
    """The trend-series identity of a record.

    Records compare only within the same (bench, name, kernel fingerprint,
    codegen options, host key) tuple — a new variant, a different option
    set or another machine starts a fresh series rather than polluting an
    existing one.
    """
    kernel = record.get("kernel") or {}
    options = record.get("options") or {}
    return (
        record["bench"],
        record["name"],
        kernel.get("fingerprint"),
        json.dumps(options, sort_keys=True),
        record["host"]["key"],
    )


class PerfLedger(JsonlLedger):
    """Append-only JSONL history of ``repro-perf/1`` records.

    The append/load mechanics (fsync'd whole-line writes, torn-tail
    forgiveness, ``path:lineno`` strict errors) live in the shared
    :class:`repro.observability.jsonl.JsonlLedger`; this subclass binds
    them to the ``repro-perf/1`` schema and the default history location.
    """

    SchemaError = PerfSchemaError

    def __init__(self, path=None):
        super().__init__(path if path is not None else DEFAULT_HISTORY)

    def validate(self, record) -> dict:
        return validate_perf_record(record)

    def series(self) -> dict[tuple, list[dict]]:
        """Records grouped by :func:`series_key`, each oldest first."""
        grouped: dict[tuple, list[dict]] = {}
        for record in self.load():
            grouped.setdefault(series_key(record), []).append(record)
        return grouped


def records_from_profiler(
    bench: str,
    kernels,
    profiler,
    machine=None,
    block_shape: tuple[int, ...] | None = None,
    cores: int = 1,
    options: dict | None = None,
) -> list[dict]:
    """One ledger record per cell-counted kernel the profiler timed.

    Joins the measured side (MLUP/s, mean seconds, CPU seconds, and — when
    hardware counters ran — cycles/LUP, IPC, bytes/LUP) with the ECM
    prediction; counter-less hosts get ``null`` counter fields, never 0.
    """
    from ..observability.hwcounters import get_counter_harness
    from ..observability.report import model_accuracy_rows
    from ..profiling.cache import kernel_fingerprint

    source = get_counter_harness().source
    rows = model_accuracy_rows(
        kernels, profiler, machine=machine, block_shape=block_shape, cores=cores
    )
    by_name = {k.name: k for k in kernels}
    records = []
    for row in rows:
        kernel = by_name[row["kernel"]]
        rec = profiler.records[kernel.name]
        measured = {
            "mlups": row["measured_mlups"],
            "mean_seconds": rec.mean_seconds,
            "cpu_seconds": rec.cpu_seconds if rec.cpu_seconds > 0.0 else None,
            "cycles_per_lup": row["measured_cycles_per_lup"],
            "ipc": row["ipc"],
            "bytes_per_lup": row["measured_bytes_per_lup"],
            "counter_source": source,
        }
        predicted = {
            "mlups": row["predicted_mlups"],
            "cycles_per_lup": row["predicted_cycles_per_lup"],
            "bytes_per_lup": row["predicted_bytes_per_lup"],
        }
        records.append(
            perf_record(
                bench,
                f"kernels/{kernel.name}",
                measured,
                predicted=predicted,
                kernel={
                    "name": kernel.name,
                    "fingerprint": kernel_fingerprint(kernel),
                },
                options=options,
            )
        )
    return records
