"""Execution-Cache-Memory (ECM) performance model (paper §3.6, Fig. 2).

The model predicts, per cache line of results (8 lattice-site updates):

* ``T_comp`` — in-core cycles, from the normalized FLOP count and the
  machine's SIMD/FMA throughput,
* ``T_L1L2, T_L2L3, T_L3Mem`` — data-transfer cycles, from the layer
  condition traffic analysis and per-level bandwidths.

Single-core runtime ≈ ``max(T_comp, ΣT_data)``; multi-core performance
scales linearly until the shared memory bandwidth saturates.  A mild
utilization-dependent latency penalty (Hofmann-style refinement) reproduces
the gradual per-core decline of memory-bound kernels seen in Fig. 2 before
the hard roof is reached.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ir.kernel import Kernel
from .layer_condition import TrafficAnalysis, analyze_traffic
from .machine import MachineModel

__all__ = ["ECMPrediction", "ECMModel", "combine_kernels_mlups"]

_LUPS_PER_UNIT = 8  # one cache line of double results


@dataclass
class ECMPrediction:
    """ECM decomposition for one kernel on one machine."""

    kernel_name: str
    t_comp: float          # cycles per 8 LUPs
    t_cache: float         # aggregated inter-cache transfer cycles
    t_mem: float           # memory transfer cycles (per core, unloaded)
    machine: MachineModel

    @property
    def t_single(self) -> float:
        return max(self.t_comp, self.t_cache + self.t_mem)

    @property
    def is_compute_bound(self) -> bool:
        return self.t_comp >= self.t_cache + self.t_mem

    @property
    def saturation_cores(self) -> int:
        """Cores needed to saturate the memory interface (paper: 32 / 83)."""
        if self.t_mem <= 0:
            return 10**6
        return max(1, int(np.ceil(self.t_single / self.t_mem)))

    def mlups_single_core(self) -> float:
        cycles_per_lup = self.t_single / _LUPS_PER_UNIT
        return self.machine.clock_ghz * 1e3 / cycles_per_lup  # MLUP/s

    def mlups(self, cores: int, penalty: float | None = None) -> float:
        """Aggregate MLUP/s on *cores* cores of one socket.

        Uses the utilization-penalty refinement: the effective memory time
        inflates as the bus utilization grows, then the hard bandwidth roof
        caps the total.
        """
        cores = int(cores)
        if cores < 1:
            raise ValueError("cores must be >= 1")
        penalty = self.machine.mem_latency_penalty if penalty is None else penalty
        n_sat = self.saturation_cores
        u = min(1.0, cores / n_sat)
        t_mem_eff = self.t_mem * (1.0 + penalty * u * (cores > 1))
        t = max(self.t_comp, self.t_cache + t_mem_eff)
        linear = cores * self.machine.clock_ghz * 1e3 * _LUPS_PER_UNIT / t
        if self.t_mem > 0:
            roof = n_sat * self.machine.clock_ghz * 1e3 * _LUPS_PER_UNIT / self.t_single
            return min(linear, roof)
        return linear

    def mlups_per_core(self, cores: int, **kw) -> float:
        return self.mlups(cores, **kw) / cores

    def __str__(self):
        kind = "compute" if self.is_compute_bound else "memory"
        return (
            f"ECM[{self.kernel_name}@{self.machine.name.split()[2]}]: "
            f"{{{self.t_comp:.1f} ‖ {self.t_cache:.1f} + {self.t_mem:.1f}}} cy/CL "
            f"({kind}-bound, saturates at {self.saturation_cores} cores, "
            f"{self.mlups_single_core():.1f} MLUP/s/core)"
        )


class ECMModel:
    """Builds ECM predictions for kernels from the IR (à la Kerncraft)."""

    def __init__(self, machine: MachineModel):
        self.machine = machine

    def predict(
        self,
        kernel: Kernel,
        block_shape: tuple[int, ...],
        traffic: TrafficAnalysis | None = None,
    ) -> ECMPrediction:
        m = self.machine
        oc = kernel.operation_count()
        t_comp = (
            oc.normalized_flops() * _LUPS_PER_UNIT / m.flop_throughput_per_cycle
        )

        traffic = traffic or analyze_traffic(kernel, block_shape)

        t_cache = 0.0
        levels = m.cache_levels
        for i, lv in enumerate(levels):
            if i + 1 < len(levels):
                # traffic between lv and the next level: what misses lv
                bytes_per_lup = traffic.total_bytes(lv.size_bytes)
                t_cache += bytes_per_lup * _LUPS_PER_UNIT / lv.bandwidth_bytes_per_cycle
        # memory traffic: what misses the last-level cache
        llc = levels[-1]
        mem_bytes = traffic.total_bytes(llc.size_bytes)
        t_mem = (
            mem_bytes
            * _LUPS_PER_UNIT
            / (m.mem_bandwidth_bytes_per_cycle() / 1.0)
        )
        return ECMPrediction(
            kernel_name=kernel.name,
            t_comp=t_comp,
            t_cache=t_cache,
            t_mem=t_mem,
            machine=m,
        )


def combine_kernels_mlups(predictions, cores: int) -> float:
    """Aggregate MLUP/s of several kernels run back to back per time step.

    1 LUP of the combined sweep requires the per-LUP time of every kernel,
    so the rates combine harmonically.
    """
    total_time = sum(1.0 / p.mlups(cores) for p in predictions)
    return 1.0 / total_time
