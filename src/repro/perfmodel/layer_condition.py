"""Layer-condition analysis: stencil data traffic through the cache levels.

For a stencil sweep, neighbour accesses are cache hits as long as the cache
retains the necessary *layers* (rows or planes) of the arrays between their
first and last use.  The analysis determines, per cache level, how many
distinct load streams actually miss and therefore how many bytes flow per
lattice-site update (LUP).  It also derives the spatial blocking factors
used by the generated kernels (paper §6.1: "we find suitable blocking sizes
of N < 67 which minimize main memory traffic" → 60³ blocks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ir.kernel import Kernel

__all__ = ["FieldTraffic", "TrafficAnalysis", "analyze_traffic", "blocking_factor"]

_DOUBLE = 8


@dataclass
class FieldTraffic:
    """Access geometry of one field within a kernel sweep."""

    name: str
    components: int          # doubles per cell (product of index extents)
    n_accesses: int          # distinct relative accesses (per component set)
    n_rows: int              # distinct (outer..., middle) offset rows
    n_planes: int            # distinct outermost offsets
    is_store: bool


@dataclass
class TrafficAnalysis:
    """Bytes per LUP flowing between adjacent memory levels."""

    fields: list[FieldTraffic]
    store_bytes: float
    #: load bytes per LUP when the {plane, row, none} condition holds
    load_bytes_plane: float
    load_bytes_row: float
    load_bytes_none: float
    #: working sets that must fit for the conditions to hold (bytes)
    plane_ws: float
    row_ws: float

    def load_bytes(self, cache_bytes: float) -> float:
        """Load traffic per LUP from below the given cache level."""
        if cache_bytes >= self.plane_ws:
            return self.load_bytes_plane
        if cache_bytes >= self.row_ws:
            return self.load_bytes_row
        return self.load_bytes_none

    def total_bytes(self, cache_bytes: float, write_allocate: bool = True) -> float:
        stores = self.store_bytes * (2.0 if write_allocate else 1.0)
        return self.load_bytes(cache_bytes) + stores


def analyze_traffic(kernel: Kernel, block_shape: tuple[int, ...]) -> TrafficAnalysis:
    """Layer-condition traffic analysis for *kernel* on a given block shape.

    ``block_shape`` is the per-core iteration space in loop order
    (outermost first).  Only the inner two dimensions enter the working
    sets: the plane condition requires all accessed planes of every field,
    the row condition all accessed rows.
    """
    dim = kernel.dim
    order = kernel.loop_order

    reads = kernel.ac.field_reads
    writes = kernel.ac.field_writes

    per_field: dict[str, dict] = {}
    for acc in reads:
        info = per_field.setdefault(
            acc.field.name,
            {"field": acc.field, "offsets": set(), "store": False},
        )
        # project onto loop-order axes: (outer, middle, inner)
        ordered = tuple(int(acc.offsets[a]) for a in order)
        info["offsets"].add(ordered)
    for acc in writes:
        info = per_field.setdefault(
            acc.field.name,
            {"field": acc.field, "offsets": set(), "store": True},
        )
        info["store"] = True

    fields: list[FieldTraffic] = []
    for name, info in sorted(per_field.items()):
        f = info["field"]
        comps = int(np.prod(f.index_shape)) if f.index_shape else 1
        offs = info["offsets"] or {(0,) * dim}
        rows = {o[:-1] for o in offs}
        planes = {o[0] for o in offs} if dim >= 2 else {0}
        fields.append(
            FieldTraffic(
                name=name,
                components=comps,
                n_accesses=len(offs),
                n_rows=len(rows),
                n_planes=len(planes),
                is_store=info["store"],
            )
        )

    # sizes along the loop-order axes
    if dim == 3:
        row_len = block_shape[2]
        plane_size = block_shape[1] * block_shape[2]
    elif dim == 2:
        row_len = block_shape[1]
        plane_size = block_shape[1]
    else:
        row_len = plane_size = 1

    load_plane = load_row = load_none = 0.0
    store_bytes = 0.0
    plane_ws = row_ws = 0.0
    for ft in fields:
        cell = ft.components * _DOUBLE
        if ft.is_store:
            store_bytes += cell
        if ft.n_accesses == 0:
            continue
        load_plane += cell                      # one stream: leading plane
        load_row += ft.n_planes * cell          # one stream per plane
        load_none += ft.n_rows * cell           # one stream per row
        plane_ws += ft.n_planes * plane_size * cell
        row_ws += ft.n_rows * row_len * cell

    return TrafficAnalysis(
        fields=fields,
        store_bytes=store_bytes,
        load_bytes_plane=load_plane,
        load_bytes_row=load_row,
        load_bytes_none=load_none,
        plane_ws=plane_ws,
        row_ws=row_ws,
    )


def blocking_factor(kernel: Kernel, cache_bytes: float, dim: int | None = None) -> int:
    """Largest cubic block edge N whose plane condition fits into the cache.

    Reproduces §6.1: the per-LUP cache demand of the 3D layer condition is
    ``c · N²`` bytes for an N×N inner block; the suitable blocking size is
    the largest N with ``c · N² ≤ cache``.
    """
    dim = dim or kernel.dim
    probe = analyze_traffic(kernel, (4,) * dim)
    # plane working set scales with plane size (N² in 3D, N in 2D)
    if dim == 3:
        unit = probe.plane_ws / 16.0  # coefficient of N²
        return int(np.sqrt(cache_bytes / unit))
    unit = probe.plane_ws / 4.0
    return int(cache_bytes / unit)
