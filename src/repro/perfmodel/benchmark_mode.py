"""Compiled benchmark executables and measurement-driven feedback (§3.6).

"In addition to this analytic performance model, we can also compile a
benchmark executable and perform measurements of actual performance
characteristics ... Performance modeling and benchmark results are then fed
back as input for further optimization."

:func:`measure_kernel` wraps a generated C kernel in a standalone timing
harness (the likwid-bench role), compiles and runs it, and reports MLUP/s
and cycles per lattice-site update.  :func:`repro.perfmodel.selection`
combines these measurements with the ECM model to choose kernel variants.
"""

from __future__ import annotations

import subprocess
from dataclasses import dataclass

import numpy as np

from ..backends.c_backend import generate_c_source
from ..ir.kernel import Kernel

__all__ = ["MeasuredPerformance", "measure_kernel", "generate_benchmark_source"]


@dataclass(frozen=True)
class MeasuredPerformance:
    """Result of running a compiled kernel benchmark."""

    kernel_name: str
    interior_shape: tuple[int, ...]
    iterations: int
    seconds_per_sweep: float
    mlups: float

    def cycles_per_lup(self, clock_ghz: float) -> float:
        return self.seconds_per_sweep * clock_ghz * 1e9 / np.prod(self.interior_shape)


_BENCH_MAIN = r"""
#include <stdio.h>
#include <stdlib.h>
#include <time.h>

static double now_seconds(void) {
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (double)ts.tv_sec + 1e-9 * (double)ts.tv_nsec;
}

int main(void) {
    const int64_t gl = %(gl)d;
%(size_defs)s
%(alloc_and_init)s
    /* warm-up sweep */
%(kernel_call)s
    const int iterations = %(iterations)d;
    double best = 1e300;
    for (int rep = 0; rep < %(repeats)d; ++rep) {
        double t0 = now_seconds();
        for (int it = 0; it < iterations; ++it) {
%(kernel_call)s
        }
        double dt = (now_seconds() - t0) / iterations;
        if (dt < best) best = dt;
    }
    /* checksum defeats dead-code elimination */
    double checksum = 0.0;
%(checksum)s
    printf("seconds_per_sweep=%%.9e checksum=%%.6e\n", best, checksum);
    return 0;
}
"""


def generate_benchmark_source(
    kernel: Kernel,
    interior_shape: tuple[int, ...],
    iterations: int = 5,
    repeats: int = 3,
) -> str:
    """Standalone C program that times sweeps of *kernel* on random data."""
    dim = kernel.dim
    if len(interior_shape) != dim:
        raise ValueError(f"shape must have {dim} entries")
    gl = max(kernel.ghost_layers, 1)

    src = generate_c_source(kernel, func_name=f"kernel_{kernel.name}")

    size_defs = "\n".join(
        f"    const int64_t n{d} = {int(interior_shape[d])};" for d in range(dim)
    )
    alloc_lines = []
    checksum_lines = []
    for f in kernel.fields:
        comps = int(np.prod(f.index_shape)) if f.index_shape else 1
        total = " * ".join([f"(n{d} + 2*gl)" for d in range(dim)] + [str(comps)])
        alloc_lines.append(
            f"    double *f_{f.name} = (double*)malloc(sizeof(double) * ({total}));"
        )
        alloc_lines.append(
            f"    for (int64_t i = 0; i < ({total}); ++i) "
            f"f_{f.name}[i] = 0.25 + 0.5 * ((double)((1103515245 * (i + {hash(f.name) % 97}) + 12345) & 0xffff) / 65536.0);"
        )
        checksum_lines.append(
            f"    for (int64_t i = 0; i < ({total}); i += 97) checksum += f_{f.name}[i];"
        )

    call_args = [f"f_{f.name}" for f in kernel.fields]
    call_args += [f"n{d}" for d in range(dim)]
    call_args.append("gl")
    call_args += ["0"] * dim                       # offsets
    call_args += ["0.0"] * dim                     # origins
    for d in range(dim):
        folded = kernel.folded_value(f"dx_{d}")
        call_args.append(repr(float(folded)) if folded is not None else "1.0")
    for p in kernel.parameters:
        if p.name in ("time_step", "seed"):
            continue
        call_args.append("0.0" if p.name == "t" else "1.0")
    call_args += ["0", "0"]                        # time_step, seed
    kernel_call = (
        f"            kernel_{kernel.name}({', '.join(call_args)});"
    )

    main = _BENCH_MAIN % {
        "gl": gl,
        "size_defs": size_defs,
        "alloc_and_init": "\n".join(alloc_lines),
        "kernel_call": kernel_call,
        "iterations": iterations,
        "repeats": repeats,
        "checksum": "\n".join(checksum_lines),
    }
    return src + "\n" + main


def measure_kernel(
    kernel: Kernel,
    interior_shape: tuple[int, ...],
    iterations: int = 5,
    repeats: int = 3,
    timeout: float = 120.0,
) -> MeasuredPerformance:
    """Compile and run the benchmark harness; parse the measured sweep time."""
    import hashlib
    import os
    import tempfile
    from pathlib import Path

    from ..profiling.diskcache import KernelDiskCache, cache_key

    source = generate_benchmark_source(kernel, interior_shape, iterations, repeats)
    bench_flags = ("-O3", "-march=native", "-std=c99", "-lm")
    digest = hashlib.sha256(source.encode()).hexdigest()
    key = cache_key(digest, flags=bench_flags, backend="c-bench")
    cache = KernelDiskCache()

    def build(tmp_path: Path) -> None:
        with tempfile.TemporaryDirectory() as td:
            c_path = Path(td) / f"bench_{kernel.name}.c"
            c_path.write_text(source)
            cc = os.environ.get("CC", "cc")
            base = [cc, "-O3", "-march=native", "-std=c99"]
            last = None
            for flags in ([*base, "-fopenmp"], base):
                try:
                    subprocess.run(
                        [*flags, "-o", str(tmp_path), str(c_path), "-lm"],
                        check=True,
                        capture_output=True,
                    )
                    return
                except subprocess.CalledProcessError as err:
                    tmp_path.unlink(missing_ok=True)
                    last = err
            raise RuntimeError(
                f"benchmark compilation failed:\n{last.stderr.decode(errors='replace')}"
            )

    exe, _hit = cache.get_or_build(
        key,
        build,
        source=source,
        meta={"kernel": kernel.name, "flags": list(bench_flags), "artifact": "bench"},
        artifact="bench",
    )
    out = subprocess.run(
        [str(exe)], capture_output=True, text=True, timeout=timeout, check=True
    ).stdout
    seconds = float(out.split("seconds_per_sweep=")[1].split()[0])
    cells = int(np.prod(interior_shape))
    return MeasuredPerformance(
        kernel_name=kernel.name,
        interior_shape=tuple(interior_shape),
        iterations=iterations,
        seconds_per_sweep=seconds,
        mlups=cells / seconds / 1e6,
    )
