"""Classic roofline model — a coarser companion to the ECM model.

Used for sanity checks and for the GPU utilization discussion (§6.2): a
kernel's attainable performance is bounded by compute peak and by memory
bandwidth × arithmetic intensity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.kernel import Kernel
from .layer_condition import analyze_traffic
from .machine import MachineModel

__all__ = ["RooflinePoint", "roofline"]


@dataclass
class RooflinePoint:
    """Roofline placement of one kernel."""

    kernel_name: str
    intensity_flop_per_byte: float
    peak_mflops: float          # socket compute peak (normalized units)
    bandwidth_gbs: float
    attainable_mflops: float
    bound: str                  # "compute" | "memory"

    def attainable_mlups(self, flops_per_lup: float) -> float:
        return self.attainable_mflops / flops_per_lup


def roofline(
    kernel: Kernel,
    machine: MachineModel,
    block_shape: tuple[int, ...],
    cores: int | None = None,
) -> RooflinePoint:
    """Place *kernel* on the socket-level roofline of *machine*."""
    cores = cores or machine.cores_per_socket
    oc = kernel.operation_count()
    flops = oc.normalized_flops()
    traffic = analyze_traffic(kernel, block_shape)
    llc = machine.cache_levels[-1]
    bytes_per_lup = traffic.total_bytes(llc.size_bytes)
    intensity = flops / bytes_per_lup if bytes_per_lup else float("inf")

    peak = (
        machine.flop_throughput_per_cycle * machine.clock_ghz * 1e3 * cores
    )  # MFLOP (normalized)/s
    bw = machine.mem_bandwidth_gbs
    mem_bound = bw * 1e3 * intensity  # MFLOP/s equivalent
    attainable = min(peak, mem_bound)
    return RooflinePoint(
        kernel_name=kernel.name,
        intensity_flop_per_byte=intensity,
        peak_mflops=peak,
        bandwidth_gbs=bw,
        attainable_mflops=attainable,
        bound="compute" if peak <= mem_bound else "memory",
    )
