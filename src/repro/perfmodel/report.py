"""Combined per-kernel performance report (the Kerncraft front-end role).

One call aggregates every §3.6 analysis for a kernel on a machine: operation
counts, layer-condition traffic, the ECM decomposition and scaling, the
roofline placement, the blocking recommendation and — for GPU targets — the
register/occupancy picture.  This is the "performance rating of the
candidates" a human reads when deciding between kernel variants.
"""

from __future__ import annotations

from ..ir.kernel import Kernel
from .ecm import ECMModel
from .layer_condition import analyze_traffic, blocking_factor
from .machine import MachineModel, SKYLAKE_8174
from .roofline import roofline

__all__ = ["performance_report", "format_table", "report_header"]


def report_header(title: str, width: int = 72) -> list[str]:
    """Standard two-line report header (title + rule)."""
    return [title, "=" * width]


def format_table(headers: list[str], rows: list[tuple]) -> list[str]:
    """Render rows as an aligned text table (first column left, rest right).

    The shared table style of every human-readable report in this package:
    the per-kernel analyses of :func:`performance_report` and the runtime
    profiles of :mod:`repro.profiling` use the same formatter.
    """
    cells = [[str(h) for h in headers]] + [
        [c if isinstance(c, str) else f"{c:.3g}" if isinstance(c, float) else str(c)
         for c in row]
        for row in rows
    ]
    n_cols = max(len(r) for r in cells)
    widths = [max(len(r[i]) for r in cells if i < len(r)) for i in range(n_cols)]
    lines = []
    for k, row in enumerate(cells):
        padded = [
            row[i].ljust(widths[i]) if i == 0 else row[i].rjust(widths[i])
            for i in range(len(row))
        ]
        lines.append("  ".join(padded).rstrip())
        if k == 0:
            lines.append("-" * len(lines[0]))
    return lines


def performance_report(
    kernel: Kernel,
    machine: MachineModel = SKYLAKE_8174,
    block_shape: tuple[int, ...] | None = None,
    gpu: bool = False,
) -> str:
    """Render the full analysis of *kernel* as a human-readable report."""
    block_shape = block_shape or (60,) * kernel.dim
    lines: list[str] = []
    push = lines.append

    lines.extend(
        report_header(f"performance report: kernel '{kernel.name}' on {machine.name}")
    )

    oc = kernel.operation_count()
    push("operation counts (per cell, hoisted work amortized):")
    push(f"  adds {oc.adds}  muls {oc.muls}  divs {oc.divs}  sqrts {oc.sqrts} "
         f" rsqrts {oc.rsqrts}  blends {oc.blends}  rngs {oc.rngs}")
    push(f"  loads {oc.loads}  stores {oc.stores}")
    push(f"  normalized FLOPs: {oc.normalized_flops():.0f}")
    if kernel.hoisted:
        unhoisted = kernel.operation_count(include_hoisted=True).normalized_flops()
        push(f"  hoisted temporaries: {len(kernel.hoisted)} "
             f"(save {unhoisted - oc.normalized_flops():.0f} FLOPs/cell)")
    push("")

    traffic = analyze_traffic(kernel, block_shape)
    push(f"layer conditions on block {block_shape}:")
    push(f"  plane condition working set: {traffic.plane_ws / 1024:.1f} KiB "
         f"-> {traffic.load_bytes_plane:.0f} B/LUP loads")
    push(f"  row condition working set:   {traffic.row_ws / 1024:.1f} KiB "
         f"-> {traffic.load_bytes_row:.0f} B/LUP loads")
    push(f"  stores (incl. write-allocate): {2 * traffic.store_bytes:.0f} B/LUP")
    for lv in machine.cache_levels:
        push(f"  traffic below {lv.name} ({lv.size_bytes // 1024} KiB): "
             f"{traffic.total_bytes(lv.size_bytes):.0f} B/LUP")
    l2 = machine.cache_levels[1] if len(machine.cache_levels) > 1 else machine.cache_levels[0]
    push(f"  recommended blocking (fit {l2.name}): "
         f"N = {blocking_factor(kernel, l2.size_bytes)}")
    push("")

    ecm = ECMModel(machine).predict(kernel, block_shape, traffic=traffic)
    push("ECM model (cycles per cache line of results):")
    push(f"  {{T_comp ‖ T_cache + T_mem}} = "
         f"{{{ecm.t_comp:.1f} ‖ {ecm.t_cache:.1f} + {ecm.t_mem:.1f}}}")
    push(f"  bound: {'compute' if ecm.is_compute_bound else 'memory'}; "
         f"memory saturation at {ecm.saturation_cores} cores")
    push(f"  single core: {ecm.mlups_single_core():.1f} MLUP/s; "
         f"full socket ({machine.cores_per_socket} cores): "
         f"{ecm.mlups(machine.cores_per_socket):.1f} MLUP/s")
    push("")

    rf = roofline(kernel, machine, block_shape)
    push("roofline:")
    push(f"  arithmetic intensity: {rf.intensity_flop_per_byte:.2f} FLOP/B "
         f"({rf.bound}-bound)")
    push(f"  attainable: {rf.attainable_mflops / 1e3:.1f} of "
         f"{rf.peak_mflops / 1e3:.1f} GFLOP/s (normalized units)")

    if gpu:
        from ..gpu import TransformationSequence, apply_sequence

        push("")
        push("GPU (Tesla P100, after dupl+sched+fence transformations):")
        tuned = apply_sequence(
            kernel,
            TransformationSequence(
                use_remat=True, use_scheduling=True, fence_interval=32
            ),
        )
        push(f"  registers: {tuned.registers.allocated_registers} allocated "
             f"({tuned.registers.spilled_registers} spilled), "
             f"occupancy {tuned.model.occupancy:.2f}")
        push(f"  modeled rate: {tuned.model.mlups():.0f} MLUP/s")
    return "\n".join(lines)
