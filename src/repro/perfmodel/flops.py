"""Operation counting on the optimized stencil representation (Table 1).

FLOPs are counted by traversing the fully optimized assignment collection,
after constant folding and CSE, exactly as described in §3.6 ("floating
point operations are counted by traversing the fully optimized intermediate
representation").  The *normalized FLOP* metric weights each operation class
by its inverse throughput on the target microarchitecture; the paper's
Skylake weights are::

    add = 1, mul = 1, div = 16, sqrt(approx) = 10, rsqrt(approx) = 2

so that ``normalized = adds + muls + 16·divs + 10·sqrts + 2·rsqrts``
(this formula reproduces the last row of Table 1 from the rows above it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import sympy as sp

from ..ir.approximations import fast_division, fast_rsqrt, fast_sqrt
from ..symbolic.assignment import AssignmentCollection
from ..symbolic.field import FieldAccess
from ..symbolic.random import RandomValue

__all__ = ["OperationCount", "count_operations", "SKYLAKE_WEIGHTS"]

#: Normalization weights used throughout the paper (Skylake throughput).
SKYLAKE_WEIGHTS: Mapping[str, float] = {
    "adds": 1.0,
    "muls": 1.0,
    "divs": 16.0,
    "sqrts": 10.0,
    "rsqrts": 2.0,
    "fast_divs": 4.0,
    "fast_sqrts": 4.0,
    "fast_rsqrts": 1.0,
    "funcs": 20.0,
    "rngs": 12.0,
    "blends": 1.0,
}


@dataclass
class OperationCount:
    """Per-cell operation and memory-access counts of a kernel."""

    adds: int = 0
    muls: int = 0
    divs: int = 0
    sqrts: int = 0
    rsqrts: int = 0
    fast_divs: int = 0
    fast_sqrts: int = 0
    fast_rsqrts: int = 0
    funcs: int = 0
    rngs: int = 0
    blends: int = 0
    loads: int = 0
    stores: int = 0

    _OP_FIELDS = (
        "adds",
        "muls",
        "divs",
        "sqrts",
        "rsqrts",
        "fast_divs",
        "fast_sqrts",
        "fast_rsqrts",
        "funcs",
        "rngs",
        "blends",
    )

    def normalized_flops(self, weights: Mapping[str, float] = SKYLAKE_WEIGHTS) -> float:
        """Weighted sum over all operation classes (paper's "norm. FLOPS")."""
        return sum(getattr(self, f) * weights.get(f, 1.0) for f in self._OP_FIELDS)

    @property
    def total_flops(self) -> int:
        return sum(getattr(self, f) for f in self._OP_FIELDS)

    @property
    def bytes_per_cell(self) -> int:
        """Double-precision traffic assuming no cache reuse (upper bound)."""
        return 8 * (self.loads + self.stores)

    def __add__(self, other: "OperationCount") -> "OperationCount":
        kwargs = {
            f: getattr(self, f) + getattr(other, f)
            for f in self._OP_FIELDS + ("loads", "stores")
        }
        return OperationCount(**kwargs)

    def as_dict(self) -> dict:
        return {f: getattr(self, f) for f in self._OP_FIELDS + ("loads", "stores")}

    def __str__(self):
        parts = [f"{k}={v}" for k, v in self.as_dict().items() if v]
        return f"OperationCount({', '.join(parts)}, norm={self.normalized_flops():.0f})"


def _pow_mul_count(n: int) -> int:
    """Multiplications for x**n via binary exponentiation (n >= 1)."""
    if n <= 1:
        return 0
    count = 0
    highest = n.bit_length() - 1
    count += highest  # squarings
    count += bin(n).count("1") - 1  # combines
    return count


class _Counter:
    def __init__(self):
        self.c = OperationCount()

    def visit(self, expr: sp.Expr) -> None:
        if isinstance(expr, (FieldAccess, sp.Symbol)) or expr.is_Number:
            return
        if isinstance(expr, RandomValue):
            self.c.rngs += 1
            # low/high are usually constants; count their math if not
            for a in expr.args[:2]:
                self.visit(a)
            return
        if isinstance(expr, fast_division):
            self.c.fast_divs += 1
            for a in expr.args:
                self.visit(a)
            return
        if isinstance(expr, fast_sqrt):
            self.c.fast_sqrts += 1
            self.visit(expr.args[0])
            return
        if isinstance(expr, fast_rsqrt):
            self.c.fast_rsqrts += 1
            self.visit(expr.args[0])
            return
        if isinstance(expr, sp.Add):
            self.c.adds += len(expr.args) - 1
            for a in expr.args:
                self.visit(a)
            return
        if isinstance(expr, sp.Mul):
            self._visit_mul(expr)
            return
        if isinstance(expr, sp.Pow):
            self._visit_pow(expr, in_mul=False)
            return
        if isinstance(expr, sp.Piecewise):
            # vectorized blend: evaluate all branches + one blend per pair
            for val, cond in expr.args:
                self.visit(val)
                if cond not in (True, False):
                    self.visit(cond)
            self.c.blends += max(len(expr.args) - 1, 1)
            return
        if isinstance(expr, (sp.StrictGreaterThan, sp.StrictLessThan, sp.GreaterThan,
                             sp.LessThan, sp.Equality, sp.Unequality)):
            self.c.blends += 1
            for a in expr.args:
                self.visit(a)
            return
        if isinstance(expr, sp.Function):
            self.c.funcs += 1
            for a in expr.args:
                self.visit(a)
            return
        for a in expr.args:
            self.visit(a)

    def _visit_mul(self, expr: sp.Mul) -> None:
        numerator_factors = 0
        denominator_factors = 0
        for f in expr.args:
            if f is sp.S.NegativeOne:
                continue  # sign flip is free
            if isinstance(f, sp.Pow) and f.args[1].is_number and f.args[1].is_negative:
                expo = -f.args[1]
                if expo == sp.Rational(1, 2):
                    self.c.rsqrts += 1
                    self.visit(f.args[0])
                    numerator_factors += 1  # rsqrt result multiplies in
                    continue
                denominator_factors += 1
                self._visit_pow_parts(f.args[0], expo, in_mul=True)
                continue
            if f.is_Rational and not f.is_Integer:
                numerator_factors += 1
                denominator_factors += 1  # rational constant: one constant div
                continue
            numerator_factors += 1
            self.visit(f)
        if denominator_factors:
            self.c.divs += 1
            self.c.muls += max(denominator_factors - 1, 0)
        self.c.muls += max(numerator_factors - 1, 0)

    def _visit_pow(self, expr: sp.Pow, in_mul: bool) -> None:
        base, expo = expr.args
        self._visit_pow_parts(base, expo, in_mul)

    def _visit_pow_parts(self, base: sp.Expr, expo: sp.Expr, in_mul: bool) -> None:
        if expo.is_Integer:
            n = int(expo)
            if n < 0:
                if not in_mul:
                    self.c.divs += 1
                n = -n
            self.c.muls += _pow_mul_count(n)
            self.visit(base)
            return
        if expo == sp.Rational(1, 2):
            self.c.sqrts += 1
            self.visit(base)
            return
        if expo == sp.Rational(-1, 2):
            self.c.rsqrts += 1
            self.visit(base)
            return
        if expo.is_Rational and expo.q == 2:
            self.c.sqrts += 1
            n = abs(int(expo.p))
            self.c.muls += _pow_mul_count(n)
            if expo.is_negative and not in_mul:
                self.c.divs += 1
            self.visit(base)
            return
        # generic pow -> exp/log
        self.c.funcs += 1
        self.visit(base)
        self.visit(expo)


def count_operations(
    ac: AssignmentCollection,
    skip_symbols: Iterable[sp.Symbol] = (),
) -> OperationCount:
    """Count per-cell operations and memory accesses of a kernel.

    ``skip_symbols`` names temporaries that are hoisted out of the inner
    loops (loop-invariant code motion, §3.4); their defining assignments are
    amortized over a whole line of cells and therefore excluded from the
    per-cell count — this is how the pipeline automatically "exploits the
    special functional form of the temperature".
    """
    skip = set(skip_symbols)
    counter = _Counter()
    for a in ac.all_assignments:
        if a.lhs in skip:
            continue
        counter.visit(a.rhs)
    counter.c.loads = len(ac.field_reads)
    counter.c.stores = len(ac.field_writes)
    return counter.c
