"""Automatic kernel-variant selection (the paper's §3.6 feedback loop).

"The major challenge in code generation and performance optimizing
transformations is identifying and selecting the fastest variant.  We use
Kerncraft's automated performance modeling capability to provide a
performance rating of the candidates."

:func:`select_variants` builds all {full, split} × {φ, µ} kernel variants
of a model, rates each candidate — with the ECM model at the target core
count, with compiled single-core measurements, or a blend — and returns the
winning :class:`~repro.pfm.model.PhaseFieldKernelSet` (e.g. φ-full +
µ-split for P1 at full socket, the combination used for the paper's
production runs).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..pfm.model import GrandPotentialModel, PhaseFieldKernelSet
from .ecm import ECMModel
from .machine import MachineModel, SKYLAKE_8174

__all__ = ["VariantRating", "SelectionReport", "select_variants"]


@dataclass
class VariantRating:
    """Rating of one kernel variant for one equation family."""

    field: str                # "phi" | "mu"
    variant: str              # "full" | "split"
    modeled_mlups: float | None
    measured_mlups: float | None

    def score(self) -> float:
        """Higher is better; prefers measurements when available."""
        if self.measured_mlups is not None and self.modeled_mlups is not None:
            return (self.measured_mlups * self.modeled_mlups) ** 0.5
        return self.measured_mlups or self.modeled_mlups or 0.0


@dataclass
class SelectionReport:
    """Outcome of the variant selection."""

    ratings: list[VariantRating]
    chosen_phi: str
    chosen_mu: str
    kernel_set: PhaseFieldKernelSet

    def summary(self) -> str:
        lines = ["variant selection:"]
        for r in self.ratings:
            parts = []
            if r.modeled_mlups is not None:
                parts.append(f"model {r.modeled_mlups:8.2f} MLUP/s")
            if r.measured_mlups is not None:
                parts.append(f"measured {r.measured_mlups:8.2f} MLUP/s")
            lines.append(f"  {r.field}-{r.variant:5s}: {', '.join(parts)}")
        lines.append(f"  -> φ-{self.chosen_phi} + µ-{self.chosen_mu}")
        return "\n".join(lines)


def _combined_mlups(predictions, cores: int) -> float:
    return 1.0 / sum(1.0 / p.mlups(cores) for p in predictions)


def select_variants(
    model: GrandPotentialModel,
    machine: MachineModel = SKYLAKE_8174,
    block_shape: tuple[int, ...] = (60, 60, 60),
    cores: int | None = None,
    mode: str = "model",
    measure_shape: tuple[int, ...] | None = None,
) -> SelectionReport:
    """Rate all kernel variants and assemble the fastest combination.

    Parameters
    ----------
    mode:
        ``"model"`` — ECM rating at the target core count (fast, no
        compiler needed); ``"measure"`` — compiled single-core benchmark
        runs; ``"both"`` — geometric mean of the two ratings.
    """
    if mode not in ("model", "measure", "both"):
        raise ValueError("mode must be 'model', 'measure' or 'both'")
    cores = cores or machine.cores_per_socket
    dim = model.params.dim
    measure_shape = measure_shape or tuple(min(s, 40) for s in block_shape)[:dim]
    block_shape = tuple(block_shape)[:dim]

    sets = {
        ("full", "full"): model.create_kernels("full", "full"),
        ("split", "split"): model.create_kernels("split", "split"),
    }
    candidates = {
        ("phi", "full"): sets[("full", "full")].phi_kernels,
        ("phi", "split"): sets[("split", "split")].phi_kernels,
        ("mu", "full"): sets[("full", "full")].mu_kernels,
        ("mu", "split"): sets[("split", "split")].mu_kernels,
    }

    ecm = ECMModel(machine)
    ratings: list[VariantRating] = []
    for (field, variant), kernels in candidates.items():
        modeled = measured = None
        if mode in ("model", "both"):
            preds = [ecm.predict(k, block_shape) for k in kernels]
            modeled = _combined_mlups(preds, cores)
        if mode in ("measure", "both"):
            from .benchmark_mode import measure_kernel

            rates = [measure_kernel(k, measure_shape).mlups for k in kernels]
            measured = 1.0 / sum(1.0 / r for r in rates)
        ratings.append(
            VariantRating(field=field, variant=variant,
                          modeled_mlups=modeled, measured_mlups=measured)
        )

    def best(field: str) -> str:
        field_ratings = [r for r in ratings if r.field == field]
        return max(field_ratings, key=lambda r: r.score()).variant

    chosen_phi, chosen_mu = best("phi"), best("mu")
    base = sets[("full", "full")]
    kernel_set = PhaseFieldKernelSet(
        model=model,
        phi_kernels=candidates[("phi", chosen_phi)],
        projection_kernel=base.projection_kernel,
        mu_kernels=candidates[("mu", chosen_mu)],
        variant_phi=chosen_phi,
        variant_mu=chosen_mu,
    )
    return SelectionReport(
        ratings=ratings,
        chosen_phi=chosen_phi,
        chosen_mu=chosen_mu,
        kernel_set=kernel_set,
    )
