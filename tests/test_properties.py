"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
import sympy as sp
from hypothesis import given, settings, strategies as st

from repro.gpu.liveness import max_live
from repro.gpu.scheduling import dfs_schedule, schedule_for_registers
from repro.parallel.blockforest import BlockForest, morton_key
from repro.symbolic import Assignment, AssignmentCollection, Diff, Field, FieldAccess
from repro.discretization import FiniteDifferenceDiscretization


# ---------------------------------------------------------------------------
# discretization exactness on polynomials


class TestStencilExactness:
    """Second-order central stencils are *exact* on quadratic polynomials."""

    @settings(max_examples=30, deadline=None)
    @given(
        a=st.floats(-3, 3),
        b=st.floats(-3, 3),
        c=st.floats(-3, 3),
        h=st.floats(0.05, 2.0),
    )
    def test_first_derivative_exact_on_quadratics(self, a, b, c, h):
        f = Field("poly", 1)
        disc = FiniteDifferenceDiscretization(dim=1)
        stencil = disc(Diff(f.center(), 0))
        x0 = 0.7
        poly = lambda x: a * x**2 + b * x + c
        subs = {
            acc: poly(x0 + float(acc.offsets[0]) * h)
            for acc in stencil.atoms(FieldAccess)
        }
        from repro.symbolic import spacing

        subs[spacing(0)] = h
        value = float(stencil.xreplace(subs))
        exact = 2 * a * x0 + b
        assert value == pytest.approx(exact, rel=1e-9, abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(
        a=st.floats(-3, 3),
        b=st.floats(-3, 3),
        h=st.floats(0.05, 1.0),
    )
    def test_laplacian_exact_on_quadratics(self, a, b, h):
        from repro.symbolic import div, grad, spacing

        f = Field("poly2", 1)
        disc = FiniteDifferenceDiscretization(dim=1)
        stencil = disc(div(grad(f.center())))
        poly = lambda x: a * x**2 + b * x
        subs = {
            acc: poly(float(acc.offsets[0]) * h)
            for acc in stencil.atoms(FieldAccess)
        }
        subs[spacing(0)] = h
        assert float(stencil.xreplace(subs)) == pytest.approx(2 * a, rel=1e-9, abs=1e-8)


# ---------------------------------------------------------------------------
# projection invariants


class TestProjectionProperties:
    @pytest.fixture(scope="class")
    def projector(self):
        from repro.backends import compile_numpy_kernel
        from repro.ir import create_kernel
        from repro.pfm import GrandPotentialModel, make_two_phase_binary

        model = GrandPotentialModel(make_two_phase_binary(dim=2))
        return compile_numpy_kernel(create_kernel(model.projection_collection()))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16), scale=st.floats(0.1, 3.0))
    def test_projection_idempotent(self, projector, seed, scale):
        from repro.backends import create_arrays

        rng = np.random.default_rng(seed)
        arrays = create_arrays(projector.kernel.fields, (5, 5), 1)
        arrays["phi_dst"][...] = rng.normal(0.5, scale, arrays["phi_dst"].shape)
        projector(arrays, ghost_layers=1)
        once = arrays["phi_dst"].copy()
        projector(arrays, ghost_layers=1)
        np.testing.assert_allclose(arrays["phi_dst"], once, atol=1e-15)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_projection_fixes_simplex(self, projector, seed):
        from repro.backends import create_arrays

        rng = np.random.default_rng(seed)
        arrays = create_arrays(projector.kernel.fields, (5, 5), 1)
        arrays["phi_dst"][...] = rng.uniform(-0.5, 1.5, arrays["phi_dst"].shape)
        projector(arrays, ghost_layers=1)
        interior = arrays["phi_dst"][1:-1, 1:-1]
        assert np.all(interior >= 0) and np.all(interior <= 1 + 1e-12)
        sums = interior.sum(axis=-1)
        ok = np.isclose(sums, 1.0, atol=1e-9) | np.isclose(sums, 0.0, atol=1e-12)
        assert ok.all()


# ---------------------------------------------------------------------------
# scheduling validity on random DAGs


@st.composite
def random_dag_program(draw):
    """Random SSA program: temporaries with random earlier-temp operands."""
    f = Field("dagf", 2)
    g = Field("dagg", 2)
    n = draw(st.integers(2, 14))
    temps = []
    subs = []
    for i in range(n):
        operands = [f[i % 3 - 1, 0]()]
        if temps:
            k = draw(st.integers(0, min(3, len(temps))))
            idx = draw(
                st.lists(
                    st.integers(0, len(temps) - 1), min_size=k, max_size=k, unique=True
                )
            )
            operands += [temps[j] for j in idx]
        sym = sp.Symbol(f"dag_t{i}")
        subs.append(Assignment(sym, sp.Add(*operands) + i))
        temps.append(sym)
    use = draw(
        st.lists(st.integers(0, n - 1), min_size=1, max_size=min(4, n), unique=True)
    )
    main = [Assignment(g.center(), sp.Add(*[temps[j] for j in use]))]
    return AssignmentCollection(main, subs).prune_dead_subexpressions()


class TestSchedulingProperties:
    @settings(max_examples=40, deadline=None)
    @given(prog=random_dag_program(), beam=st.sampled_from([1, 2, 4]))
    def test_schedule_is_valid_permutation(self, prog, beam):
        order = prog.all_assignments
        result = schedule_for_registers(order, beam_width=beam)
        assert sorted(str(a.lhs) for a in result.order) == sorted(
            str(a.lhs) for a in order
        )
        seen = set()
        temps = {a.lhs for a in order if not a.is_field_store}
        for a in result.order:
            for s in a.rhs.free_symbols:
                if s in temps:
                    assert s in seen, "dependency violated"
            seen.add(a.lhs)

    @settings(max_examples=40, deadline=None)
    @given(prog=random_dag_program())
    def test_schedule_never_worse_than_input(self, prog):
        order = prog.all_assignments
        result = schedule_for_registers(order, beam_width=4)
        assert result.max_live <= max_live(order)

    @settings(max_examples=30, deadline=None)
    @given(prog=random_dag_program())
    def test_dfs_schedule_complete(self, prog):
        order = prog.all_assignments
        out = dfs_schedule(order)
        assert len(out) == len(order)


# ---------------------------------------------------------------------------
# Morton curve / block forest properties


class TestMortonProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        coords=st.tuples(st.integers(0, 1023), st.integers(0, 1023), st.integers(0, 1023))
    )
    def test_morton_injective_roundtrip(self, coords):
        key = morton_key(coords)
        # decode by de-interleaving
        decoded = [0, 0, 0]
        for bit in range(21):
            for d in range(3):
                decoded[d] |= ((key >> (bit * 3 + d)) & 1) << bit
        assert tuple(decoded) == coords

    @settings(max_examples=25, deadline=None)
    @given(
        nb=st.tuples(st.integers(1, 6), st.integers(1, 6)),
        ranks=st.integers(1, 8),
    )
    def test_distribution_partitions_blocks(self, nb, ranks):
        forest = BlockForest(
            tuple(4 * b for b in nb), (4, 4), periodic=True
        )
        if ranks > forest.n_blocks:
            with pytest.raises(ValueError):
                forest.distribute(ranks)
            return
        dist = forest.distribute(ranks)
        blocks = [c for v in dist.values() for c in v]
        assert sorted(blocks) == sorted(forest.all_block_coords())
        sizes = [len(v) for v in dist.values()]
        assert max(sizes) - min(sizes) <= 1
