"""Simplification passes: constant folding, CSE, with property-based checks."""

import numpy as np
import pytest
import sympy as sp
from hypothesis import given, settings, strategies as st

from repro.simplification import (
    count_nodes,
    global_cse,
    optimize,
    simplify_terms,
    substitute_parameters,
)
from repro.symbolic import Assignment, AssignmentCollection, Field


def _fields2():
    return Field("f", 2), Field("g", 2)


class TestSubstituteParameters:
    def test_by_symbol_and_name(self):
        f, g = _fields2()
        a, b = sp.symbols("a b")
        ac = AssignmentCollection([Assignment(g.center(), a * f.center() + b)])
        out = substitute_parameters(ac, {a: 2.0, "b": 3.0})
        (m,) = out.main_assignments
        assert m.rhs == 2 * f.center() + 3

    def test_zero_triggers_simplification(self):
        """An isotropy factor of 0/1 must remove whole terms automatically."""
        f, g = _fields2()
        delta = sp.Symbol("delta")
        ac = AssignmentCollection(
            [Assignment(g.center(), f.center() + delta * f.center() ** 4)]
        )
        out = substitute_parameters(ac, {delta: 0})
        assert out.main_assignments[0].rhs == f.center()

    def test_field_accesses_never_substituted(self):
        f, g = _fields2()
        ac = AssignmentCollection([Assignment(g.center(), f.center())])
        out = substitute_parameters(ac, {"f__C": 5.0})
        assert out.main_assignments[0].rhs == f.center()


class TestGlobalCSE:
    def test_shared_subexpression_extracted(self):
        f, g = _fields2()
        h = Field("h", 2)
        common = (f.center() + 1) ** 2
        ac = AssignmentCollection(
            [
                Assignment(g.center(), common * 2),
                Assignment(h.center(), common + 5),
            ]
        )
        out = global_cse(ac)
        assert len(out.subexpressions) >= 1
        out.validate()

    def test_idempotent(self):
        f, g = _fields2()
        ac = AssignmentCollection(
            [Assignment(g.center(), sp.sqrt(f.center() + 1) * (f.center() + 1))]
        )
        once = global_cse(ac)
        twice = global_cse(once)
        assert once.inline_subexpressions().main_assignments[0].rhs == \
               twice.inline_subexpressions().main_assignments[0].rhs


@st.composite
def random_exprs(draw):
    """Random expression over two field accesses and a parameter."""
    f, g = _fields2()
    atoms = [f.center(), f[1, 0](), sp.Symbol("p"), sp.Integer(2), sp.Rational(1, 3)]
    expr = draw(st.sampled_from(atoms))
    for _ in range(draw(st.integers(1, 6))):
        op = draw(st.sampled_from(["add", "mul", "pow", "sub"]))
        other = draw(st.sampled_from(atoms))
        if op == "add":
            expr = expr + other
        elif op == "sub":
            expr = expr - other
        elif op == "mul":
            expr = expr * other
        else:
            expr = expr ** draw(st.sampled_from([2, 3]))
    return expr


class TestSemanticPreservation:
    @settings(max_examples=60, deadline=None)
    @given(expr=random_exprs(), seed=st.integers(0, 2**16))
    def test_optimize_preserves_value(self, expr, seed):
        """The full pipeline must never change the numerical value."""
        f, g = _fields2()
        ac = AssignmentCollection([Assignment(g.center(), expr)])
        out = optimize(ac, parameter_values={"p": 1.7})
        rng = np.random.default_rng(seed)
        vals = {
            f.center(): rng.uniform(0.5, 2.0),
            f[1, 0](): rng.uniform(0.5, 2.0),
            sp.Symbol("p"): 1.7,
        }
        expected = float(expr.xreplace(vals))
        inlined = out.inline_subexpressions().main_assignments[0].rhs
        actual = float(inlined.xreplace(vals))
        assert actual == pytest.approx(expected, rel=1e-12, abs=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(expr=random_exprs())
    def test_simplify_never_grows_much(self, expr):
        f, g = _fields2()
        ac = AssignmentCollection([Assignment(g.center(), expr)])
        out = simplify_terms(ac)
        assert count_nodes(out.main_assignments[0].rhs) <= count_nodes(expr)


class TestAssignmentCollection:
    def test_topological_sort(self):
        f, g = _fields2()
        x, y = sp.symbols("x y")
        ac = AssignmentCollection(
            [Assignment(g.center(), y)],
            subexpressions=[Assignment(y, x + 1), Assignment(x, f.center())],
        )
        sorted_ac = ac.topological_sort()
        names = [a.lhs for a in sorted_ac.subexpressions]
        assert names == [x, y]
        sorted_ac.validate()

    def test_cycle_detected(self):
        f, g = _fields2()
        x, y = sp.symbols("x y")
        ac = AssignmentCollection(
            [Assignment(g.center(), y)],
            subexpressions=[Assignment(y, x), Assignment(x, y)],
        )
        with pytest.raises(ValueError, match="cyclic"):
            ac.topological_sort()

    def test_prune_dead(self):
        f, g = _fields2()
        x, dead = sp.symbols("x dead")
        ac = AssignmentCollection(
            [Assignment(g.center(), x)],
            subexpressions=[Assignment(x, f.center()), Assignment(dead, 42)],
        )
        out = ac.prune_dead_subexpressions()
        assert [a.lhs for a in out.subexpressions] == [x]

    def test_free_symbols_and_parameters(self):
        f, g = _fields2()
        p = sp.Symbol("p")
        x = sp.Symbol("x")
        ac = AssignmentCollection(
            [Assignment(g.center(), x * p)],
            subexpressions=[Assignment(x, f.center() + p)],
        )
        assert p in ac.parameters
        assert x not in ac.parameters
        assert f.center() in ac.field_reads

    def test_validate_rejects_double_assignment(self):
        f, g = _fields2()
        x = sp.Symbol("x")
        ac = AssignmentCollection(
            [Assignment(g.center(), x)],
            subexpressions=[Assignment(x, 1), Assignment(x, 2)],
        )
        with pytest.raises(ValueError, match="SSA"):
            ac.validate()

    def test_ghost_layer_requirement(self):
        f, g = _fields2()
        ac = AssignmentCollection([Assignment(g.center(), f[2, -1]() + f[0, 1]())])
        assert ac.ghost_layers_required() == 2
