"""Tests for the distributed-memory substrate: simulated MPI, block forest,
ghost exchange, and the distributed time loop vs. single-block reference."""

import numpy as np
import pytest

from repro.parallel.blockforest import BlockForest, morton_key
from repro.parallel.ghostlayer import communication_volume_bytes, exchange_field
from repro.parallel.mpi_sim import RankError, run_ranks
from repro.parallel.timeloop import DistributedSolver


class TestSimMPI:
    def test_send_recv(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send({"a": 7}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        results = run_ranks(2, prog)
        assert results[1] == {"a": 7}

    def test_numpy_value_semantics(self):
        def prog(comm):
            if comm.rank == 0:
                data = np.arange(10.0)
                comm.send(data, dest=1)
                data[:] = -1  # must not affect the receiver
                return None
            received = comm.recv(source=0)
            return received.sum()

        assert run_ranks(2, prog)[1] == pytest.approx(45.0)

    def test_isend_irecv(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend([1, 2, 3], dest=1, tag=5)
                req.wait()
                return None
            req = comm.irecv(source=0, tag=5)
            return req.wait()

        assert run_ranks(2, prog)[1] == [1, 2, 3]

    def test_bcast(self):
        def prog(comm):
            data = {"x": 1} if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        assert all(r == {"x": 1} for r in run_ranks(3, prog))

    def test_gather(self):
        def prog(comm):
            return comm.gather(comm.rank**2, root=0)

        results = run_ranks(4, prog)
        assert results[0] == [0, 1, 4, 9]
        assert results[1] is None

    def test_allreduce_sum_max(self):
        def prog(comm):
            return (comm.allreduce(comm.rank + 1, "sum"), comm.allreduce(comm.rank, "max"))

        for r in run_ranks(3, prog):
            assert r == (6, 2)

    def test_barrier(self):
        def prog(comm):
            comm.barrier()
            return comm.rank

        assert run_ranks(4, prog) == [0, 1, 2, 3]

    def test_rank_error_propagates(self):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.recv(source=1)  # would deadlock without failure detection

        with pytest.raises(RankError):
            run_ranks(2, prog)

    def test_tagged_channels_independent(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("late", dest=1, tag="b")
                comm.send("early", dest=1, tag="a")
                return None
            # receive in the opposite order of sending — tags keep them apart
            first = comm.recv(source=0, tag="a")
            second = comm.recv(source=0, tag="b")
            return (first, second)

        assert run_ranks(2, prog)[1] == ("early", "late")

    def test_irecv_test_returns_false_when_unmatched(self):
        """Regression: ``Request.test()`` used to call ``wait()`` — blocking
        up to the full receive deadline and never reporting "not done"."""
        from time import perf_counter

        def prog(comm):
            if comm.rank == 0:
                req = comm.irecv(source=1, tag=9)
                t0 = perf_counter()
                done, value = req.test()  # nothing sent yet
                probe_s = perf_counter() - t0
                comm.send("go", dest=1, tag=10)  # now release the sender
                final = req.wait()
                return done, value, probe_s, final
            comm.recv(source=0, tag=10)
            comm.send("answer", dest=0, tag=9)
            return None

        done, value, probe_s, final = run_ranks(2, prog, recv_timeout=5.0)[0]
        assert done is False
        assert value is None
        assert probe_s < 1.0  # a true poll, not a timed-out wait
        assert final == "answer"

    def test_irecv_test_completes_request(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(123, dest=1, tag=4)
                return None
            req = comm.irecv(source=0, tag=4)
            while True:
                done, value = req.test()
                if done:
                    # the request stays completed; wait() returns the value
                    assert req.test() == (True, value)
                    assert req.wait() == value
                    return value

        assert run_ranks(2, prog)[1] == 123

    def test_stuck_rank_raises_instead_of_none(self):
        """Regression: a rank thread alive past the join deadline was
        silently ignored and its ``None`` result returned as success."""
        import time

        def prog(comm):
            if comm.rank == 1:
                time.sleep(30)  # stuck outside any receive
            return comm.rank

        with pytest.raises(RankError, match=r"rank\(s\) 1"):
            run_ranks(2, prog, recv_timeout=5.0, join_timeout=0.5)


class TestBlockForest:
    def test_tiling_validated(self):
        with pytest.raises(ValueError, match="tile"):
            BlockForest((10, 10), (3, 5))

    def test_block_count(self):
        f = BlockForest((8, 8, 8), (4, 4, 2))
        assert f.n_blocks == 2 * 2 * 4

    def test_morton_keys_distinct_and_local(self):
        f = BlockForest((8, 8), (2, 2))
        order = f.morton_order()
        assert len(set(order)) == f.n_blocks
        # Z-curve property: the first four blocks form the lower-left quad
        assert set(order[:4]) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_morton_key_interleaving(self):
        assert morton_key((0, 0)) == 0
        assert morton_key((1, 0)) < morton_key((0, 2))

    def test_distribution_balanced(self):
        f = BlockForest((8, 8), (2, 2))  # 16 blocks
        dist = f.distribute(5)
        sizes = sorted(len(v) for v in dist.values())
        assert sizes == [3, 3, 3, 3, 4]
        all_blocks = [c for v in dist.values() for c in v]
        assert len(all_blocks) == 16 and len(set(all_blocks)) == 16

    def test_too_many_ranks_rejected(self):
        f = BlockForest((4, 4), (2, 2))
        with pytest.raises(ValueError, match="ranks"):
            f.distribute(9)

    def test_neighbor_periodic_wrap(self):
        f = BlockForest((8, 8), (2, 2), periodic=True)
        assert f.neighbor((0, 0), 0, -1) == (3, 0)
        assert f.neighbor((3, 0), 0, +1) == (0, 0)

    def test_neighbor_wall(self):
        f = BlockForest((8, 8), (2, 2), periodic=False)
        assert f.neighbor((0, 0), 0, -1) is None
        assert f.neighbor((0, 0), 0, +1) == (1, 0)

    def test_cell_offsets(self):
        f = BlockForest((8, 6), (4, 3))
        b = f.make_block((1, 1))
        assert b.cell_offset == (4, 3)


class TestGhostExchange:
    def _make_blocks(self, forest, gl, field="u"):
        blocks = {}
        rng = np.random.default_rng(0)
        for coords in forest.all_block_coords():
            b = forest.make_block(coords)
            shape = tuple(s + 2 * gl for s in b.interior_shape)
            b.arrays[field] = np.zeros(shape)
            sl = (slice(gl, -gl),) * forest.dim
            b.arrays[field][sl] = rng.random(b.interior_shape)
            blocks[coords] = b
        return blocks

    def test_local_exchange_matches_global_roll(self):
        """Two periodic blocks on one rank == one global periodic array."""
        forest = BlockForest((8, 4), (4, 4), periodic=True)
        gl = 1
        blocks = self._make_blocks(forest, gl)
        owners = {c: 0 for c in blocks}
        # build the global array for reference
        glob = np.zeros((8, 4))
        for c, b in blocks.items():
            off = b.cell_offset
            glob[off[0]:off[0]+4, off[1]:off[1]+4] = b.arrays["u"][1:-1, 1:-1]
        exchange_field(blocks, forest, owners, None, "u", gl, wall_mode="neumann")
        b00 = blocks[(0, 0)].arrays["u"]
        # low-x ghost of block (0,0) wraps to the last row of block (1,0)
        np.testing.assert_array_equal(b00[0, 1:-1], glob[-1, :])
        np.testing.assert_array_equal(b00[-1, 1:-1], glob[4, :])
        # corners must be filled too (periodic in both axes)
        assert b00[0, 0] == glob[-1, -1]

    def test_wall_neumann(self):
        forest = BlockForest((4, 4), (4, 4), periodic=False)
        gl = 1
        blocks = self._make_blocks(forest, gl)
        owners = {c: 0 for c in blocks}
        exchange_field(blocks, forest, owners, None, "u", gl, wall_mode="neumann")
        arr = blocks[(0, 0)].arrays["u"]
        np.testing.assert_array_equal(arr[0, 1:-1], arr[1, 1:-1])
        np.testing.assert_array_equal(arr[-1, 1:-1], arr[-2, 1:-1])

    def test_remote_exchange_two_ranks(self):
        forest = BlockForest((8, 4), (4, 4), periodic=True)
        gl = 1
        rng_init = np.random.default_rng(3)
        init0 = rng_init.random((4, 4))
        init1 = rng_init.random((4, 4))

        def prog(comm):
            owners = forest.owner_map(2)
            blocks = {}
            for coords, owner in owners.items():
                if owner != comm.rank:
                    continue
                b = forest.make_block(coords)
                b.arrays["u"] = np.zeros((6, 6))
                b.arrays["u"][1:-1, 1:-1] = init0 if coords == (0, 0) else init1
                blocks[coords] = b
            sent = exchange_field(blocks, forest, owners, comm, "u", gl)
            assert sent > 0
            (b,) = blocks.values()
            return b.coords, b.arrays["u"].copy()

        results = dict(run_ranks(2, prog))
        np.testing.assert_array_equal(results[(0, 0)][0, 1:-1], init1[-1, :])
        np.testing.assert_array_equal(results[(1, 0)][-1, 1:-1], init0[0, :])

    def test_communication_volume(self):
        vol = communication_volume_bytes((10, 10, 10), 1, doubles_per_cell=6)
        assert vol == 6 * 100 * 2 * 3 * 6 * 8 / 6  # 6 faces x 100 cells x 6 dbl x 8 B
        assert vol == 6 * 100 * 6 * 8


class TestDistributedSolver:
    @pytest.fixture(scope="class")
    def kernels(self):
        from repro.pfm import GrandPotentialModel, make_two_phase_binary

        params = make_two_phase_binary(dim=2)
        params.fluctuation_amplitude = 0.02  # exercise global RNG counters
        return GrandPotentialModel(params).create_kernels()

    def _initializer(self, params):
        from repro.pfm import planar_front

        def init(offset, shape):
            full = planar_front(
                (16, 8), params.n_phases, 0, 1, position=6.0, epsilon=params.epsilon
            )
            sl = tuple(slice(o, o + s) for o, s in zip(offset, shape))
            return full[sl], 0.0

        return init

    def test_matches_single_block_bitwise(self, kernels):
        params = kernels.model.params
        init = self._initializer(params)

        # reference: one block, one rank
        forest1 = BlockForest((16, 8), (16, 8), periodic=True)
        ref = DistributedSolver(kernels, forest1, comm=None)
        ref.set_state_from(init)
        ref.step(5)
        ref_phi = ref.gather("phi")

        # 4 blocks on 1 rank
        forest4 = BlockForest((16, 8), (4, 4), periodic=True)
        multi = DistributedSolver(kernels, forest4, comm=None)
        multi.set_state_from(init)
        multi.step(5)
        np.testing.assert_array_equal(multi.gather("phi"), ref_phi)

    @pytest.mark.parametrize("n_ranks", [2, 4])
    def test_matches_across_ranks_bitwise(self, kernels, n_ranks):
        params = kernels.model.params
        init = self._initializer(params)

        forest1 = BlockForest((16, 8), (16, 8), periodic=True)
        ref = DistributedSolver(kernels, forest1, comm=None)
        ref.set_state_from(init)
        ref.step(4)
        ref_phi = ref.gather("phi")
        ref_mu = ref.gather("mu")

        forest = BlockForest((16, 8), (4, 4), periodic=True)
        cache = {}

        def prog(comm):
            solver = DistributedSolver(kernels, forest, comm=comm, compiled_cache=dict(cache))
            solver.set_state_from(init)
            solver.step(4)
            return solver.gather("phi"), solver.gather("mu")

        results = run_ranks(n_ranks, prog)
        phi, mu = results[0]
        np.testing.assert_array_equal(phi, ref_phi)
        np.testing.assert_array_equal(mu, ref_mu)

    def test_neumann_walls_match_single_solver(self, kernels):
        from repro.pfm import SingleBlockSolver, planar_front

        params = kernels.model.params
        shape = (16, 8)
        phi0 = planar_front(shape, params.n_phases, 0, 1, position=6.0, epsilon=params.epsilon)

        single = SingleBlockSolver(kernels, shape, boundary="neumann")
        single.set_state(phi0, mu=0.0)
        single.step(3)

        forest = BlockForest(shape, (8, 8), periodic=False)
        dist = DistributedSolver(kernels, forest, comm=None, wall_mode="neumann")
        dist.set_state_from(
            lambda off, shp: (
                phi0[off[0]:off[0]+shp[0], off[1]:off[1]+shp[1]],
                0.0,
            )
        )
        dist.step(3)
        np.testing.assert_array_equal(dist.gather("phi"), single.phi)


class TestWeightedDistribution:
    def test_balances_total_weight(self):
        forest = BlockForest((16, 16), (4, 4))  # 16 blocks
        weights = {c: (5.0 if c[0] == 0 else 1.0) for c in forest.all_block_coords()}
        dist = forest.distribute_weighted(weights, 4)
        totals = [sum(weights[c] for c in blocks) for blocks in dist.values()]
        assert max(totals) <= 2.5 * min(totals)
        all_blocks = [c for v in dist.values() for c in v]
        assert sorted(all_blocks) == sorted(forest.all_block_coords())

    def test_every_rank_owns_a_block(self):
        forest = BlockForest((16, 4), (4, 4))  # 4 blocks
        weights = {c: 1000.0 if c == (0, 0) else 0.001 for c in forest.all_block_coords()}
        dist = forest.distribute_weighted(weights, 4)
        assert all(len(v) >= 1 for v in dist.values())

    def test_uniform_weights_match_static(self):
        forest = BlockForest((8, 8), (2, 2))
        uniform = {c: 1.0 for c in forest.all_block_coords()}
        wd = forest.distribute_weighted(uniform, 4)
        sizes = sorted(len(v) for v in wd.values())
        assert sizes == [4, 4, 4, 4]

    def test_zero_total_weight_falls_back(self):
        forest = BlockForest((8, 8), (4, 4))
        dist = forest.distribute_weighted({c: 0.0 for c in forest.all_block_coords()}, 2)
        assert sum(len(v) for v in dist.values()) == forest.n_blocks


class TestMPIAdapter:
    def test_fold_tag_deterministic_and_bounded(self):
        from repro.parallel import fold_tag

        t1 = fold_tag(("phi", 0, -1, (1, 2, 3)))
        t2 = fold_tag(("phi", 0, -1, (1, 2, 3)))
        assert t1 == t2
        assert 0 <= t1 < 32749

    def test_fold_tag_distinguishes_exchange_channels(self):
        """The ghost exchange tags only (field, axis, side) — a handful of
        values per field; the destination block travels in the payload, so
        even a rare fold collision cannot misroute a message."""
        from repro.parallel import fold_tag

        tags = {
            fold_tag((field, axis, side))
            for field in ("phi_dst", "mu_dst")
            for axis in (0, 1, 2)
            for side in (-1, 1)
        }
        assert len(tags) == 2 * 3 * 2

    def test_small_int_tags_pass_through(self):
        from repro.parallel import fold_tag

        assert fold_tag(7) == 7

    def test_bool_tags_do_not_alias_ints(self):
        """Regression: ``bool`` is an ``int`` subclass, so a naive
        passthrough folded ``True``/``False`` onto tags ``1``/``0``."""
        from repro.parallel import fold_tag

        assert fold_tag(True) != fold_tag(1)
        assert fold_tag(False) != fold_tag(0)
        # still deterministic
        assert fold_tag(True) == fold_tag(True)
        assert 0 <= fold_tag(True) < 32749
        assert 0 <= fold_tag(False) < 32749

    def test_negative_collective_tags_fold_distinctly(self):
        """The simulator's bcast/gather use tags -1/-2 — invalid as raw MPI
        tags; they must fold into the valid range without colliding."""
        from repro.parallel import fold_tag

        bcast, gather = fold_tag(-1), fold_tag(-2)
        assert bcast != gather
        assert 0 <= bcast < 32749
        assert 0 <= gather < 32749
        assert fold_tag(-1) == bcast  # deterministic across calls

    def test_exchange_plan_tags_fold_without_collision(self):
        """Every tag the solver's exchanges actually use — the aggregated
        (field, "ghosts") bundles, the per-axis relay tags, and the
        collective tags — must land on distinct folded values."""
        from repro.parallel import fold_tag

        rich_tags = [
            ("phi", "ghosts"),
            ("mu", "ghosts"),
            ("phi_dst", "ghosts"),
            ("mu_dst", "ghosts"),
            *(
                (field, axis, side)
                for field in ("phi", "mu", "phi_dst", "mu_dst")
                for axis in (0, 1, 2)
                for side in (-1, 1)
            ),
            -1,
            -2,
        ]
        folded = [fold_tag(t) for t in rich_tags]
        assert len(set(folded)) == len(rich_tags)
        assert all(0 <= f < 32749 for f in folded)

    def test_adapter_requires_mpi4py(self):
        from repro.parallel import MPI4PyComm, mpi4py_available

        if mpi4py_available():
            pytest.skip("mpi4py installed; adapter would construct")
        with pytest.raises(ImportError):
            MPI4PyComm()
