"""End-to-end observability: tracing, metrics export, health monitoring.

Covers :mod:`repro.observability` — Chrome-trace export and span-nesting
determinism across pipeline rebuilds, the Prometheus text-format
round-trip, the NaN/drift/bounds health watchdog on live solver runs —
plus the profiler-merge and distributed-gather regressions fixed in the
same change.
"""

import json

import numpy as np
import pytest

from repro.observability import (
    HealthError,
    HealthMonitor,
    MetricsRegistry,
    Tracer,
    disable_tracing,
    enable_tracing,
    find_sample,
    get_registry,
    model_accuracy_rows,
    parse_prometheus,
    reset_metrics,
    set_tracer,
)
from repro.parallel import BlockForest
from repro.parallel.timeloop import DistributedSolver
from repro.pfm import (
    GrandPotentialModel,
    SingleBlockSolver,
    make_two_phase_binary,
    planar_front,
)
from repro.profiling import SolverProfiler, clear_kernel_cache, compile_cached


@pytest.fixture(autouse=True)
def _clean_observability_state():
    """Keep the process-wide tracer/registry out of other test modules."""
    yield
    disable_tracing()
    reset_metrics()


@pytest.fixture(scope="module")
def kernel_set():
    return GrandPotentialModel(make_two_phase_binary(dim=2)).create_kernels()


def _front(shape, params):
    return planar_front(
        shape, params.n_phases, 0, 1, position=shape[0] / 2, epsilon=params.epsilon
    )


# -- tracing -------------------------------------------------------------------


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("outer", category="runtime") as sp:
            assert sp is None
        assert tracer.finished_spans() == []

    def test_nesting_and_args(self):
        tracer = Tracer()
        with tracer.span("outer", category="pipeline", n=3):
            with tracer.span("inner", category="ir") as sp:
                sp.args["ops"] = 7
        tree = tracer.span_tree()
        assert ("outer", "pipeline", None) in tree
        assert ("inner", "ir", "outer") in tree
        inner = [s for s in tracer.finished_spans() if s.name == "inner"][0]
        assert inner.args == {"ops": 7}
        assert inner.duration >= 0

    def test_pipeline_span_tree_deterministic(self):
        """Rebuilding the same model yields the identical span hierarchy."""
        trees = []
        for _ in range(2):
            clear_kernel_cache()  # identical compile spans on both rounds
            tracer = enable_tracing(reset=True)
            ks = GrandPotentialModel(make_two_phase_binary(dim=2)).create_kernels()
            compile_cached(ks.projection_kernel, "numpy")
            trees.append(tracer.span_tree())
        disable_tracing()
        assert trees[0] == trees[1]
        cats = {cat for _, cat, _ in trees[0]}
        assert {
            "functional", "pde", "discretization",
            "simplification", "ir", "backend",
        } <= cats

    def test_chrome_export_is_valid_json(self, tmp_path, kernel_set):
        tracer = enable_tracing(reset=True)
        solver = SingleBlockSolver(kernel_set, (8, 8), boundary="periodic")
        solver.set_state(_front((8, 8), kernel_set.model.params))
        solver.step(2)
        path = tracer.export_chrome(tmp_path / "trace.json")
        disable_tracing()

        doc = json.loads(open(path).read())
        all_events = doc["traceEvents"]
        assert all_events
        # metadata events name the tracks (Perfetto shows bare tids without)
        meta = [ev for ev in all_events if ev["ph"] == "M"]
        assert "process_name" in {ev["name"] for ev in meta}
        assert "thread_name" in {ev["name"] for ev in meta}
        events = [ev for ev in all_events if ev["ph"] != "M"]
        assert events
        for ev in events:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(ev)
            assert ev["ph"] == "X"
            assert ev["ts"] >= 0 and ev["dur"] >= 0
        assert "runtime" in {ev["cat"] for ev in events}
        steps = [ev for ev in events if ev["name"] == "step"]
        assert len(steps) == 2
        # kernel sweeps nest inside the step window
        sweeps = [ev for ev in events if ev["cat"] == "runtime" and ev != steps[0]]
        assert any(
            steps[0]["ts"] <= ev["ts"] <= steps[0]["ts"] + steps[0]["dur"]
            for ev in sweeps
        )

    def test_profiler_feeds_trace_once(self, kernel_set):
        """Runtime spans come from the profiler — same counts, no doubles."""
        tracer = enable_tracing(reset=True)
        solver = SingleBlockSolver(kernel_set, (8, 8), boundary="periodic")
        solver.set_state(_front((8, 8), kernel_set.model.params))
        solver.step(3)
        disable_tracing()
        phi_name = kernel_set.phi_kernels[0].name
        n_spans = sum(1 for s in tracer.finished_spans() if s.name == phi_name)
        assert n_spans == solver.profiler.records[phi_name].calls == 3


# -- metrics -------------------------------------------------------------------


class TestMetrics:
    def test_prometheus_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("repro_widgets_total", "widgets built", kind="φ").inc(3)
        reg.gauge("repro_queue_depth", "queued items").set(7.5)
        h = reg.histogram("repro_latency_seconds", "latency", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)

        parsed = parse_prometheus(reg.to_prometheus())
        assert parsed["repro_widgets_total"]["type"] == "counter"
        assert find_sample(parsed, "repro_widgets_total", kind="φ") == 3
        assert find_sample(parsed, "repro_queue_depth") == 7.5
        assert parsed["repro_latency_seconds"]["type"] == "histogram"
        assert find_sample(
            parsed, "repro_latency_seconds", "repro_latency_seconds_count"
        ) == 3
        assert find_sample(
            parsed, "repro_latency_seconds", "repro_latency_seconds_bucket", le="+Inf"
        ) == 3
        assert find_sample(
            parsed, "repro_latency_seconds", "repro_latency_seconds_bucket", le="1"
        ) == 2  # cumulative buckets

    def test_json_export(self):
        reg = MetricsRegistry()
        reg.counter("repro_things_total", "things", solver="single").inc()
        doc = reg.to_json()
        sample = doc["repro_things_total"]["samples"][0]
        assert sample["labels"] == {"solver": "single"}
        assert sample["value"] == 1

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("repro_x_total")

    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="increase"):
            reg.counter("repro_x_total").inc(-1)

    def test_solver_exports_kernel_metrics(self, kernel_set):
        reset_metrics()
        solver = SingleBlockSolver(kernel_set, (8, 8), boundary="periodic")
        solver.set_state(_front((8, 8), kernel_set.model.params))
        solver.step(2)
        solver.export_metrics()

        parsed = parse_prometheus(get_registry().to_prometheus())
        phi_name = kernel_set.phi_kernels[0].name
        assert find_sample(
            parsed, "repro_op_calls_total", op=phi_name, solver="single"
        ) == 2
        assert find_sample(
            parsed, "repro_kernel_mlups", kernel=phi_name, solver="single"
        ) > 0
        assert find_sample(
            parsed, "repro_step_seconds", "repro_step_seconds_count", solver="single"
        ) == 2


# -- health monitoring ---------------------------------------------------------


class TestHealthMonitor:
    def test_nan_raise_policy(self):
        mon = HealthMonitor(policy="raise", interval=1)
        arr = np.ones((4, 4, 2))
        arr[1, 2, 0] = np.nan
        with pytest.raises(HealthError) as exc:
            mon.check({"phi": arr}, time_step=7)
        (event,) = exc.value.events
        assert event.check == "nan" and event.field == "phi"
        assert event.time_step == 7
        assert not mon.healthy

    def test_record_policy_collects_events(self):
        mon = HealthMonitor(policy="record", interval=1, bounds={"mu": (-1.0, 1.0)})
        mon.check({"mu": np.full((3, 3), 5.0)}, time_step=1)
        mon.check({"mu": np.zeros((3, 3))}, time_step=2)
        assert [e.check for e in mon.events] == ["bounds"]
        assert mon.n_checks == 2
        assert "bounds" in mon.summary()

    def test_phase_sum_drift(self):
        mon = HealthMonitor(policy="record", phase_sum_tol=1e-6)
        phi = np.full((4, 4, 2), 0.51)  # sums to 1.02
        events = mon.check({"phi": phi}, phase_sum_of="phi")
        assert [e.check for e in events] == ["phase_sum"]
        assert events[0].value == pytest.approx(0.02)

    def test_cadence(self):
        mon = HealthMonitor(interval=50)
        assert mon.due(50) and mon.due(100)
        assert not mon.due(49) and not mon.due(51)

    def test_solver_detects_injected_nan_within_one_interval(self, kernel_set):
        mon = HealthMonitor(policy="raise", interval=2)
        solver = SingleBlockSolver(
            kernel_set, (8, 8), boundary="periodic", health=mon
        )
        solver.set_state(_front((8, 8), kernel_set.model.params))
        solver.step(2)  # healthy run passes the first check
        assert mon.healthy
        solver.phi[3, 3, 0] = np.nan
        with pytest.raises(HealthError):
            solver.step(2)
        assert any(e.check == "nan" for e in mon.events)

    def test_destabilized_run_detected(self):
        """A dt far above the stability limit trips the watchdog."""
        params = make_two_phase_binary(dim=2)
        params.dt = 1e4 * params.dt
        kernel_set = GrandPotentialModel(params).create_kernels()
        mon = HealthMonitor(policy="record", interval=1, bounds={"mu": (-1e3, 1e3)})
        solver = SingleBlockSolver(
            kernel_set, (8, 8), boundary="periodic", health=mon
        )
        solver.set_state(_front((8, 8), params))
        solver.step(10)
        assert not mon.healthy

    def test_distributed_health_reports_block(self, kernel_set):
        mon = HealthMonitor(policy="record", interval=1)
        forest = BlockForest((8, 8), (4, 4), periodic=True)
        solver = DistributedSolver(kernel_set, forest, comm=None, health=mon)
        solver.set_state_from(lambda off, shp: (np.full(shp + (2,), 0.5), 0.0))
        solver.blocks[(0, 1)].arrays["phi"][2, 2, 0] = np.nan
        solver.step(1)
        nan_events = [e for e in mon.events if e.check == "nan"]
        assert nan_events and "block (0, 1)" in nan_events[0].where


# -- predicted vs measured -----------------------------------------------------


class TestModelAccuracy:
    def test_report_joins_prediction_and_measurement(self, kernel_set):
        solver = SingleBlockSolver(kernel_set, (8, 8), boundary="periodic")
        solver.set_state(_front((8, 8), kernel_set.model.params))
        solver.step(2)

        rows = model_accuracy_rows(
            kernel_set.all_kernels, solver.profiler, block_shape=(8, 8)
        )
        assert {r["kernel"] for r in rows} == {
            k.name for k in kernel_set.all_kernels
        }
        for r in rows:
            assert r["predicted_mlups"] > 0
            assert r["measured_mlups"] > 0
            assert r["ratio"] == pytest.approx(
                r["measured_mlups"] / r["predicted_mlups"]
            )

        report = solver.profile_report()
        assert "predicted MLUP/s" in report and "measured MLUP/s" in report

    def test_unmeasured_kernels_skipped(self, kernel_set):
        rows = model_accuracy_rows(
            kernel_set.all_kernels, SolverProfiler(), block_shape=(8, 8)
        )
        assert rows == []


# -- satellite regressions -----------------------------------------------------


class TestProfilerMerge:
    def test_merge_accumulates_fieldwise(self):
        a, b = SolverProfiler(), SolverProfiler()
        a.record("k", 1.0, cells=10, nbytes=100)
        b.record("k", 2.0, cells=20, nbytes=200)
        b.record("other", 0.5)
        a.merge(b)
        rec = a.records["k"]
        assert rec.calls == 2
        assert rec.seconds == pytest.approx(3.0)
        assert rec.cells == 30 and rec.bytes == 300
        assert a.records["other"].calls == 1

    def test_merge_self_is_noop(self):
        p = SolverProfiler()
        p.record("k", 1.0, cells=10)
        p.merge(p)
        assert p.records["k"].calls == 1
        assert p.records["k"].seconds == pytest.approx(1.0)
        assert p.records["k"].cells == 10


class TestGatherShapes:
    def test_gather_uses_piece_shapes(self, kernel_set):
        """Edge blocks narrower than block_shape assemble without error."""
        forest = BlockForest((8, 8), (4, 4), periodic=True)
        solver = DistributedSolver(kernel_set, forest, comm=None)
        solver.set_state_from(lambda off, shp: (np.full(shp + (2,), 0.5), 0.0))
        # shrink the right-edge blocks to a (4, 3) interior, as an adaptive
        # forest with a non-divisible domain would produce
        gl = solver.ghost_layers
        for coords in [(0, 1), (1, 1)]:
            block = solver.blocks[coords]
            for name, arr in block.arrays.items():
                block.arrays[name] = arr[:, : 3 + 2 * gl].copy()
        out = solver.gather("phi")
        assert out.shape == (8, 8, 2)
        np.testing.assert_array_equal(out[:, :7], 0.5)
        np.testing.assert_array_equal(out[:, 7:], 0.0)  # uncovered strip

    def test_distributed_metrics_match_single(self, kernel_set):
        """Same physics ⇒ same cell counts in both solvers' profiles."""
        params = kernel_set.model.params
        shape = (8, 8)
        phi0 = _front(shape, params)

        single = SingleBlockSolver(kernel_set, shape, boundary="periodic", seed=0)
        single.set_state(phi0, mu=0.0)
        single.step(4)

        forest = BlockForest(shape, (4, 4), periodic=True)
        dist = DistributedSolver(kernel_set, forest, comm=None, seed=0)
        dist.set_state_from(
            lambda off, shp: (
                phi0[tuple(slice(o, o + s) for o, s in zip(off, shp))],
                0.0,
            )
        )
        dist.step(4)

        for k in kernel_set.all_kernels:
            s, d = single.profiler.records[k.name], dist.profiler.records[k.name]
            assert s.cells == d.cells  # every cell swept exactly once per step
        np.testing.assert_array_equal(dist.gather("phi"), single.phi)
